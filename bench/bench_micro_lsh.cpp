// Micro benchmarks for the ALSH substrate: hash computation, index build
// (the table-reconstruction cost the §9.2 schedule amortizes), and query.

#include <benchmark/benchmark.h>

#include "src/lsh/hash_table.h"
#include "src/lsh/mips.h"
#include "src/lsh/wta_hash.h"
#include "src/util/rng.h"

namespace sampnn {
namespace {

void BM_SrpHash(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  const auto bits = static_cast<size_t>(state.range(1));
  Rng rng(42);
  auto hash = std::move(SrpHash::Create(dim, bits, rng)).ValueOrDie("hash");
  std::vector<float> x(dim);
  for (auto& v : x) v = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.Hash(x));
  }
}
BENCHMARK(BM_SrpHash)->Args({256, 6})->Args({1000, 6})->Args({1000, 12});

void BM_WtaHash(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  const auto subhashes = static_cast<size_t>(state.range(1));
  Rng rng(42);
  auto hash = std::move(WtaHash::Create(dim, subhashes, 8, rng))
                  .ValueOrDie("hash");
  std::vector<float> x(dim);
  for (auto& v : x) v = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.Hash(x));
  }
}
BENCHMARK(BM_WtaHash)->Args({256, 2})->Args({1000, 2})->Args({1000, 4});

void BM_AlshIndexBuild(benchmark::State& state) {
  // One hash-table reconstruction over a (dim x items) weight matrix — the
  // unit of the paper's rebuild schedule.
  const auto dim = static_cast<size_t>(state.range(0));
  const auto items = static_cast<size_t>(state.range(1));
  Rng rng(42);
  Matrix w = Matrix::RandomGaussian(dim, items, rng);
  AlshIndexOptions options;  // paper defaults K=6, L=5, m=3
  auto index =
      std::move(AlshIndex::Create(dim, options, 7)).ValueOrDie("index");
  for (auto _ : state) {
    index.Build(w);
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_AlshIndexBuild)->Args({256, 256})->Args({1000, 1000});

void BM_AlshQuery(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  const auto items = static_cast<size_t>(state.range(1));
  const auto tables = static_cast<size_t>(state.range(2));
  Rng rng(42);
  Matrix w = Matrix::RandomGaussian(dim, items, rng);
  AlshIndexOptions options;
  options.tables = tables;
  auto index =
      std::move(AlshIndex::Create(dim, options, 7)).ValueOrDie("index");
  index.Build(w);
  std::vector<float> q(dim);
  for (auto& v : q) v = rng.NextGaussian();
  std::vector<uint32_t> out;
  for (auto _ : state) {
    index.Query(q, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AlshQuery)
    ->Args({1000, 1000, 5})
    ->Args({1000, 1000, 10})
    ->Args({256, 256, 5});

void BM_ExactMips(benchmark::State& state) {
  // The linear-scan baseline the hash index competes against.
  const auto dim = static_cast<size_t>(state.range(0));
  const auto items = static_cast<size_t>(state.range(1));
  Rng rng(42);
  Matrix db = Matrix::RandomGaussian(dim, items, rng);
  std::vector<float> q(dim);
  for (auto& v : q) v = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactMips(db, q, 50));
  }
}
BENCHMARK(BM_ExactMips)->Args({1000, 1000})->Args({256, 256});

}  // namespace
}  // namespace sampnn

BENCHMARK_MAIN();
