// Figure 3 reproduction: confusion matrices for every method at depths
// 1..7 on the MNIST-like benchmark. Prints per-cell accuracy and the
// distinct-predicted-class count (the §10.3 collapse indicator), renders
// the full matrices for the shallowest/deepest depths, and writes every
// matrix (row-normalized %) to CSV.
//
// Expected shape: near-diagonal matrices for Standard/Adaptive/MC at every
// depth; ALSH-approx diagonal at depth 1-2 but concentrating its
// predictions on few columns at depth >= 5 (paper Figures 3m-3p).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/csv.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_fig3_confusion");
  AddCommonFlags(&flags);
  flags.AddInt("max-depth", 7, "deepest network");
  flags.AddInt("epochs-s", 3, "epochs for stochastic methods");
  flags.AddInt("epochs-m", 8, "epochs for mini-batch methods");
  flags.AddString("dataset", "mnist", "benchmark dataset");
  flags.AddBool("print-matrices", false, "render every confusion matrix");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Figure 3: confusion matrices, methods x depth", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto max_depth = static_cast<size_t>(flags.GetInt("max-depth"));

  struct Config {
    TrainerKind kind;
    size_t batch;
  };
  const Config configs[] = {
      {TrainerKind::kStandard, 1},        {TrainerKind::kDropout, 1},
      {TrainerKind::kAdaptiveDropout, 1}, {TrainerKind::kAlsh, 1},
      {TrainerKind::kMc, 20},
  };

  TableReporter table("Figure 3 summary: accuracy % (distinct predicted "
                      "classes) per method x depth",
                      [&] {
                        std::vector<std::string> cols{"Method"};
                        for (size_t d = 1; d <= max_depth; ++d) {
                          cols.push_back("depth " + std::to_string(d));
                        }
                        return cols;
                      }());

  auto csv = std::move(CsvWriter::Open(CsvPath(flags, "fig3_confusion")))
                 .ValueOrDie("csv");
  csv.WriteHeader({"method", "depth", "true_class", "row_percentages..."});

  for (const Config& c : configs) {
    std::vector<std::string> row{PaperName(c.kind, c.batch)};
    for (size_t depth = 1; depth <= max_depth; ++depth) {
      std::fprintf(stderr, "-- %s depth %zu\n",
                   PaperName(c.kind, c.batch).c_str(), depth);
      size_t epochs = static_cast<size_t>(
          c.batch > 1 ? flags.GetInt("epochs-m") : flags.GetInt("epochs-s"));
      if (c.kind == TrainerKind::kAlsh) epochs *= 4;  // cheap sparse steps
      ExperimentResult result =
          RunPaperExperiment(data, c.kind, depth, c.batch, epochs, flags);
      const ConfusionMatrix& cm = *result.confusion;
      row.push_back(TableReporter::Cell(100.0 * cm.Accuracy(), 1) + " (" +
                    std::to_string(cm.NumDistinctPredictions()) + ")");
      const auto rows = cm.ToCsvRows();
      for (size_t t = 0; t < rows.size(); ++t) {
        std::vector<std::string> cells{PaperName(c.kind, c.batch),
                                       std::to_string(depth),
                                       std::to_string(t)};
        cells.insert(cells.end(), rows[t].begin(), rows[t].end());
        csv.WriteRow(cells);
      }
      if (flags.GetBool("print-matrices") ||
          ((depth == 1 || depth == max_depth) &&
           c.kind == TrainerKind::kAlsh)) {
        std::printf("\n%s, depth %zu:\n%s", PaperName(c.kind, c.batch).c_str(),
                    depth, cm.ToString().c_str());
      }
    }
    table.AddRow(std::move(row));
  }
  csv.Close().Abort("csv close");
  table.Print();
  std::printf("\nExpected shape (paper Fig. 3): ALSH's distinct-prediction "
              "count collapses at depth >= 5 while MC^M stays at the full "
              "class count across depths.\n");
  return 0;
}
