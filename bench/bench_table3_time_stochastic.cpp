// Table 3 reproduction: training time in the stochastic setting (batch = 1,
// one CPU, no parallelization), 3 hidden layers, split into feedforward and
// backpropagation time per epoch.
//
// Expected shape (paper Table 3): ALSH-approx slowest single-threaded
// (hashing + rebuild overhead), MC-approx^S slower than Standard^S (the
// probability-estimation pass costs more than sampling saves at batch 1),
// backprop dominating feedforward for every method.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_table3_time_stochastic");
  AddCommonFlags(&flags);
  flags.AddInt("epochs", 2, "epochs to average over");
  flags.AddString("dataset", "mnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Table 3: per-epoch training time, stochastic setting", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));

  const TrainerKind kinds[] = {TrainerKind::kStandard, TrainerKind::kDropout,
                               TrainerKind::kAdaptiveDropout,
                               TrainerKind::kAlsh, TrainerKind::kMc};
  TableReporter table(
      "Table 3: training time, stochastic setting (batch=1, 3 hidden layers)",
      {"Method", "feedforward s/epoch", "backprop s/epoch", "other s/epoch",
       "total s/epoch", "ms/sample", "test acc %"});
  for (TrainerKind kind : kinds) {
    std::fprintf(stderr, "-- %s\n", PaperName(kind, 1).c_str());
    ExperimentResult result =
        RunPaperExperiment(data, kind, /*depth=*/3, /*batch=*/1, epochs, flags);
    const double per_epoch = result.train_seconds / epochs;
    const double ff = result.forward_seconds / epochs;
    const double bp = result.backward_seconds / epochs;
    const double other = per_epoch - ff - bp;
    const double ms_per_sample =
        1000.0 * result.train_seconds /
        (static_cast<double>(data.train.size()) * epochs);
    table.AddRow({PaperName(kind, 1), TableReporter::Cell(ff, 3),
                  TableReporter::Cell(bp, 3),
                  TableReporter::Cell(other < 0 ? 0.0 : other, 3),
                  TableReporter::Cell(per_epoch, 3),
                  TableReporter::Cell(ms_per_sample, 3),
                  TableReporter::Cell(100.0 * result.final_test_accuracy)});
  }
  table.Print();
  table.WriteCsv(CsvPath(flags, "table3_time_stochastic")).Abort("csv");
  std::printf("\nExpected shape (paper Table 3): ALSH slowest without "
              "parallelism; MC^S slower than Standard^S; backprop >> "
              "feedforward.\n");
  return 0;
}
