// §7 in-text table reproduction: the Theorem 7.2 error-to-estimate ratio
// e^k/a-hat^k = ((c+1)/c)^k - 1 for k = 1..6 at c = 5, alongside an
// empirical measurement on a linear MLP with 5% oracle-top and real ALSH
// active sets.
//
// Expected: the closed form reproduces 0.2, 0.44, 0.72, 1.07, 1.48, 1.98
// exactly; empirical ratios grow monotonically with depth in both modes.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/error_propagation.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_theory_error_table");
  AddCommonFlags(&flags);
  flags.AddDouble("c", 5.0, "active/inactive weighted-sum ratio (paper: 5)");
  flags.AddInt("max-depth", 6, "deepest layer k");
  flags.AddInt("width", 256, "hidden width for the empirical measurement");
  flags.AddInt("inputs", 64, "number of probe inputs");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("§7 table: error-to-estimate ratio vs depth", flags);

  const double c = flags.GetDouble("c");
  const auto max_depth = static_cast<size_t>(flags.GetInt("max-depth"));
  const auto width = static_cast<size_t>(flags.GetInt("width"));

  // Empirical measurement on a linear network (the §7 setting).
  MlpConfig cfg = MlpConfig::Uniform(width, 10, max_depth, width);
  cfg.hidden_activation = Activation::kLinear;
  cfg.initializer = Initializer::kXavier;
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  Mlp net = std::move(Mlp::Create(cfg)).ValueOrDie("net");
  Rng rng(7);
  Matrix inputs = Matrix::RandomUniform(
      static_cast<size_t>(flags.GetInt("inputs")), width, rng, 0.0f, 1.0f);

  ErrorPropagationOptions oracle;
  oracle.selection = ActiveSelection::kOracleTopFraction;
  oracle.active_fraction = 0.05;
  auto oracle_stats = std::move(MeasureErrorPropagation(net, inputs, oracle))
                          .ValueOrDie("oracle");
  ErrorPropagationOptions alsh;
  alsh.selection = ActiveSelection::kAlsh;
  auto alsh_stats =
      std::move(MeasureErrorPropagation(net, inputs, alsh)).ValueOrDie("alsh");

  TableReporter table(
      "Theorem 7.2: error/estimate ratio by depth (c=" +
          TableReporter::Cell(c, 1) + ")",
      {"k", "closed form", "empirical (oracle 5%)", "empirical (ALSH)"});
  for (size_t k = 1; k <= max_depth; ++k) {
    table.AddRow({std::to_string(k),
                  TableReporter::Cell(TheoreticalErrorRatio(c, k)),
                  TableReporter::Cell(oracle_stats[k - 1].error_ratio),
                  TableReporter::Cell(alsh_stats[k - 1].error_ratio)});
  }
  table.Print();
  table.WriteCsv(CsvPath(flags, "theory_error_table")).Abort("csv");
  std::printf("\nPaper reference (c=5): 0.2, 0.44, 0.72, 1.07, 1.48, 1.98 — "
              "error exceeds the estimate beyond k=3.\n");
  return 0;
}
