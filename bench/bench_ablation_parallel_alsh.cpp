// §9.2/§10.4 claim check: ALSH-approx benefits from parallelization while
// its accuracy is unaffected. Runs the same ALSH training job with 1..8
// HOGWILD workers and reports wall-clock time + accuracy.
//
// Expected shape (Spring & Shrivastava [50], as cited in §9.2): wall-clock
// decreasing with worker count; accuracy unchanged up to gradient-race
// noise.

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "src/core/alsh_trainer.h"
#include "src/data/batcher.h"
#include "src/metrics/accuracy.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_ablation_parallel_alsh");
  AddCommonFlags(&flags);
  flags.AddInt("epochs", 10, "training epochs");
  flags.AddInt("batch", 64, "minibatch size (parallelism granularity)");
  flags.AddInt("max-threads", 8, "largest worker count");
  flags.AddString("dataset", "mnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Ablation: ALSH-approx HOGWILD parallel scaling", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores > 0 && cores < static_cast<unsigned>(flags.GetInt("max-threads"))) {
    std::printf("NOTE: only %u hardware core(s) available — wall-clock "
                "speedup cannot exceed that; the accuracy-invariance half of "
                "the claim is still measured.\n",
                cores);
  }
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const auto batch = static_cast<size_t>(flags.GetInt("batch"));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const MlpConfig net_config = PaperMlpConfig(
      data.train, 3, static_cast<size_t>(flags.GetInt("hidden")), seed);

  TableReporter table("ALSH-approx: threads vs wall clock and accuracy",
                      {"threads", "wall s", "speedup", "test acc %",
                       "avg active frac"});
  double baseline = 0.0;
  for (size_t threads = 1;
       threads <= static_cast<size_t>(flags.GetInt("max-threads"));
       threads *= 2) {
    std::fprintf(stderr, "-- threads %zu\n", threads);
    TrainerOptions options = PaperTrainerOptions(TrainerKind::kAlsh, batch, seed);
    options.alsh.threads = threads;
    Mlp net = std::move(Mlp::Create(net_config)).ValueOrDie("net");
    auto trainer =
        std::move(AlshTrainer::Create(std::move(net), options.alsh,
                                      options.learning_rate, seed))
            .ValueOrDie("trainer");
    Batcher batcher(data.train, batch, 7);
    Matrix x;
    std::vector<int32_t> y;
    Stopwatch watch;
    for (size_t e = 0; e < epochs; ++e) {
      while (batcher.Next(&x, &y)) {
        std::move(trainer->Step(x, y)).ValueOrDie("step");
      }
    }
    const double wall = watch.Elapsed();
    if (threads == 1) baseline = wall;
    const double acc = EvaluateAccuracy(trainer->net(), data.test);
    table.AddRow({std::to_string(threads), TableReporter::Cell(wall, 3),
                  TableReporter::Cell(baseline > 0 ? baseline / wall : 1.0),
                  TableReporter::Cell(100.0 * acc, 1),
                  TableReporter::Cell(trainer->AverageActiveFraction(), 3)});
  }
  table.Print();
  table.WriteCsv(CsvPath(flags, "ablation_parallel_alsh")).Abort("csv");
  std::printf("\nExpected shape: speedup > 1 beyond one worker with accuracy "
              "roughly unchanged ([50]'s parallel-scaling claim, §9.2).\n");
  return 0;
}
