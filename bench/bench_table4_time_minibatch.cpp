// Table 4 reproduction: training time in the mini-batch setting (batch =
// 20, one CPU), 3 hidden layers, feedforward/backprop split.
//
// Expected shape (paper Table 4): MC-approx^M significantly fastest; the
// dropout pair pays mask construction/multiplication overhead on top of
// dense cost (Adaptive-Dropout slower than Standard).

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_table4_time_minibatch");
  AddCommonFlags(&flags);
  flags.AddInt("epochs", 4, "epochs to average over");
  flags.AddInt("batch", 20, "minibatch size (paper: 20)");
  flags.AddString("dataset", "mnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Table 4: per-epoch training time, mini-batch setting", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const auto batch = static_cast<size_t>(flags.GetInt("batch"));

  const TrainerKind kinds[] = {TrainerKind::kStandard, TrainerKind::kDropout,
                               TrainerKind::kAdaptiveDropout,
                               TrainerKind::kAlsh, TrainerKind::kMc};
  TableReporter table(
      "Table 4: training time, mini-batch setting (batch=" +
          std::to_string(batch) + ", 3 hidden layers)",
      {"Method", "feedforward s/epoch", "backprop s/epoch", "other s/epoch",
       "total s/epoch", "test acc %"});
  for (TrainerKind kind : kinds) {
    std::fprintf(stderr, "-- %s\n", PaperName(kind, batch).c_str());
    ExperimentResult result =
        RunPaperExperiment(data, kind, /*depth=*/3, batch, epochs, flags);
    const double per_epoch = result.train_seconds / epochs;
    const double ff = result.forward_seconds / epochs;
    const double bp = result.backward_seconds / epochs;
    const double other = per_epoch - ff - bp;
    table.AddRow({PaperName(kind, batch), TableReporter::Cell(ff, 3),
                  TableReporter::Cell(bp, 3),
                  TableReporter::Cell(other < 0 ? 0.0 : other, 3),
                  TableReporter::Cell(per_epoch, 3),
                  TableReporter::Cell(100.0 * result.final_test_accuracy)});
  }
  table.Print();
  table.WriteCsv(CsvPath(flags, "table4_time_minibatch")).Abort("csv");
  std::printf("\nExpected shape (paper Table 4): MC^M fastest at batch 20; "
              "the dropout pair is not faster than Standard (mask "
              "overhead).\n");
  return 0;
}
