// Micro benchmarks for the dense and sparse linear-algebra kernels — the
// Θ(n²)-per-layer operations the paper identifies as the training
// bottleneck (§4.1), and the active-set kernels that replace them.

#include <benchmark/benchmark.h>

#include "src/tensor/kernels.h"
#include "src/util/rng.h"

namespace sampnn {
namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(n, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmBatchTimesWeights(benchmark::State& state) {
  // The training-shaped product: (batch x n) * (n x n) at batch 20.
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(20, n, rng);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  Matrix c(20, n);
  for (auto _ : state) {
    Gemm(a, w, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 20 * n * n);
}
BENCHMARK(BM_GemmBatchTimesWeights)->Arg(256)->Arg(1000);

void BM_GemmTransA(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(20, n, rng);
  Matrix b = Matrix::RandomGaussian(20, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    GemmTransA(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransA)->Arg(256)->Arg(1000);

void BM_GemmTransB(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(20, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  Matrix c(20, n);
  for (auto _ : state) {
    GemmTransB(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransB)->Arg(256)->Arg(1000);

void BM_VecMat(benchmark::State& state) {
  // The SGD hot path: (1 x n) * (n x n) + bias.
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  std::vector<float> x(n), bias(n), y(n);
  for (auto& v : x) v = rng.NextGaussian();
  for (auto _ : state) {
    VecMat(x, w, bias, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_VecMat)->Arg(256)->Arg(1000);

void BM_VecMatCols(benchmark::State& state) {
  // The ALSH-approx substitute: only `active` of n columns computed.
  const auto n = static_cast<size_t>(state.range(0));
  const auto active = static_cast<size_t>(state.range(1));
  Rng rng(42);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  std::vector<float> x(n), bias(n), y(n);
  for (auto& v : x) v = rng.NextGaussian();
  std::vector<uint32_t> cols;
  for (size_t j = 0; j < active; ++j) {
    cols.push_back(static_cast<uint32_t>(rng.NextBounded(n)));
  }
  for (auto _ : state) {
    VecMatCols(x, w, bias, cols, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * active * n);
}
BENCHMARK(BM_VecMatCols)
    ->Args({1000, 50})    // the paper's ~5% active set
    ->Args({1000, 100})
    ->Args({1000, 1000});  // degenerate: all columns

void BM_SparseOuterUpdate(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto active = static_cast<size_t>(state.range(1));
  Rng rng(42);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  std::vector<float> a_prev(n), delta(n), bias(n);
  for (auto& v : a_prev) v = rng.NextGaussian();
  for (auto& v : delta) v = rng.NextGaussian();
  std::vector<uint32_t> cols;
  for (size_t j = 0; j < active; ++j) {
    cols.push_back(static_cast<uint32_t>(rng.NextBounded(n)));
  }
  for (auto _ : state) {
    SparseOuterUpdate(a_prev, delta, cols, 1e-4f, &w, bias);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_SparseOuterUpdate)->Args({1000, 50})->Args({1000, 1000});

}  // namespace
}  // namespace sampnn

BENCHMARK_MAIN();
