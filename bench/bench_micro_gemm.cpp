// Micro benchmarks for the dense and sparse linear-algebra kernels — the
// Θ(n²)-per-layer operations the paper identifies as the training
// bottleneck (§4.1), and the active-set kernels that replace them.
//
// Two modes:
//   (default)  google-benchmark suite over the kernel family.
//   --sweep    packed-vs-scalar GFLOP/s sweep across thread counts
//              (1/2/4/hardware max), written as JSON for
//              scripts/check_gemm_perf.py and the CI perf-smoke job.
//              Flags: --shapes=256,512  --out=results/BENCH_gemm.json

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/tensor/gemm.h"
#include "src/tensor/kernel_config.h"
#include "src/tensor/kernels.h"
#include "src/util/rng.h"

namespace sampnn {
namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(n, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmBatchTimesWeights(benchmark::State& state) {
  // The training-shaped product: (batch x n) * (n x n) at batch 20.
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(20, n, rng);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  Matrix c(20, n);
  for (auto _ : state) {
    Gemm(a, w, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 20 * n * n);
}
BENCHMARK(BM_GemmBatchTimesWeights)->Arg(256)->Arg(1000);

void BM_GemmTransA(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(20, n, rng);
  Matrix b = Matrix::RandomGaussian(20, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    GemmTransA(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransA)->Arg(256)->Arg(1000);

void BM_GemmTransB(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(20, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  Matrix c(20, n);
  for (auto _ : state) {
    GemmTransB(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransB)->Arg(256)->Arg(1000);

void BM_VecMat(benchmark::State& state) {
  // The SGD hot path: (1 x n) * (n x n) + bias.
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  std::vector<float> x(n), bias(n), y(n);
  for (auto& v : x) v = rng.NextGaussian();
  for (auto _ : state) {
    VecMat(x, w, bias, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_VecMat)->Arg(256)->Arg(1000);

void BM_VecMatCols(benchmark::State& state) {
  // The ALSH-approx substitute: only `active` of n columns computed.
  const auto n = static_cast<size_t>(state.range(0));
  const auto active = static_cast<size_t>(state.range(1));
  Rng rng(42);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  std::vector<float> x(n), bias(n), y(n);
  for (auto& v : x) v = rng.NextGaussian();
  std::vector<uint32_t> cols;
  for (size_t j = 0; j < active; ++j) {
    cols.push_back(static_cast<uint32_t>(rng.NextBounded(n)));
  }
  for (auto _ : state) {
    VecMatCols(x, w, bias, cols, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * active * n);
}
BENCHMARK(BM_VecMatCols)
    ->Args({1000, 50})    // the paper's ~5% active set
    ->Args({1000, 100})
    ->Args({1000, 1000});  // degenerate: all columns

void BM_SparseOuterUpdate(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto active = static_cast<size_t>(state.range(1));
  Rng rng(42);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  std::vector<float> a_prev(n), delta(n), bias(n);
  for (auto& v : a_prev) v = rng.NextGaussian();
  for (auto& v : delta) v = rng.NextGaussian();
  std::vector<uint32_t> cols;
  for (size_t j = 0; j < active; ++j) {
    cols.push_back(static_cast<uint32_t>(rng.NextBounded(n)));
  }
  for (auto _ : state) {
    SparseOuterUpdate(a_prev, delta, cols, 1e-4f, &w, bias);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_SparseOuterUpdate)->Args({1000, 50})->Args({1000, 1000});

// ---------------------------------------------------------------------------
// --sweep mode: packed vs seed-scalar GFLOP/s across shapes x thread counts.
// ---------------------------------------------------------------------------

struct SweepRecord {
  std::string op;
  size_t m, k, n, threads;
  std::string variant;  // "packed" or "scalar_seed"
  double gflops;
};

// Times one configured kernel call: one warmup, then enough repetitions to
// accumulate ~200 ms of wall clock (at least 3), reporting the best-rep
// throughput so a scheduler hiccup cannot make the CI floor check flaky.
template <typename Fn>
double MeasureGflops(uint64_t flops_per_call, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // warmup: page in operands, resolve dispatch, grow pack scratch
  double best_secs = 1e300;
  double total = 0.0;
  int reps = 0;
  while ((total < 0.2 || reps < 3) && reps < 50) {
    const auto t0 = Clock::now();
    fn();
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    best_secs = std::min(best_secs, secs);
    total += secs;
    ++reps;
  }
  return static_cast<double>(flops_per_call) / best_secs / 1e9;
}

std::vector<size_t> SweepThreadCounts() {
  const size_t hw = std::max<unsigned>(1, std::thread::hardware_concurrency());
  std::vector<size_t> counts = {1, 2, 4};
  if (hw != 1 && hw != 2 && hw != 4) counts.push_back(hw);
  return counts;
}

void SweepShape(size_t s, std::vector<SweepRecord>* out) {
  Rng rng(20250806);
  Matrix a = Matrix::RandomGaussian(s, s, rng);
  Matrix b = Matrix::RandomGaussian(s, s, rng);
  Matrix c(s, s);
  const uint64_t flops = uint64_t{2} * s * s * s;

  // Seed baseline: the deterministic path is the seed's serial scalar
  // blocked loop, unchanged ordering.
  SetDeterministicKernels(true);
  const double scalar =
      MeasureGflops(flops, [&] { Gemm(a, b, &c, 1.0f, 0.0f); });
  out->push_back({"gemm", s, s, s, 1, "scalar_seed", scalar});
  std::printf("  %4zu^3  scalar_seed          %8.2f GFLOP/s\n", s, scalar);

  SetDeterministicKernels(false);
  SetGemmParallelMinFlops(1);  // always take the requested-thread path
  for (size_t t : SweepThreadCounts()) {
    SetGemmThreads(t);
    const double packed =
        MeasureGflops(flops, [&] { Gemm(a, b, &c, 1.0f, 0.0f); });
    out->push_back({"gemm", s, s, s, t, "packed", packed});
    std::printf("  %4zu^3  packed  %2zu threads  %8.2f GFLOP/s  (%.2fx)\n", s,
                t, packed, packed / scalar);
  }
  SetGemmThreads(0);
  SetGemmParallelMinFlops(0);
}

int RunSweep(const std::vector<std::string>& args) {
  std::vector<size_t> shapes = {256, 512};
  std::string out_path = "results/BENCH_gemm.json";
  for (const auto& arg : args) {
    if (arg.rfind("--shapes=", 0) == 0) {
      shapes.clear();
      std::string list = arg.substr(9);
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        shapes.push_back(std::stoul(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  const bool avx2 = gemm_internal::MicroKernelIsAvx2();
  std::printf("gemm sweep: avx2_fma=%d hardware_concurrency=%u\n", avx2,
              std::thread::hardware_concurrency());
  std::vector<SweepRecord> records;
  for (size_t s : shapes) SweepShape(s, &records);

  const auto parent = std::filesystem::path(out_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  f << "{\n  \"avx2_fma\": " << (avx2 ? "true" : "false")
    << ",\n  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
    << ",\n  \"results\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    f << "    {\"op\": \"" << r.op << "\", \"m\": " << r.m
      << ", \"k\": " << r.k << ", \"n\": " << r.n
      << ", \"threads\": " << r.threads << ", \"variant\": \"" << r.variant
      << "\", \"gflops\": " << r.gflops << "}"
      << (i + 1 < records.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  std::printf("wrote %s (%zu records)\n", out_path.c_str(), records.size());
  return 0;
}

}  // namespace
}  // namespace sampnn

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--sweep") return sampnn::RunSweep(args);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
