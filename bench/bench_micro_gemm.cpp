// Micro benchmarks for the dense and sparse linear-algebra kernels — the
// Θ(n²)-per-layer operations the paper identifies as the training
// bottleneck (§4.1), and the active-set kernels that replace them.
//
// Two modes:
//   (default)  google-benchmark suite over the kernel family.
//   --sweep    packed-vs-scalar GFLOP/s sweep across thread counts
//              (1/2/4/hardware max), written as JSON for
//              scripts/check_gemm_perf.py and the CI perf-smoke job.
//              Flags: --shapes=256,1024,64x1024x1024  (square sizes or
//                     MxKxN triples)  --threads=1,2,4
//                     --out=results/BENCH_gemm.json
//              The JSON records the active Mc/Kc/Nc blocking and, per
//              packed record, both the requested thread count and the
//              clamped effective worker count (GemmEffectiveWorkers).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/tensor/gemm.h"
#include "src/tensor/kernel_config.h"
#include "src/tensor/kernels.h"
#include "src/util/rng.h"

namespace sampnn {
namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(n, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmBatchTimesWeights(benchmark::State& state) {
  // The training-shaped product: (batch x n) * (n x n) at batch 20.
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(20, n, rng);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  Matrix c(20, n);
  for (auto _ : state) {
    Gemm(a, w, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 20 * n * n);
}
BENCHMARK(BM_GemmBatchTimesWeights)->Arg(256)->Arg(1000);

void BM_GemmTransA(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(20, n, rng);
  Matrix b = Matrix::RandomGaussian(20, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    GemmTransA(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransA)->Arg(256)->Arg(1000);

void BM_GemmTransB(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(20, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  Matrix c(20, n);
  for (auto _ : state) {
    GemmTransB(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransB)->Arg(256)->Arg(1000);

void BM_VecMat(benchmark::State& state) {
  // The SGD hot path: (1 x n) * (n x n) + bias.
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  std::vector<float> x(n), bias(n), y(n);
  for (auto& v : x) v = rng.NextGaussian();
  for (auto _ : state) {
    VecMat(x, w, bias, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_VecMat)->Arg(256)->Arg(1000);

void BM_VecMatCols(benchmark::State& state) {
  // The ALSH-approx substitute: only `active` of n columns computed.
  const auto n = static_cast<size_t>(state.range(0));
  const auto active = static_cast<size_t>(state.range(1));
  Rng rng(42);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  std::vector<float> x(n), bias(n), y(n);
  for (auto& v : x) v = rng.NextGaussian();
  std::vector<uint32_t> cols;
  for (size_t j = 0; j < active; ++j) {
    cols.push_back(static_cast<uint32_t>(rng.NextBounded(n)));
  }
  for (auto _ : state) {
    VecMatCols(x, w, bias, cols, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * active * n);
}
BENCHMARK(BM_VecMatCols)
    ->Args({1000, 50})    // the paper's ~5% active set
    ->Args({1000, 100})
    ->Args({1000, 1000});  // degenerate: all columns

void BM_SparseOuterUpdate(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto active = static_cast<size_t>(state.range(1));
  Rng rng(42);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  std::vector<float> a_prev(n), delta(n), bias(n);
  for (auto& v : a_prev) v = rng.NextGaussian();
  for (auto& v : delta) v = rng.NextGaussian();
  std::vector<uint32_t> cols;
  for (size_t j = 0; j < active; ++j) {
    cols.push_back(static_cast<uint32_t>(rng.NextBounded(n)));
  }
  for (auto _ : state) {
    SparseOuterUpdate(a_prev, delta, cols, 1e-4f, &w, bias);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_SparseOuterUpdate)->Args({1000, 50})->Args({1000, 1000});

// ---------------------------------------------------------------------------
// --sweep mode: packed vs seed-scalar GFLOP/s across shapes x thread counts.
// ---------------------------------------------------------------------------

struct SweepShapeSpec {
  size_t m, k, n;
};

struct SweepRecord {
  std::string op;
  size_t m, k, n, threads, workers;
  std::string variant;  // "packed" or "scalar_seed"
  double gflops;
};

// Times one configured kernel call: one warmup, then enough repetitions to
// accumulate ~200 ms of wall clock (at least 3), reporting the best-rep
// throughput so a scheduler hiccup cannot make the CI floor check flaky.
template <typename Fn>
double MeasureGflops(uint64_t flops_per_call, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // warmup: page in operands, resolve dispatch, grow pack scratch
  double best_secs = 1e300;
  double total = 0.0;
  int reps = 0;
  while ((total < 0.2 || reps < 3) && reps < 50) {
    const auto t0 = Clock::now();
    fn();
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    best_secs = std::min(best_secs, secs);
    total += secs;
    ++reps;
  }
  return static_cast<double>(flops_per_call) / best_secs / 1e9;
}

std::vector<size_t> DefaultThreadCounts() {
  const size_t hw = std::max<unsigned>(1, std::thread::hardware_concurrency());
  std::vector<size_t> counts = {1, 2, 4};
  if (hw != 1 && hw != 2 && hw != 4) counts.push_back(hw);
  return counts;
}

void SweepShape(const SweepShapeSpec& s, const std::vector<size_t>& threads,
                std::vector<SweepRecord>* out) {
  Rng rng(20250806);
  Matrix a = Matrix::RandomGaussian(s.m, s.k, rng);
  Matrix b = Matrix::RandomGaussian(s.k, s.n, rng);
  Matrix c(s.m, s.n);
  const uint64_t flops = uint64_t{2} * s.m * s.k * s.n;
  char shape[64];
  std::snprintf(shape, sizeof(shape), "%zux%zux%zu", s.m, s.k, s.n);

  // Seed baseline: the deterministic path is the seed's serial scalar
  // blocked loop, unchanged ordering.
  SetDeterministicKernels(true);
  const double scalar =
      MeasureGflops(flops, [&] { Gemm(a, b, &c, 1.0f, 0.0f); });
  out->push_back({"gemm", s.m, s.k, s.n, 1, 1, "scalar_seed", scalar});
  std::printf("  %-16s scalar_seed            %8.2f GFLOP/s\n", shape, scalar);

  SetDeterministicKernels(false);
  SetGemmParallelMinFlops(1);  // always take the requested-thread path
  for (size_t t : threads) {
    SetGemmThreads(t);
    const size_t workers = GemmEffectiveWorkers(t);
    const double packed =
        MeasureGflops(flops, [&] { Gemm(a, b, &c, 1.0f, 0.0f); });
    out->push_back({"gemm", s.m, s.k, s.n, t, workers, "packed", packed});
    std::printf("  %-16s packed  %2zut (eff %2zu)  %8.2f GFLOP/s  (%.2fx)\n",
                shape, t, workers, packed, packed / scalar);
  }
  SetGemmThreads(0);
  SetGemmParallelMinFlops(0);
}

std::vector<size_t> ParseSizeList(const std::string& list) {
  std::vector<size_t> vals;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    vals.push_back(std::stoul(list.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return vals;
}

// A shape is either a square size ("512") or an MxKxN triple
// ("64x1024x1024") — the latter covers the non-square MLP products
// (batch x fan-in times fan-in x fan-out and its transposes).
SweepShapeSpec ParseShape(const std::string& spec) {
  const size_t x1 = spec.find('x');
  if (x1 == std::string::npos) {
    const size_t s = std::stoul(spec);
    return {s, s, s};
  }
  const size_t x2 = spec.find('x', x1 + 1);
  if (x2 == std::string::npos) {
    std::fprintf(stderr, "bad shape '%s' (want S or MxKxN)\n", spec.c_str());
    std::exit(1);
  }
  return {std::stoul(spec.substr(0, x1)),
          std::stoul(spec.substr(x1 + 1, x2 - x1 - 1)),
          std::stoul(spec.substr(x2 + 1))};
}

int RunSweep(const std::vector<std::string>& args) {
  // Defaults cover the cache-blocking regimes (L2-resident 256, streaming
  // 512/1024) and the tall/flat MLP shapes with one Mc block or one column
  // chunk dimension dominating.
  std::vector<SweepShapeSpec> shapes = {{256, 256, 256},
                                        {512, 512, 512},
                                        {1024, 1024, 1024},
                                        {64, 1024, 1024},
                                        {1024, 1024, 64}};
  std::vector<size_t> threads = DefaultThreadCounts();
  std::string out_path = "results/BENCH_gemm.json";
  for (const auto& arg : args) {
    if (arg.rfind("--shapes=", 0) == 0) {
      shapes.clear();
      std::string list = arg.substr(9);
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        shapes.push_back(ParseShape(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = ParseSizeList(arg.substr(10));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  const bool avx2 = gemm_internal::MicroKernelIsAvx2();
  const GemmBlocking blk = GemmBlockSizes();
  std::printf(
      "gemm sweep: avx2_fma=%d hardware_concurrency=%u "
      "block mc=%zu kc=%zu nc=%zu\n",
      avx2, std::thread::hardware_concurrency(), blk.mc, blk.kc, blk.nc);
  std::vector<SweepRecord> records;
  for (const auto& s : shapes) SweepShape(s, threads, &records);

  const auto parent = std::filesystem::path(out_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  f << "{\n  \"avx2_fma\": " << (avx2 ? "true" : "false")
    << ",\n  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
    << ",\n  \"block\": {\"mc\": " << blk.mc << ", \"kc\": " << blk.kc
    << ", \"nc\": " << blk.nc << "}"
    << ",\n  \"results\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    f << "    {\"op\": \"" << r.op << "\", \"m\": " << r.m
      << ", \"k\": " << r.k << ", \"n\": " << r.n
      << ", \"threads\": " << r.threads << ", \"workers\": " << r.workers
      << ", \"variant\": \"" << r.variant
      << "\", \"gflops\": " << r.gflops << "}"
      << (i + 1 < records.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  std::printf("wrote %s (%zu records)\n", out_path.c_str(), records.size());
  return 0;
}

}  // namespace
}  // namespace sampnn

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--sweep") return sampnn::RunSweep(args);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
