// Figure 8 reproduction: training time per epoch vs number of hidden
// layers for MC-approx^M, ALSH-approx, Standard^S, and Standard^M.
//
// Expected shape (paper Fig. 8 / §9.2): every method grows with depth;
// ALSH's growth is steeper than the others' on one core (hashing + rebuild
// at every layer); MC^M is fastest for shallow nets with the advantage
// shrinking as depth grows.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/csv.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_fig8_time_vs_depth");
  AddCommonFlags(&flags);
  flags.AddInt("max-depth", 7, "deepest network");
  flags.AddInt("epochs", 1, "epochs to average over");
  flags.AddString("dataset", "mnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Figure 8: training time vs hidden layers", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto max_depth = static_cast<size_t>(flags.GetInt("max-depth"));
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));

  struct Config {
    TrainerKind kind;
    size_t batch;
  };
  const Config configs[] = {
      {TrainerKind::kMc, 20},
      {TrainerKind::kAlsh, 1},
      {TrainerKind::kStandard, 1},
      {TrainerKind::kStandard, 20},
  };

  std::vector<std::string> cols{"Method"};
  for (size_t d = 1; d <= max_depth; ++d) {
    cols.push_back("d=" + std::to_string(d));
  }
  TableReporter table("Figure 8: seconds per epoch vs depth", cols);
  auto csv = std::move(CsvWriter::Open(CsvPath(flags, "fig8_time_depth")))
                 .ValueOrDie("csv");
  csv.WriteHeader({"method", "depth", "seconds_per_epoch"});

  for (const Config& c : configs) {
    std::vector<std::string> row{PaperName(c.kind, c.batch)};
    for (size_t depth = 1; depth <= max_depth; ++depth) {
      std::fprintf(stderr, "-- %s depth %zu\n",
                   PaperName(c.kind, c.batch).c_str(), depth);
      ExperimentResult result =
          RunPaperExperiment(data, c.kind, depth, c.batch, epochs, flags);
      const double per_epoch = result.train_seconds / epochs;
      row.push_back(TableReporter::Cell(per_epoch, 3));
      csv.WriteRow({PaperName(c.kind, c.batch), std::to_string(depth),
                    CsvWriter::Num(per_epoch)});
    }
    table.AddRow(std::move(row));
  }
  csv.Close().Abort("csv close");
  table.Print();
  std::printf("\nExpected shape: single-core ALSH grows fastest with depth; "
              "MC^M stays below Standard^M for shallow nets (§9.2).\n");
  return 0;
}
