// §8.4 convolutional setting reproduction: a convolutional feature
// extractor trained exactly with a two-FC-layer classifier on CIFAR-like
// data, comparing exact vs MC-approximated vs Dropout-masked classifier
// training (pure SGD, per the paper's CIFAR-10 configuration).
//
// Expected shape: the conv model beats the pure-MLP Table 2 numbers on the
// CIFAR-like benchmark; MC tracks exact closely (the approximation touches
// only the classifier); aggressive Dropout trails.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/cnn/conv_classifier.h"
#include "src/data/batcher.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_conv_classifier");
  AddCommonFlags(&flags);
  flags.AddInt("epochs", 15, "training epochs");
  flags.AddInt("batch", 20, "minibatch size");
  flags.AddInt("stem-channels", 12, "conv stem channels");
  flags.AddInt("blocks", 2, "residual blocks");
  flags.AddString("dataset", "cifar10", "benchmark dataset (image-shaped)");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("§8.4 convolutional setting: exact conv + approximated classifier",
         flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto spec =
      std::move(GetBenchmarkSpec(flags.GetString("dataset"))).ValueOrDie("spec");
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const auto batch = static_cast<size_t>(flags.GetInt("batch"));

  const ClassifierMode modes[] = {ClassifierMode::kExact, ClassifierMode::kMc,
                                  ClassifierMode::kDropout};
  const char* names[] = {"Standard (exact)", "MC-approx", "Dropout p=0.05"};
  TableReporter table(
      "Conv + 2-FC classifier on " + flags.GetString("dataset"),
      {"classifier training", "test acc %", "train s", "conv fwd s",
       "conv bwd s", "clf fwd s", "clf bwd s"});
  for (size_t m = 0; m < 3; ++m) {
    std::fprintf(stderr, "-- %s\n", names[m]);
    ConvClassifierConfig cfg;
    cfg.features.input = {spec.synthetic.channels, spec.synthetic.image_height,
                          spec.synthetic.image_width};
    cfg.features.stem_channels =
        static_cast<size_t>(flags.GetInt("stem-channels"));
    cfg.features.num_blocks = static_cast<size_t>(flags.GetInt("blocks"));
    cfg.features.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    cfg.hidden = static_cast<size_t>(flags.GetInt("hidden"));
    cfg.num_classes = data.train.num_classes();
    cfg.mode = modes[m];
    cfg.learning_rate = 0.01f;  // pure SGD (§8.4, CIFAR-10)
    cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    auto model = std::move(ConvClassifier::Create(cfg)).ValueOrDie("model");

    Batcher batcher(data.train, batch, 7);
    Matrix x;
    std::vector<int32_t> y;
    Stopwatch watch;
    for (size_t e = 0; e < epochs; ++e) {
      while (batcher.Next(&x, &y)) {
        std::move(model.Step(x, y)).ValueOrDie("step");
      }
      if (flags.GetBool("verbose")) {
        std::fprintf(stderr, "   epoch %zu: %.2f%%\n", e + 1,
                     100.0 * model.Evaluate(data.test));
      }
    }
    const double train_s = watch.Elapsed();
    table.AddRow({names[m],
                  TableReporter::Cell(100.0 * model.Evaluate(data.test)),
                  TableReporter::Cell(train_s),
                  TableReporter::Cell(model.timer().Seconds("conv_forward")),
                  TableReporter::Cell(model.timer().Seconds("conv_backward")),
                  TableReporter::Cell(model.timer().Seconds(kPhaseForward)),
                  TableReporter::Cell(model.timer().Seconds(kPhaseBackward))});
  }
  table.Print();
  table.WriteCsv(CsvPath(flags, "conv_classifier")).Abort("csv");
  std::printf("\nExpected shape: conv features lift CIFAR-like accuracy well "
              "above the pure-MLP Table 2 row; MC tracks exact (only the "
              "classifier is approximated, §8.4).\n");
  return 0;
}
