// Figure 12 reproduction: MC-approx^S (batch = 1, the §9.3 reduced lr) vs
// network depth, against Standard^S — the evidence that MC-approx does not
// scale in the stochastic setting.
//
// Expected shape (paper Fig. 12): the gap between MC^S and Standard^S
// widens with depth — singleton-column probability estimates compound
// across layers just as the sampling reliability argument predicts.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/csv.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_fig12_mcs_depth");
  AddCommonFlags(&flags);
  flags.AddInt("max-depth", 5, "deepest network");
  flags.AddInt("epochs", 6, "training epochs");
  // kmnist: deep MC^S degradation needs a dataset with small margins; the
  // MNIST-like substitute is saturated by both methods at reduced scale.
  flags.AddString("dataset", "kmnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Figure 12: MC-approx^S vs depth (stochastic setting)", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto max_depth = static_cast<size_t>(flags.GetInt("max-depth"));
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));

  TableReporter table(
      "Figure 12: test accuracy (%) and time vs depth, batch = 1",
      {"depth", "MC^S acc", "Standard^S acc", "MC^S s/epoch",
       "Standard^S s/epoch"});
  auto csv = std::move(CsvWriter::Open(CsvPath(flags, "fig12_mcs_depth")))
                 .ValueOrDie("csv");
  csv.WriteHeader(
      {"depth", "method", "test_accuracy", "seconds_per_epoch"});
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));
  for (size_t depth = 1; depth <= max_depth; ++depth) {
    std::fprintf(stderr, "-- depth %zu\n", depth);
    // Paper-faithful MC^S: the §9.2 sampling ratio p ~ 0.1 with NO absolute
    // sample floor — Figure 12 probes exactly the regime where per-layer
    // sampling noise compounds with depth, which the library's
    // delta_min_samples default (a reduced-width adaptation) would mask.
    const MlpConfig net = PaperMlpConfig(
        data.train, depth, static_cast<size_t>(flags.GetInt("hidden")), seed);
    ExperimentConfig mc_config;
    mc_config.trainer = PaperTrainerOptions(TrainerKind::kMc, 1, seed);
    mc_config.trainer.mc.delta_min_samples = 1;
    mc_config.batch_size = 1;
    mc_config.epochs = epochs;
    mc_config.eval_each_epoch = false;
    mc_config.verbose = flags.GetBool("verbose");
    ExperimentResult mc =
        std::move(RunExperiment(net, mc_config, data)).ValueOrDie("mc^s");
    ExperimentResult standard = RunPaperExperiment(
        data, TrainerKind::kStandard, depth, /*batch=*/1, epochs, flags);
    table.AddRow(
        {std::to_string(depth),
         TableReporter::Cell(100.0 * mc.final_test_accuracy, 1),
         TableReporter::Cell(100.0 * standard.final_test_accuracy, 1),
         TableReporter::Cell(mc.train_seconds / epochs, 3),
         TableReporter::Cell(standard.train_seconds / epochs, 3)});
    csv.WriteRow({std::to_string(depth), "mc_s",
                  CsvWriter::Num(mc.final_test_accuracy),
                  CsvWriter::Num(mc.train_seconds / epochs)});
    csv.WriteRow({std::to_string(depth), "standard_s",
                  CsvWriter::Num(standard.final_test_accuracy),
                  CsvWriter::Num(standard.train_seconds / epochs)});
  }
  csv.Close().Abort("csv close");
  table.Print();
  std::printf("\nExpected shape: MC^S trails Standard^S increasingly with "
              "depth and is slower per epoch at batch 1 (§9.3, Fig. 12).\n");
  return 0;
}
