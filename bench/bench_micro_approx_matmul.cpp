// Micro benchmarks for the Monte-Carlo matmul estimators (§6): exact gemm
// vs Drineas CR sampling vs Adelman Bernoulli sampling, plus the
// probability-estimation overhead in isolation (the cost that makes
// MC-approx^S slower than exact training at batch 1, §9.3).

#include <benchmark/benchmark.h>

#include "src/approx/adelman.h"
#include "src/approx/drineas.h"
#include "src/tensor/kernels.h"
#include "src/util/rng.h"

namespace sampnn {
namespace {

void BM_ExactMatmul(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(20, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  Matrix c(20, n);
  for (auto _ : state) {
    Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_ExactMatmul)->Arg(256)->Arg(1000);

void BM_DrineasMatmul(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto k = static_cast<size_t>(state.range(1));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(20, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  Matrix c;
  for (auto _ : state) {
    DrineasApproxMatmul(a, b, k, rng, &c).Abort("drineas");
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_DrineasMatmul)->Args({1000, 100})->Args({1000, 10});

void BM_AdelmanMatmul(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto k = static_cast<size_t>(state.range(1));
  Rng rng(42);
  Matrix a = Matrix::RandomGaussian(20, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  Matrix c;
  for (auto _ : state) {
    AdelmanApproxMatmul(a, b, k, rng, &c).Abort("adelman");
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_AdelmanMatmul)->Args({1000, 100})->Args({1000, 10});

void BM_AdelmanGradProduct(benchmark::State& state) {
  // The MC-approx weight-gradient product X^T * delta sampled over the
  // batch dimension (k = 10 of batch 20, the paper's setting).
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix x = Matrix::RandomGaussian(20, n, rng);
  Matrix delta = Matrix::RandomGaussian(20, n, rng);
  Matrix c;
  for (auto _ : state) {
    AdelmanApproxGemmTransA(x, delta, 10, rng, &c).Abort("transA");
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_AdelmanGradProduct)->Arg(256)->Arg(1000);

void BM_AdelmanDeltaProduct(benchmark::State& state) {
  // delta * W^T sampled over the node dimension at the §9.2 ratio p ~ 0.1.
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Matrix delta = Matrix::RandomGaussian(20, n, rng);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  Matrix c;
  for (auto _ : state) {
    AdelmanApproxGemmTransB(delta, w, n / 10, rng, &c).Abort("transB");
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_AdelmanDeltaProduct)->Arg(256)->Arg(1000);

void BM_ProbabilityEstimationOverhead(benchmark::State& state) {
  // Just the score pass (norms of the batch columns and W rows) — the
  // per-step overhead that dominates at batch 1.
  const auto n = static_cast<size_t>(state.range(0));
  const auto batch = static_cast<size_t>(state.range(1));
  Rng rng(42);
  Matrix x = Matrix::RandomGaussian(batch, n, rng);
  Matrix w = Matrix::RandomGaussian(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AdelmanScores(x, w));
  }
}
BENCHMARK(BM_ProbabilityEstimationOverhead)
    ->Args({1000, 20})
    ->Args({1000, 1});

}  // namespace
}  // namespace sampnn

BENCHMARK_MAIN();
