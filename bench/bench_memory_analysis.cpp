// §9.4 memory analysis reproduction: RSS growth during training per method
// plus the analytic per-step working-set model (our documented substitute
// for the paper's hardware cache profiling; see DESIGN.md).
//
// Expected shape (§9.4): ALSH carries the hash-table setup cost; MC touches
// the fewest bytes per step (the paper's "roughly 24%/27% more cache misses
// with Dropout/Adaptive-Dropout compared to MC-approx").

#include <cstdio>

#include "bench/bench_common.h"
#include "src/metrics/memory_tracker.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_memory_analysis");
  AddCommonFlags(&flags);
  flags.AddInt("epochs", 2, "training epochs");
  flags.AddString("dataset", "mnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("§9.4: memory analysis", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const MlpConfig net_config = PaperMlpConfig(
      data.train, 3, static_cast<size_t>(flags.GetInt("hidden")), seed);

  struct Config {
    TrainerKind kind;
    size_t batch;
    double active_fraction;
  };
  const Config configs[] = {
      {TrainerKind::kStandard, 20, 1.0}, {TrainerKind::kDropout, 20, 0.05},
      {TrainerKind::kAdaptiveDropout, 20, 0.05}, {TrainerKind::kAlsh, 1, 0.1},
      {TrainerKind::kMc, 20, 0.1},
  };

  // Working-set baseline: MC, to report the paper's relative numbers.
  Mlp probe_net = std::move(Mlp::Create(net_config)).ValueOrDie("net");
  const size_t mc_ws =
      std::move(EstimateWorkingSet(probe_net, "mc", 20, 0.1))
          .ValueOrDie("ws")
          .total();

  TableReporter table(
      "§9.4: memory behaviour per method (3 hidden layers)",
      {"Method", "RSS growth", "working set/step", "vs MC-approx"});
  for (const Config& c : configs) {
    std::fprintf(stderr, "-- %s\n", PaperName(c.kind, c.batch).c_str());
    MemoryTracker tracker;
    ExperimentResult result =
        RunPaperExperiment(data, c.kind, /*depth=*/3, c.batch, epochs, flags);
    const auto ws = std::move(EstimateWorkingSet(
                                  probe_net, TrainerKindToString(c.kind),
                                  c.batch, c.active_fraction))
                        .ValueOrDie("ws");
    const double rel =
        mc_ws > 0 ? static_cast<double>(ws.total()) / mc_ws : 0.0;
    table.AddRow({PaperName(c.kind, c.batch),
                  FormatBytes(result.rss_growth_bytes),
                  FormatBytes(ws.total()),
                  TableReporter::Cell(rel, 2) + "x"});
  }
  table.Print();
  table.WriteCsv(CsvPath(flags, "memory_analysis")).Abort("csv");
  std::printf("\nExpected shape (§9.4): the dropout pair touches the most "
              "bytes per step (full dense products + masks), MC the fewest; "
              "ALSH adds hash-table state on top of its sparse updates.\n"
              "(Hardware cache-miss profiling is substituted by the "
              "working-set model; see DESIGN.md.)\n");
  return 0;
}
