// Ablation of the ALSH hash-table reconstruction schedule (§9.2: "for the
// first 10000 training data points, we reconstruct hash tables every 100
// images. Then ... every 1000"). Compares: never rebuild, the paper
// schedule, and rebuild-every-step equivalents.
//
// Expected shape: never rebuilding is fastest but degrades accuracy (stale
// tables stop matching the drifting weights); rebuilding every sample is
// accurate but pays heavy reconstruction time; the paper schedule sits
// between — which is exactly why the paper uses it.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/alsh_trainer.h"
#include "src/data/batcher.h"
#include "src/metrics/accuracy.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_ablation_hash_rebuild");
  AddCommonFlags(&flags);
  flags.AddInt("epochs", 4, "training epochs");
  flags.AddString("dataset", "mnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Ablation: ALSH hash-table rebuild schedule", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const MlpConfig net_config = PaperMlpConfig(
      data.train, 3, static_cast<size_t>(flags.GetInt("hidden")), seed);

  struct Schedule {
    const char* name;
    size_t early_every;
    size_t early_phase;
    size_t late_every;
  };
  const Schedule schedules[] = {
      {"never", SIZE_MAX / 2, 0, SIZE_MAX / 2},
      {"paper (100 then 1000)", 100, 10000, 1000},
      {"every 10 samples", 10, SIZE_MAX / 2, 10},
      {"every sample", 1, SIZE_MAX / 2, 1},
  };
  TableReporter table(
      "ALSH rebuild-schedule ablation (3 hidden layers, batch=1)",
      {"schedule", "rebuilds", "rebuild s", "total s", "test acc %"});
  for (const Schedule& s : schedules) {
    std::fprintf(stderr, "-- %s\n", s.name);
    TrainerOptions options = PaperTrainerOptions(TrainerKind::kAlsh, 1, seed);
    options.alsh.early_rebuild_every = s.early_every;
    options.alsh.early_phase_samples = s.early_phase;
    options.alsh.late_rebuild_every = s.late_every;
    Mlp net = std::move(Mlp::Create(net_config)).ValueOrDie("net");
    auto trainer =
        std::move(AlshTrainer::Create(std::move(net), options.alsh,
                                      options.learning_rate, seed))
            .ValueOrDie("trainer");
    Batcher batcher(data.train, 1, 7);
    Matrix x;
    std::vector<int32_t> y;
    Stopwatch watch;
    for (size_t e = 0; e < epochs; ++e) {
      while (batcher.Next(&x, &y)) {
        std::move(trainer->Step(x, y)).ValueOrDie("step");
      }
    }
    table.AddRow(
        {s.name, std::to_string(trainer->TotalRebuilds()),
         TableReporter::Cell(trainer->timer().Seconds(kPhaseHashRebuild), 3),
         TableReporter::Cell(watch.Elapsed(), 3),
         TableReporter::Cell(
             100.0 * EvaluateAccuracy(trainer->net(), data.test), 1)});
  }
  table.Print();
  table.WriteCsv(CsvPath(flags, "ablation_hash_rebuild")).Abort("csv");
  return 0;
}
