// Figure 10 reproduction: MC-approx accuracy vs mini-batch size at a FIXED
// learning rate (1e-3). The paper reports accuracy dropping from 98% to 64%
// as the batch shrinks, because the Eq. 7 probability estimates degrade
// when computed from few samples.
//
// Expected shape: accuracy decreasing as batch -> 1 at fixed lr; the
// companion row shows the §9.3 fix (lr 1e-4 for batch 1) recovering much of
// the loss.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/csv.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_fig10_batchsize_accuracy");
  AddCommonFlags(&flags);
  flags.AddInt("epochs", 10, "training epochs");
  // kmnist by default: the small-batch instability that Figure 10 shows
  // needs a dataset hard enough that noisy probability estimates matter
  // (the MNIST-like substitute is too easy to expose it at reduced scale).
  flags.AddString("dataset", "kmnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Figure 10: MC-approx accuracy vs batch size (fixed lr)", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const size_t batches[] = {1, 2, 5, 10, 20, 50, 100};

  TableReporter table("Figure 10: MC-approx test accuracy (%) vs batch size",
                      {"batch", "fixed lr 1e-3", "tuned lr (1e-4 at batch 1)"});
  auto csv = std::move(CsvWriter::Open(CsvPath(flags, "fig10_batch_acc")))
                 .ValueOrDie("csv");
  csv.WriteHeader({"batch", "lr", "test_accuracy"});

  for (size_t batch : batches) {
    std::fprintf(stderr, "-- batch %zu\n", batch);
    const MlpConfig net = PaperMlpConfig(
        data.train, 3, static_cast<size_t>(flags.GetInt("hidden")), seed);
    // Fixed lr 1e-3 regardless of batch (the Figure 10 setting).
    ExperimentConfig fixed;
    fixed.trainer = PaperTrainerOptions(TrainerKind::kMc, /*batch=*/20, seed);
    fixed.trainer.learning_rate = 1e-3f;
    fixed.batch_size = batch;
    fixed.epochs = epochs;
    fixed.eval_each_epoch = false;
    auto fixed_result =
        std::move(RunExperiment(net, fixed, data)).ValueOrDie("fixed");

    // Paper-tuned lr (1e-4 in the stochastic setting, §9.3).
    ExperimentConfig tuned = fixed;
    tuned.trainer = PaperTrainerOptions(TrainerKind::kMc, batch, seed);
    auto tuned_result =
        std::move(RunExperiment(net, tuned, data)).ValueOrDie("tuned");

    table.AddRow(
        {std::to_string(batch),
         TableReporter::Cell(100.0 * fixed_result.final_test_accuracy, 1),
         TableReporter::Cell(100.0 * tuned_result.final_test_accuracy, 1)});
    csv.WriteRow({std::to_string(batch), "1e-3",
                  CsvWriter::Num(fixed_result.final_test_accuracy)});
    csv.WriteRow({std::to_string(batch), "tuned",
                  CsvWriter::Num(tuned_result.final_test_accuracy)});
  }
  csv.Close().Abort("csv close");
  table.Print();
  std::printf("\nPaper reference (Fig. 10): accuracy drops from ~98%% to "
              "~64%% as the batch shrinks to 1 at the same lr.\n");
  return 0;
}
