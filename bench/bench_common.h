// Shared plumbing for the paper-reproduction bench harness.
//
// Every bench binary reproduces one table or figure from the paper. The
// harness runs at a reduced default scale so the full suite completes in
// minutes; pass --scale=1 (or SAMPNN_SCALE=1) and paper-sized --hidden /
// --epochs to run at publication scale. Trends (method ordering, depth
// collapse, batch-size crossovers) are preserved across scales; absolute
// numbers are hardware-dependent and not expected to match the paper's
// i9-9920X (see EXPERIMENTS.md).

#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "src/core/experiment.h"
#include "src/data/synthetic.h"
#include "src/metrics/reporter.h"
#include "src/telemetry/epoch_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"
#include "src/util/env.h"
#include "src/util/flags.h"

namespace sampnn::bench {

/// Common flags shared by experiment benches.
inline void AddCommonFlags(Flags* flags) {
  flags->AddInt("scale", GetEnvIntOr("SAMPNN_SCALE", 100),
                "dataset downscale factor (1 = paper scale); env SAMPNN_SCALE");
  flags->AddInt("hidden", GetEnvIntOr("SAMPNN_HIDDEN", 128),
                "hidden units per layer (paper: 1000); env SAMPNN_HIDDEN");
  flags->AddInt("seed", 42, "experiment seed");
  flags->AddString("out", "",
                   "CSV output path ('' = results/<bench>.csv)");
  flags->AddBool("verbose", false, "per-epoch progress on stderr");
  flags->AddBool("telemetry", GetEnvIntOr("SAMPNN_TELEMETRY", 0) != 0,
                 "dump results/<bench>.trace.json + .telemetry.jsonl; "
                 "env SAMPNN_TELEMETRY=1");
}

/// Enables telemetry when requested (--telemetry / SAMPNN_TELEMETRY=1):
/// installs a process-global JSONL recorder and registers an exit hook that
/// flushes results/<program>.telemetry.jsonl and dumps the span ring to
/// results/<program>.trace.json (chrome://tracing / Perfetto format). Called
/// from Banner(), so individual benches need no telemetry code. Idempotent;
/// a no-op when the flag is off, so disabled runs stay on the
/// TelemetryEnabled() == false fast path throughout.
inline void InitTelemetry(const Flags& flags) {
  if (!flags.GetBool("telemetry")) return;
  static std::unique_ptr<EpochRecorder> recorder;
  static std::string trace_path;
  if (recorder != nullptr) return;
  std::error_code ec;
  std::filesystem::create_directories("results", ec);  // best-effort
  const std::string base = "results/" + flags.program();
  recorder = std::make_unique<EpochRecorder>(
      std::move(MakeSink(base + ".telemetry.jsonl"))
          .ValueOrDie("telemetry sink"));
  recorder->SetRunLabel(flags.program());
  SetGlobalEpochRecorder(recorder.get());
  trace_path = base + ".trace.json";
  SetTelemetryEnabled(true);
  std::atexit([] {
    recorder->Flush().Abort("telemetry flush");
    TraceRecorder::Get().WriteChromeTrace(trace_path).Abort("trace dump");
  });
}

/// Parses flags, handling --help; aborts on error. Returns false on --help.
inline bool ParseOrHelp(Flags* flags, int argc, char** argv) {
  Status st = flags->Parse(argc, argv);
  if (st.IsFailedPrecondition()) return false;
  st.Abort("flags");
  return true;
}

/// CSV path for a bench: --out if set, else "results/<name>.csv". The
/// results/ convention keeps bench outputs tracked in one place (loose
/// CSVs elsewhere are gitignored).
inline std::string CsvPath(const Flags& flags, const std::string& name) {
  const std::string out = flags.GetString("out");
  if (!out.empty()) return out;
  std::error_code ec;
  std::filesystem::create_directories("results", ec);  // best-effort
  return "results/" + name + ".csv";
}

/// Loads a benchmark dataset at the configured scale; aborts on error.
inline DatasetSplits LoadData(const std::string& dataset, const Flags& flags) {
  return std::move(GenerateBenchmark(
                       dataset, 7,
                       static_cast<size_t>(flags.GetInt("scale"))))
      .ValueOrDie("generate " + dataset);
}

/// Runs one experiment with paper defaults for `kind`; aborts on error.
inline ExperimentResult RunPaperExperiment(const DatasetSplits& data,
                                           TrainerKind kind, size_t depth,
                                           size_t batch, size_t epochs,
                                           const Flags& flags,
                                           bool eval_each_epoch = false) {
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const MlpConfig net = PaperMlpConfig(
      data.train, depth, static_cast<size_t>(flags.GetInt("hidden")), seed);
  ExperimentConfig config;
  config.trainer = PaperTrainerOptions(kind, batch, seed);
  config.batch_size = batch;
  config.epochs = epochs;
  config.eval_each_epoch = eval_each_epoch;
  config.verbose = flags.GetBool("verbose");
  return std::move(RunExperiment(net, config, data))
      .ValueOrDie(std::string("experiment ") + TrainerKindToString(kind));
}

/// Prints the standard bench banner and initializes telemetry output.
///
/// Timing-overhead note (micro-benchmarked in bench_micro_telemetry):
/// SplitTimer::Scope with interned const char* labels costs two steady_clock
/// reads plus a <= 6-entry pointer-compare scan (tens of ns); the previous
/// std::string + std::map implementation allocated per scope, which at
/// batch 1 was a measurable fraction of a small layer's step. With telemetry
/// disabled the extra PhaseScope span is a single relaxed atomic load.
inline void Banner(const std::string& artifact, const Flags& flags) {
  InitTelemetry(flags);
  std::printf("[sampnn bench] %s | scale=%lld hidden=%lld (paper: scale=1 "
              "hidden=1000)\n",
              artifact.c_str(), flags.GetInt("scale"), flags.GetInt("hidden"));
}

/// Display name used in the paper: method + setting superscript.
inline std::string PaperName(TrainerKind kind, size_t batch) {
  std::string name;
  switch (kind) {
    case TrainerKind::kStandard:
      name = "Standard";
      break;
    case TrainerKind::kDropout:
      name = "Dropout";
      break;
    case TrainerKind::kAdaptiveDropout:
      name = "Adaptive-Dropout";
      break;
    case TrainerKind::kAlsh:
      return "ALSH-approx";  // per-sample by construction; no superscript
    case TrainerKind::kMc:
      name = "MC-approx";
      break;
  }
  return name + (batch <= 1 ? "^S" : "^M");
}

}  // namespace sampnn::bench
