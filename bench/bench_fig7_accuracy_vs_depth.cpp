// Figure 7 reproduction: test accuracy vs number of hidden layers (1..7,
// optionally 10 and 20 for MC^M as in §9.1) on the MNIST-like benchmark.
//
// Expected shape (paper Fig. 7): ALSH-approx competitive at depth 1-2 then
// collapsing sharply past ~3-5 layers (70.07% -> 25.14% from 5 to 7 in the
// paper); MC^M flat/near-best across all depths; Standard/Adaptive stable.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/csv.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_fig7_accuracy_vs_depth");
  AddCommonFlags(&flags);
  flags.AddInt("max-depth", 7, "deepest network");
  flags.AddInt("epochs-s", 4, "epochs for stochastic methods");
  flags.AddInt("epochs-m", 10, "epochs for mini-batch methods");
  flags.AddBool("deep-mc", false, "also run MC^M at depth 10 and 20 (§9.1)");
  flags.AddString("dataset", "mnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Figure 7: accuracy vs hidden layers", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto max_depth = static_cast<size_t>(flags.GetInt("max-depth"));

  struct Config {
    TrainerKind kind;
    size_t batch;
  };
  const Config configs[] = {
      {TrainerKind::kAlsh, 1},
      {TrainerKind::kMc, 20},
      {TrainerKind::kStandard, 1},
      {TrainerKind::kAdaptiveDropout, 1},
  };

  std::vector<std::string> cols{"Method"};
  for (size_t d = 1; d <= max_depth; ++d) {
    cols.push_back("d=" + std::to_string(d));
  }
  TableReporter table("Figure 7: test accuracy (%) vs depth", cols);
  auto csv = std::move(CsvWriter::Open(CsvPath(flags, "fig7_depth")))
                 .ValueOrDie("csv");
  csv.WriteHeader({"method", "depth", "test_accuracy"});

  for (const Config& c : configs) {
    std::vector<std::string> row{PaperName(c.kind, c.batch)};
    for (size_t depth = 1; depth <= max_depth; ++depth) {
      std::fprintf(stderr, "-- %s depth %zu\n",
                   PaperName(c.kind, c.batch).c_str(), depth);
      size_t epochs = static_cast<size_t>(
          c.batch > 1 ? flags.GetInt("epochs-m") : flags.GetInt("epochs-s"));
      // ALSH's sparse steps are far cheaper; match its step budget to the
      // dense methods' wall-clock budget (cf. the paper's 50-epoch runs).
      if (c.kind == TrainerKind::kAlsh) epochs *= 4;
      ExperimentResult result =
          RunPaperExperiment(data, c.kind, depth, c.batch, epochs, flags);
      row.push_back(TableReporter::Cell(100.0 * result.final_test_accuracy, 1));
      csv.WriteRow({PaperName(c.kind, c.batch), std::to_string(depth),
                    CsvWriter::Num(result.final_test_accuracy)});
    }
    table.AddRow(std::move(row));
  }
  if (flags.GetBool("deep-mc")) {
    std::vector<std::string> row{"MC-approx^M (deep)"};
    row.resize(cols.size(), "-");
    size_t slot = 1;
    for (size_t depth : {size_t{10}, size_t{20}}) {
      std::fprintf(stderr, "-- MC^M depth %zu\n", depth);
      ExperimentResult result = RunPaperExperiment(
          data, TrainerKind::kMc, depth, 20,
          static_cast<size_t>(flags.GetInt("epochs-m")), flags);
      // Built left-to-right from an lvalue string: the rvalue
      // operator+(const char*, string&&) overload trips a GCC 12
      // -Wrestrict false positive (PR105651) under -Werror.
      std::string cell = "d";
      cell += std::to_string(depth);
      cell += ": ";
      cell += TableReporter::Cell(100.0 * result.final_test_accuracy, 1);
      row[slot++] = std::move(cell);
      csv.WriteRow({"MC-approx^M", std::to_string(depth),
                    CsvWriter::Num(result.final_test_accuracy)});
    }
    table.AddRow(std::move(row));
  }
  csv.Close().Abort("csv close");
  table.Print();
  std::printf("\nPaper reference (Fig. 7): ALSH drops from 70.07%% (5 layers) "
              "to 25.14%% (7); MC^M >= 92.71%% at every depth (97.32%% at 10, "
              "95.71%% at 20).\n");
  return 0;
}
