// Figure 9 reproduction: the speed/accuracy scatter — total training time
// vs final test accuracy for every method/setting on the MNIST-like
// benchmark (3 hidden layers).
//
// Expected shape (paper Fig. 9): MC-approx^M dominates (top-left: fast and
// accurate); ALSH single-core sits bottom-right relative to it.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_fig9_speed_vs_accuracy");
  AddCommonFlags(&flags);
  flags.AddInt("epochs-s", 4, "epochs for stochastic methods");
  flags.AddInt("epochs-m", 10, "epochs for mini-batch methods");
  flags.AddString("dataset", "mnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Figure 9: speed vs accuracy", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);

  struct Config {
    TrainerKind kind;
    size_t batch;
  };
  const Config configs[] = {
      {TrainerKind::kStandard, 1},        {TrainerKind::kStandard, 20},
      {TrainerKind::kDropout, 1},         {TrainerKind::kAdaptiveDropout, 1},
      {TrainerKind::kAlsh, 1},            {TrainerKind::kMc, 20},
      {TrainerKind::kMc, 1},
  };
  TableReporter table(
      "Figure 9: total training time vs final test accuracy (3 hidden layers)",
      {"Method", "train s", "test acc %", "s per accuracy point"});
  for (const Config& c : configs) {
    std::fprintf(stderr, "-- %s\n", PaperName(c.kind, c.batch).c_str());
    const size_t epochs = static_cast<size_t>(
        c.batch > 1 ? flags.GetInt("epochs-m") : flags.GetInt("epochs-s"));
    ExperimentResult result =
        RunPaperExperiment(data, c.kind, /*depth=*/3, c.batch, epochs, flags);
    const double acc_pct = 100.0 * result.final_test_accuracy;
    table.AddRow({PaperName(c.kind, c.batch),
                  TableReporter::Cell(result.train_seconds),
                  TableReporter::Cell(acc_pct),
                  TableReporter::Cell(
                      acc_pct > 0 ? result.train_seconds / acc_pct : 0.0, 4)});
  }
  table.Print();
  table.WriteCsv(CsvPath(flags, "fig9_speed_accuracy")).Abort("csv");
  std::printf("\nExpected shape: MC^M pareto-dominates (high accuracy, low "
              "time); single-core ALSH is dominated (§9.2, Fig. 9).\n");
  return 0;
}
