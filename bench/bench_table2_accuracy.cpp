// Table 2 reproduction: test accuracy (%) for a network with 3 hidden
// layers, six benchmark datasets x six method/setting combinations
// (ALSH-approx, MC-approx^M, MC-approx^S, Dropout^S, Adaptive-Dropout^S,
// Standard^S).
//
// Expected shape (paper Table 2): MC-approx best on most datasets,
// Adaptive-Dropout close to Standard, ALSH-approx in between, Dropout at
// p=0.05 collapsing on the harder datasets, and every sampling method
// collapsing on CIFAR-10.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_table2_accuracy");
  AddCommonFlags(&flags);
  flags.AddInt("epochs-s", 6, "epochs for stochastic (batch=1) methods");
  flags.AddInt("epochs-m", 12, "epochs for mini-batch methods");
  flags.AddString("datasets", "all", "comma list or 'all'");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Table 2: test accuracy, 3 hidden layers", flags);

  std::vector<std::string> datasets;
  if (flags.GetString("datasets") == "all") {
    datasets = BenchmarkDatasetNames();
  } else {
    std::string list = flags.GetString("datasets");
    size_t pos = 0;
    while (pos != std::string::npos) {
      const size_t comma = list.find(',', pos);
      datasets.push_back(list.substr(
          pos, comma == std::string::npos ? comma : comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }

  struct Config {
    TrainerKind kind;
    size_t batch;
  };
  const Config configs[] = {
      {TrainerKind::kAlsh, 1},    {TrainerKind::kMc, 20},
      {TrainerKind::kMc, 1},      {TrainerKind::kDropout, 1},
      {TrainerKind::kAdaptiveDropout, 1}, {TrainerKind::kStandard, 1},
  };
  std::vector<std::string> columns{"Dataset"};
  for (const Config& c : configs) columns.push_back(PaperName(c.kind, c.batch));
  TableReporter table("Table 2: test accuracy (%), 3 hidden layers", columns);

  const auto epochs_s = static_cast<size_t>(flags.GetInt("epochs-s"));
  const auto epochs_m = static_cast<size_t>(flags.GetInt("epochs-m"));
  for (const std::string& dataset : datasets) {
    std::fprintf(stderr, "== dataset %s\n", dataset.c_str());
    DatasetSplits data = LoadData(dataset, flags);
    std::vector<std::string> row{dataset};
    for (const Config& c : configs) {
      std::fprintf(stderr, "   %s...\n", PaperName(c.kind, c.batch).c_str());
      // ALSH steps are ~20x cheaper than dense stochastic steps, and the
      // method converges in steps, not epochs — give it a proportionally
      // larger epoch budget (the paper trains everything for 50 epochs).
      const size_t epochs = c.kind == TrainerKind::kAlsh ? 4 * epochs_s
                            : c.batch > 1               ? epochs_m
                                                        : epochs_s;
      ExperimentResult result =
          RunPaperExperiment(data, c.kind, /*depth=*/3, c.batch, epochs, flags);
      row.push_back(TableReporter::Cell(100.0 * result.final_test_accuracy));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  table.WriteCsv(CsvPath(flags, "table2_accuracy")).Abort("csv");
  std::printf("\nPaper reference (Table 2, MNIST row): ALSH 94.15, MC^M 98.10, "
              "MC^S 98.38, Dropout^S 90.21, Adaptive^S 98.06, Standard^S "
              "96.46.\nExpected shape: MC best, Adaptive ~ Standard, ALSH "
              "mid, Dropout worst; all sampling methods collapse on "
              "cifar10.\n");
  return 0;
}
