// Ablation of ALSH-approx's active-node *selection quality*, connecting
// the experiments back to the theory: Lemma 7.1 assumes active nodes are
// "detected exactly"; real hash tables retrieve an approximation of the
// top inner products. This bench trains the same network with
//   (a) oracle selection (exact top-k MIPS per layer — the Lemma 7.1
//       idealization, at dense cost),
//   (b) LSH selection with the paper's SRP family (K=6, L=5),
//   (c) LSH selection with the WTA family (SLIDE's choice), and
//   (d) random selection of the same budget (the Dropout-style floor),
// at a matched active-node budget.
//
// Expected shape: oracle >= LSH >> random at equal sparsity — selection
// quality, not sparsity itself, is most of ALSH's accuracy story; and even
// the oracle degrades with depth (Theorem 7.2 binds regardless of how well
// the active set is chosen).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/alsh_trainer.h"
#include "src/data/batcher.h"
#include "src/metrics/accuracy.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_ablation_selection");
  AddCommonFlags(&flags);
  flags.AddInt("epochs", 12, "training epochs");
  flags.AddInt("budget", 48, "active nodes per layer for all variants");
  flags.AddInt("depth", 3, "hidden layers");
  flags.AddString("dataset", "mnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Ablation: ALSH active-set selection quality", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const auto budget = static_cast<size_t>(flags.GetInt("budget"));
  const auto depth = static_cast<size_t>(flags.GetInt("depth"));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const MlpConfig net_config = PaperMlpConfig(
      data.train, depth, static_cast<size_t>(flags.GetInt("hidden")), seed);

  struct Variant {
    const char* name;
    AlshOptions options;
  };
  std::vector<Variant> variants;
  {
    Variant oracle{"oracle top-k (Lemma 7.1)", {}};
    oracle.options.selection = AlshSelection::kOracle;
    oracle.options.oracle_active = budget;
    variants.push_back(oracle);

    Variant srp{"LSH (SRP, K=6 L=5)", {}};
    srp.options.min_active = budget;  // floor to the shared budget
    variants.push_back(srp);

    Variant wta{"LSH (WTA, window 8)", {}};
    wta.options.index.family = LshFamily::kWta;
    wta.options.min_active = budget;
    variants.push_back(wta);

    Variant random{"random (Dropout-style)", {}};
    // Empty tables: bits=10 over few items leaves probes near-empty, so the
    // random min_active floor supplies (almost) the whole active set.
    random.options.index.bits = 12;
    random.options.index.tables = 1;
    random.options.min_active = budget;
    variants.push_back(random);
  }

  TableReporter table(
      "ALSH selection-quality ablation (" + std::to_string(budget) +
          " active nodes/layer, depth " + std::to_string(depth) + ")",
      {"selection", "test acc %", "train s", "avg active frac"});
  for (const Variant& v : variants) {
    std::fprintf(stderr, "-- %s\n", v.name);
    Mlp net = std::move(Mlp::Create(net_config)).ValueOrDie("net");
    auto trainer = std::move(AlshTrainer::Create(std::move(net), v.options,
                                                 1e-3f, seed))
                       .ValueOrDie("trainer");
    Batcher batcher(data.train, 1, 7);
    Matrix x;
    std::vector<int32_t> y;
    Stopwatch watch;
    for (size_t e = 0; e < epochs; ++e) {
      while (batcher.Next(&x, &y)) {
        std::move(trainer->Step(x, y)).ValueOrDie("step");
      }
    }
    table.AddRow({v.name,
                  TableReporter::Cell(
                      100.0 * EvaluateAccuracy(trainer->net(), data.test), 1),
                  TableReporter::Cell(watch.Elapsed()),
                  TableReporter::Cell(trainer->AverageActiveFraction(), 3)});
  }
  table.Print();
  table.WriteCsv(CsvPath(flags, "ablation_selection")).Abort("csv");
  return 0;
}
