// Figures 4-6 reproduction: learning curves (test accuracy per epoch) for
// every method on the MNIST-like benchmark, in its paper setting
// (stochastic for Standard/Dropout/Adaptive/ALSH, mini-batch 20 for MC^M,
// plus MC^S with the §9.3 reduced learning rate).
//
// Expected shape: MC^M and Adaptive track Standard; Dropout p=0.05 learns
// slowly; ALSH plateaus below the dense methods.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/csv.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_fig456_learning_curves");
  AddCommonFlags(&flags);
  flags.AddInt("epochs", 8, "epochs (x-axis length)");
  flags.AddString("dataset", "mnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Figures 4-6: learning curves (test accuracy per epoch)", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));

  struct Config {
    TrainerKind kind;
    size_t batch;
  };
  const Config configs[] = {
      {TrainerKind::kStandard, 1},        {TrainerKind::kDropout, 1},
      {TrainerKind::kAdaptiveDropout, 1}, {TrainerKind::kAlsh, 1},
      {TrainerKind::kMc, 20},             {TrainerKind::kMc, 1},
  };

  std::vector<std::string> cols{"Method"};
  for (size_t e = 1; e <= epochs; ++e) cols.push_back("ep" + std::to_string(e));
  TableReporter table("Test accuracy (%) by epoch", cols);

  auto csv = std::move(CsvWriter::Open(CsvPath(flags, "fig456_curves")))
                 .ValueOrDie("csv");
  csv.WriteHeader({"method", "epoch", "test_accuracy", "train_loss",
                   "epoch_seconds"});
  for (const Config& c : configs) {
    std::fprintf(stderr, "-- %s\n", PaperName(c.kind, c.batch).c_str());
    ExperimentResult result = RunPaperExperiment(
        data, c.kind, /*depth=*/3, c.batch, epochs, flags,
        /*eval_each_epoch=*/true);
    std::vector<std::string> row{PaperName(c.kind, c.batch)};
    for (const EpochRecord& e : result.epochs) {
      row.push_back(TableReporter::Cell(100.0 * e.test_accuracy, 1));
      csv.WriteRow({PaperName(c.kind, c.batch), std::to_string(e.epoch),
                    CsvWriter::Num(e.test_accuracy),
                    CsvWriter::Num(e.train_loss),
                    CsvWriter::Num(e.seconds)});
    }
    table.AddRow(std::move(row));
  }
  csv.Close().Abort("csv close");
  table.Print();
  return 0;
}
