// Micro benchmarks for the observability substrate: the disabled-path cost
// that every training step pays (a relaxed atomic load), the enabled-path
// cost of counters/histograms/spans, and the SplitTimer::Scope hot path the
// trainers charge per batch (see the overhead note in bench_common.h).

#include <benchmark/benchmark.h>

#include "src/metrics/split_timer.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"

namespace sampnn {
namespace {

void BM_SplitTimerScope(benchmark::State& state) {
  // The per-batch trainer pattern: one scope per phase, interned label.
  SplitTimer timer;
  for (auto _ : state) {
    SplitTimer::Scope scope(&timer, kPhaseForward);
    benchmark::DoNotOptimize(&timer);
  }
}
BENCHMARK(BM_SplitTimerScope);

void BM_SplitTimerScopeManyPhases(benchmark::State& state) {
  // Worst-case linear scan: the label is the last of six entries.
  SplitTimer timer;
  timer.Add(kPhaseForward, 0.0);
  timer.Add(kPhaseBackward, 0.0);
  timer.Add(kPhaseSampling, 0.0);
  timer.Add(kPhaseHashRebuild, 0.0);
  timer.Add("parallel", 0.0);
  timer.Add("conv_forward", 0.0);
  for (auto _ : state) {
    SplitTimer::Scope scope(&timer, "conv_forward");
    benchmark::DoNotOptimize(&timer);
  }
}
BENCHMARK(BM_SplitTimerScopeManyPhases);

void BM_TelemetryEnabledCheck(benchmark::State& state) {
  // The guard every instrumented kernel runs when telemetry is off.
  SetTelemetryEnabled(false);
  for (auto _ : state) {
    bool enabled = TelemetryEnabled();
    benchmark::DoNotOptimize(enabled);
  }
}
BENCHMARK(BM_TelemetryEnabledCheck);

void BM_CounterAdd(benchmark::State& state) {
  SetTelemetryEnabled(true);
  Counter& c = MetricsRegistry::Get().GetCounter("bench.counter");
  for (auto _ : state) {
    c.Add(64);
  }
  SetTelemetryEnabled(false);
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  SetTelemetryEnabled(true);
  Histogram& h = MetricsRegistry::Get().GetHistogram("bench.histogram");
  uint64_t v = 1;
  for (auto _ : state) {
    h.Observe(v);
    v = (v * 5 + 1) & 0xFFFF;
  }
  SetTelemetryEnabled(false);
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceSpanDisabled(benchmark::State& state) {
  SetTelemetryEnabled(false);
  for (auto _ : state) {
    TraceSpan span("bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  SetTelemetryEnabled(true);
  TraceRecorder::Get().Clear();
  for (auto _ : state) {
    TraceSpan span("bench");
    benchmark::DoNotOptimize(&span);
  }
  SetTelemetryEnabled(false);
  TraceRecorder::Get().Clear();
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_PhaseScopeDisabled(benchmark::State& state) {
  // What PhaseScope costs in a normal (telemetry-off) training run.
  SetTelemetryEnabled(false);
  SplitTimer timer;
  for (auto _ : state) {
    PhaseScope scope(&timer, kPhaseForward);
    benchmark::DoNotOptimize(&timer);
  }
}
BENCHMARK(BM_PhaseScopeDisabled);

}  // namespace
}  // namespace sampnn

BENCHMARK_MAIN();
