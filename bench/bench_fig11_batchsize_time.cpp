// Figure 11 reproduction: MC-approx training time vs mini-batch size,
// against Standard at the same batch sizes.
//
// Expected shape (paper Fig. 11 / §9.3): MC's per-epoch time rises sharply
// as the batch shrinks (the probability-estimation overhead is paid per
// step), crossing above Standard near batch 1 — the "swift drop in time
// efficiency under SGD".

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/csv.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  using namespace sampnn::bench;
  Flags flags("bench_fig11_batchsize_time");
  AddCommonFlags(&flags);
  flags.AddInt("epochs", 1, "epochs to average over");
  flags.AddString("dataset", "mnist", "benchmark dataset");
  if (!ParseOrHelp(&flags, argc, argv)) return 0;
  Banner("Figure 11: training time vs batch size", flags);

  DatasetSplits data = LoadData(flags.GetString("dataset"), flags);
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const size_t batches[] = {1, 2, 5, 10, 20, 50, 100};

  TableReporter table(
      "Figure 11: seconds per epoch vs batch size (3 hidden layers)",
      {"batch", "MC-approx", "Standard", "MC/Standard"});
  auto csv = std::move(CsvWriter::Open(CsvPath(flags, "fig11_batch_time")))
                 .ValueOrDie("csv");
  csv.WriteHeader({"batch", "method", "seconds_per_epoch"});
  for (size_t batch : batches) {
    std::fprintf(stderr, "-- batch %zu\n", batch);
    ExperimentResult mc = RunPaperExperiment(data, TrainerKind::kMc,
                                             /*depth=*/3, batch, epochs, flags);
    ExperimentResult standard = RunPaperExperiment(
        data, TrainerKind::kStandard, /*depth=*/3, batch, epochs, flags);
    const double mc_s = mc.train_seconds / epochs;
    const double std_s = standard.train_seconds / epochs;
    table.AddRow({std::to_string(batch), TableReporter::Cell(mc_s, 3),
                  TableReporter::Cell(std_s, 3),
                  TableReporter::Cell(std_s > 0 ? mc_s / std_s : 0.0)});
    csv.WriteRow({std::to_string(batch), "mc", CsvWriter::Num(mc_s)});
    csv.WriteRow({std::to_string(batch), "standard", CsvWriter::Num(std_s)});
  }
  csv.Close().Abort("csv close");
  table.Print();
  std::printf("\nExpected shape: MC/Standard ratio largest at batch 1 (MC "
              "slower than exact training, §9.3) and < 1 at batch >= ~20.\n");
  return 0;
}
