#!/usr/bin/env bash
# [[nodiscard]] discard gate: every `(void)` cast that throws away a call
# result must carry a written reason.
#
# Status and StatusOr are [[nodiscard]]; the only sanctioned way to drop one
# on purpose is
#
#   (void)expr;  // status-ignored: <why this failure cannot matter>
#
# This gate greps src/, bench/, examples/, and tests/ for `(void)` casts of
# call expressions (anything with a `(`, `.`, or `->` after the cast) and
# fails unless the same line or the line above carries a `status-ignored:`
# reason. Exempt by construction:
#   - `(void)sizeof(...)` — the SAMPNN_DCHECK NDEBUG idiom (compile-time
#     only, nothing is discarded at runtime);
#   - `(void)identifier;` — silencing an unused variable/parameter, which
#     discards nothing.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
while IFS= read -r -d '' file; do
  violations="$(awk '
    {
      line = $0
      if (match(line, /\(void\)[A-Za-z_:(]/)) {
        rest = substr(line, RSTART + 6)
        # Exempt the DCHECK sizeof idiom.
        if (rest ~ /^sizeof/) { prev = line; next }
        # A discard of a *call* has a paren or member access after the cast
        # before the terminating semicolon; a bare identifier cast does not.
        head = rest
        sub(/;.*/, "", head)
        if (head !~ /[(]|\.|->/) { prev = line; next }
        if (line !~ /status-ignored:/ && prev !~ /status-ignored:/) {
          printf "%d: %s\n", NR, line
        }
      }
      prev = line
    }
  ' "$file")"
  if [[ -n "$violations" ]]; then
    echo "$file:"
    echo "$violations"
    fail=1
  fi
done < <(find src bench examples tests \
           \( -name '*.cc' -o -name '*.cpp' -o -name '*.h' \) -print0)

if [[ "$fail" -ne 0 ]]; then
  cat >&2 <<'EOF'

error: (void)-discarded call results without a reason.
Status/StatusOr are [[nodiscard]]; if dropping the result is genuinely
safe, say why:
    (void)expr;  // status-ignored: <reason>
EOF
  exit 1
fi

echo "ok: no unexplained (void) discards of call results"
