#!/usr/bin/env python3
"""Gates the packed GEMM's throughput and thread-scaling behaviour.

Usage:
  scripts/check_gemm_perf.py <BENCH_gemm.json> [--shape N] [--min-ratio R]
      [--mt-tolerance T] [--scaling-floor S] [--large-shape N]
      [--large-floor F]

Reads the JSON the `bench_micro_gemm --sweep` mode writes and enforces:

  1. packed/scalar ratio: at the gate shape (default 512^3) the packed
     single-thread GEMM must be at least --min-ratio times the seed scalar
     loop (default 1.0: "never slower than the code it replaced").
  2. multi-worker never slower (HARD failure): at every swept shape with at
     least 256^3 flops volume, the best run at every effective worker count
     > 1 must reach --mt-tolerance (default 0.95) of the single-worker
     throughput. Records are grouped by the clamped `workers` field, not
     the requested thread count: requesting 4 threads on a 1-core host runs
     1 worker by design (GemmEffectiveWorkers) and is gated as such.
  3. monotone scaling: doubling the effective workers never costs more than
     (1 - --scaling-floor): best(w) >= scaling_floor * best(w/2), default
     0.9, for every swept shape at or above the 256^3 volume.
  4. large-shape cache floor: the --large-shape (default 1024) single-thread
     packed run must reach --large-floor (default 0.8) of the gate shape's
     single-thread packed throughput — the blocked nest must not fall off a
     cache cliff once operands exceed L2.

Exit code 0 on success; prints the first problem and exits 1 otherwise.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_gemm_perf: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def shape_name(key) -> str:
    m, k, n = key
    return f"{m}^3" if m == k == n else f"{m}x{k}x{n}"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_gemm.json from --sweep")
    parser.add_argument("--shape", type=int, default=512,
                        help="square gate shape (default 512)")
    parser.add_argument("--min-ratio", type=float, default=1.0,
                        help="required packed/scalar ratio at 1 thread")
    parser.add_argument("--mt-tolerance", type=float, default=0.95,
                        help="multi-worker runs must reach this fraction of "
                             "single-worker throughput (default 0.95)")
    parser.add_argument("--scaling-floor", type=float, default=0.9,
                        help="best(w) must reach this fraction of best(w/2) "
                             "(default 0.9)")
    parser.add_argument("--large-shape", type=int, default=1024,
                        help="square shape for the cache-cliff floor "
                             "(default 1024; skipped when not swept)")
    parser.add_argument("--large-floor", type=float, default=0.8,
                        help="large-shape 1t must reach this fraction of the "
                             "gate shape 1t (default 0.8)")
    args = parser.parse_args()

    try:
        with open(args.bench_json, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.bench_json}: {e}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail(f"{args.bench_json}: missing or empty results array")

    # Index records: scalar baselines and packed runs per (m,k,n).
    scalar = {}       # (m,k,n) -> gflops
    packed = {}       # (m,k,n) -> {workers -> best gflops}
    for rec in results:
        if rec.get("op") != "gemm":
            continue
        key = (rec.get("m"), rec.get("k"), rec.get("n"))
        gf = rec.get("gflops")
        if not all(isinstance(v, int) for v in key) or \
                not isinstance(gf, (int, float)):
            continue
        if rec.get("variant") == "scalar_seed":
            scalar[key] = gf
        elif rec.get("variant") == "packed":
            # Older sweeps have no `workers` field; fall back to threads.
            w = rec.get("workers", rec.get("threads"))
            if isinstance(w, int) and w >= 1:
                by_w = packed.setdefault(key, {})
                by_w[w] = max(by_w.get(w, 0.0), gf)

    gate = (args.shape, args.shape, args.shape)
    if gate not in scalar:
        fail(f"no scalar_seed record at shape {args.shape}")
    if gate not in packed or 1 not in packed[gate]:
        fail(f"no packed 1-worker record at shape {args.shape}")
    if scalar[gate] <= 0:
        fail(f"scalar_seed gflops is non-positive: {scalar[gate]}")

    blk = doc.get("block", {})
    packed1 = packed[gate][1]
    ratio = packed1 / scalar[gate]
    print(f"check_gemm_perf: shape {args.shape}^3: scalar "
          f"{scalar[gate]:.2f} GFLOP/s, packed(1w) {packed1:.2f} GFLOP/s, "
          f"ratio {ratio:.2f}x (avx2_fma={doc.get('avx2_fma')}, "
          f"block mc={blk.get('mc')} kc={blk.get('kc')} nc={blk.get('nc')})")
    if ratio < args.min_ratio:
        fail(f"packed 1-worker GEMM ratio {ratio:.2f}x is below the "
             f"{args.min_ratio:.2f}x floor at {args.shape}^3")

    # Multi-worker gates, per shape at or above the 256^3 volume. Smaller
    # products are dominated by fan-out overhead and are not gated.
    min_volume = 256 ** 3
    for key, by_w in sorted(packed.items()):
        m, k, n = key
        if m * k * n < min_volume or 1 not in by_w:
            continue
        base = by_w[1]
        for w in sorted(by_w):
            if w == 1:
                continue
            if by_w[w] < args.mt_tolerance * base:
                fail(f"{shape_name(key)}: {w}-worker packed GEMM "
                     f"({by_w[w]:.2f} GFLOP/s) is below "
                     f"{args.mt_tolerance:.2f}x the 1-worker run "
                     f"({base:.2f} GFLOP/s) — parallel partitioning is "
                     f"losing to its own overhead")
            half = by_w.get(w // 2)
            if w % 2 == 0 and half is not None and \
                    by_w[w] < args.scaling_floor * half:
                fail(f"{shape_name(key)}: scaling is not monotone: "
                     f"{w} workers {by_w[w]:.2f} GFLOP/s < "
                     f"{args.scaling_floor:.2f}x the {w // 2}-worker run "
                     f"({half:.2f} GFLOP/s)")
        best_w = max(by_w, key=by_w.get)
        print(f"check_gemm_perf: {shape_name(key)}: workers "
              f"{{{', '.join(f'{w}: {g:.2f}' for w, g in sorted(by_w.items()))}}}"
              f" GFLOP/s, best {by_w[best_w]:.2f} at {best_w} "
              f"({by_w[best_w] / base:.2f}x 1-worker)")

    # Cache-cliff floor: large single-thread throughput must hold up.
    large = (args.large_shape, args.large_shape, args.large_shape)
    if large in packed and 1 in packed[large]:
        large1 = packed[large][1]
        frac = large1 / packed1
        print(f"check_gemm_perf: {args.large_shape}^3 packed(1w) "
              f"{large1:.2f} GFLOP/s = {frac:.2f}x of {args.shape}^3")
        if frac < args.large_floor:
            fail(f"{args.large_shape}^3 1-worker packed GEMM "
                 f"({large1:.2f} GFLOP/s) fell below "
                 f"{args.large_floor:.2f}x of the {args.shape}^3 run "
                 f"({packed1:.2f} GFLOP/s) — cache blocking is not holding")
    else:
        print(f"check_gemm_perf: {args.large_shape}^3 not swept; "
              f"skipping cache-cliff floor")
    print("check_gemm_perf: OK")


if __name__ == "__main__":
    main()
