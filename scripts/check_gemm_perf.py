#!/usr/bin/env python3
"""Gates the packed GEMM's throughput against the seed scalar baseline.

Usage:
  scripts/check_gemm_perf.py <BENCH_gemm.json> [--shape N] [--min-ratio R]

Reads the JSON the `bench_micro_gemm --sweep` mode writes and fails if the
packed single-thread GEMM is slower than the seed scalar loop at the gate
shape (default 512^3). The default ratio floor is deliberately modest (1.0:
"never slower than the code it replaced") so the CI gate stays robust on
noisy shared runners; the ISSUE-4 target of >= 4x is checked locally and
recorded in results/BENCH_gemm.json. A higher floor can be enforced with
--min-ratio once runner variance is known.

Exit code 0 on success; prints the first problem and exits 1 otherwise.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_gemm_perf: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_gemm.json from --sweep")
    parser.add_argument("--shape", type=int, default=512,
                        help="square gate shape (default 512)")
    parser.add_argument("--min-ratio", type=float, default=1.0,
                        help="required packed/scalar ratio at 1 thread")
    args = parser.parse_args()

    try:
        with open(args.bench_json, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.bench_json}: {e}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail(f"{args.bench_json}: missing or empty results array")

    scalar = None
    packed1 = None
    packed_mt = []  # (threads, gflops) for threads > 1
    for rec in results:
        if rec.get("op") != "gemm" or rec.get("m") != args.shape:
            continue
        if rec.get("variant") == "scalar_seed":
            scalar = rec.get("gflops")
        elif rec.get("variant") == "packed" and rec.get("threads") == 1:
            packed1 = rec.get("gflops")
        elif (rec.get("variant") == "packed"
              and isinstance(rec.get("threads"), int)
              and rec.get("threads") > 1
              and isinstance(rec.get("gflops"), (int, float))):
            packed_mt.append((rec["threads"], rec["gflops"]))
    if scalar is None:
        fail(f"no scalar_seed record at shape {args.shape}")
    if packed1 is None:
        fail(f"no packed 1-thread record at shape {args.shape}")
    if scalar <= 0:
        fail(f"scalar_seed gflops is non-positive: {scalar}")

    ratio = packed1 / scalar
    print(f"check_gemm_perf: shape {args.shape}^3: scalar {scalar:.2f} "
          f"GFLOP/s, packed(1t) {packed1:.2f} GFLOP/s, ratio {ratio:.2f}x "
          f"(avx2_fma={doc.get('avx2_fma')})")
    if ratio < args.min_ratio:
        fail(f"packed 1-thread GEMM ratio {ratio:.2f}x is below the "
             f"{args.min_ratio:.2f}x floor at {args.shape}^3")

    # Multi-thread sanity: on a healthy partitioning, the best multi-thread
    # run is at least as fast as one thread. Parallel slowdown (oversized
    # thread count on a small runner, broken partitioning, false sharing)
    # must not pass silently — but it is a WARNING, not a failure: CI
    # runners with 2 shared vCPUs legitimately show it under noise.
    if packed_mt:
        best_threads, best_mt = max(packed_mt, key=lambda tg: tg[1])
        if best_mt < packed1:
            print(f"check_gemm_perf: WARNING: best multi-thread packed GEMM "
                  f"({best_mt:.2f} GFLOP/s at {best_threads} threads) is "
                  f"slower than single-thread ({packed1:.2f} GFLOP/s) at "
                  f"{args.shape}^3 — parallel partitioning is losing to its "
                  f"own overhead on this host", file=sys.stderr)
        else:
            print(f"check_gemm_perf: multi-thread best {best_mt:.2f} GFLOP/s "
                  f"at {best_threads} threads "
                  f"({best_mt / packed1:.2f}x single-thread)")
    print("check_gemm_perf: OK")


if __name__ == "__main__":
    main()
