#!/usr/bin/env python3
"""Asserts on serve_mlp's JSON outcome mix (CI overload-smoke job).

Usage: check_serve_smoke.py <serve_mlp_json_file>

The smoke run drives the service into overload with injected faults
(delay@N, hang@N) and more clients than the queue admits, so a healthy
run MUST show load shedding and expired deadlines — their absence means
the admission control or deadline enforcement silently stopped working.
Exits 0 when every invariant holds, 1 otherwise.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <serve_mlp_json_file>")
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            stats = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read stats: {e}")

    required = [
        "submitted", "admitted", "shed", "completed", "completed_degraded",
        "deadline_exceeded", "cancelled", "watchdog_trips",
        "degrade_transitions", "client_ok",
    ]
    missing = [k for k in required if k not in stats]
    if missing:
        fail(f"missing keys: {missing}")

    # Conservation: every submitted request was admitted or shed, and every
    # admitted request reached exactly one terminal outcome (Stop(kDrain)
    # ran before the stats were printed, so nothing is still in flight).
    if stats["submitted"] != stats["admitted"] + stats["shed"]:
        fail(f"submitted ({stats['submitted']}) != admitted "
             f"({stats['admitted']}) + shed ({stats['shed']})")
    terminal = (stats["completed"] + stats["completed_degraded"]
                + stats["deadline_exceeded"] + stats["cancelled"])
    if stats["admitted"] != terminal:
        fail(f"admitted ({stats['admitted']}) != terminal outcomes "
             f"({terminal})")
    if stats["client_ok"] != stats["completed"] + stats["completed_degraded"]:
        fail(f"client_ok ({stats['client_ok']}) != completions "
             f"({stats['completed'] + stats['completed_degraded']})")

    # Overload behavior actually engaged.
    if stats["shed"] == 0:
        fail("no requests were shed — admission control never engaged")
    if stats["deadline_exceeded"] == 0:
        fail("no deadlines expired — deadline enforcement never engaged")
    if stats["degrade_transitions"] == 0:
        fail("service never degraded under sustained queue pressure")
    # The hang@N fault wedges a worker; only a watchdog trip frees it, so a
    # run that finished at all must have tripped at least once.
    if stats["watchdog_trips"] == 0:
        fail("injected hang did not produce a watchdog trip")

    # The service must still do useful work under overload.
    if stats["client_ok"] == 0:
        fail("no request succeeded — overload handling shed everything")

    print(f"check_serve_smoke: OK "
          f"(submitted={stats['submitted']} ok={stats['client_ok']} "
          f"shed={stats['shed']} deadline={stats['deadline_exceeded']} "
          f"cancelled={stats['cancelled']} trips={stats['watchdog_trips']})")


if __name__ == "__main__":
    main()
