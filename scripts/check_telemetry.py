#!/usr/bin/env python3
"""Validates the telemetry artifacts a bench run produces.

Usage:
  scripts/check_telemetry.py <trace.json> <telemetry.jsonl> \
      [--require-span NAME ...] [--require-method NAME ...]

Checks:
  - the trace file is valid JSON in the Chrome Trace Event format
    ({"traceEvents": [...]}) with well-formed complete events, and contains
    every span name passed via --require-span;
  - the JSONL file parses line by line, every record carries the full flat
    schema of EpochTelemetry (DESIGN.md section "Observability"), epochs are
    1-based, and every method passed via --require-method appears.

Exit code 0 on success; prints the first problem and exits 1 otherwise.
"""

import argparse
import json
import sys

TRACE_EVENT_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid"}

JSONL_KEYS = {
    "run", "method", "architecture", "epoch",
    "train_loss", "test_accuracy", "validation_accuracy", "epoch_seconds",
    "forward_seconds", "backward_seconds", "sampling_seconds",
    "rebuild_seconds", "parallel_seconds",
    "active_node_fraction", "hash_rebuilds",
    "alsh_avg_bucket_occupancy", "alsh_max_bucket_occupancy",
    "alsh_nonempty_buckets",
    "mc_batch_samples", "mc_delta_samples",
    "rollbacks", "nan_batches", "alsh_dense_fallbacks",
    "gemm_flops", "gemm_flops_realized", "sparse_flops",
    "gemm_parallel_dispatches", "gemm_serial_dispatches",
    "gemm_pack_b_panels", "gemm_pack_a_panels", "gemm_block_tasks",
    "drift_score", "drift_trips", "lifecycle_promotions",
    "lifecycle_rollbacks", "lifecycle_diverged",
    "rss_bytes",
}


def fail(msg: str) -> None:
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str, required_spans: list[str]) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing top-level traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents is empty")
    names = set()
    for i, ev in enumerate(events):
        missing = TRACE_EVENT_KEYS - ev.keys()
        if missing:
            fail(f"{path}: event {i} missing keys {sorted(missing)}")
        if ev["ph"] != "X":
            fail(f"{path}: event {i} is not a complete event (ph={ev['ph']})")
        if ev["ts"] < 0 or ev["dur"] < 0:
            fail(f"{path}: event {i} has negative ts/dur")
        names.add(ev["name"])
    for span in required_spans:
        if span not in names:
            fail(f"{path}: no '{span}' span (saw: {sorted(names)})")
    print(f"check_telemetry: {path}: {len(events)} events, "
          f"spans {sorted(names)}")


def check_jsonl(path: str, required_methods: list[str]) -> None:
    methods = set()
    count = 0
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path}:{lineno}: invalid JSON: {e}")
                missing = JSONL_KEYS - rec.keys()
                if missing:
                    fail(f"{path}:{lineno}: missing keys {sorted(missing)}")
                if not isinstance(rec["epoch"], int) or rec["epoch"] < 1:
                    fail(f"{path}:{lineno}: epoch must be a 1-based int")
                if rec["epoch_seconds"] < 0:
                    fail(f"{path}:{lineno}: negative epoch_seconds")
                methods.add(rec["method"])
                count += 1
    except OSError as e:
        fail(f"{path}: {e}")
    if count == 0:
        fail(f"{path}: no records")
    for method in required_methods:
        if method not in methods:
            fail(f"{path}: no records for method '{method}' "
                 f"(saw: {sorted(methods)})")
    print(f"check_telemetry: {path}: {count} records, "
          f"methods {sorted(methods)}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="chrome trace JSON path")
    parser.add_argument("jsonl", help="per-epoch telemetry JSONL path")
    parser.add_argument("--require-span", action="append", default=[],
                        help="span name that must appear in the trace")
    parser.add_argument("--require-method", action="append", default=[],
                        help="method that must appear in the JSONL")
    args = parser.parse_args()
    check_trace(args.trace, args.require_span)
    check_jsonl(args.jsonl, args.require_method)
    print("check_telemetry: OK")


if __name__ == "__main__":
    main()
