#!/usr/bin/env bash
# Static-analysis gate for src/.
#
# Primary mode: clang-tidy over the build tree's compile_commands.json with
# the repo's .clang-tidy config; any finding fails the script
# (WarningsAsErrors: '*').
#
# Fallback mode: containers without clang-tidy (the pinned dev image ships
# only GCC) get a strict-warning pass instead — every src/ translation unit
# is recompiled with -fsyntax-only and a warning set stricter than the
# normal build, under -Werror. This keeps the gate meaningful everywhere
# while CI (which installs clang-tidy) enforces the full check set.
#
# Usage: scripts/static_analysis.sh [build-dir]
#   build-dir defaults to build/release and is configured on demand.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build/release}"

cd "$REPO_ROOT"

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "[static_analysis] configuring $BUILD_DIR (compile_commands.json missing)"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

mapfile -t SOURCES < <(find src -name '*.cc' | sort)
if [[ ${#SOURCES[@]} -eq 0 ]]; then
  echo "[static_analysis] error: no sources found under src/" >&2
  exit 1
fi

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if command -v "$CLANG_TIDY" > /dev/null 2>&1; then
  echo "[static_analysis] clang-tidy over ${#SOURCES[@]} files ($($CLANG_TIDY --version | head -1))"
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -clang-tidy-binary "$CLANG_TIDY" -p "$BUILD_DIR" -quiet \
      "^$REPO_ROOT/src/.*" > /tmp/sampnn_tidy.log 2>&1 || {
        grep -E "warning:|error:" /tmp/sampnn_tidy.log >&2 || cat /tmp/sampnn_tidy.log >&2
        echo "[static_analysis] FAIL: clang-tidy findings above" >&2
        exit 1
      }
  else
    "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}" || {
      echo "[static_analysis] FAIL: clang-tidy findings above" >&2
      exit 1
    }
  fi
  echo "[static_analysis] OK: clang-tidy clean"
  exit 0
fi

echo "[static_analysis] clang-tidy not found; running GCC strict-warning fallback"
CXX="${CXX:-g++}"
STRICT_FLAGS=(
  -std=c++20 -fsyntax-only -Werror
  -Wall -Wextra -Wpedantic
  -Wshadow -Wnon-virtual-dtor -Woverloaded-virtual
  -Wcast-qual -Wold-style-cast -Wundef
  -Wunused -Wmisleading-indentation -Wduplicated-cond
  -Wduplicated-branches -Wlogical-op -Wnull-dereference
  "-I$REPO_ROOT"
)

FAILED=0
for f in "${SOURCES[@]}"; do
  if ! "$CXX" "${STRICT_FLAGS[@]}" "$f"; then
    echo "[static_analysis] finding(s) in $f" >&2
    FAILED=1
  fi
done

if [[ $FAILED -ne 0 ]]; then
  echo "[static_analysis] FAIL: strict-warning findings above" >&2
  exit 1
fi
echo "[static_analysis] OK: ${#SOURCES[@]} files clean under strict warnings"
