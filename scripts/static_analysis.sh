#!/usr/bin/env bash
# Static-analysis gate for src/. Four stages, in order:
#
#   1. clang-tidy over the build tree's compile_commands.json with the
#      repo's .clang-tidy config; any finding fails (WarningsAsErrors: '*').
#      Containers without clang-tidy (the pinned dev image ships only GCC)
#      get a strict-warning fallback instead: every src/ translation unit
#      recompiled with -fsyntax-only under -Werror and a warning set
#      stricter than the normal build.
#   2. Clang thread-safety analysis (-Wthread-safety -Wthread-safety-beta
#      -Werror, syntax-only) over every src/ TU, proving the locking
#      protocol declared in src/util/sync.h. Skipped with a note when no
#      clang++ is installed — the annotations are a Clang-only analysis —
#      and enforced by the CI thread-safety job either way.
#   3. scripts/check_nodiscard.sh — no silent `(void)` discards of call
#      results without a `// status-ignored:` reason.
#   4. scripts/check_release_symbols.sh — when a release archive exists,
#      prove the lock-rank validator is compiled out of it.
#
# Usage: scripts/static_analysis.sh [build-dir]
#   build-dir defaults to build/release and is configured on demand.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build/release}"

cd "$REPO_ROOT"

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "[static_analysis] configuring $BUILD_DIR (compile_commands.json missing)"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

mapfile -t SOURCES < <(find src -name '*.cc' | sort)
if [[ ${#SOURCES[@]} -eq 0 ]]; then
  echo "[static_analysis] error: no sources found under src/" >&2
  exit 1
fi

# --- Stage 1: clang-tidy (or GCC strict-warning fallback) -------------------

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if command -v "$CLANG_TIDY" > /dev/null 2>&1; then
  echo "[static_analysis] clang-tidy over ${#SOURCES[@]} files ($($CLANG_TIDY --version | head -1))"
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -clang-tidy-binary "$CLANG_TIDY" -p "$BUILD_DIR" -quiet \
      "^$REPO_ROOT/src/.*" > /tmp/sampnn_tidy.log 2>&1 || {
        grep -E "warning:|error:" /tmp/sampnn_tidy.log >&2 || cat /tmp/sampnn_tidy.log >&2
        echo "[static_analysis] FAIL: clang-tidy findings above" >&2
        exit 1
      }
  else
    "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}" || {
      echo "[static_analysis] FAIL: clang-tidy findings above" >&2
      exit 1
    }
  fi
  echo "[static_analysis] OK: clang-tidy clean"
else
  echo "[static_analysis] clang-tidy not found; running GCC strict-warning fallback"
  GCC_CXX="${CXX:-g++}"
  STRICT_FLAGS=(
    -std=c++20 -fsyntax-only -Werror
    -Wall -Wextra -Wpedantic
    -Wshadow -Wnon-virtual-dtor -Woverloaded-virtual
    -Wcast-qual -Wold-style-cast -Wundef
    -Wunused -Wmisleading-indentation -Wduplicated-cond
    -Wduplicated-branches -Wlogical-op -Wnull-dereference
    "-I$REPO_ROOT"
  )
  FAILED=0
  for f in "${SOURCES[@]}"; do
    if ! "$GCC_CXX" "${STRICT_FLAGS[@]}" "$f"; then
      echo "[static_analysis] finding(s) in $f" >&2
      FAILED=1
    fi
  done
  if [[ $FAILED -ne 0 ]]; then
    echo "[static_analysis] FAIL: strict-warning findings above" >&2
    exit 1
  fi
  echo "[static_analysis] OK: ${#SOURCES[@]} files clean under strict warnings"
fi

# --- Stage 2: Clang thread-safety analysis ----------------------------------

CLANGXX="${SAMPNN_CLANGXX:-clang++}"
if command -v "$CLANGXX" > /dev/null 2>&1; then
  echo "[static_analysis] thread-safety analysis over ${#SOURCES[@]} files ($($CLANGXX --version | head -1))"
  TS_FLAGS=(
    -std=c++20 -fsyntax-only -Werror
    -Wthread-safety -Wthread-safety-beta
    "-I$REPO_ROOT"
  )
  FAILED=0
  for f in "${SOURCES[@]}"; do
    if ! "$CLANGXX" "${TS_FLAGS[@]}" "$f"; then
      echo "[static_analysis] thread-safety finding(s) in $f" >&2
      FAILED=1
    fi
  done
  if [[ $FAILED -ne 0 ]]; then
    echo "[static_analysis] FAIL: thread-safety findings above" >&2
    exit 1
  fi
  echo "[static_analysis] OK: thread-safety clean"
else
  echo "[static_analysis] SKIP: no clang++ on this host — thread-safety analysis" \
       "is Clang-only (the CI thread-safety job enforces it)"
fi

# --- Stage 3: [[nodiscard]] discard gate ------------------------------------

bash "$REPO_ROOT/scripts/check_nodiscard.sh"

# --- Stage 4: release archive carries no lock-rank validator ----------------

RELEASE_LIB=""
for dir in "$BUILD_DIR" "$REPO_ROOT/build"; do
  # Only a Release (NDEBUG) archive is expected to be validator-free.
  if [[ -f "$dir/src/libsampnn.a" ]] &&
     grep -q "CMAKE_BUILD_TYPE:STRING=Release" "$dir/CMakeCache.txt" 2>/dev/null; then
    RELEASE_LIB="$dir/src/libsampnn.a"
    break
  fi
done
if [[ -n "$RELEASE_LIB" ]]; then
  bash "$REPO_ROOT/scripts/check_release_symbols.sh" "$RELEASE_LIB"
else
  echo "[static_analysis] SKIP: no release archive built yet — symbol check" \
       "runs as a ctest in Release builds"
fi

echo "[static_analysis] OK: all stages passed"
