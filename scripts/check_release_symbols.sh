#!/usr/bin/env bash
# Proves the lock-rank validator is compiled out of release (NDEBUG) builds.
#
#   usage: scripts/check_release_symbols.sh <libsampnn.a>
#
# The validator (src/util/sync.cc) lives behind #ifndef NDEBUG; if its
# LockRank* symbols appear in a release archive, every lock/unlock in the
# hot serving and threadpool paths is paying for bookkeeping that is
# supposed to be debug-only. As a sanity check that we are looking at the
# right archive (and that `nm` works), sampnn::Mutex::lock must be present.
set -euo pipefail

if [[ $# -ne 1 ]]; then
  echo "usage: $0 <path/to/libsampnn.a (release build)>" >&2
  exit 2
fi
lib="$1"
if [[ ! -f "$lib" ]]; then
  echo "error: no such archive: $lib" >&2
  echo "hint: build the release preset first: cmake --preset release && cmake --build --preset release" >&2
  exit 2
fi

symbols="$(nm -C "$lib" 2>/dev/null || true)"

if ! grep -q 'sampnn::Mutex::lock()' <<<"$symbols"; then
  echo "error: sampnn::Mutex::lock() not found in $lib — wrong archive, or nm failed" >&2
  exit 1
fi

if grep -n 'LockRank' <<<"$symbols"; then
  echo "error: lock-rank validator symbols present in release archive $lib" >&2
  echo "       the validator must be compiled out under NDEBUG (src/util/sync.cc)" >&2
  exit 1
fi

echo "ok: $lib has Mutex::lock and no LockRank validator symbols"
