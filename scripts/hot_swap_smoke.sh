#!/usr/bin/env bash
# Hot-swap smoke test (CI hot-swap-smoke job): run serve_mlp under mixed-
# tenant load with generous deadlines while a scripted promotion sequence
# (good, corrupt, regressed) flips and gates the model registry mid-traffic.
# Asserts, via scripts/check_hot_swap.py on the JSON summary and
# scripts/check_statusz.py on a live /metricsz scrape, that exactly one
# promotion landed, both poisoned candidates were rejected at their gates,
# and not a single in-flight request was dropped by the swap.
#
# Usage: scripts/hot_swap_smoke.sh [path/to/serve_mlp]
# (default binary: build/asan-ubsan/examples/serve_mlp)

set -u

BIN="${1:-build/asan-ubsan/examples/serve_mlp}"
if [[ ! -x "$BIN" ]]; then
  echo "hot_swap_smoke: binary not found: $BIN" >&2
  echo "build it with: cmake --build --preset asan-ubsan --target serve_mlp" >&2
  exit 1
fi

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "hot_swap_smoke: FAIL: $*" >&2
  echo "--- serve_mlp stderr ---" >&2
  cat "$WORK/stderr" >&2
  exit 1
}

# Mixed-tenant load: "heavy" floods with 3x the weight of "light"; the
# 10-second deadline means the only way a request fails mid-run is a drop —
# which is exactly what the swap must never cause. Good candidates stage
# through framed checkpoints in --registry-dir, so the promotion path
# exercised here is the same load->CRC->canary->flip pipeline the
# resilience layer uses.
"$BIN" --backend=dense --requests=600 --client-threads=6 \
       --inflight-per-client=8 --queue-cap=64 --deadline-ms=10000 \
       --workers=2 --scale=80 \
       --tenants="heavy=24:3,light=12" \
       --promote-script="good,corrupt,regressed" \
       --promote-interval-ms=80 --registry-dir="$WORK/registry" \
       --statusz-port=0 --hold-ms=4000 \
       --json-out="$WORK/stats.json" \
       >"$WORK/stdout" 2>"$WORK/stderr" &
SERVE_PID=$!

# The bound ephemeral port is announced on stderr.
PORT=""
for _ in $(seq 1 600); do
  PORT="$(sed -n 's/^statusz: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
          "$WORK/stderr" | head -n1)"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "serve_mlp exited before binding"
  sleep 0.1
done
[[ -n "$PORT" ]] || fail "no statusz port announced"
echo "hot_swap_smoke: statusz on port $PORT"

# Poll /metricsz until the post-swap exposition validates: the registry
# family must show the settled promotion counters and every tenant its full
# series. Converges once all three scripted attempts have resolved.
CHECK="$(dirname "$0")/check_statusz.py"
VALID=""
for _ in $(seq 1 600); do
  if curl -sf --max-time 5 "http://127.0.0.1:$PORT/metricsz" \
       -o "$WORK/metricsz" \
     && python3 "$CHECK" "$WORK/metricsz" \
          --require-tenants=heavy,light --require-registry \
          >"$WORK/check.log" 2>&1 \
     && grep -q '^sampnn_registry_promote_attempted 3$' "$WORK/metricsz"; then
    VALID=1
    break
  fi
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if [[ -z "$VALID" ]]; then
  cat "$WORK/check.log" >&2
  fail "metricsz never validated while the service was live"
fi
cat "$WORK/check.log"

# The /statusz registry section must show the flipped version live and the
# boot version retained as the rollback target.
curl -sf --max-time 5 "http://127.0.0.1:$PORT/statusz" -o "$WORK/statusz" \
  || fail "GET /statusz failed"
grep -q 'live: v2'      "$WORK/statusz" || fail "/statusz lacks 'live: v2'"
grep -q 'retained: v1'  "$WORK/statusz" || fail "/statusz lacks 'retained: v1'"
grep -q 'rejected-regressed' "$WORK/statusz" \
  || fail "/statusz lacks the last rejection outcome"
grep -q 'heavy'         "$WORK/statusz" || fail "/statusz lacks the tenant table"

wait "$SERVE_PID" || fail "serve_mlp exited non-zero"
SERVE_PID=""

# The scripted outcome mix and the zero-drop invariant, from the summary.
python3 "$(dirname "$0")/check_hot_swap.py" "$WORK/stats.json" \
  || fail "check_hot_swap rejected the summary"

echo "hot_swap_smoke: OK"
