#!/usr/bin/env bash
# Lifecycle smoke test (CI lifecycle-smoke job): run lifecycle_mlp through
# the continuous train-while-serve loop (DESIGN.md §14) three times:
#
#   1. happy path — a covariate shift under live traffic must trip the
#      drift detector, fine-tune, promote through the gates, close the
#      demotion window clean, and measurably recover shifted accuracy,
#      with zero dropped in-flight requests; the live /statusz and
#      /metricsz expositions must show the lifecycle/drift families;
#   2. grad-nan — a poisoned fine-tune round must be caught by the
#      divergence sentinel: zero promotions, the boot model stays live;
#   3. slo-regress — a promotion whose post-promotion p99 blows up must be
#      rolled back automatically by the demotion watch.
#
# scripts/check_lifecycle.py asserts on each JSON summary and
# scripts/check_statusz.py on the live scrape.
#
# Usage: scripts/lifecycle_smoke.sh [path/to/lifecycle_mlp]
# (default binary: build/asan-ubsan/examples/lifecycle_mlp)

set -u

BIN="${1:-build/asan-ubsan/examples/lifecycle_mlp}"
if [[ ! -x "$BIN" ]]; then
  echo "lifecycle_smoke: binary not found: $BIN" >&2
  echo "build it with: cmake --build --preset asan-ubsan --target lifecycle_mlp" >&2
  exit 1
fi

WORK="$(mktemp -d)"
RUN_PID=""
cleanup() {
  [[ -n "$RUN_PID" ]] && kill "$RUN_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "lifecycle_smoke: FAIL: $*" >&2
  echo "--- lifecycle_mlp stderr ---" >&2
  cat "$WORK/stderr" >&2
  exit 1
}

CHECK_LIFECYCLE="$(dirname "$0")/check_lifecycle.py"
CHECK_STATUSZ="$(dirname "$0")/check_statusz.py"

# --- 1. Happy path, with the introspection plane up for scraping. --------
"$BIN" --statusz-port=0 --hold-ms=4000 \
       --checkpoint-dir="$WORK/ckpt" \
       --json-out="$WORK/happy.json" \
       >"$WORK/stdout" 2>"$WORK/stderr" &
RUN_PID=$!

# The bound ephemeral port is announced on stderr.
PORT=""
for _ in $(seq 1 600); do
  PORT="$(sed -n 's/^statusz: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
          "$WORK/stderr" | head -n1)"
  [[ -n "$PORT" ]] && break
  kill -0 "$RUN_PID" 2>/dev/null || fail "lifecycle_mlp exited before binding"
  sleep 0.1
done
[[ -n "$PORT" ]] || fail "no statusz port announced"
echo "lifecycle_smoke: statusz on port $PORT"

# Poll /metricsz until the lifecycle families validate with a promotion
# settled — converges once the drift episode has resolved.
VALID=""
for _ in $(seq 1 600); do
  if curl -sf --max-time 5 "http://127.0.0.1:$PORT/metricsz" \
       -o "$WORK/metricsz" \
     && python3 "$CHECK_STATUSZ" "$WORK/metricsz" \
          --require-registry --require-lifecycle \
          >"$WORK/statusz_check.log" 2>&1 \
     && grep -q '^sampnn_lifecycle_promotions 1$' "$WORK/metricsz"; then
    VALID=1
    break
  fi
  kill -0 "$RUN_PID" 2>/dev/null || break
  sleep 0.1
done
if [[ -z "$VALID" ]]; then
  cat "$WORK/statusz_check.log" >&2
  fail "metricsz never validated while the lifecycle was live"
fi
cat "$WORK/statusz_check.log"

# The /statusz lifecycle section must render the loop's state machine.
curl -sf --max-time 5 "http://127.0.0.1:$PORT/statusz" -o "$WORK/statusz" \
  || fail "GET /statusz failed"
grep -q 'state: '      "$WORK/statusz" || fail "/statusz lacks the loop state"
grep -q 'promotions=1' "$WORK/statusz" || fail "/statusz lacks promotions=1"
grep -q 'drift_score=' "$WORK/statusz" || fail "/statusz lacks drift_score"

wait "$RUN_PID" || fail "lifecycle_mlp exited non-zero (happy)"
RUN_PID=""
python3 "$CHECK_LIFECYCLE" "$WORK/happy.json" --mode=happy \
  || fail "check_lifecycle rejected the happy-path summary"

# --- 2. Poisoned fine-tune: the sentinel must block the promotion. -------
"$BIN" --faults=grad-nan@0 --json-out="$WORK/gradnan.json" \
       >"$WORK/stdout" 2>"$WORK/stderr" \
  || fail "lifecycle_mlp exited non-zero (grad-nan)"
python3 "$CHECK_LIFECYCLE" "$WORK/gradnan.json" --mode=grad-nan \
  || fail "check_lifecycle rejected the grad-nan summary"

# --- 3. Post-promotion SLO regression: must auto-rollback. ---------------
"$BIN" --slo-regress=1 --json-out="$WORK/sloregress.json" \
       >"$WORK/stdout" 2>"$WORK/stderr" \
  || fail "lifecycle_mlp exited non-zero (slo-regress)"
python3 "$CHECK_LIFECYCLE" "$WORK/sloregress.json" --mode=slo-regress \
  || fail "check_lifecycle rejected the slo-regress summary"

echo "lifecycle_smoke: OK"
