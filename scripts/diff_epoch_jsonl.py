#!/usr/bin/env python3
"""Compares two per-epoch JSONL files record by record.

Usage:
  scripts/diff_epoch_jsonl.py <reference.jsonl> <candidate.jsonl> \
      [--ignore KEY ...]

Every line is parsed as JSON; the files must have the same number of
records, and record i must match record i on every key not listed via
--ignore (wall-clock keys like "epoch_seconds" and "rss_bytes" are ignored
by default). Values are compared for exact equality — this is the bitwise
crash-resume check, not a tolerance comparison.

Exit code 0 when identical; prints the first mismatch and exits 1 otherwise.
"""

import argparse
import json
import sys

DEFAULT_IGNORE = {"epoch_seconds", "seconds", "rss_bytes"}


def fail(msg: str) -> None:
    print(f"diff_epoch_jsonl: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> list:
    records = []
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as e:
                    fail(f"{path}:{lineno}: invalid JSON: {e}")
    except OSError as e:
        fail(f"{path}: {e}")
    if not records:
        fail(f"{path}: no records")
    return records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reference", help="reference JSONL path")
    parser.add_argument("candidate", help="candidate JSONL path")
    parser.add_argument("--ignore", action="append", default=[],
                        help="key to exclude from comparison "
                             f"(in addition to {sorted(DEFAULT_IGNORE)})")
    args = parser.parse_args()
    ignore = DEFAULT_IGNORE | set(args.ignore)

    ref = load(args.reference)
    cand = load(args.candidate)
    if len(ref) != len(cand):
        fail(f"record count differs: {args.reference} has {len(ref)}, "
             f"{args.candidate} has {len(cand)}")
    for i, (r, c) in enumerate(zip(ref, cand)):
        keys_r = set(r.keys()) - ignore
        keys_c = set(c.keys()) - ignore
        if keys_r != keys_c:
            fail(f"record {i}: key sets differ: "
                 f"{sorted(keys_r ^ keys_c)} not shared")
        for k in sorted(keys_r):
            if r[k] != c[k]:
                fail(f"record {i}: field '{k}' differs: "
                     f"reference={r[k]!r} candidate={c[k]!r}")
    print(f"diff_epoch_jsonl: OK: {len(ref)} records identical "
          f"(ignored: {sorted(ignore)})")


if __name__ == "__main__":
    main()
