#!/usr/bin/env bash
# Introspection-plane smoke test (CI obs-smoke job): run serve_mlp with the
# embedded statusz server on an ephemeral loopback port and the same
# injected-fault overload as the serve smoke, scrape every endpoint over a
# real socket while the service is live, and validate the /metricsz
# exposition with scripts/check_statusz.py.
#
# Usage: scripts/obs_smoke.sh [path/to/serve_mlp]
# (default binary: build/asan-ubsan/examples/serve_mlp)

set -u

BIN="${1:-build/asan-ubsan/examples/serve_mlp}"
if [[ ! -x "$BIN" ]]; then
  echo "obs_smoke: binary not found: $BIN" >&2
  echo "build it with: cmake --build --preset asan-ubsan --target serve_mlp" >&2
  exit 1
fi

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "obs_smoke: FAIL: $*" >&2
  echo "--- serve_mlp stderr ---" >&2
  cat "$WORK/stderr" >&2
  exit 1
}

# Same overload shape as the serve smoke (sheds, expired deadlines, a
# watchdog trip from the injected hang), plus --hold-ms so the endpoints
# stay scrapeable after the traffic settles into the SLO window. The JSON
# summary is only written after the hold, so the scrape below runs against
# a live, post-traffic service.
"$BIN" --backend=mc --requests=400 --client-threads=8 \
       --inflight-per-client=8 --queue-cap=16 --deadline-ms=50 --workers=2 \
       --watchdog-budget-ms=150 --faults="delay@20,hang@40" \
       --statusz-port=0 --hold-ms=6000 \
       --json-out="$WORK/stats.json" \
       >"$WORK/stdout" 2>"$WORK/stderr" &
SERVE_PID=$!

# The bound ephemeral port is announced on stderr.
PORT=""
for _ in $(seq 1 600); do
  PORT="$(sed -n 's/^statusz: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
          "$WORK/stderr" | head -n1)"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "serve_mlp exited before binding"
  sleep 0.1
done
[[ -n "$PORT" ]] || fail "no statusz port announced"
echo "obs_smoke: statusz on port $PORT"

# Poll /metricsz until the full post-traffic exposition validates: SLO
# gauges need a watchdog tick past the traffic, the retry-after gauge needs
# a shed, exemplars need completed requests. Converges well inside the hold.
CHECK="$(dirname "$0")/check_statusz.py"
VALID=""
for _ in $(seq 1 600); do
  if curl -sf --max-time 5 "http://127.0.0.1:$PORT/metricsz" \
       -o "$WORK/metricsz" \
     && python3 "$CHECK" "$WORK/metricsz" --require-traffic \
          >"$WORK/check.log" 2>&1; then
    VALID=1
    break
  fi
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if [[ -z "$VALID" ]]; then
  cat "$WORK/check.log" >&2
  fail "metricsz never validated while the service was live"
fi
cat "$WORK/check.log"

scrape() {
  curl -sf --max-time 5 "http://127.0.0.1:$PORT$1" -o "$2" \
    || fail "GET $1 failed"
}
scrape /statusz "$WORK/statusz"
scrape /tracez  "$WORK/tracez"

grep -q 'queue_occupancy:' "$WORK/statusz" || fail "/statusz lacks queue_occupancy"
grep -q '\[workers\]'      "$WORK/statusz" || fail "/statusz lacks the worker table"
grep -q 'traceEvents'      "$WORK/tracez"  || fail "/tracez is not a trace JSON"

# Once the clients are done and the queue drained, health flips to 200 ok.
HEALTHY=""
for _ in $(seq 1 600); do
  if curl -sf --max-time 5 "http://127.0.0.1:$PORT/healthz" \
       -o "$WORK/healthz" && grep -q 'ok' "$WORK/healthz"; then
    HEALTHY=1
    break
  fi
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
[[ -n "$HEALTHY" ]] || fail "/healthz never reported ok after the drain"

wait "$SERVE_PID" || fail "serve_mlp exited non-zero"
SERVE_PID=""

# The overload mix itself must still hold (same gate as the serve smoke).
python3 "$(dirname "$0")/check_serve_smoke.py" "$WORK/stats.json" \
  || fail "serve smoke invariants failed"

echo "obs_smoke: OK"
