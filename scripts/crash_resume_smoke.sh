#!/usr/bin/env bash
# Crash-resume smoke test: for each training method, run the resilient
# example uninterrupted to get a reference per-epoch JSONL, then run the
# same configuration again with a SIGKILL injected mid-training
# (SAMPNN_FAULTS=kill@N), resume from the latest checkpoint, and require
# the resumed run's per-epoch losses/accuracies to be bitwise identical to
# the reference.
#
# Usage: scripts/crash_resume_smoke.sh [path/to/resilient_training]
# (default binary: build/release/examples/resilient_training)

set -u

# Bitwise reference/resume comparison requires bitwise-reproducible math:
# force the serial scalar kernels so results cannot depend on the host's
# SIMD support or thread count (see src/tensor/kernel_config.h).
export SAMPNN_DETERMINISTIC_KERNELS=1

BIN="${1:-build/release/examples/resilient_training}"
if [[ ! -x "$BIN" ]]; then
  echo "crash_resume_smoke: binary not found: $BIN" >&2
  echo "build it with: cmake --build --preset release --target resilient_training" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# scale=100 gives 600 train examples = 30 batches/epoch = 90 total steps,
# so kill@50 lands mid-epoch-2, after several checkpoints (cadence 10).
COMMON=(--dataset=mnist --scale=100 --epochs=3 --batch=20 --hidden=32
        --depth=2 --seed=42 --checkpoint_every=10)
KILL_STEP=50

METHODS=(standard dropout adaptive-dropout alsh mc)
FAILED=0

for method in "${METHODS[@]}"; do
  dir="$WORK/$method"
  mkdir -p "$dir"
  echo "== $method: reference run =="
  "$BIN" "${COMMON[@]}" --method="$method" \
      --checkpoint_dir="$dir/ckpt_ref" \
      --epochs_jsonl="$dir/reference.jsonl" || { FAILED=1; continue; }

  echo "== $method: crash run (SIGKILL at step $KILL_STEP) =="
  SAMPNN_FAULTS="kill@$KILL_STEP" "$BIN" "${COMMON[@]}" --method="$method" \
      --checkpoint_dir="$dir/ckpt" \
      --epochs_jsonl="$dir/crashed.jsonl"
  status=$?
  if [[ $status -ne 137 ]]; then
    echo "crash_resume_smoke: $method: expected SIGKILL exit 137, got $status" >&2
    FAILED=1
    continue
  fi
  if [[ -e "$dir/crashed.jsonl" ]]; then
    echo "crash_resume_smoke: $method: killed run must not have written output" >&2
    FAILED=1
    continue
  fi
  if ! ls "$dir/ckpt"/ckpt-*.snnckpt >/dev/null 2>&1; then
    echo "crash_resume_smoke: $method: no checkpoint survived the kill" >&2
    FAILED=1
    continue
  fi

  echo "== $method: resume run =="
  "$BIN" "${COMMON[@]}" --method="$method" \
      --checkpoint_dir="$dir/ckpt" --resume \
      --epochs_jsonl="$dir/resumed.jsonl" || { FAILED=1; continue; }

  if python3 "$(dirname "$0")/diff_epoch_jsonl.py" \
      "$dir/reference.jsonl" "$dir/resumed.jsonl"; then
    echo "== $method: OK (resume bitwise-identical) =="
  else
    echo "crash_resume_smoke: $method: resumed run diverged from reference" >&2
    FAILED=1
  fi
done

if [[ $FAILED -ne 0 ]]; then
  echo "crash_resume_smoke: FAILED" >&2
  exit 1
fi
echo "crash_resume_smoke: all ${#METHODS[@]} methods OK"
