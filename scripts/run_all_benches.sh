#!/usr/bin/env bash
# Runs the complete paper-reproduction bench harness and collects the
# tables into one log. Usage:
#   scripts/run_all_benches.sh [build-dir] [output-file]
# Environment: SAMPNN_SCALE / SAMPNN_HIDDEN override the reduced defaults
# (SAMPNN_SCALE=1 SAMPNN_HIDDEN=1000 = paper scale; expect hours).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found; build with -DSAMPNN_BUILD_BENCHMARKS=ON" >&2
  exit 1
fi

: > "$OUT"
for b in "$BUILD_DIR"/bench/bench_*; do
  [[ -x "$b" && ! -d "$b" ]] || continue
  echo "==> $(basename "$b")" | tee -a "$OUT"
  "$b" 2>/dev/null | tee -a "$OUT"
  echo | tee -a "$OUT"
done
echo "done; tables in $OUT, CSVs under $(pwd)/results"
