#!/usr/bin/env python3
"""Validates a /metricsz scrape from the embedded introspection server.

Usage: check_statusz.py <metricsz_file> [--require-traffic]
       [--require-tenants=name1,name2,...] [--require-registry]
       [--require-lifecycle]

Structural checks (always):
  - every non-comment line is `name{labels} value [# exemplar]` with a
    parseable value;
  - every metric series is preceded by its # HELP and # TYPE comments, and
    the HELP line carries the dotted in-code name (e.g. serve.slo.p99);
  - for each histogram: bucket le values are numerically non-decreasing,
    cumulative counts are monotone, the +Inf bucket equals _count, and
    _overflow is present.

Content checks (--require-traffic, used after an overload smoke run):
  - the serve.slo.* gauges, per-phase histograms, the retry-after gauge,
    and at least one request_id exemplar are all present.

Multi-tenant / hot-swap checks:
  - --require-tenants=a,b: each named tenant exports its
    serve.tenant.<name>.{submitted,admitted,shed,completed} counters and
    its queue-depth gauge, and the per-tenant admission identity
    submitted == admitted + shed holds inside the scrape;
  - --require-registry: the registry.* family is present, live_version is
    a real version (>= 1), and the promotion counters obey
    attempted == promoted + rejected_*.

Lifecycle checks (--require-lifecycle, used after a lifecycle smoke run):
  - the lifecycle.* loop counters, the lifecycle.log.* request-log
    counters, and the drift.* detector series are all present, and the
    request-log flow bound sampled >= dropped + buffered holds inside the
    scrape (drained rows are the remainder and are not exported).

Exits 0 when every invariant holds, 1 otherwise.
"""

import re
import sys

BUCKET_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)_bucket\{le="(?P<le>[^"]+)"\} '
    r"(?P<value>\d+)"
    r"(?P<exemplar> # \{request_id=\"\d+\"\} [0-9.eE+-]+)?$"
)
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (?P<value>[0-9.eE+-]+|NaN|[+-]Inf)$"
)


def fail(msg: str) -> None:
    print(f"check_statusz: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) < 2:
        fail(f"usage: {sys.argv[0]} <metricsz_file> [--require-traffic]")
    require_traffic = "--require-traffic" in sys.argv[2:]
    require_registry = "--require-registry" in sys.argv[2:]
    require_lifecycle = "--require-lifecycle" in sys.argv[2:]
    require_tenants: list[str] = []
    for arg in sys.argv[2:]:
        if arg.startswith("--require-tenants="):
            require_tenants = [
                t for t in arg.split("=", 1)[1].split(",") if t
            ]
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(f"cannot read scrape: {e}")

    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    # histogram base name -> list of (le, cumulative_count)
    buckets: dict[str, list[tuple[float, int]]] = {}
    exemplars = 0
    samples: dict[str, float] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, doc = rest.partition(" ")
            helps[name] = doc
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        m = BUCKET_RE.match(line)
        if m:
            le = float("inf") if m.group("le") == "+Inf" else float(m.group("le"))
            buckets.setdefault(m.group("name"), []).append(
                (le, int(m.group("value")))
            )
            if m.group("exemplar"):
                exemplars += 1
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            fail(f"line {lineno}: unparseable sample: {line!r}")
        samples[m.group("name")] = float(m.group("value"))

    if not samples and not buckets:
        fail("scrape contains no samples at all")

    # Every sample family must carry HELP + TYPE, and the HELP text must
    # name the dotted in-code metric (operators grep the source by it).
    for name in samples:
        base = re.sub(r"_(bucket|sum|count|overflow)$", "", name)
        if base not in types and name not in types:
            fail(f"sample {name} has no # TYPE")
        doc = helps.get(base, helps.get(name, ""))
        if "." not in doc:
            fail(f"HELP for {base or name} lacks the dotted in-code name: {doc!r}")

    # Histogram invariants.
    for name, series in buckets.items():
        les = [le for le, _ in series]
        if les != sorted(les):
            fail(f"{name}: bucket le values out of order: {les}")
        counts = [c for _, c in series]
        if counts != sorted(counts):
            fail(f"{name}: cumulative counts not monotone: {counts}")
        if les[-1] != float("inf"):
            fail(f"{name}: missing +Inf bucket")
        count = samples.get(f"{name}_count")
        if count is None:
            fail(f"{name}: missing _count")
        if counts[-1] != count:
            fail(f"{name}: +Inf bucket {counts[-1]} != _count {count}")
        if f"{name}_overflow" not in samples:
            fail(f"{name}: missing _overflow series")
        if f"{name}_sum" not in samples:
            fail(f"{name}: missing _sum series")

    if require_traffic:
        for required in (
            "sampnn_serve_slo_p50",
            "sampnn_serve_slo_p95",
            "sampnn_serve_slo_p99",
            "sampnn_serve_slo_violation_rate",
            "sampnn_serve_retry_after_ms",
        ):
            if required not in samples:
                fail(f"missing required gauge {required}")
        if helps.get("sampnn_serve_slo_p99") != "serve.slo.p99":
            fail("HELP for sampnn_serve_slo_p99 must be 'serve.slo.p99'")
        for required_hist in (
            "sampnn_serve_request_latency_ms",
            "sampnn_serve_phase_queue_ms",
            "sampnn_serve_phase_backend_compute_ms",
        ):
            if required_hist not in buckets:
                fail(f"missing required histogram {required_hist}")
        if exemplars == 0:
            fail("no request_id exemplar on any +Inf bucket after traffic")

    def sanitized(dotted: str) -> str:
        return "sampnn_" + re.sub(r"[^a-zA-Z0-9_:]", "_", dotted)

    for tenant in require_tenants:
        prefix = f"serve.tenant.{tenant}."
        for suffix in ("submitted", "admitted", "shed", "completed",
                       "queue_depth"):
            if sanitized(prefix + suffix) not in samples:
                fail(f"missing tenant series {prefix + suffix}")
        submitted = samples[sanitized(prefix + "submitted")]
        admitted = samples[sanitized(prefix + "admitted")]
        shed = samples[sanitized(prefix + "shed")]
        if submitted != admitted + shed:
            fail(
                f"tenant {tenant}: submitted {submitted} != admitted "
                f"{admitted} + shed {shed}"
            )

    if require_registry:
        for dotted in (
            "registry.live_version",
            "registry.retained",
            "registry.promote.attempted",
            "registry.promote.promoted",
            "registry.promote.rejected_corrupt",
            "registry.promote.rejected_regressed",
            "registry.promote.rejected_incompatible",
            "registry.promote.rejected_raced",
            "registry.rollbacks",
        ):
            if sanitized(dotted) not in samples:
                fail(f"missing registry series {dotted}")
        live = samples[sanitized("registry.live_version")]
        if live < 1:
            fail(f"registry.live_version {live} is not a real version")
        attempted = samples[sanitized("registry.promote.attempted")]
        resolved = sum(
            samples[sanitized(f"registry.promote.{o}")]
            for o in (
                "promoted",
                "rejected_corrupt",
                "rejected_regressed",
                "rejected_incompatible",
                "rejected_raced",
            )
        )
        if attempted != resolved:
            fail(
                f"registry promotion counters leak: attempted {attempted} "
                f"!= resolved {resolved}"
            )

    if require_lifecycle:
        for dotted in (
            "lifecycle.ticks",
            "lifecycle.rounds",
            "lifecycle.batches",
            "lifecycle.diverged",
            "lifecycle.promotions",
            "lifecycle.rejected_canary",
            "lifecycle.rejected_registry",
            "lifecycle.rollbacks",
            "lifecycle.windows_clean",
            "lifecycle.state",
            "lifecycle.pool",
            "lifecycle.log.offered",
            "lifecycle.log.sampled",
            "lifecycle.log.dropped",
            "lifecycle.log.labeled",
            "lifecycle.log.stalls",
            "lifecycle.log.buffered",
            "drift.score",
            "drift.tripped",
            "drift.trips",
            "drift.observed",
            "drift.refreezes",
        ):
            if sanitized(dotted) not in samples:
                fail(f"missing lifecycle series {dotted}")
        sampled = samples[sanitized("lifecycle.log.sampled")]
        dropped = samples[sanitized("lifecycle.log.dropped")]
        buffered = samples[sanitized("lifecycle.log.buffered")]
        if sampled < dropped + buffered:
            fail(
                f"request-log flow leak: sampled {sampled} < dropped "
                f"{dropped} + buffered {buffered}"
            )

    print(
        f"check_statusz: OK ({len(samples)} samples, {len(buckets)} "
        f"histograms, {exemplars} exemplars)"
    )


if __name__ == "__main__":
    main()
