#!/usr/bin/env python3
"""Validates the JSON summary of a lifecycle_mlp smoke run.

Usage: check_lifecycle.py <stats_json> --mode=happy|grad-nan|slo-regress

The smoke drives lifecycle_mlp through a covariate shift under live traffic
(DESIGN.md §14), so the invariants are exact, not statistical:

happy (no faults):
  - the drift detector tripped at least once on the shifted traffic and the
    reference was refrozen after the episode resolved;
  - at least one fine-tune round ran and exactly its promotions landed
    (live_version == 1 + promoted, promoted >= 1, diverged == 0);
  - every promotion's demotion window resolved, none by rollback;
  - the promoted model actually adapted: shifted-slice accuracy improved
    over the pre-shift model by a real margin;
  - zero-downtime: no cancellations, no deadline misses, and every admitted
    request completed (the serve-side conservation identities).

grad-nan (--faults=grad-nan@0):
  - the sentinel caught the poisoned round: diverged >= 1, and NOTHING was
    promoted — the registry never flipped (live_version == 1);
  - the abandoned episode refroze the reference (no retry storm).

slo-regress (--slo-regress=1):
  - the promotion landed and the demotion watch then rolled it back:
    promotions >= 1, lifecycle rollbacks >= 1, registry rollbacks >= 1,
    and the boot model is live again (live_version == 1).

All modes: request-log flow conservation
    sampled == drained + dropped + buffered, labels joined > 0.

Exits 0 when every invariant holds, 1 otherwise.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_lifecycle: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) < 3 or not sys.argv[2].startswith("--mode="):
        fail(f"usage: {sys.argv[0]} <stats_json> --mode=happy|grad-nan|"
             "slo-regress")
    mode = sys.argv[2].split("=", 1)[1]
    if mode not in ("happy", "grad-nan", "slo-regress"):
        fail(f"unknown mode {mode!r}")
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            stats = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load stats: {e}")

    for section in ("serve", "registry", "lifecycle", "drift", "request_log",
                    "accuracy"):
        if section not in stats:
            fail(f"summary has no {section!r} section")
    serve = stats["serve"]
    registry = stats["registry"]
    lifecycle = stats["lifecycle"]
    drift = stats["drift"]
    log = stats["request_log"]
    accuracy = stats["accuracy"]

    # Zero-downtime, in every mode: the lifecycle churning in the background
    # (fine-tune rounds, promotions, rollbacks) must not cost a single
    # in-flight request.
    if serve["cancelled"] != 0:
        fail(f"{serve['cancelled']} requests cancelled during the lifecycle")
    if serve["deadline_exceeded"] != 0:
        fail(f"{serve['deadline_exceeded']} deadline misses during the "
             "lifecycle")
    if serve["submitted"] != serve["admitted"] + serve["shed"]:
        fail(f"admission leak: submitted {serve['submitted']} != admitted "
             f"{serve['admitted']} + shed {serve['shed']}")
    served = serve["completed"] + serve["completed_degraded"]
    if serve["admitted"] != served:
        fail(f"dropped in-flight requests: admitted {serve['admitted']} != "
             f"served {served}")
    if serve["client_ok"] != served:
        fail(f"client view diverges: client_ok {serve['client_ok']} != "
             f"served {served}")

    # Request-log flow conservation: every sampled row is accounted for.
    if log["sampled"] != log["drained"] + log["dropped"] + log["buffered"]:
        fail(f"request-log leak: sampled {log['sampled']} != drained "
             f"{log['drained']} + dropped {log['dropped']} + buffered "
             f"{log['buffered']}")
    if log["labeled"] == 0:
        fail("no delayed labels ever joined the log")

    # The lifecycle ran at all.
    if lifecycle["ticks"] == 0:
        fail("the loop never ticked")
    if drift["observed"] == 0:
        fail("the drift detector observed no rows")

    if mode == "happy":
        if drift["trips"] < 1:
            fail(f"drift never tripped (score {drift['score']})")
        if drift["refreezes"] < 1:
            fail("the reference was never refrozen after the episode")
        if lifecycle["diverged"] != 0:
            fail(f"{lifecycle['diverged']} rounds diverged without a fault")
        if lifecycle["promotions"] < 1:
            fail("no promotion landed on the happy path")
        if lifecycle["rollbacks"] != 0:
            fail(f"{lifecycle['rollbacks']} rollbacks on the happy path")
        if lifecycle["windows_clean"] < lifecycle["promotions"]:
            fail(f"windows_clean {lifecycle['windows_clean']} < promotions "
                 f"{lifecycle['promotions']}: a demotion window never closed")
        if registry["live_version"] != 1 + registry["promoted"]:
            fail(f"live_version {registry['live_version']} != 1 + promoted "
                 f"{registry['promoted']}")
        if registry["promoted"] < 1:
            fail("registry recorded no promotion")
        improvement = accuracy["shifted_after"] - accuracy["shifted_before"]
        if improvement < 0.10:
            fail(f"promoted model did not adapt: shifted accuracy "
                 f"{accuracy['shifted_before']} -> "
                 f"{accuracy['shifted_after']} (gain {improvement:.3f} "
                 "< 0.10)")
    elif mode == "grad-nan":
        if lifecycle["diverged"] < 1:
            fail("the poisoned round never diverged")
        if lifecycle["promotions"] != 0:
            fail(f"{lifecycle['promotions']} promotions despite divergence")
        if registry["promoted"] != 0:
            fail(f"registry promoted {registry['promoted']} despite "
                 "divergence")
        if registry["live_version"] != 1:
            fail(f"registry flipped to v{registry['live_version']} despite "
                 "divergence")
        if drift["refreezes"] < 1:
            fail("the abandoned episode never refroze the reference")
    elif mode == "slo-regress":
        if lifecycle["promotions"] < 1:
            fail("no promotion landed to regress")
        if lifecycle["rollbacks"] < 1:
            fail("the demotion watch never rolled back")
        if registry["rollbacks"] < 1:
            fail("the registry recorded no rollback")
        if registry["live_version"] != 1:
            fail(f"live_version {registry['live_version']} != 1 after the "
                 "auto-rollback")

    print(f"check_lifecycle: OK (mode {mode}: trips {drift['trips']}, "
          f"rounds {lifecycle['rounds']}, diverged {lifecycle['diverged']}, "
          f"promotions {lifecycle['promotions']}, rollbacks "
          f"{lifecycle['rollbacks']}, live v{registry['live_version']}, "
          f"{serve['admitted']} admitted / {served} served, 0 dropped, "
          f"shifted accuracy {accuracy['shifted_before']} -> "
          f"{accuracy['shifted_after']})")


if __name__ == "__main__":
    main()
