#!/usr/bin/env python3
"""Validates the JSON summary of the hot-swap smoke run.

Usage: check_hot_swap.py <stats_json> [--expect-promoted=N]
       [--expect-rejected-corrupt=N] [--expect-rejected-regressed=N]

The smoke drives serve_mlp with --promote-script="good,corrupt,regressed"
under sustained mixed-tenant load and generous deadlines, so the invariants
are exact, not statistical:

  - exactly the scripted promotion outcomes happened (one flip, one corrupt
    rejection, one regressed rejection; attempted == resolved);
  - the flip landed: live_version == 1 + promoted;
  - zero-downtime: nothing in flight was dropped — no cancellations, no
    deadline misses, and every admitted request completed;
  - counter conservation globally and per tenant:
      submitted == admitted + shed
      admitted  == completed + completed_degraded
    and the tenant slices sum to the global counters;
  - the per-tenant quota actually bit: the flooding tenant shed while the
    light tenant lost nothing (when both tenants are present in the run).

Exits 0 when every invariant holds, 1 otherwise.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_hot_swap: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def arg_int(flag: str, default: int) -> int:
    prefix = f"--{flag}="
    for arg in sys.argv[2:]:
        if arg.startswith(prefix):
            return int(arg[len(prefix):])
    return default


def main() -> None:
    if len(sys.argv) < 2:
        fail(f"usage: {sys.argv[0]} <stats_json> [--expect-*=N]")
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            stats = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load stats: {e}")

    registry = stats.get("registry")
    if registry is None:
        fail("summary has no registry section (was --promote-script set?)")

    expect_promoted = arg_int("expect-promoted", 1)
    expect_corrupt = arg_int("expect-rejected-corrupt", 1)
    expect_regressed = arg_int("expect-rejected-regressed", 1)

    if registry["promoted"] != expect_promoted:
        fail(f"promoted {registry['promoted']} != {expect_promoted}")
    if registry["rejected_corrupt"] != expect_corrupt:
        fail(
            f"rejected_corrupt {registry['rejected_corrupt']} "
            f"!= {expect_corrupt}"
        )
    if registry["rejected_regressed"] != expect_regressed:
        fail(
            f"rejected_regressed {registry['rejected_regressed']} "
            f"!= {expect_regressed}"
        )
    resolved = (
        registry["promoted"]
        + registry["rejected_corrupt"]
        + registry["rejected_regressed"]
        + registry["rejected_incompatible"]
        + registry["rejected_raced"]
    )
    if registry["promote_attempted"] != resolved:
        fail(
            f"promotion counters leak: attempted "
            f"{registry['promote_attempted']} != resolved {resolved}"
        )
    if registry["live_version"] != 1 + registry["promoted"]:
        fail(
            f"live_version {registry['live_version']} != "
            f"1 + promoted {registry['promoted']}"
        )

    # Zero-downtime: a hot swap must not cost a single in-flight request.
    if stats["cancelled"] != 0:
        fail(f"{stats['cancelled']} requests cancelled during the swap")
    if stats["deadline_exceeded"] != 0:
        fail(f"{stats['deadline_exceeded']} deadline misses during the swap")
    if stats["watchdog_trips"] != 0:
        fail(f"{stats['watchdog_trips']} watchdog trips during the swap")

    # Conservation, globally then per tenant.
    if stats["submitted"] != stats["admitted"] + stats["shed"]:
        fail(
            f"global admission leak: submitted {stats['submitted']} != "
            f"admitted {stats['admitted']} + shed {stats['shed']}"
        )
    served = stats["completed"] + stats["completed_degraded"]
    if stats["admitted"] != served:
        fail(
            f"dropped in-flight requests: admitted {stats['admitted']} != "
            f"served {served}"
        )
    if stats["client_ok"] != served:
        fail(
            f"client view diverges: client_ok {stats['client_ok']} != "
            f"served {served}"
        )

    tenants = stats.get("tenants", [])
    if not tenants:
        fail("summary has no per-tenant slices")
    for key in ("submitted", "admitted", "shed", "completed",
                "completed_degraded", "deadline_exceeded", "cancelled"):
        total = sum(t[key] for t in tenants)
        if total != stats[key]:
            fail(
                f"tenant slices leak: sum({key}) {total} != "
                f"global {stats[key]}"
            )
    for t in tenants:
        if t["submitted"] != t["admitted"] + t["shed"]:
            fail(
                f"tenant {t['name']}: submitted {t['submitted']} != "
                f"admitted {t['admitted']} + shed {t['shed']}"
            )
        t_served = t["completed"] + t["completed_degraded"]
        if t["admitted"] != t_served:
            fail(
                f"tenant {t['name']}: admitted {t['admitted']} != "
                f"served {t_served}"
            )

    print(
        "check_hot_swap: OK (promoted "
        f"{registry['promoted']}, rejected "
        f"{registry['rejected_corrupt']}+{registry['rejected_regressed']}, "
        f"live v{registry['live_version']}, {stats['admitted']} admitted / "
        f"{served} served, 0 dropped)"
    )


if __name__ == "__main__":
    main()
