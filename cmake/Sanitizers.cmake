# Sanitizer wiring for sampnn.
#
# Usage: configure with -DSAMPNN_SANITIZE="address;undefined" (or "thread",
# or "" for none). The CMakePresets.json `asan-ubsan` and `tsan` presets set
# this for you. Sanitizers apply to every target in the build so the static
# library and the tests agree on the instrumented ABI.
#
# ASan/UBSan and TSan are mutually exclusive (they disagree about the
# shadow-memory layout); configuring both is an error here rather than a
# mysterious crash at load time.

set(SAMPNN_SANITIZE "" CACHE STRING
    "Semicolon- or comma-separated sanitizers: address, undefined, leak, thread")

if(NOT SAMPNN_SANITIZE)
  return()
endif()

string(REPLACE "," ";" _sampnn_sanitizers "${SAMPNN_SANITIZE}")

set(_sampnn_have_thread FALSE)
set(_sampnn_have_addr FALSE)
foreach(_san IN LISTS _sampnn_sanitizers)
  if(_san STREQUAL "thread")
    set(_sampnn_have_thread TRUE)
  elseif(_san STREQUAL "address" OR _san STREQUAL "leak")
    set(_sampnn_have_addr TRUE)
  elseif(NOT _san STREQUAL "undefined")
    message(FATAL_ERROR "SAMPNN_SANITIZE: unknown sanitizer '${_san}' "
                        "(expected address, undefined, leak, or thread)")
  endif()
endforeach()

if(_sampnn_have_thread AND _sampnn_have_addr)
  message(FATAL_ERROR "SAMPNN_SANITIZE: thread cannot be combined with "
                      "address/leak (incompatible shadow memory)")
endif()

string(REPLACE ";" "," _sampnn_fsanitize "${_sampnn_sanitizers}")
message(STATUS "sampnn: building with -fsanitize=${_sampnn_fsanitize}")

# -fno-sanitize-recover turns every UBSan report into a hard failure so
# `ctest` cannot pass while UB is being diagnosed. Frame pointers keep the
# sanitizer backtraces usable at -O1/-O2.
add_compile_options(
  -fsanitize=${_sampnn_fsanitize}
  -fno-omit-frame-pointer
  -fno-sanitize-recover=all
)
add_link_options(-fsanitize=${_sampnn_fsanitize})
