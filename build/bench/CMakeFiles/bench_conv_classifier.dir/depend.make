# Empty dependencies file for bench_conv_classifier.
# This may be replaced when dependencies are built.
