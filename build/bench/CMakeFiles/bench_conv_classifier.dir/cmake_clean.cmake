file(REMOVE_RECURSE
  "CMakeFiles/bench_conv_classifier.dir/bench_conv_classifier.cpp.o"
  "CMakeFiles/bench_conv_classifier.dir/bench_conv_classifier.cpp.o.d"
  "bench_conv_classifier"
  "bench_conv_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conv_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
