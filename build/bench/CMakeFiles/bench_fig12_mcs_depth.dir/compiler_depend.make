# Empty compiler generated dependencies file for bench_fig12_mcs_depth.
# This may be replaced when dependencies are built.
