file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_parallel_alsh.dir/bench_ablation_parallel_alsh.cpp.o"
  "CMakeFiles/bench_ablation_parallel_alsh.dir/bench_ablation_parallel_alsh.cpp.o.d"
  "bench_ablation_parallel_alsh"
  "bench_ablation_parallel_alsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parallel_alsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
