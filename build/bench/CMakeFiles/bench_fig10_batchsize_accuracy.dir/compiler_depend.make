# Empty compiler generated dependencies file for bench_fig10_batchsize_accuracy.
# This may be replaced when dependencies are built.
