# Empty dependencies file for bench_table4_time_minibatch.
# This may be replaced when dependencies are built.
