file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_time_minibatch.dir/bench_table4_time_minibatch.cpp.o"
  "CMakeFiles/bench_table4_time_minibatch.dir/bench_table4_time_minibatch.cpp.o.d"
  "bench_table4_time_minibatch"
  "bench_table4_time_minibatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_time_minibatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
