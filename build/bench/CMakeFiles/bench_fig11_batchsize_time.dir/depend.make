# Empty dependencies file for bench_fig11_batchsize_time.
# This may be replaced when dependencies are built.
