file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_approx_matmul.dir/bench_micro_approx_matmul.cpp.o"
  "CMakeFiles/bench_micro_approx_matmul.dir/bench_micro_approx_matmul.cpp.o.d"
  "bench_micro_approx_matmul"
  "bench_micro_approx_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_approx_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
