# Empty dependencies file for bench_micro_approx_matmul.
# This may be replaced when dependencies are built.
