# Empty dependencies file for bench_fig8_time_vs_depth.
# This may be replaced when dependencies are built.
