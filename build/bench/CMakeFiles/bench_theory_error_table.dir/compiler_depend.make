# Empty compiler generated dependencies file for bench_theory_error_table.
# This may be replaced when dependencies are built.
