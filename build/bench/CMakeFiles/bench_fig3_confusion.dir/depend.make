# Empty dependencies file for bench_fig3_confusion.
# This may be replaced when dependencies are built.
