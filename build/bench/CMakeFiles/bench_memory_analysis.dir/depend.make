# Empty dependencies file for bench_memory_analysis.
# This may be replaced when dependencies are built.
