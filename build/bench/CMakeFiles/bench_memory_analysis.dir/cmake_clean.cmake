file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_analysis.dir/bench_memory_analysis.cpp.o"
  "CMakeFiles/bench_memory_analysis.dir/bench_memory_analysis.cpp.o.d"
  "bench_memory_analysis"
  "bench_memory_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
