file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_time_stochastic.dir/bench_table3_time_stochastic.cpp.o"
  "CMakeFiles/bench_table3_time_stochastic.dir/bench_table3_time_stochastic.cpp.o.d"
  "bench_table3_time_stochastic"
  "bench_table3_time_stochastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_time_stochastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
