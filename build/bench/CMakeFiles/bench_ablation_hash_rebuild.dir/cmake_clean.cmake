file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hash_rebuild.dir/bench_ablation_hash_rebuild.cpp.o"
  "CMakeFiles/bench_ablation_hash_rebuild.dir/bench_ablation_hash_rebuild.cpp.o.d"
  "bench_ablation_hash_rebuild"
  "bench_ablation_hash_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hash_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
