# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sampnn_util_test[1]_include.cmake")
include("/root/repo/build/tests/sampnn_tensor_test[1]_include.cmake")
include("/root/repo/build/tests/sampnn_nn_test[1]_include.cmake")
include("/root/repo/build/tests/sampnn_optim_test[1]_include.cmake")
include("/root/repo/build/tests/sampnn_lsh_test[1]_include.cmake")
include("/root/repo/build/tests/sampnn_approx_test[1]_include.cmake")
include("/root/repo/build/tests/sampnn_cnn_test[1]_include.cmake")
include("/root/repo/build/tests/sampnn_data_test[1]_include.cmake")
include("/root/repo/build/tests/sampnn_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/sampnn_core_test[1]_include.cmake")
include("/root/repo/build/tests/sampnn_integration_test[1]_include.cmake")
