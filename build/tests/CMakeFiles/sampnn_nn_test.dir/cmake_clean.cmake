file(REMOVE_RECURSE
  "CMakeFiles/sampnn_nn_test.dir/nn/activation_test.cc.o"
  "CMakeFiles/sampnn_nn_test.dir/nn/activation_test.cc.o.d"
  "CMakeFiles/sampnn_nn_test.dir/nn/initializer_test.cc.o"
  "CMakeFiles/sampnn_nn_test.dir/nn/initializer_test.cc.o.d"
  "CMakeFiles/sampnn_nn_test.dir/nn/loss_test.cc.o"
  "CMakeFiles/sampnn_nn_test.dir/nn/loss_test.cc.o.d"
  "CMakeFiles/sampnn_nn_test.dir/nn/mlp_test.cc.o"
  "CMakeFiles/sampnn_nn_test.dir/nn/mlp_test.cc.o.d"
  "CMakeFiles/sampnn_nn_test.dir/nn/serialize_test.cc.o"
  "CMakeFiles/sampnn_nn_test.dir/nn/serialize_test.cc.o.d"
  "sampnn_nn_test"
  "sampnn_nn_test.pdb"
  "sampnn_nn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampnn_nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
