# Empty dependencies file for sampnn_nn_test.
# This may be replaced when dependencies are built.
