file(REMOVE_RECURSE
  "CMakeFiles/sampnn_data_test.dir/data/batcher_test.cc.o"
  "CMakeFiles/sampnn_data_test.dir/data/batcher_test.cc.o.d"
  "CMakeFiles/sampnn_data_test.dir/data/dataset_test.cc.o"
  "CMakeFiles/sampnn_data_test.dir/data/dataset_test.cc.o.d"
  "CMakeFiles/sampnn_data_test.dir/data/idx_io_test.cc.o"
  "CMakeFiles/sampnn_data_test.dir/data/idx_io_test.cc.o.d"
  "CMakeFiles/sampnn_data_test.dir/data/synthetic_test.cc.o"
  "CMakeFiles/sampnn_data_test.dir/data/synthetic_test.cc.o.d"
  "sampnn_data_test"
  "sampnn_data_test.pdb"
  "sampnn_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampnn_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
