# Empty dependencies file for sampnn_data_test.
# This may be replaced when dependencies are built.
