file(REMOVE_RECURSE
  "CMakeFiles/sampnn_integration_test.dir/integration/determinism_test.cc.o"
  "CMakeFiles/sampnn_integration_test.dir/integration/determinism_test.cc.o.d"
  "CMakeFiles/sampnn_integration_test.dir/integration/pipeline_test.cc.o"
  "CMakeFiles/sampnn_integration_test.dir/integration/pipeline_test.cc.o.d"
  "sampnn_integration_test"
  "sampnn_integration_test.pdb"
  "sampnn_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampnn_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
