# Empty dependencies file for sampnn_integration_test.
# This may be replaced when dependencies are built.
