
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metrics/accuracy_test.cc" "tests/CMakeFiles/sampnn_metrics_test.dir/metrics/accuracy_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_metrics_test.dir/metrics/accuracy_test.cc.o.d"
  "/root/repo/tests/metrics/confusion_matrix_test.cc" "tests/CMakeFiles/sampnn_metrics_test.dir/metrics/confusion_matrix_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_metrics_test.dir/metrics/confusion_matrix_test.cc.o.d"
  "/root/repo/tests/metrics/memory_tracker_test.cc" "tests/CMakeFiles/sampnn_metrics_test.dir/metrics/memory_tracker_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_metrics_test.dir/metrics/memory_tracker_test.cc.o.d"
  "/root/repo/tests/metrics/reporter_test.cc" "tests/CMakeFiles/sampnn_metrics_test.dir/metrics/reporter_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_metrics_test.dir/metrics/reporter_test.cc.o.d"
  "/root/repo/tests/metrics/split_timer_test.cc" "tests/CMakeFiles/sampnn_metrics_test.dir/metrics/split_timer_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_metrics_test.dir/metrics/split_timer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sampnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
