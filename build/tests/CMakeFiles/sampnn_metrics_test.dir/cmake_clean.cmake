file(REMOVE_RECURSE
  "CMakeFiles/sampnn_metrics_test.dir/metrics/accuracy_test.cc.o"
  "CMakeFiles/sampnn_metrics_test.dir/metrics/accuracy_test.cc.o.d"
  "CMakeFiles/sampnn_metrics_test.dir/metrics/confusion_matrix_test.cc.o"
  "CMakeFiles/sampnn_metrics_test.dir/metrics/confusion_matrix_test.cc.o.d"
  "CMakeFiles/sampnn_metrics_test.dir/metrics/memory_tracker_test.cc.o"
  "CMakeFiles/sampnn_metrics_test.dir/metrics/memory_tracker_test.cc.o.d"
  "CMakeFiles/sampnn_metrics_test.dir/metrics/reporter_test.cc.o"
  "CMakeFiles/sampnn_metrics_test.dir/metrics/reporter_test.cc.o.d"
  "CMakeFiles/sampnn_metrics_test.dir/metrics/split_timer_test.cc.o"
  "CMakeFiles/sampnn_metrics_test.dir/metrics/split_timer_test.cc.o.d"
  "sampnn_metrics_test"
  "sampnn_metrics_test.pdb"
  "sampnn_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampnn_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
