# Empty compiler generated dependencies file for sampnn_metrics_test.
# This may be replaced when dependencies are built.
