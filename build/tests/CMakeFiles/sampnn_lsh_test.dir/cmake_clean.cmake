file(REMOVE_RECURSE
  "CMakeFiles/sampnn_lsh_test.dir/lsh/alsh_transform_test.cc.o"
  "CMakeFiles/sampnn_lsh_test.dir/lsh/alsh_transform_test.cc.o.d"
  "CMakeFiles/sampnn_lsh_test.dir/lsh/hash_table_test.cc.o"
  "CMakeFiles/sampnn_lsh_test.dir/lsh/hash_table_test.cc.o.d"
  "CMakeFiles/sampnn_lsh_test.dir/lsh/mips_test.cc.o"
  "CMakeFiles/sampnn_lsh_test.dir/lsh/mips_test.cc.o.d"
  "CMakeFiles/sampnn_lsh_test.dir/lsh/srp_hash_test.cc.o"
  "CMakeFiles/sampnn_lsh_test.dir/lsh/srp_hash_test.cc.o.d"
  "CMakeFiles/sampnn_lsh_test.dir/lsh/wta_hash_test.cc.o"
  "CMakeFiles/sampnn_lsh_test.dir/lsh/wta_hash_test.cc.o.d"
  "sampnn_lsh_test"
  "sampnn_lsh_test.pdb"
  "sampnn_lsh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampnn_lsh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
