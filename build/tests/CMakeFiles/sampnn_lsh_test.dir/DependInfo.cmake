
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lsh/alsh_transform_test.cc" "tests/CMakeFiles/sampnn_lsh_test.dir/lsh/alsh_transform_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_lsh_test.dir/lsh/alsh_transform_test.cc.o.d"
  "/root/repo/tests/lsh/hash_table_test.cc" "tests/CMakeFiles/sampnn_lsh_test.dir/lsh/hash_table_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_lsh_test.dir/lsh/hash_table_test.cc.o.d"
  "/root/repo/tests/lsh/mips_test.cc" "tests/CMakeFiles/sampnn_lsh_test.dir/lsh/mips_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_lsh_test.dir/lsh/mips_test.cc.o.d"
  "/root/repo/tests/lsh/srp_hash_test.cc" "tests/CMakeFiles/sampnn_lsh_test.dir/lsh/srp_hash_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_lsh_test.dir/lsh/srp_hash_test.cc.o.d"
  "/root/repo/tests/lsh/wta_hash_test.cc" "tests/CMakeFiles/sampnn_lsh_test.dir/lsh/wta_hash_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_lsh_test.dir/lsh/wta_hash_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sampnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
