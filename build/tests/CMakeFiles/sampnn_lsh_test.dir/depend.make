# Empty dependencies file for sampnn_lsh_test.
# This may be replaced when dependencies are built.
