file(REMOVE_RECURSE
  "CMakeFiles/sampnn_approx_test.dir/approx/adelman_test.cc.o"
  "CMakeFiles/sampnn_approx_test.dir/approx/adelman_test.cc.o.d"
  "CMakeFiles/sampnn_approx_test.dir/approx/approx_matmul_test.cc.o"
  "CMakeFiles/sampnn_approx_test.dir/approx/approx_matmul_test.cc.o.d"
  "CMakeFiles/sampnn_approx_test.dir/approx/drineas_test.cc.o"
  "CMakeFiles/sampnn_approx_test.dir/approx/drineas_test.cc.o.d"
  "CMakeFiles/sampnn_approx_test.dir/approx/property_test.cc.o"
  "CMakeFiles/sampnn_approx_test.dir/approx/property_test.cc.o.d"
  "CMakeFiles/sampnn_approx_test.dir/approx/sampling_test.cc.o"
  "CMakeFiles/sampnn_approx_test.dir/approx/sampling_test.cc.o.d"
  "sampnn_approx_test"
  "sampnn_approx_test.pdb"
  "sampnn_approx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampnn_approx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
