# Empty compiler generated dependencies file for sampnn_approx_test.
# This may be replaced when dependencies are built.
