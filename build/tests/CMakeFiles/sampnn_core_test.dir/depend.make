# Empty dependencies file for sampnn_core_test.
# This may be replaced when dependencies are built.
