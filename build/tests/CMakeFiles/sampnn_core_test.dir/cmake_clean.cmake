file(REMOVE_RECURSE
  "CMakeFiles/sampnn_core_test.dir/core/alsh_trainer_test.cc.o"
  "CMakeFiles/sampnn_core_test.dir/core/alsh_trainer_test.cc.o.d"
  "CMakeFiles/sampnn_core_test.dir/core/dropout_trainer_test.cc.o"
  "CMakeFiles/sampnn_core_test.dir/core/dropout_trainer_test.cc.o.d"
  "CMakeFiles/sampnn_core_test.dir/core/error_propagation_test.cc.o"
  "CMakeFiles/sampnn_core_test.dir/core/error_propagation_test.cc.o.d"
  "CMakeFiles/sampnn_core_test.dir/core/experiment_test.cc.o"
  "CMakeFiles/sampnn_core_test.dir/core/experiment_test.cc.o.d"
  "CMakeFiles/sampnn_core_test.dir/core/mc_trainer_test.cc.o"
  "CMakeFiles/sampnn_core_test.dir/core/mc_trainer_test.cc.o.d"
  "CMakeFiles/sampnn_core_test.dir/core/method_selector_test.cc.o"
  "CMakeFiles/sampnn_core_test.dir/core/method_selector_test.cc.o.d"
  "CMakeFiles/sampnn_core_test.dir/core/standard_trainer_test.cc.o"
  "CMakeFiles/sampnn_core_test.dir/core/standard_trainer_test.cc.o.d"
  "CMakeFiles/sampnn_core_test.dir/core/trainer_test.cc.o"
  "CMakeFiles/sampnn_core_test.dir/core/trainer_test.cc.o.d"
  "sampnn_core_test"
  "sampnn_core_test.pdb"
  "sampnn_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampnn_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
