
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/alsh_trainer_test.cc" "tests/CMakeFiles/sampnn_core_test.dir/core/alsh_trainer_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_core_test.dir/core/alsh_trainer_test.cc.o.d"
  "/root/repo/tests/core/dropout_trainer_test.cc" "tests/CMakeFiles/sampnn_core_test.dir/core/dropout_trainer_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_core_test.dir/core/dropout_trainer_test.cc.o.d"
  "/root/repo/tests/core/error_propagation_test.cc" "tests/CMakeFiles/sampnn_core_test.dir/core/error_propagation_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_core_test.dir/core/error_propagation_test.cc.o.d"
  "/root/repo/tests/core/experiment_test.cc" "tests/CMakeFiles/sampnn_core_test.dir/core/experiment_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_core_test.dir/core/experiment_test.cc.o.d"
  "/root/repo/tests/core/mc_trainer_test.cc" "tests/CMakeFiles/sampnn_core_test.dir/core/mc_trainer_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_core_test.dir/core/mc_trainer_test.cc.o.d"
  "/root/repo/tests/core/method_selector_test.cc" "tests/CMakeFiles/sampnn_core_test.dir/core/method_selector_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_core_test.dir/core/method_selector_test.cc.o.d"
  "/root/repo/tests/core/standard_trainer_test.cc" "tests/CMakeFiles/sampnn_core_test.dir/core/standard_trainer_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_core_test.dir/core/standard_trainer_test.cc.o.d"
  "/root/repo/tests/core/trainer_test.cc" "tests/CMakeFiles/sampnn_core_test.dir/core/trainer_test.cc.o" "gcc" "tests/CMakeFiles/sampnn_core_test.dir/core/trainer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sampnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
