file(REMOVE_RECURSE
  "CMakeFiles/sampnn_cnn_test.dir/cnn/conv2d_property_test.cc.o"
  "CMakeFiles/sampnn_cnn_test.dir/cnn/conv2d_property_test.cc.o.d"
  "CMakeFiles/sampnn_cnn_test.dir/cnn/conv2d_test.cc.o"
  "CMakeFiles/sampnn_cnn_test.dir/cnn/conv2d_test.cc.o.d"
  "CMakeFiles/sampnn_cnn_test.dir/cnn/conv_classifier_test.cc.o"
  "CMakeFiles/sampnn_cnn_test.dir/cnn/conv_classifier_test.cc.o.d"
  "CMakeFiles/sampnn_cnn_test.dir/cnn/feature_extractor_test.cc.o"
  "CMakeFiles/sampnn_cnn_test.dir/cnn/feature_extractor_test.cc.o.d"
  "sampnn_cnn_test"
  "sampnn_cnn_test.pdb"
  "sampnn_cnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampnn_cnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
