# Empty compiler generated dependencies file for sampnn_cnn_test.
# This may be replaced when dependencies are built.
