# Empty compiler generated dependencies file for sampnn_util_test.
# This may be replaced when dependencies are built.
