file(REMOVE_RECURSE
  "CMakeFiles/sampnn_util_test.dir/util/csv_test.cc.o"
  "CMakeFiles/sampnn_util_test.dir/util/csv_test.cc.o.d"
  "CMakeFiles/sampnn_util_test.dir/util/env_test.cc.o"
  "CMakeFiles/sampnn_util_test.dir/util/env_test.cc.o.d"
  "CMakeFiles/sampnn_util_test.dir/util/flags_test.cc.o"
  "CMakeFiles/sampnn_util_test.dir/util/flags_test.cc.o.d"
  "CMakeFiles/sampnn_util_test.dir/util/rng_test.cc.o"
  "CMakeFiles/sampnn_util_test.dir/util/rng_test.cc.o.d"
  "CMakeFiles/sampnn_util_test.dir/util/status_test.cc.o"
  "CMakeFiles/sampnn_util_test.dir/util/status_test.cc.o.d"
  "CMakeFiles/sampnn_util_test.dir/util/threadpool_test.cc.o"
  "CMakeFiles/sampnn_util_test.dir/util/threadpool_test.cc.o.d"
  "sampnn_util_test"
  "sampnn_util_test.pdb"
  "sampnn_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampnn_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
