# Empty dependencies file for sampnn_tensor_test.
# This may be replaced when dependencies are built.
