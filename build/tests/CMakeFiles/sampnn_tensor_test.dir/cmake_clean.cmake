file(REMOVE_RECURSE
  "CMakeFiles/sampnn_tensor_test.dir/tensor/kernels_test.cc.o"
  "CMakeFiles/sampnn_tensor_test.dir/tensor/kernels_test.cc.o.d"
  "CMakeFiles/sampnn_tensor_test.dir/tensor/matrix_test.cc.o"
  "CMakeFiles/sampnn_tensor_test.dir/tensor/matrix_test.cc.o.d"
  "sampnn_tensor_test"
  "sampnn_tensor_test.pdb"
  "sampnn_tensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampnn_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
