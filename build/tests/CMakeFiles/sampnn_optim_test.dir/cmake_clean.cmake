file(REMOVE_RECURSE
  "CMakeFiles/sampnn_optim_test.dir/optim/optimizer_test.cc.o"
  "CMakeFiles/sampnn_optim_test.dir/optim/optimizer_test.cc.o.d"
  "sampnn_optim_test"
  "sampnn_optim_test.pdb"
  "sampnn_optim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampnn_optim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
