# Empty compiler generated dependencies file for sampnn_optim_test.
# This may be replaced when dependencies are built.
