# Empty dependencies file for sampnn.
# This may be replaced when dependencies are built.
