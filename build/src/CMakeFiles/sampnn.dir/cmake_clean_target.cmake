file(REMOVE_RECURSE
  "libsampnn.a"
)
