
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/approx/adelman.cc" "src/CMakeFiles/sampnn.dir/approx/adelman.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/approx/adelman.cc.o.d"
  "/root/repo/src/approx/approx_matmul.cc" "src/CMakeFiles/sampnn.dir/approx/approx_matmul.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/approx/approx_matmul.cc.o.d"
  "/root/repo/src/approx/drineas.cc" "src/CMakeFiles/sampnn.dir/approx/drineas.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/approx/drineas.cc.o.d"
  "/root/repo/src/approx/sampling.cc" "src/CMakeFiles/sampnn.dir/approx/sampling.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/approx/sampling.cc.o.d"
  "/root/repo/src/cnn/conv2d.cc" "src/CMakeFiles/sampnn.dir/cnn/conv2d.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/cnn/conv2d.cc.o.d"
  "/root/repo/src/cnn/conv_classifier.cc" "src/CMakeFiles/sampnn.dir/cnn/conv_classifier.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/cnn/conv_classifier.cc.o.d"
  "/root/repo/src/cnn/feature_extractor.cc" "src/CMakeFiles/sampnn.dir/cnn/feature_extractor.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/cnn/feature_extractor.cc.o.d"
  "/root/repo/src/core/alsh_trainer.cc" "src/CMakeFiles/sampnn.dir/core/alsh_trainer.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/core/alsh_trainer.cc.o.d"
  "/root/repo/src/core/dropout_trainer.cc" "src/CMakeFiles/sampnn.dir/core/dropout_trainer.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/core/dropout_trainer.cc.o.d"
  "/root/repo/src/core/error_propagation.cc" "src/CMakeFiles/sampnn.dir/core/error_propagation.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/core/error_propagation.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/sampnn.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/mc_trainer.cc" "src/CMakeFiles/sampnn.dir/core/mc_trainer.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/core/mc_trainer.cc.o.d"
  "/root/repo/src/core/method_selector.cc" "src/CMakeFiles/sampnn.dir/core/method_selector.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/core/method_selector.cc.o.d"
  "/root/repo/src/core/standard_trainer.cc" "src/CMakeFiles/sampnn.dir/core/standard_trainer.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/core/standard_trainer.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/CMakeFiles/sampnn.dir/core/trainer.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/core/trainer.cc.o.d"
  "/root/repo/src/data/batcher.cc" "src/CMakeFiles/sampnn.dir/data/batcher.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/data/batcher.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/sampnn.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/idx_io.cc" "src/CMakeFiles/sampnn.dir/data/idx_io.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/data/idx_io.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/sampnn.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/data/synthetic.cc.o.d"
  "/root/repo/src/lsh/alsh_transform.cc" "src/CMakeFiles/sampnn.dir/lsh/alsh_transform.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/lsh/alsh_transform.cc.o.d"
  "/root/repo/src/lsh/hash_table.cc" "src/CMakeFiles/sampnn.dir/lsh/hash_table.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/lsh/hash_table.cc.o.d"
  "/root/repo/src/lsh/mips.cc" "src/CMakeFiles/sampnn.dir/lsh/mips.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/lsh/mips.cc.o.d"
  "/root/repo/src/lsh/srp_hash.cc" "src/CMakeFiles/sampnn.dir/lsh/srp_hash.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/lsh/srp_hash.cc.o.d"
  "/root/repo/src/lsh/wta_hash.cc" "src/CMakeFiles/sampnn.dir/lsh/wta_hash.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/lsh/wta_hash.cc.o.d"
  "/root/repo/src/metrics/accuracy.cc" "src/CMakeFiles/sampnn.dir/metrics/accuracy.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/metrics/accuracy.cc.o.d"
  "/root/repo/src/metrics/confusion_matrix.cc" "src/CMakeFiles/sampnn.dir/metrics/confusion_matrix.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/metrics/confusion_matrix.cc.o.d"
  "/root/repo/src/metrics/memory_tracker.cc" "src/CMakeFiles/sampnn.dir/metrics/memory_tracker.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/metrics/memory_tracker.cc.o.d"
  "/root/repo/src/metrics/reporter.cc" "src/CMakeFiles/sampnn.dir/metrics/reporter.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/metrics/reporter.cc.o.d"
  "/root/repo/src/metrics/split_timer.cc" "src/CMakeFiles/sampnn.dir/metrics/split_timer.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/metrics/split_timer.cc.o.d"
  "/root/repo/src/nn/activation.cc" "src/CMakeFiles/sampnn.dir/nn/activation.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/nn/activation.cc.o.d"
  "/root/repo/src/nn/initializer.cc" "src/CMakeFiles/sampnn.dir/nn/initializer.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/nn/initializer.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/CMakeFiles/sampnn.dir/nn/layer.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/nn/layer.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/sampnn.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/sampnn.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/sampnn.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/nn/serialize.cc.o.d"
  "/root/repo/src/optim/adagrad.cc" "src/CMakeFiles/sampnn.dir/optim/adagrad.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/optim/adagrad.cc.o.d"
  "/root/repo/src/optim/adam.cc" "src/CMakeFiles/sampnn.dir/optim/adam.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/optim/adam.cc.o.d"
  "/root/repo/src/optim/factory.cc" "src/CMakeFiles/sampnn.dir/optim/factory.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/optim/factory.cc.o.d"
  "/root/repo/src/optim/sgd.cc" "src/CMakeFiles/sampnn.dir/optim/sgd.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/optim/sgd.cc.o.d"
  "/root/repo/src/tensor/kernels.cc" "src/CMakeFiles/sampnn.dir/tensor/kernels.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/tensor/kernels.cc.o.d"
  "/root/repo/src/tensor/matrix.cc" "src/CMakeFiles/sampnn.dir/tensor/matrix.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/tensor/matrix.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/sampnn.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/util/csv.cc.o.d"
  "/root/repo/src/util/env.cc" "src/CMakeFiles/sampnn.dir/util/env.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/util/env.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/sampnn.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/util/flags.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/sampnn.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/sampnn.dir/util/status.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/util/status.cc.o.d"
  "/root/repo/src/util/threadpool.cc" "src/CMakeFiles/sampnn.dir/util/threadpool.cc.o" "gcc" "src/CMakeFiles/sampnn.dir/util/threadpool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
