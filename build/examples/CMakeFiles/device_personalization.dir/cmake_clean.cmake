file(REMOVE_RECURSE
  "CMakeFiles/device_personalization.dir/device_personalization.cpp.o"
  "CMakeFiles/device_personalization.dir/device_personalization.cpp.o.d"
  "device_personalization"
  "device_personalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
