# Empty compiler generated dependencies file for device_personalization.
# This may be replaced when dependencies are built.
