# Empty dependencies file for deep_error_propagation.
# This may be replaced when dependencies are built.
