file(REMOVE_RECURSE
  "CMakeFiles/deep_error_propagation.dir/deep_error_propagation.cpp.o"
  "CMakeFiles/deep_error_propagation.dir/deep_error_propagation.cpp.o.d"
  "deep_error_propagation"
  "deep_error_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_error_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
