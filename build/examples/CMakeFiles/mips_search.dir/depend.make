# Empty dependencies file for mips_search.
# This may be replaced when dependencies are built.
