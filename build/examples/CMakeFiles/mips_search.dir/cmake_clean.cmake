file(REMOVE_RECURSE
  "CMakeFiles/mips_search.dir/mips_search.cpp.o"
  "CMakeFiles/mips_search.dir/mips_search.cpp.o.d"
  "mips_search"
  "mips_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mips_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
