# Empty dependencies file for conv_image_classifier.
# This may be replaced when dependencies are built.
