file(REMOVE_RECURSE
  "CMakeFiles/conv_image_classifier.dir/conv_image_classifier.cpp.o"
  "CMakeFiles/conv_image_classifier.dir/conv_image_classifier.cpp.o.d"
  "conv_image_classifier"
  "conv_image_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_image_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
