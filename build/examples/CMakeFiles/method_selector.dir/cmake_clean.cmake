file(REMOVE_RECURSE
  "CMakeFiles/method_selector.dir/method_selector.cpp.o"
  "CMakeFiles/method_selector.dir/method_selector.cpp.o.d"
  "method_selector"
  "method_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
