# Empty compiler generated dependencies file for method_selector.
# This may be replaced when dependencies are built.
