// Synthetic stand-ins for the paper's six benchmark datasets (§8.2).
//
// SUBSTITUTION (documented in DESIGN.md): the real image corpora are not
// available offline, so each dataset is emulated by a class-prototype
// generative model with the same dimensionality, class count, and split
// sizes, and a per-dataset difficulty profile ordered like the paper's
// results (MNIST easiest → CIFAR-10 hardest). Prototypes are smooth random
// fields (coarse Gaussian grids bilinearly upsampled), samples are
// prototype + optional spatial shift + pixel noise, clamped to [0, 1].

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace sampnn {

/// Generative parameters for one synthetic image-classification dataset.
struct SyntheticSpec {
  std::string name;
  size_t image_height = 28;
  size_t image_width = 28;
  size_t channels = 1;
  size_t num_classes = 10;
  size_t num_examples = 70000;

  // Difficulty knobs.
  size_t prototypes_per_class = 2;  ///< more prototypes = more intra-class variety
  float noise_stddev = 0.08f;       ///< pixel noise
  float shared_structure = 0.2f;    ///< weight of class-independent background
                                    ///< (high = classes overlap = harder)
  size_t max_shift = 2;             ///< random translation in pixels
  size_t coarse_grid = 7;           ///< prototype smoothness (low = smoother)

  /// Flattened feature dimension.
  size_t dim() const { return image_height * image_width * channels; }
};

/// Split sizes per the paper's §8.2 partition table.
struct SplitSpec {
  size_t train = 0;
  size_t test = 0;
  size_t validation = 0;
};

/// One of the six paper benchmarks, fully specified.
struct BenchmarkDatasetSpec {
  SyntheticSpec synthetic;
  SplitSpec splits;
};

/// Returns the spec for "mnist" | "kmnist" | "fashion" | "emnist" | "norb" |
/// "cifar10"; NotFound otherwise.
StatusOr<BenchmarkDatasetSpec> GetBenchmarkSpec(const std::string& name);

/// All six benchmark names in paper order.
std::vector<std::string> BenchmarkDatasetNames();

/// Generates a synthetic dataset from `spec` (deterministic in `seed`).
Dataset GenerateSynthetic(const SyntheticSpec& spec, uint64_t seed);

/// Generates a benchmark dataset and partitions it per its SplitSpec,
/// scaled down by `scale` (>= 1; sample counts divided by scale, dimensions
/// untouched). scale=1 reproduces the paper's sizes.
StatusOr<DatasetSplits> GenerateBenchmark(const std::string& name,
                                          uint64_t seed, size_t scale = 1);

}  // namespace sampnn
