#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace sampnn {

namespace {

// Smooth random field: coarse Gaussian grid, bilinearly upsampled to h x w.
// Values roughly in [-1, 1] after tanh squashing.
std::vector<float> SmoothField(size_t h, size_t w, size_t coarse, Rng& rng) {
  coarse = std::max<size_t>(2, coarse);
  std::vector<float> grid(coarse * coarse);
  for (auto& v : grid) v = rng.NextGaussian();
  std::vector<float> out(h * w);
  for (size_t y = 0; y < h; ++y) {
    const float fy = (h == 1) ? 0.0f
                              : static_cast<float>(y) * (coarse - 1) / (h - 1);
    const size_t y0 = std::min(coarse - 2, static_cast<size_t>(fy));
    const float ty = fy - y0;
    for (size_t x = 0; x < w; ++x) {
      const float fx = (w == 1)
                           ? 0.0f
                           : static_cast<float>(x) * (coarse - 1) / (w - 1);
      const size_t x0 = std::min(coarse - 2, static_cast<size_t>(fx));
      const float tx = fx - x0;
      const float v00 = grid[y0 * coarse + x0];
      const float v01 = grid[y0 * coarse + x0 + 1];
      const float v10 = grid[(y0 + 1) * coarse + x0];
      const float v11 = grid[(y0 + 1) * coarse + x0 + 1];
      const float v = (1 - ty) * ((1 - tx) * v00 + tx * v01) +
                      ty * ((1 - tx) * v10 + tx * v11);
      out[y * w + x] = std::tanh(v);
    }
  }
  return out;
}

// Translates a single-channel image by (dy, dx) with zero fill.
void ShiftInto(const std::vector<float>& src, size_t h, size_t w, int dy,
               int dx, std::vector<float>* dst) {
  dst->assign(h * w, 0.0f);
  for (size_t y = 0; y < h; ++y) {
    const int sy = static_cast<int>(y) - dy;
    if (sy < 0 || sy >= static_cast<int>(h)) continue;
    for (size_t x = 0; x < w; ++x) {
      const int sx = static_cast<int>(x) - dx;
      if (sx < 0 || sx >= static_cast<int>(w)) continue;
      (*dst)[y * w + x] = src[static_cast<size_t>(sy) * w + sx];
    }
  }
}

}  // namespace

StatusOr<BenchmarkDatasetSpec> GetBenchmarkSpec(const std::string& name) {
  BenchmarkDatasetSpec spec;
  SyntheticSpec& s = spec.synthetic;
  s.name = name;
  if (name == "mnist") {
    // 70,000 28x28 grayscale, 10 classes; easy (paper: all methods > 90%
    // except Dropout at p=0.05).
    s.num_examples = 70000;
    s.prototypes_per_class = 2;
    s.noise_stddev = 0.08f;
    s.shared_structure = 0.15f;
    spec.splits = {55000, 10000, 5000};
    return spec;
  }
  if (name == "kmnist") {
    // Cursive Japanese characters: harder than MNIST (paper: Standard^S 84%
    // vs 96% on MNIST; Dropout^S collapses to 9.84%).
    s.num_examples = 70000;
    s.prototypes_per_class = 4;
    s.noise_stddev = 0.14f;
    s.shared_structure = 0.28f;
    s.coarse_grid = 9;
    spec.splits = {55000, 10000, 5000};
    return spec;
  }
  if (name == "fashion") {
    s.num_examples = 70000;
    s.prototypes_per_class = 3;
    s.noise_stddev = 0.12f;
    s.shared_structure = 0.25f;
    spec.splits = {55000, 10000, 5000};
    return spec;
  }
  if (name == "emnist") {
    // 145,600 handwritten letters, 26 classes.
    s.num_examples = 145600;
    s.num_classes = 26;
    s.prototypes_per_class = 3;
    s.noise_stddev = 0.12f;
    s.shared_structure = 0.22f;
    spec.splits = {104800, 20000, 20000};
    return spec;
  }
  if (name == "norb") {
    // 48,600 96x96 grayscale photographs of toys, 5 classes. Note the
    // paper's unusual split: test larger than train.
    s.num_examples = 48600;
    s.image_height = 96;
    s.image_width = 96;
    s.num_classes = 5;
    s.prototypes_per_class = 6;
    s.noise_stddev = 0.10f;
    s.shared_structure = 0.3f;
    s.max_shift = 4;
    s.coarse_grid = 10;
    spec.splits = {22300, 24300, 2000};
    return spec;
  }
  if (name == "cifar10") {
    // 60,000 32x32 color images, 10 classes; hardest for MLPs. Tuned so a
    // dense MLP can learn partially while aggressive sampling methods sit
    // near chance (paper Table 2: ALSH at 10.31% on CIFAR-10 while
    // Standard's conv setting reaches 93%).
    s.num_examples = 60000;
    s.image_height = 32;
    s.image_width = 32;
    s.channels = 3;
    s.prototypes_per_class = 6;
    s.noise_stddev = 0.20f;
    s.shared_structure = 0.45f;
    s.max_shift = 3;
    s.coarse_grid = 6;
    spec.splits = {45000, 10000, 5000};
    return spec;
  }
  return Status::NotFound("unknown benchmark dataset: " + name);
}

std::vector<std::string> BenchmarkDatasetNames() {
  return {"mnist", "kmnist", "fashion", "emnist", "norb", "cifar10"};
}

Dataset GenerateSynthetic(const SyntheticSpec& spec, uint64_t seed) {
  SAMPNN_CHECK_GT(spec.num_classes, 0u);
  SAMPNN_CHECK_GT(spec.num_examples, 0u);
  Rng rng(seed);
  const size_t h = spec.image_height, w = spec.image_width;
  const size_t plane = h * w;
  const size_t dim = spec.dim();

  // Class-independent background fields shared across classes; weighting
  // them up makes classes overlap (harder datasets).
  const size_t kNumShared = 4;
  std::vector<std::vector<float>> shared;
  shared.reserve(kNumShared * spec.channels);
  for (size_t i = 0; i < kNumShared * spec.channels; ++i) {
    shared.push_back(SmoothField(h, w, spec.coarse_grid, rng));
  }

  // Per class x prototype x channel smooth fields.
  const size_t protos = std::max<size_t>(1, spec.prototypes_per_class);
  std::vector<std::vector<float>> prototypes(
      spec.num_classes * protos * spec.channels);
  for (auto& p : prototypes) p = SmoothField(h, w, spec.coarse_grid, rng);

  Matrix features(spec.num_examples, dim);
  std::vector<int32_t> labels(spec.num_examples);
  std::vector<float> shifted(plane);
  const float class_w = 1.0f - spec.shared_structure;

  for (size_t e = 0; e < spec.num_examples; ++e) {
    const size_t cls = rng.NextBounded(spec.num_classes);
    const size_t proto = rng.NextBounded(protos);
    labels[e] = static_cast<int32_t>(cls);
    const int max_shift = static_cast<int>(spec.max_shift);
    const int dy = max_shift == 0
                       ? 0
                       : static_cast<int>(rng.NextBounded(2 * max_shift + 1)) -
                             max_shift;
    const int dx = max_shift == 0
                       ? 0
                       : static_cast<int>(rng.NextBounded(2 * max_shift + 1)) -
                             max_shift;
    auto row = features.Row(e);
    for (size_t c = 0; c < spec.channels; ++c) {
      const auto& proto_field =
          prototypes[(cls * protos + proto) * spec.channels + c];
      ShiftInto(proto_field, h, w, dy, dx, &shifted);
      const auto& bg = shared[rng.NextBounded(kNumShared) * spec.channels + c];
      for (size_t i = 0; i < plane; ++i) {
        float v = 0.5f + 0.5f * (class_w * shifted[i] +
                                 spec.shared_structure * bg[i]);
        v += rng.NextGaussian(0.0f, spec.noise_stddev);
        row[c * plane + i] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  return std::move(
      Dataset::Create(std::move(features), std::move(labels), spec.num_classes))
      .ValueOrDie("GenerateSynthetic");
}

StatusOr<DatasetSplits> GenerateBenchmark(const std::string& name,
                                          uint64_t seed, size_t scale) {
  if (scale == 0) {
    return Status::InvalidArgument("GenerateBenchmark: scale must be >= 1");
  }
  SAMPNN_ASSIGN_OR_RETURN(BenchmarkDatasetSpec spec, GetBenchmarkSpec(name));
  SyntheticSpec synth = spec.synthetic;
  SplitSpec splits = spec.splits;
  // Floors keep small-split datasets (NORB's 22300-example train set in
  // particular) statistically meaningful at aggressive scales.
  auto scaled = [scale](size_t n, size_t floor) {
    return std::max(std::min(n, floor), n / scale);
  };
  splits.train = scaled(splits.train, 400);
  splits.test = scaled(splits.test, 200);
  splits.validation = scaled(splits.validation, 50);
  synth.num_examples = splits.train + splits.test + splits.validation;
  Dataset all = GenerateSynthetic(synth, seed);
  Rng rng(seed ^ 0xD1CEB00CULL);
  return SplitDataset(all, splits.train, splits.test, splits.validation, rng);
}

}  // namespace sampnn
