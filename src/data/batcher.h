// Minibatch iteration over a dataset: shuffled epochs, fixed batch size
// (batch size 1 = the paper's stochastic setting).

#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

/// \brief Yields shuffled minibatches; reshuffles at each epoch boundary.
class Batcher {
 public:
  /// `batch_size` >= 1. If `drop_remainder`, a trailing partial batch is
  /// skipped (keeps per-step cost uniform for timing experiments).
  Batcher(const Dataset& data, size_t batch_size, uint64_t seed,
          bool drop_remainder = false);

  /// Fills the next batch. Returns false exactly once per epoch (when the
  /// epoch is exhausted); the following call starts a reshuffled epoch.
  bool Next(Matrix* x, std::vector<int32_t>* y);

  /// Restarts the current epoch ordering from the beginning.
  void Rewind() { cursor_ = 0; }

  /// Batches per epoch.
  size_t BatchesPerEpoch() const;

  size_t batch_size() const { return batch_size_; }

  /// Serializes the shuffle RNG, the current epoch's order, and the cursor
  /// so a resumed run continues mid-epoch with the identical batch stream.
  Status SaveState(std::ostream& out) const;
  /// Restores state written by SaveState() for the *same* dataset size;
  /// InvalidArgument if the order length or indices don't match.
  Status LoadState(std::istream& in);

 private:
  void ShuffleOrder();

  const Dataset& data_;
  size_t batch_size_;
  bool drop_remainder_;
  Rng rng_;
  std::vector<size_t> order_;
  size_t cursor_ = 0;
};

}  // namespace sampnn
