#include "src/data/dataset.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"

namespace sampnn {

StatusOr<Dataset> Dataset::Create(Matrix features, std::vector<int32_t> labels,
                                  size_t num_classes) {
  if (labels.size() != features.rows()) {
    return Status::InvalidArgument(
        "Dataset: labels size " + std::to_string(labels.size()) +
        " != examples " + std::to_string(features.rows()));
  }
  if (num_classes == 0) {
    return Status::InvalidArgument("Dataset: num_classes must be > 0");
  }
  for (int32_t y : labels) {
    if (y < 0 || static_cast<size_t>(y) >= num_classes) {
      return Status::OutOfRange("Dataset: label " + std::to_string(y) +
                                " outside [0, " + std::to_string(num_classes) +
                                ")");
    }
  }
  Dataset d;
  d.features_ = std::move(features);
  d.labels_ = std::move(labels);
  d.num_classes_ = num_classes;
  return d;
}

Dataset Dataset::Subset(std::span<const size_t> indices) const {
  Matrix feats(indices.size(), dim());
  std::vector<int32_t> labels(indices.size());
  for (size_t r = 0; r < indices.size(); ++r) {
    const size_t i = indices[r];
    SAMPNN_CHECK_LT(i, size());
    auto src = features_.Row(i);
    std::copy(src.begin(), src.end(), feats.Row(r).begin());
    labels[r] = labels_[i];
  }
  Dataset out;
  out.features_ = std::move(feats);
  out.labels_ = std::move(labels);
  out.num_classes_ = num_classes_;
  return out;
}

Dataset Dataset::Slice(size_t begin, size_t end) const {
  SAMPNN_CHECK_LE(begin, end);
  SAMPNN_CHECK_LE(end, size());
  std::vector<size_t> idx(end - begin);
  std::iota(idx.begin(), idx.end(), begin);
  return Subset(idx);
}

void Dataset::FillBatch(std::span<const size_t> indices, Matrix* x,
                        std::vector<int32_t>* y) const {
  SAMPNN_CHECK(x != nullptr);
  SAMPNN_CHECK(y != nullptr);
  if (x->rows() != indices.size() || x->cols() != dim()) {
    *x = Matrix(indices.size(), dim());
  }
  y->resize(indices.size());
  for (size_t r = 0; r < indices.size(); ++r) {
    const size_t i = indices[r];
    SAMPNN_CHECK_LT(i, size());
    auto src = features_.Row(i);
    std::copy(src.begin(), src.end(), x->Row(r).begin());
    (*y)[r] = labels_[i];
  }
}

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(num_classes_, 0);
  for (int32_t y : labels_) ++counts[static_cast<size_t>(y)];
  return counts;
}

void Dataset::Shuffle(Rng& rng) {
  std::vector<size_t> perm(size());
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  *this = Subset(perm);
}

StatusOr<DatasetSplits> SplitDataset(const Dataset& data, size_t train_size,
                                     size_t test_size, size_t validation_size,
                                     Rng& rng) {
  const size_t total = train_size + test_size + validation_size;
  if (total > data.size()) {
    return Status::InvalidArgument(
        "SplitDataset: requested " + std::to_string(total) + " examples, have " +
        std::to_string(data.size()));
  }
  std::vector<size_t> perm(data.size());
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  DatasetSplits splits;
  std::span<const size_t> view(perm);
  splits.train = data.Subset(view.subspan(0, train_size));
  splits.test = data.Subset(view.subspan(train_size, test_size));
  splits.validation =
      data.Subset(view.subspan(train_size + test_size, validation_size));
  return splits;
}

}  // namespace sampnn
