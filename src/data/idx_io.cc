#include "src/data/idx_io.h"

#include <algorithm>
#include <fstream>

#include "src/util/binary_io.h"

namespace sampnn {

namespace {

constexpr uint32_t kImagesMagic = 0x00000803;
constexpr uint32_t kLabelsMagic = 0x00000801;
// Plausibility caps: reject garbage headers before allocating. 2^16 pixels
// per side and 2^30 examples are far beyond any IDX corpus.
constexpr uint32_t kMaxSide = 1u << 16;
constexpr uint32_t kMaxCount = 1u << 30;

StatusOr<uint32_t> ReadBigEndianU32(std::ifstream& in) {
  uint8_t buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  if (!in) return Status::IOError("truncated IDX header");
  return (static_cast<uint32_t>(buf[0]) << 24) |
         (static_cast<uint32_t>(buf[1]) << 16) |
         (static_cast<uint32_t>(buf[2]) << 8) | static_cast<uint32_t>(buf[3]);
}

}  // namespace

StatusOr<IdxImages> ReadIdxImages(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  SAMPNN_ASSIGN_OR_RETURN(uint32_t magic, ReadBigEndianU32(in));
  if (magic != kImagesMagic) {
    return Status::InvalidArgument(path + ": bad image magic " +
                                   std::to_string(magic));
  }
  SAMPNN_ASSIGN_OR_RETURN(uint32_t count, ReadBigEndianU32(in));
  SAMPNN_ASSIGN_OR_RETURN(uint32_t rows, ReadBigEndianU32(in));
  SAMPNN_ASSIGN_OR_RETURN(uint32_t cols, ReadBigEndianU32(in));
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument(path + ": zero image dimensions");
  }
  if (rows > kMaxSide || cols > kMaxSide || count > kMaxCount) {
    return Status::InvalidArgument(path + ": implausible IDX dimensions " +
                                   std::to_string(count) + "x" +
                                   std::to_string(rows) + "x" +
                                   std::to_string(cols));
  }
  // Bounds-check the declared payload against the actual file length before
  // allocating: a corrupt header must not trigger a giant allocation or a
  // partial read of garbage.
  const uint64_t expected =
      static_cast<uint64_t>(count) * rows * cols;
  if (!FitsRemaining(in, expected, 1)) {
    // Truncation (vs. a garbage header) keeps the IOError contract.
    return Status::IOError(
        path + ": file too short for declared " + std::to_string(count) +
        " images of " + std::to_string(rows) + "x" + std::to_string(cols));
  }
  IdxImages images;
  images.count = count;
  images.rows = rows;
  images.cols = cols;
  images.pixels.resize(static_cast<size_t>(count) * rows * cols);
  in.read(reinterpret_cast<char*>(images.pixels.data()),
          static_cast<std::streamsize>(images.pixels.size()));
  if (!in) return Status::IOError(path + ": truncated pixel data");
  return images;
}

StatusOr<std::vector<uint8_t>> ReadIdxLabels(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  SAMPNN_ASSIGN_OR_RETURN(uint32_t magic, ReadBigEndianU32(in));
  if (magic != kLabelsMagic) {
    return Status::InvalidArgument(path + ": bad label magic " +
                                   std::to_string(magic));
  }
  SAMPNN_ASSIGN_OR_RETURN(uint32_t count, ReadBigEndianU32(in));
  if (count > kMaxCount) {
    return Status::InvalidArgument(path + ": implausible label count " +
                                   std::to_string(count));
  }
  if (!FitsRemaining(in, count, 1)) {
    return Status::IOError(path + ": file too short for declared " +
                          std::to_string(count) + " labels");
  }
  std::vector<uint8_t> labels(count);
  in.read(reinterpret_cast<char*>(labels.data()),
          static_cast<std::streamsize>(labels.size()));
  if (!in) return Status::IOError(path + ": truncated label data");
  return labels;
}

StatusOr<Dataset> LoadIdxDataset(const std::string& images_path,
                                 const std::string& labels_path,
                                 size_t num_classes) {
  SAMPNN_ASSIGN_OR_RETURN(IdxImages images, ReadIdxImages(images_path));
  SAMPNN_ASSIGN_OR_RETURN(std::vector<uint8_t> raw_labels,
                          ReadIdxLabels(labels_path));
  if (raw_labels.size() != images.count) {
    return Status::InvalidArgument("image/label count mismatch: " +
                                   std::to_string(images.count) + " vs " +
                                   std::to_string(raw_labels.size()));
  }
  const size_t dim = images.rows * images.cols;
  Matrix features(images.count, dim);
  float* fd = features.data();
  for (size_t i = 0; i < images.pixels.size(); ++i) {
    fd[i] = static_cast<float>(images.pixels[i]) / 255.0f;
  }
  std::vector<int32_t> labels(raw_labels.begin(), raw_labels.end());
  if (num_classes == 0) {
    uint8_t mx = 0;
    for (uint8_t l : raw_labels) mx = std::max(mx, l);
    num_classes = static_cast<size_t>(mx) + 1;
  }
  return Dataset::Create(std::move(features), std::move(labels), num_classes);
}

StatusOr<DatasetSplits> LoadMnistDirectory(const std::string& dir,
                                           size_t validation_size) {
  SAMPNN_ASSIGN_OR_RETURN(
      Dataset train_all,
      LoadIdxDataset(dir + "/train-images-idx3-ubyte",
                     dir + "/train-labels-idx1-ubyte", 10));
  SAMPNN_ASSIGN_OR_RETURN(Dataset test,
                          LoadIdxDataset(dir + "/t10k-images-idx3-ubyte",
                                         dir + "/t10k-labels-idx1-ubyte", 10));
  if (validation_size >= train_all.size()) {
    return Status::InvalidArgument("validation size exceeds train size");
  }
  DatasetSplits splits;
  const size_t train_size = train_all.size() - validation_size;
  splits.train = train_all.Slice(0, train_size);
  splits.validation = train_all.Slice(train_size, train_all.size());
  splits.test = std::move(test);
  return splits;
}

}  // namespace sampnn
