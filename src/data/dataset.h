// In-memory labeled dataset with the paper's train/test/validation
// partitioning (§8.2).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

/// \brief Feature matrix (num_examples x dim) plus integer class labels.
class Dataset {
 public:
  Dataset() = default;

  /// Validates that labels match the feature rows and lie in
  /// [0, num_classes).
  static StatusOr<Dataset> Create(Matrix features, std::vector<int32_t> labels,
                                  size_t num_classes);

  size_t size() const { return features_.rows(); }
  size_t dim() const { return features_.cols(); }
  size_t num_classes() const { return num_classes_; }

  const Matrix& features() const { return features_; }
  const std::vector<int32_t>& labels() const { return labels_; }

  /// Feature row of example i.
  std::span<const float> Example(size_t i) const { return features_.Row(i); }
  /// Label of example i.
  int32_t Label(size_t i) const { return labels_[i]; }

  /// Copies the selected examples into a new dataset. Indices must be valid.
  Dataset Subset(std::span<const size_t> indices) const;

  /// Copies examples [begin, end) into a new dataset.
  Dataset Slice(size_t begin, size_t end) const;

  /// Copies rows `indices` into a batch matrix / label vector (resized).
  void FillBatch(std::span<const size_t> indices, Matrix* x,
                 std::vector<int32_t>* y) const;

  /// Per-class example counts.
  std::vector<size_t> ClassCounts() const;

  /// Shuffles examples in place.
  void Shuffle(Rng& rng);

 private:
  Matrix features_;
  std::vector<int32_t> labels_;
  size_t num_classes_ = 0;
};

/// Train/test/validation split of one source dataset.
struct DatasetSplits {
  Dataset train;
  Dataset test;
  Dataset validation;
};

/// Randomly partitions `data` into the given sizes (paper §8.2: "We randomly
/// partition the datasets"). Sizes must sum to at most data.size(); any
/// remainder is dropped. Returns InvalidArgument otherwise.
StatusOr<DatasetSplits> SplitDataset(const Dataset& data, size_t train_size,
                                     size_t test_size, size_t validation_size,
                                     Rng& rng);

}  // namespace sampnn
