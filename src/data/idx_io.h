// IDX file format reader (the MNIST-family on-disk format). When real
// dataset files are available (train-images-idx3-ubyte etc.) the benchmark
// harness can run on them instead of the synthetic substitutes; see
// GenerateBenchmark in synthetic.h for the fallback.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace sampnn {

/// Parsed IDX image file: `count` images of `rows` x `cols` uint8 pixels.
struct IdxImages {
  size_t count = 0;
  size_t rows = 0;
  size_t cols = 0;
  std::vector<uint8_t> pixels;  ///< count * rows * cols bytes
};

/// Reads an idx3-ubyte image file (magic 0x00000803). Returns IOError on
/// missing files and InvalidArgument on malformed headers.
StatusOr<IdxImages> ReadIdxImages(const std::string& path);

/// Reads an idx1-ubyte label file (magic 0x00000801).
StatusOr<std::vector<uint8_t>> ReadIdxLabels(const std::string& path);

/// Builds a Dataset from an image/label file pair; pixels scaled to [0, 1].
/// `num_classes` of 0 means infer as max(label)+1.
StatusOr<Dataset> LoadIdxDataset(const std::string& images_path,
                                 const std::string& labels_path,
                                 size_t num_classes = 0);

/// Loads an MNIST-layout directory (train-images-idx3-ubyte,
/// train-labels-idx1-ubyte, t10k-images-idx3-ubyte, t10k-labels-idx1-ubyte),
/// carving `validation_size` examples off the end of train.
StatusOr<DatasetSplits> LoadMnistDirectory(const std::string& dir,
                                           size_t validation_size = 5000);

}  // namespace sampnn
