#include "src/data/batcher.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"

namespace sampnn {

Batcher::Batcher(const Dataset& data, size_t batch_size, uint64_t seed,
                 bool drop_remainder)
    : data_(data),
      batch_size_(batch_size),
      drop_remainder_(drop_remainder),
      rng_(seed),
      order_(data.size()) {
  SAMPNN_CHECK_GE(batch_size, 1u);
  std::iota(order_.begin(), order_.end(), 0);
  ShuffleOrder();
}

void Batcher::ShuffleOrder() { rng_.Shuffle(order_); }

size_t Batcher::BatchesPerEpoch() const {
  if (drop_remainder_) return data_.size() / batch_size_;
  return (data_.size() + batch_size_ - 1) / batch_size_;
}

bool Batcher::Next(Matrix* x, std::vector<int32_t>* y) {
  if (cursor_ >= data_.size() ||
      (drop_remainder_ && cursor_ + batch_size_ > data_.size())) {
    cursor_ = 0;
    ShuffleOrder();
    return false;
  }
  const size_t end = std::min(data_.size(), cursor_ + batch_size_);
  std::span<const size_t> indices(order_.data() + cursor_, end - cursor_);
  data_.FillBatch(indices, x, y);
  cursor_ = end;
  return true;
}

}  // namespace sampnn
