#include "src/data/batcher.h"

#include <algorithm>
#include <numeric>

#include "src/util/binary_io.h"
#include "src/util/check.h"

namespace sampnn {

Batcher::Batcher(const Dataset& data, size_t batch_size, uint64_t seed,
                 bool drop_remainder)
    : data_(data),
      batch_size_(batch_size),
      drop_remainder_(drop_remainder),
      rng_(seed),
      order_(data.size()) {
  SAMPNN_CHECK_GE(batch_size, 1u);
  std::iota(order_.begin(), order_.end(), 0);
  ShuffleOrder();
}

void Batcher::ShuffleOrder() { rng_.Shuffle(order_); }

size_t Batcher::BatchesPerEpoch() const {
  if (drop_remainder_) return data_.size() / batch_size_;
  return (data_.size() + batch_size_ - 1) / batch_size_;
}

Status Batcher::SaveState(std::ostream& out) const {
  WriteRngState(out, rng_.GetState());
  WriteU64(out, order_.size());
  for (size_t idx : order_) WriteU64(out, idx);
  WriteU64(out, cursor_);
  if (!out) return Status::IOError("batcher state write failure");
  return Status::OK();
}

Status Batcher::LoadState(std::istream& in) {
  SAMPNN_ASSIGN_OR_RETURN(RngState rng_state, ReadRngState(in));
  SAMPNN_ASSIGN_OR_RETURN(uint64_t count, ReadU64(in));
  if (count != order_.size()) {
    return Status::InvalidArgument(
        "batcher state covers " + std::to_string(count) +
        " examples, dataset has " + std::to_string(order_.size()));
  }
  if (!FitsRemaining(in, count + 1, sizeof(uint64_t))) {
    return Status::InvalidArgument("batcher state truncated");
  }
  std::vector<size_t> order(count);
  for (uint64_t i = 0; i < count; ++i) {
    SAMPNN_ASSIGN_OR_RETURN(uint64_t idx, ReadU64(in));
    if (idx >= data_.size()) {
      return Status::InvalidArgument("batcher state index out of range");
    }
    order[i] = static_cast<size_t>(idx);
  }
  SAMPNN_ASSIGN_OR_RETURN(uint64_t cursor, ReadU64(in));
  if (cursor > data_.size()) {
    return Status::InvalidArgument("batcher state cursor out of range");
  }
  rng_.SetState(rng_state);
  order_ = std::move(order);
  cursor_ = static_cast<size_t>(cursor);
  return Status::OK();
}

bool Batcher::Next(Matrix* x, std::vector<int32_t>* y) {
  if (cursor_ >= data_.size() ||
      (drop_remainder_ && cursor_ + batch_size_ > data_.size())) {
    cursor_ = 0;
    ShuffleOrder();
    return false;
  }
  const size_t end = std::min(data_.size(), cursor_ + batch_size_);
  std::span<const size_t> indices(order_.data() + cursor_, end - cursor_);
  data_.FillBatch(indices, x, y);
  cursor_ = end;
  return true;
}

}  // namespace sampnn
