#include "src/serve/inference_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>

#include "src/obs/phase_sampler.h"
#include "src/obs/slo_tracker.h"
#include "src/obs/statusz.h"
#include "src/resilience/fault_injector.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/trace.h"
#include "src/util/check.h"
#include "src/util/env.h"

namespace sampnn {

namespace {

// EWMA with alpha = 1/4 over q10 fixed-point samples; the first sample
// seeds the average (0 means "no data", so a seeded average is >= 1).
void UpdateEwmaQ10(std::atomic<int64_t>& ewma, int64_t sample_q10) {
  int64_t cur = ewma.load(std::memory_order_relaxed);
  for (;;) {
    const int64_t next = cur == 0 ? std::max<int64_t>(1, sample_q10)
                                  : cur + ((sample_q10 - cur) >> 2);
    if (ewma.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

// Observability mirror of the always-on ServeStats atomics, gated on
// ObsEnabled() (telemetry switch OR a configured introspection server).
void InferenceService::MirrorCount(std::string_view name,
                                   uint64_t delta) const {
  if (!ObsEnabled()) return;
  MetricsRegistry::Get().GetCounter(name).Add(delta);
}

void InferenceService::MirrorGauge(std::string_view name, double value) const {
  if (!ObsEnabled()) return;
  MetricsRegistry::Get().GetGauge(name).Set(value);
}

void InferenceService::MirrorHistogram(std::string_view name,
                                       uint64_t value) const {
  if (!ObsEnabled()) return;
  MetricsRegistry::Get().GetHistogram(name).Observe(value);
}

void InferenceService::ObservePhases(const RequestContext& rc) const {
  if (!ObsEnabled()) return;
  const struct {
    const char* name;
    int64_t ms;
  } phases[] = {
      {"serve.phase.admit_ms", rc.AdmitMs()},
      {"serve.phase.queue_ms", rc.QueueMs()},
      {"serve.phase.batch_assembly_ms", rc.AssemblyMs()},
      {"serve.phase.backend_compute_ms", rc.ComputeMs()},
      {"serve.phase.respond_ms", rc.RespondMs()},
  };
  MetricsRegistry& reg = MetricsRegistry::Get();
  for (const auto& p : phases) {
    if (p.ms < 0) continue;  // segment never closed for this request
    reg.GetHistogram(p.name).ObserveWithExemplar(static_cast<uint64_t>(p.ms),
                                                 rc.id);
  }
}

InferenceService::TenantState::TenantState(TenantConfig c)
    : config(std::move(c)),
      m_submitted("serve.tenant." + config.name + ".submitted"),
      m_admitted("serve.tenant." + config.name + ".admitted"),
      m_shed("serve.tenant." + config.name + ".shed"),
      m_completed("serve.tenant." + config.name + ".completed"),
      m_completed_degraded("serve.tenant." + config.name +
                           ".completed_degraded"),
      m_deadline_exceeded("serve.tenant." + config.name +
                          ".deadline_exceeded"),
      m_cancelled("serve.tenant." + config.name + ".cancelled"),
      m_queue_depth("serve.tenant." + config.name + ".queue_depth"),
      m_retry_after_ms("serve.tenant." + config.name + ".retry_after_ms"),
      m_latency_ms("serve.tenant." + config.name + ".latency_ms") {}

ServeOptions ServeOptions::FromEnv() {
  ServeOptions options;
  options.queue_capacity = static_cast<size_t>(GetEnvIntInRangeOr(
      "SAMPNN_SERVE_QUEUE_CAP", static_cast<long long>(options.queue_capacity),
      1, 1 << 20));
  options.default_deadline_ms = static_cast<int64_t>(GetEnvIntInRangeOr(
      "SAMPNN_SERVE_DEADLINE_MS",
      static_cast<long long>(options.default_deadline_ms), 1, 86'400'000));
  options.statusz_port = static_cast<int>(
      GetEnvIntInRangeOr("SAMPNN_STATUSZ_PORT", -1, -1, 65535));
  options.slo_window_ms = static_cast<int64_t>(GetEnvIntInRangeOr(
      "SAMPNN_SLO_WINDOW_MS", static_cast<long long>(options.slo_window_ms),
      100, 86'400'000));
  options.tenants = TenantQuotasFromEnv();
  return options;
}

StatusOr<std::unique_ptr<InferenceService>> InferenceService::Create(
    std::unique_ptr<ModelBackend> backend, const ServeOptions& options) {
  if (backend == nullptr) {
    return Status::InvalidArgument("InferenceService: null backend");
  }
  // Single-model mode: wrap the backend in a fixed registry (no factory, so
  // promotion is disabled). The registry's metric mirroring follows the
  // service's observability gate, evaluated once here — when both telemetry
  // and statusz are off, registry creation must register nothing.
  RegistryOptions registry_options;
  registry_options.clock = options.clock;
  const bool obs = TelemetryEnabled() || options.statusz_port >= 0;
  registry_options.obs_enabled = [obs] { return obs; };
  SAMPNN_ASSIGN_OR_RETURN(
      std::unique_ptr<ModelRegistry> registry,
      ModelRegistry::Create(
          std::shared_ptr<ModelBackend>(std::move(backend)),
          /*factory=*/nullptr, registry_options));
  return Create(std::shared_ptr<ModelRegistry>(std::move(registry)), options);
}

StatusOr<std::unique_ptr<InferenceService>> InferenceService::Create(
    std::shared_ptr<ModelRegistry> registry, const ServeOptions& options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("InferenceService: null registry");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("InferenceService: queue_capacity must be >= 1");
  }
  if (options.max_batch == 0 || options.degraded_max_batch == 0) {
    return Status::InvalidArgument("InferenceService: batch caps must be >= 1");
  }
  if (options.workers == 0) {
    return Status::InvalidArgument("InferenceService: workers must be >= 1");
  }
  if (options.default_deadline_ms <= 0) {
    return Status::InvalidArgument(
        "InferenceService: default_deadline_ms must be positive");
  }
  if (options.degrade_above_fraction < 0.0 ||
      options.degrade_above_fraction > 1.0 ||
      options.recover_below_fraction < 0.0 ||
      options.recover_below_fraction > options.degrade_above_fraction) {
    return Status::InvalidArgument(
        "InferenceService: need 0 <= recover_below_fraction <= "
        "degrade_above_fraction <= 1");
  }
  if (options.watchdog_budget_ms <= 0 || options.watchdog_poll_ms <= 0) {
    return Status::InvalidArgument(
        "InferenceService: watchdog budget and poll must be positive");
  }
  if (options.statusz_port < -1 || options.statusz_port > 65535) {
    return Status::InvalidArgument(
        "InferenceService: statusz_port must be -1 (off) or a valid port");
  }
  if (options.slo_window_ms <= 0) {
    return Status::InvalidArgument(
        "InferenceService: slo_window_ms must be positive");
  }
  // Normalize the tenant list: validate, then guarantee a default tenant
  // whose quota is the whole queue (single-tenant behavior is unchanged).
  ServeOptions normalized = options;
  bool has_default = false;
  for (size_t i = 0; i < normalized.tenants.size(); ++i) {
    const TenantConfig& tenant = normalized.tenants[i];
    if (tenant.name.empty()) {
      return Status::InvalidArgument("InferenceService: empty tenant name");
    }
    if (tenant.quota == 0 || tenant.weight == 0) {
      return Status::InvalidArgument("InferenceService: tenant " +
                                     tenant.name +
                                     " needs quota >= 1 and weight >= 1");
    }
    for (size_t j = 0; j < i; ++j) {
      if (normalized.tenants[j].name == tenant.name) {
        return Status::InvalidArgument("InferenceService: duplicate tenant " +
                                       tenant.name);
      }
    }
    if (tenant.name == kDefaultTenant) has_default = true;
  }
  if (!has_default) {
    TenantConfig fallback;
    fallback.name = kDefaultTenant;
    fallback.quota = normalized.queue_capacity;
    fallback.weight = 1;
    normalized.tenants.push_back(std::move(fallback));
  }
  std::unique_ptr<InferenceService> service(
      new InferenceService(std::move(registry), normalized));
  service->Start();
  return service;
}

InferenceService::InferenceService(std::shared_ptr<ModelRegistry> registry,
                                   const ServeOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::Real()),
      registry_(std::move(registry)),
      input_dim_(registry_->Current()->backend->input_dim()) {
  tenants_.reserve(options_.tenants.size());
  for (size_t i = 0; i < options_.tenants.size(); ++i) {
    tenants_.push_back(std::make_unique<TenantState>(options_.tenants[i]));
    if (options_.tenants[i].name == kDefaultTenant) default_tenant_ = i;
  }
}

void InferenceService::Start() {
  // The SLO tracker exists only when observability is on at start; it is
  // ticked from the watchdog thread, so it must be created before the
  // watchdog starts and is immutable afterwards (no pointer races).
  if (ObsEnabled()) {
    SloTracker::Options slo_options;
    slo_options.window_ms = options_.slo_window_ms;
    slo_ = std::make_unique<SloTracker>(
        &MetricsRegistry::Get().GetHistogram("serve.request_latency_ms"),
        [this] { return deadline_exceeded_.load(std::memory_order_relaxed); },
        [this] {
          return completed_.load(std::memory_order_relaxed) +
                 completed_degraded_.load(std::memory_order_relaxed) +
                 deadline_exceeded_.load(std::memory_order_relaxed) +
                 cancelled_.load(std::memory_order_relaxed);
        },
        slo_options);
  }
  if (ObsEnabled()) {
    // Pre-register the per-tenant families at zero so a scrape always shows
    // every tenant's full series (a tenant that never sheds still exports a
    // zero shed counter — dashboards and check_statusz.py rely on this).
    auto& metrics = MetricsRegistry::Get();
    for (const auto& tenant : tenants_) {
      for (const std::string* name :
           {&tenant->m_submitted, &tenant->m_admitted, &tenant->m_shed,
            &tenant->m_completed, &tenant->m_completed_degraded,
            &tenant->m_deadline_exceeded, &tenant->m_cancelled}) {
        metrics.GetCounter(*name);
      }
      metrics.GetGauge(tenant->m_queue_depth);
    }
  }
  slots_.reserve(options_.workers);
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
  if (options_.statusz_port >= 0) {
    StatuszServer::Options statusz_options;
    statusz_options.port = options_.statusz_port;
    auto server = StatuszServer::Start(statusz_options);
    if (server.ok()) {
      statusz_ = std::move(server).value();
      statusz_->SetHealthCallback([this] {
        MutexLock lock(mu_);
        return !stopping_ && total_queued_ < options_.queue_capacity;
      });
      statusz_->AddSection("serve", [this] { return RenderServeSection(); });
      statusz_->AddSection("registry", [this] {
        return registry_->RenderStatuszSection();
      });
      statusz_->AddSection("slo", [this] {
        return slo_ != nullptr ? slo_->Render()
                               : std::string("(slo tracking off)\n");
      });
    } else {
      // Introspection is best-effort: a failed bind must not take down
      // serving. statusz_port() reports -1 so callers can tell.
      std::fprintf(stderr, "sampnn: statusz disabled: %s\n",
                   server.status().ToString().c_str());
    }
  }
}

InferenceService::~InferenceService() { Stop(StopMode::kDrain); }

InferenceService::TenantState* InferenceService::ResolveTenant(
    std::string_view name) {
  for (const auto& tenant : tenants_) {
    if (tenant->config.name == name) return tenant.get();
  }
  return tenants_[default_tenant_].get();
}

std::future<InferenceResult> InferenceService::Submit(
    std::vector<float> input) {
  return Submit(kDefaultTenant, std::move(input),
                Deadline::FromNowMillis(options_.default_deadline_ms, clock_));
}

std::future<InferenceResult> InferenceService::Submit(std::vector<float> input,
                                                      Deadline deadline) {
  return Submit(kDefaultTenant, std::move(input), deadline);
}

std::future<InferenceResult> InferenceService::Submit(
    std::string_view tenant, std::vector<float> input) {
  return Submit(tenant, std::move(input),
                Deadline::FromNowMillis(options_.default_deadline_ms, clock_));
}

std::future<InferenceResult> InferenceService::Submit(std::string_view tenant,
                                                      std::vector<float> input,
                                                      Deadline deadline) {
  TenantState* ts = ResolveTenant(tenant);
  std::promise<InferenceResult> promise;
  std::future<InferenceResult> future = promise.get_future();
  RequestContext rc;
  rc.id = NextRequestId();
  rc.submit_ms = NowMs();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  ts->submitted.fetch_add(1, std::memory_order_relaxed);
  MirrorCount("serve.submitted");
  MirrorCount(ts->m_submitted);

  InferenceResult immediate;
  if (input.size() != input_dim_) {
    immediate.status = Status::InvalidArgument(
        "Submit: input has " + std::to_string(input.size()) +
        " features, model expects " + std::to_string(input_dim_));
  }

  uint64_t log_seq = 0;
  if (immediate.status.ok() && options_.request_log != nullptr) {
    // Outside mu_ on purpose: the log has its own (higher-rank) lock and
    // logging must never extend the admission critical section. Offered
    // traffic is logged whether or not admission later sheds it — the
    // drift detector wants the arriving distribution, not the served one.
    log_seq = options_.request_log->Offer(ts->config.name, input);
  }
  immediate.log_seq = log_seq;

  bool shed_now = false;
  if (immediate.status.ok()) {
    MutexLock lock(mu_);
    if (stopping_) {
      immediate.status =
          Status::FailedPrecondition("InferenceService is stopped");
    } else {
      const bool tenant_full = ts->queue.size() >= ts->config.quota;
      const bool global_full = total_queued_ >= options_.queue_capacity;
      if (FaultArmed(FaultKind::kRejectAdmission) || tenant_full ||
          global_full) {
        // Shedding: the last rung of the overload ladder. The hint tells
        // the client when a retry has a chance of finding space in the
        // backlog that actually rejected it (its own tenant's quota, or
        // the whole queue).
        immediate.status = Status::ResourceExhausted(
            tenant_full && !global_full
                ? "tenant " + ts->config.name + " quota full (" +
                      std::to_string(ts->config.quota) + " pending); retry later"
                : "admission queue full (" +
                      std::to_string(options_.queue_capacity) +
                      " pending); retry later");
        immediate.retry_after_ms =
            RetryAfterHintLocked(*ts, tenant_full && !global_full);
        shed_now = true;
        // Export the hint clients are being given right now, so a dashboard
        // can see the advertised back-off alongside the shed rate.
        MirrorGauge("serve.retry_after_ms",
                    static_cast<double>(immediate.retry_after_ms));
        MirrorGauge(ts->m_retry_after_ms,
                    static_cast<double>(immediate.retry_after_ms));
      } else {
        PendingRequest req;
        req.input = std::move(input);
        req.deadline = deadline;
        req.promise = std::move(promise);
        req.enqueue_ms = NowMs();
        req.rc = rc;
        req.rc.enqueue_ms = req.enqueue_ms;  // admit segment closes here
        req.tenant = ts;
        req.log_seq = log_seq;
        ts->queue.push_back(std::move(req));
        ++total_queued_;
        admitted_.fetch_add(1, std::memory_order_relaxed);
        ts->admitted.fetch_add(1, std::memory_order_relaxed);
        // One injector step per admitted request: "hang@5" means "the batch
        // containing the 5th admitted request hangs".
        if (FaultInjector* injector = FaultInjector::Global()) {
          injector->AdvanceStep();
        }
        UpdateLadderLocked();
        MirrorCount("serve.admitted");
        MirrorCount(ts->m_admitted);
        MirrorGauge("serve.queue_depth", static_cast<double>(total_queued_));
        MirrorGauge(ts->m_queue_depth, static_cast<double>(ts->queue.size()));
        lock.Unlock();
        work_cv_.NotifyOne();
        return future;
      }
    }
  }

  if (shed_now) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    ts->shed.fetch_add(1, std::memory_order_relaxed);
    MirrorCount("serve.shed");
    MirrorCount(ts->m_shed);
  }
  promise.set_value(std::move(immediate));
  return future;
}

std::vector<InferenceService::PendingRequest>
InferenceService::AssembleBatchLocked(size_t cap, ServeQuality quality) {
  std::vector<PendingRequest> batch;
  // Deficit round-robin over the tenant sub-queues: visiting a backlogged
  // tenant tops its deficit up by its weight, and each request popped into
  // the batch costs 1, so over consecutive batches tenants receive worker
  // slots in weight proportion. Cursor and deficits persist across batches
  // (classic DRR); an emptied queue forfeits its credit, so a tenant cannot
  // bank service time while idle.
  while (batch.size() < cap && total_queued_ > 0) {
    TenantState& tenant = *tenants_[drr_cursor_];
    if (tenant.queue.empty()) {
      tenant.deficit = 0;
      drr_cursor_ = (drr_cursor_ + 1) % tenants_.size();
      continue;
    }
    if (tenant.deficit <= 0) {
      tenant.deficit += static_cast<int64_t>(tenant.config.weight);
    }
    while (tenant.deficit > 0 && !tenant.queue.empty() &&
           batch.size() < cap) {
      PendingRequest req = std::move(tenant.queue.front());
      tenant.queue.pop_front();
      --total_queued_;
      req.rc.dequeue_ms = NowMs();  // queue segment closes here
      if (req.deadline.expired()) {
        CompleteDeadline(&req, "deadline expired while queued");
        continue;  // fail-fast costs no deficit: it consumed no service
      }
      if (quality == ServeQuality::kDegraded && !req.deadline.is_never() &&
          req.deadline.remaining_millis() < options_.degraded_min_slack_ms) {
        CompleteDeadline(&req, "insufficient deadline slack under degraded "
                               "service");
        continue;
      }
      batch.push_back(std::move(req));
      --tenant.deficit;
    }
    if (tenant.queue.empty()) tenant.deficit = 0;
    if (batch.size() >= cap) break;
    drr_cursor_ = (drr_cursor_ + 1) % tenants_.size();
  }
  return batch;
}

void InferenceService::WorkerLoop(size_t worker_index) {
  PhaseSampler::Get().SetCurrentThreadRole("serve_worker");
  WorkerSlot* slot = slots_[worker_index].get();
  for (;;) {
    std::vector<PendingRequest> batch;
    ServeQuality quality = ServeQuality::kFull;
    {
      MutexLock lock(mu_);
      while (!stopping_ && total_queued_ == 0) work_cv_.Wait(mu_);
      if (total_queued_ == 0) {
        if (stopping_) return;
        continue;
      }
      // Pick the rung from occupancy *before* popping, so a full queue
      // serves every drain batch degraded rather than recovering mid-drain.
      UpdateLadderLocked();
      quality = degraded_.load(std::memory_order_relaxed)
                    ? ServeQuality::kDegraded
                    : ServeQuality::kFull;
      const size_t cap = quality == ServeQuality::kDegraded
                             ? options_.degraded_max_batch
                             : options_.max_batch;
      batch = AssembleBatchLocked(cap, quality);
      MirrorGauge("serve.queue_depth", static_cast<double>(total_queued_));
      if (ObsEnabled()) {
        for (const auto& tenant : tenants_) {
          MirrorGauge(tenant->m_queue_depth,
                      static_cast<double>(tenant->queue.size()));
        }
      }
    }
    if (!batch.empty()) {
      RunBatch(std::move(batch), quality, slot);
    }
  }
}

void InferenceService::RunBatch(std::vector<PendingRequest> batch,
                                ServeQuality quality, WorkerSlot* slot) {
  executing_.fetch_add(batch.size(), std::memory_order_relaxed);
  MirrorHistogram("serve.batch_size", batch.size());
  // Pin the live model entry for the whole batch: one lock-free load, and
  // the shared_ptr keeps this exact version alive and servable even if a
  // promotion flips the registry before the batch resolves. In-flight work
  // never migrates versions mid-batch.
  const std::shared_ptr<const ModelEntry> entry = registry_->Current();
  // Worker phase tag + trace span for the whole batch, attributed to the
  // lead request (the one whose admission opened the batch).
  const uint64_t lead_id = batch.front().rc.id;
  ScopedPhase batch_phase("serve_batch", lead_id);
  TraceSpan batch_span("serve_batch");

  // Arm the watchdog heartbeat: fresh token first, then the start stamp
  // (the watchdog only reads the token after it has seen a live stamp).
  CancellationToken batch_token;
  {
    MutexLock lock(slot->token_mu);
    slot->batch_token = batch_token;
  }
  slot->batch_start_ms.store(NowMs(), std::memory_order_release);

  // Injected serving faults, queried at batch execution.
  if (FaultArmed(FaultKind::kServeDelay)) {
    clock_->SleepMillis(options_.fault_delay_ms);
  }
  if (FaultArmed(FaultKind::kServeHang)) {
    // Simulated wedged worker: spin until the batch token is revoked. The
    // watchdog's trip (or a kCancelPending stop) is the only way out.
    while (!batch_token.cancelled()) {
      std::this_thread::yield();
    }
  }

  // The batch runs under the tightest member deadline, so one slow request
  // cannot hold hostages past their own budgets.
  Deadline batch_deadline = Deadline::Never();
  for (const PendingRequest& req : batch) {
    if (req.deadline.is_never()) continue;
    if (batch_deadline.is_never() ||
        req.deadline.expires_at_millis() < batch_deadline.expires_at_millis()) {
      batch_deadline = req.deadline;
    }
  }
  CancelContext ctx{batch_token, batch_deadline};
  ctx.trace_id = lead_id;  // tags the GEMM dispatch's phase slots

  Matrix inputs(batch.size(), input_dim_);
  for (size_t r = 0; r < batch.size(); ++r) {
    std::copy(batch[r].input.begin(), batch[r].input.end(),
              inputs.Row(r).begin());
  }
  const int64_t compute_start = NowMs();
  for (PendingRequest& req : batch) {
    req.rc.compute_start_ms = compute_start;  // assembly segment closes here
  }
  Matrix logits;
  Status status = batch_token.cancelled()
                      ? ctx.StopStatus()
                      : entry->backend->Forward(inputs, ctx, quality, &logits);

  // Disarm the heartbeat before resolving promises so the watchdog never
  // trips on a finished batch.
  slot->batch_start_ms.store(WorkerSlot::kIdle, std::memory_order_release);

  const int64_t now = NowMs();
  for (size_t r = 0; r < batch.size(); ++r) {
    PendingRequest& req = batch[r];
    TenantState* tenant = req.tenant;
    req.rc.compute_end_ms = now;
    InferenceResult result;
    result.log_seq = req.log_seq;
    result.latency_ms = now - req.enqueue_ms;
    if (status.ok() && !req.deadline.expired()) {
      result.status = Status::OK();
      result.degraded = quality == ServeQuality::kDegraded;
      result.model_version = entry->version;
      result.logits.assign(logits.Row(r).begin(), logits.Row(r).end());
      result.predicted = static_cast<int32_t>(
          std::max_element(result.logits.begin(), result.logits.end()) -
          result.logits.begin());
      if (result.degraded) {
        completed_degraded_.fetch_add(1, std::memory_order_relaxed);
        tenant->completed_degraded.fetch_add(1, std::memory_order_relaxed);
        MirrorCount("serve.completed_degraded");
        MirrorCount(tenant->m_completed_degraded);
      } else {
        completed_.fetch_add(1, std::memory_order_relaxed);
        tenant->completed.fetch_add(1, std::memory_order_relaxed);
        MirrorCount("serve.completed");
        MirrorCount(tenant->m_completed);
      }
      ObserveLatency(tenant, result.latency_ms);
      MirrorHistogram(tenant->m_latency_ms,
                      static_cast<uint64_t>(
                          std::max<int64_t>(0, result.latency_ms)));
      if (ObsEnabled()) {
        // Exemplar = this request's id, so the latency histogram's +Inf
        // bucket names the slowest successful request.
        MetricsRegistry::Get()
            .GetHistogram("serve.request_latency_ms")
            .ObserveWithExemplar(static_cast<uint64_t>(std::max<int64_t>(
                                     0, result.latency_ms)),
                                 req.rc.id);
      }
    } else if (req.deadline.expired()) {
      result.status =
          Status::DeadlineExceeded("request deadline expired in flight");
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      tenant->deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      MirrorCount("serve.deadline_exceeded");
      MirrorCount(tenant->m_deadline_exceeded);
    } else if (status.IsResourceExhausted() || status.IsDeadlineExceeded()) {
      // Batch-level cancellation (watchdog trip or shutdown) on a request
      // whose own deadline still had slack.
      result.status = Status::ResourceExhausted(
          "request cancelled: " + std::string(status.message()));
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      tenant->cancelled.fetch_add(1, std::memory_order_relaxed);
      MirrorCount("serve.cancelled");
      MirrorCount(tenant->m_cancelled);
    } else {
      result.status = status;  // backend error, propagated verbatim
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      tenant->cancelled.fetch_add(1, std::memory_order_relaxed);
      MirrorCount("serve.cancelled");
      MirrorCount(tenant->m_cancelled);
    }
    req.rc.respond_ms = NowMs();
    ObservePhases(req.rc);
    req.promise.set_value(std::move(result));
  }
  executing_.fetch_sub(batch.size(), std::memory_order_relaxed);
}

void InferenceService::WatchdogLoop() {
  PhaseSampler::Get().SetCurrentThreadRole("watchdog");
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    // Poll cadence is real time even under an injected service clock — a
    // wedged worker cannot advance a ManualClock, so the watchdog must not
    // depend on it for its own scheduling. Overdue math uses the service
    // clock, keeping the budget deterministic in tests.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.watchdog_poll_ms));
    const int64_t now = NowMs();
    // The SLO window also advances on the service clock, so windowed
    // quantiles are step-exact under a ManualClock.
    if (slo_ != nullptr) slo_->Tick(now);
    for (const std::unique_ptr<WorkerSlot>& slot : slots_) {
      int64_t start = slot->batch_start_ms.load(std::memory_order_acquire);
      if (start < 0) continue;  // idle or already tripped
      if (now - start < options_.watchdog_budget_ms) continue;
      // CAS so one overdue batch produces exactly one trip even if the
      // budget stays exceeded across polls.
      if (!slot->batch_start_ms.compare_exchange_strong(
              start, WorkerSlot::kTripped, std::memory_order_acq_rel)) {
        continue;
      }
      {
        MutexLock lock(slot->token_mu);
        slot->batch_token.Cancel();
      }
      watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
      MirrorCount("serve.watchdog_trips");
      TripDegraded();
    }
  }
}

void InferenceService::Stop(StopMode mode) {
  MutexLock lifecycle(lifecycle_mu_);
  std::vector<PendingRequest> abandoned;
  bool cancelled_now = false;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    if (mode == StopMode::kCancelPending && !cancel_pending_) {
      cancel_pending_ = true;
      cancelled_now = true;
      for (const auto& tenant : tenants_) {
        for (PendingRequest& req : tenant->queue) {
          abandoned.push_back(std::move(req));
        }
        tenant->queue.clear();
        tenant->deficit = 0;
      }
      total_queued_ = 0;
    }
  }
  // Queued promises resolve outside the queue lock: CompleteShed touches no
  // guarded state, and a future's continuation must never run under mu_.
  for (PendingRequest& req : abandoned) {
    CompleteShed(&req, "service stopping");
  }
  if (cancelled_now) MirrorGauge("serve.queue_depth", 0.0);
  work_cv_.NotifyAll();
  if (mode == StopMode::kCancelPending) {
    for (const std::unique_ptr<WorkerSlot>& slot : slots_) {
      MutexLock lock(slot->token_mu);
      slot->batch_token.Cancel();
    }
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
}

bool InferenceService::degraded() const {
  return degraded_.load(std::memory_order_relaxed);
}

int InferenceService::statusz_port() const {
  return statusz_ != nullptr ? statusz_->port() : -1;
}

std::string InferenceService::RenderServeSection() const {
  const ServeStats s = Stats();
  std::ostringstream os;
  os << "backend: " << registry_->Current()->backend->name() << " (v"
     << registry_->live_version() << ")\n";
  os << "quality_rung: " << (s.degraded ? "degraded" : "full") << "\n";
  os << "queue_occupancy: " << s.queue_depth << "/" << options_.queue_capacity
     << "\n";
  os << "executing: " << s.executing << "\n";
  os << "submitted: " << s.submitted << " admitted: " << s.admitted
     << " shed: " << s.shed << "\n";
  os << "completed: " << s.completed
     << " completed_degraded: " << s.completed_degraded
     << " deadline_exceeded: " << s.deadline_exceeded
     << " cancelled: " << s.cancelled << "\n";
  os << "watchdog_trips: " << s.watchdog_trips
     << " degrade_transitions: " << s.degrade_transitions << "\n";
  os << "tenants:\n";
  for (const TenantStats& t : s.tenants) {
    os << "  " << t.name << " quota=" << t.quota << " weight=" << t.weight
       << " queued=" << t.queue_depth << " submitted=" << t.submitted
       << " admitted=" << t.admitted << " shed=" << t.shed
       << " completed=" << t.completed
       << " completed_degraded=" << t.completed_degraded
       << " deadline_exceeded=" << t.deadline_exceeded
       << " cancelled=" << t.cancelled << "\n";
  }
  return os.str();
}

ServeStats InferenceService::Stats() const {
  ServeStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.completed_degraded =
      completed_degraded_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
  stats.degrade_transitions =
      degrade_transitions_.load(std::memory_order_relaxed);
  stats.tenants.reserve(tenants_.size());
  {
    MutexLock lock(mu_);
    stats.queue_depth = total_queued_;
    for (const auto& tenant : tenants_) {
      TenantStats t;
      t.name = tenant->config.name;
      t.quota = tenant->config.quota;
      t.weight = tenant->config.weight;
      t.submitted = tenant->submitted.load(std::memory_order_relaxed);
      t.admitted = tenant->admitted.load(std::memory_order_relaxed);
      t.shed = tenant->shed.load(std::memory_order_relaxed);
      t.completed = tenant->completed.load(std::memory_order_relaxed);
      t.completed_degraded =
          tenant->completed_degraded.load(std::memory_order_relaxed);
      t.deadline_exceeded =
          tenant->deadline_exceeded.load(std::memory_order_relaxed);
      t.cancelled = tenant->cancelled.load(std::memory_order_relaxed);
      t.queue_depth = tenant->queue.size();
      stats.tenants.push_back(std::move(t));
    }
  }
  stats.executing = executing_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  return stats;
}

void InferenceService::CompleteShed(PendingRequest* req,
                                    const std::string& why) {
  InferenceResult result;
  result.log_seq = req->log_seq;
  result.status = Status::ResourceExhausted(why);
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  MirrorCount("serve.cancelled");
  if (req->tenant != nullptr) {
    req->tenant->cancelled.fetch_add(1, std::memory_order_relaxed);
    MirrorCount(req->tenant->m_cancelled);
  }
  ObservePhases(req->rc);  // whatever segments closed before the cut
  req->promise.set_value(std::move(result));
}

void InferenceService::CompleteDeadline(PendingRequest* req,
                                        const std::string& why) {
  InferenceResult result;
  result.log_seq = req->log_seq;
  result.status = Status::DeadlineExceeded(why);
  result.latency_ms = NowMs() - req->enqueue_ms;
  deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  MirrorCount("serve.deadline_exceeded");
  if (req->tenant != nullptr) {
    req->tenant->deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    MirrorCount(req->tenant->m_deadline_exceeded);
  }
  ObservePhases(req->rc);
  req->promise.set_value(std::move(result));
}

void InferenceService::UpdateLadderLocked() {
  const double occupancy = static_cast<double>(total_queued_) /
                           static_cast<double>(options_.queue_capacity);
  const bool degraded = degraded_.load(std::memory_order_relaxed);
  if (!degraded && occupancy >= options_.degrade_above_fraction) {
    degraded_.store(true, std::memory_order_relaxed);
    degrade_transitions_.fetch_add(1, std::memory_order_relaxed);
    MirrorCount("serve.degrade_transitions");
    MirrorGauge("serve.degraded", 1.0);
  } else if (degraded && occupancy <= options_.recover_below_fraction) {
    degraded_.store(false, std::memory_order_relaxed);
    MirrorGauge("serve.degraded", 0.0);
  }
}

void InferenceService::TripDegraded() {
  MutexLock lock(mu_);
  if (!degraded_.load(std::memory_order_relaxed)) {
    degraded_.store(true, std::memory_order_relaxed);
    degrade_transitions_.fetch_add(1, std::memory_order_relaxed);
    MirrorCount("serve.degrade_transitions");
    MirrorGauge("serve.degraded", 1.0);
  }
}

int64_t InferenceService::RetryAfterHintLocked(const TenantState& tenant,
                                               bool tenant_bound) const {
  // Expected drain time for the backlog that shed this request, priced at
  // the shedding tenant's own pace: a light tenant's hint must not inflate
  // because a heavy tenant is slow or backlogged. Fallbacks: global EWMA
  // (young tenant), then the default deadline (cold service).
  int64_t ewma_q10 = tenant.latency_ewma_q10.load(std::memory_order_relaxed);
  if (ewma_q10 == 0) {
    ewma_q10 = latency_ewma_q10_.load(std::memory_order_relaxed);
  }
  if (ewma_q10 == 0) return options_.default_deadline_ms;
  const int64_t per_request_ms = std::max<int64_t>(1, ewma_q10 >> 10);
  const int64_t depth = static_cast<int64_t>(
      tenant_bound ? tenant.queue.size() : total_queued_);
  const int64_t workers = static_cast<int64_t>(options_.workers);
  return std::max<int64_t>(1, per_request_ms * depth / workers);
}

void InferenceService::ObserveLatency(TenantState* tenant,
                                      int64_t latency_ms) {
  const int64_t sample_q10 = std::max<int64_t>(0, latency_ms) << 10;
  UpdateEwmaQ10(latency_ewma_q10_, sample_q10);
  if (tenant != nullptr) UpdateEwmaQ10(tenant->latency_ewma_q10, sample_q10);
}

}  // namespace sampnn
