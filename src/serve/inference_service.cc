#include "src/serve/inference_service.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "src/resilience/fault_injector.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/util/check.h"
#include "src/util/env.h"

namespace sampnn {

namespace {

// Telemetry mirror of the always-on ServeStats atomics. Metric references
// are registered once and cached (the registry never deletes them).
void MirrorCount(const char* name, uint64_t delta = 1) {
  if (!TelemetryEnabled()) return;
  MetricsRegistry::Get().GetCounter(name).Add(delta);
}

void MirrorGauge(const char* name, double value) {
  if (!TelemetryEnabled()) return;
  MetricsRegistry::Get().GetGauge(name).Set(value);
}

void MirrorHistogram(const char* name, uint64_t value) {
  if (!TelemetryEnabled()) return;
  MetricsRegistry::Get().GetHistogram(name).Observe(value);
}

}  // namespace

ServeOptions ServeOptions::FromEnv() {
  ServeOptions options;
  options.queue_capacity = static_cast<size_t>(GetEnvIntInRangeOr(
      "SAMPNN_SERVE_QUEUE_CAP", static_cast<long long>(options.queue_capacity),
      1, 1 << 20));
  options.default_deadline_ms = static_cast<int64_t>(GetEnvIntInRangeOr(
      "SAMPNN_SERVE_DEADLINE_MS",
      static_cast<long long>(options.default_deadline_ms), 1, 86'400'000));
  return options;
}

StatusOr<std::unique_ptr<InferenceService>> InferenceService::Create(
    std::unique_ptr<ModelBackend> backend, const ServeOptions& options) {
  if (backend == nullptr) {
    return Status::InvalidArgument("InferenceService: null backend");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("InferenceService: queue_capacity must be >= 1");
  }
  if (options.max_batch == 0 || options.degraded_max_batch == 0) {
    return Status::InvalidArgument("InferenceService: batch caps must be >= 1");
  }
  if (options.workers == 0) {
    return Status::InvalidArgument("InferenceService: workers must be >= 1");
  }
  if (options.default_deadline_ms <= 0) {
    return Status::InvalidArgument(
        "InferenceService: default_deadline_ms must be positive");
  }
  if (options.degrade_above_fraction < 0.0 ||
      options.degrade_above_fraction > 1.0 ||
      options.recover_below_fraction < 0.0 ||
      options.recover_below_fraction > options.degrade_above_fraction) {
    return Status::InvalidArgument(
        "InferenceService: need 0 <= recover_below_fraction <= "
        "degrade_above_fraction <= 1");
  }
  if (options.watchdog_budget_ms <= 0 || options.watchdog_poll_ms <= 0) {
    return Status::InvalidArgument(
        "InferenceService: watchdog budget and poll must be positive");
  }
  std::unique_ptr<InferenceService> service(
      new InferenceService(std::move(backend), options));
  service->Start();
  return service;
}

InferenceService::InferenceService(std::unique_ptr<ModelBackend> backend,
                                   const ServeOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::Real()),
      backend_(std::move(backend)) {}

void InferenceService::Start() {
  slots_.reserve(options_.workers);
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

InferenceService::~InferenceService() { Stop(StopMode::kDrain); }

std::future<InferenceResult> InferenceService::Submit(
    std::vector<float> input) {
  return Submit(std::move(input),
                Deadline::FromNowMillis(options_.default_deadline_ms, clock_));
}

std::future<InferenceResult> InferenceService::Submit(std::vector<float> input,
                                                      Deadline deadline) {
  std::promise<InferenceResult> promise;
  std::future<InferenceResult> future = promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  MirrorCount("serve.submitted");

  InferenceResult immediate;
  if (input.size() != backend_->input_dim()) {
    immediate.status = Status::InvalidArgument(
        "Submit: input has " + std::to_string(input.size()) +
        " features, model expects " + std::to_string(backend_->input_dim()));
  }

  if (immediate.status.ok()) {
    MutexLock lock(mu_);
    if (stopping_) {
      immediate.status =
          Status::FailedPrecondition("InferenceService is stopped");
    } else if (FaultArmed(FaultKind::kRejectAdmission) ||
               queue_.size() >= options_.queue_capacity) {
      // Shedding: the last rung of the overload ladder. The hint tells the
      // client when a retry has a chance of finding queue space.
      immediate.status = Status::ResourceExhausted(
          "admission queue full (" + std::to_string(options_.queue_capacity) +
          " pending); retry later");
      immediate.retry_after_ms = RetryAfterHintLocked();
    } else {
      PendingRequest req;
      req.input = std::move(input);
      req.deadline = deadline;
      req.promise = std::move(promise);
      req.enqueue_ms = NowMs();
      queue_.push_back(std::move(req));
      admitted_.fetch_add(1, std::memory_order_relaxed);
      // One injector step per admitted request: "hang@5" means "the batch
      // containing the 5th admitted request hangs".
      if (FaultInjector* injector = FaultInjector::Global()) {
        injector->AdvanceStep();
      }
      UpdateLadderLocked();
      MirrorCount("serve.admitted");
      MirrorGauge("serve.queue_depth", static_cast<double>(queue_.size()));
      lock.Unlock();
      work_cv_.NotifyOne();
      return future;
    }
  }

  if (immediate.status.IsResourceExhausted()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    MirrorCount("serve.shed");
  }
  promise.set_value(std::move(immediate));
  return future;
}

void InferenceService::WorkerLoop(size_t worker_index) {
  WorkerSlot* slot = slots_[worker_index].get();
  for (;;) {
    std::vector<PendingRequest> batch;
    ServeQuality quality = ServeQuality::kFull;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Pick the rung from occupancy *before* popping, so a full queue
      // serves every drain batch degraded rather than recovering mid-drain.
      UpdateLadderLocked();
      quality = degraded_.load(std::memory_order_relaxed)
                    ? ServeQuality::kDegraded
                    : ServeQuality::kFull;
      const size_t cap = quality == ServeQuality::kDegraded
                             ? options_.degraded_max_batch
                             : options_.max_batch;
      while (!queue_.empty() && batch.size() < cap) {
        PendingRequest req = std::move(queue_.front());
        queue_.pop_front();
        if (req.deadline.expired()) {
          CompleteDeadline(&req, "deadline expired while queued");
          continue;
        }
        if (quality == ServeQuality::kDegraded &&
            !req.deadline.is_never() &&
            req.deadline.remaining_millis() < options_.degraded_min_slack_ms) {
          CompleteDeadline(&req, "insufficient deadline slack under degraded "
                                 "service");
          continue;
        }
        batch.push_back(std::move(req));
      }
      MirrorGauge("serve.queue_depth", static_cast<double>(queue_.size()));
    }
    if (!batch.empty()) {
      RunBatch(std::move(batch), quality, slot);
    }
  }
}

void InferenceService::RunBatch(std::vector<PendingRequest> batch,
                                ServeQuality quality, WorkerSlot* slot) {
  executing_.fetch_add(batch.size(), std::memory_order_relaxed);
  MirrorHistogram("serve.batch_size", batch.size());

  // Arm the watchdog heartbeat: fresh token first, then the start stamp
  // (the watchdog only reads the token after it has seen a live stamp).
  CancellationToken batch_token;
  {
    MutexLock lock(slot->token_mu);
    slot->batch_token = batch_token;
  }
  slot->batch_start_ms.store(NowMs(), std::memory_order_release);

  // Injected serving faults, queried at batch execution.
  if (FaultArmed(FaultKind::kServeDelay)) {
    clock_->SleepMillis(options_.fault_delay_ms);
  }
  if (FaultArmed(FaultKind::kServeHang)) {
    // Simulated wedged worker: spin until the batch token is revoked. The
    // watchdog's trip (or a kCancelPending stop) is the only way out.
    while (!batch_token.cancelled()) {
      std::this_thread::yield();
    }
  }

  // The batch runs under the tightest member deadline, so one slow request
  // cannot hold hostages past their own budgets.
  Deadline batch_deadline = Deadline::Never();
  for (const PendingRequest& req : batch) {
    if (req.deadline.is_never()) continue;
    if (batch_deadline.is_never() ||
        req.deadline.expires_at_millis() < batch_deadline.expires_at_millis()) {
      batch_deadline = req.deadline;
    }
  }
  CancelContext ctx{batch_token, batch_deadline};

  Matrix inputs(batch.size(), backend_->input_dim());
  for (size_t r = 0; r < batch.size(); ++r) {
    std::copy(batch[r].input.begin(), batch[r].input.end(),
              inputs.Row(r).begin());
  }
  Matrix logits;
  Status status = batch_token.cancelled() ? ctx.StopStatus()
                                          : backend_->Forward(inputs, ctx,
                                                              quality, &logits);

  // Disarm the heartbeat before resolving promises so the watchdog never
  // trips on a finished batch.
  slot->batch_start_ms.store(WorkerSlot::kIdle, std::memory_order_release);

  const int64_t now = NowMs();
  for (size_t r = 0; r < batch.size(); ++r) {
    PendingRequest& req = batch[r];
    InferenceResult result;
    result.latency_ms = now - req.enqueue_ms;
    if (status.ok() && !req.deadline.expired()) {
      result.status = Status::OK();
      result.degraded = quality == ServeQuality::kDegraded;
      result.logits.assign(logits.Row(r).begin(), logits.Row(r).end());
      result.predicted = static_cast<int32_t>(
          std::max_element(result.logits.begin(), result.logits.end()) -
          result.logits.begin());
      if (result.degraded) {
        completed_degraded_.fetch_add(1, std::memory_order_relaxed);
        MirrorCount("serve.completed_degraded");
      } else {
        completed_.fetch_add(1, std::memory_order_relaxed);
        MirrorCount("serve.completed");
      }
      ObserveLatency(result.latency_ms);
      MirrorHistogram("serve.request_latency_ms",
                      static_cast<uint64_t>(std::max<int64_t>(
                          0, result.latency_ms)));
    } else if (req.deadline.expired()) {
      result.status =
          Status::DeadlineExceeded("request deadline expired in flight");
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      MirrorCount("serve.deadline_exceeded");
    } else if (status.IsResourceExhausted() || status.IsDeadlineExceeded()) {
      // Batch-level cancellation (watchdog trip or shutdown) on a request
      // whose own deadline still had slack.
      result.status = Status::ResourceExhausted(
          "request cancelled: " + std::string(status.message()));
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      MirrorCount("serve.cancelled");
    } else {
      result.status = status;  // backend error, propagated verbatim
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      MirrorCount("serve.cancelled");
    }
    req.promise.set_value(std::move(result));
  }
  executing_.fetch_sub(batch.size(), std::memory_order_relaxed);
}

void InferenceService::WatchdogLoop() {
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    // Poll cadence is real time even under an injected service clock — a
    // wedged worker cannot advance a ManualClock, so the watchdog must not
    // depend on it for its own scheduling. Overdue math uses the service
    // clock, keeping the budget deterministic in tests.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.watchdog_poll_ms));
    const int64_t now = NowMs();
    for (const std::unique_ptr<WorkerSlot>& slot : slots_) {
      int64_t start = slot->batch_start_ms.load(std::memory_order_acquire);
      if (start < 0) continue;  // idle or already tripped
      if (now - start < options_.watchdog_budget_ms) continue;
      // CAS so one overdue batch produces exactly one trip even if the
      // budget stays exceeded across polls.
      if (!slot->batch_start_ms.compare_exchange_strong(
              start, WorkerSlot::kTripped, std::memory_order_acq_rel)) {
        continue;
      }
      {
        MutexLock lock(slot->token_mu);
        slot->batch_token.Cancel();
      }
      watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
      MirrorCount("serve.watchdog_trips");
      TripDegraded();
    }
  }
}

void InferenceService::Stop(StopMode mode) {
  MutexLock lifecycle(lifecycle_mu_);
  std::deque<PendingRequest> abandoned;
  bool cancelled_now = false;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    if (mode == StopMode::kCancelPending && !cancel_pending_) {
      cancel_pending_ = true;
      cancelled_now = true;
      abandoned.swap(queue_);
    }
  }
  // Queued promises resolve outside the queue lock: CompleteShed touches no
  // guarded state, and a future's continuation must never run under mu_.
  for (PendingRequest& req : abandoned) {
    CompleteShed(&req, "service stopping");
  }
  if (cancelled_now) MirrorGauge("serve.queue_depth", 0.0);
  work_cv_.NotifyAll();
  if (mode == StopMode::kCancelPending) {
    for (const std::unique_ptr<WorkerSlot>& slot : slots_) {
      MutexLock lock(slot->token_mu);
      slot->batch_token.Cancel();
    }
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
}

bool InferenceService::degraded() const {
  return degraded_.load(std::memory_order_relaxed);
}

ServeStats InferenceService::Stats() const {
  ServeStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.completed_degraded =
      completed_degraded_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
  stats.degrade_transitions =
      degrade_transitions_.load(std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    stats.queue_depth = queue_.size();
  }
  stats.executing = executing_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  return stats;
}

void InferenceService::CompleteShed(PendingRequest* req,
                                    const std::string& why) {
  InferenceResult result;
  result.status = Status::ResourceExhausted(why);
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  MirrorCount("serve.cancelled");
  req->promise.set_value(std::move(result));
}

void InferenceService::CompleteDeadline(PendingRequest* req,
                                        const std::string& why) {
  InferenceResult result;
  result.status = Status::DeadlineExceeded(why);
  result.latency_ms = NowMs() - req->enqueue_ms;
  deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  MirrorCount("serve.deadline_exceeded");
  req->promise.set_value(std::move(result));
}

void InferenceService::UpdateLadderLocked() {
  const double occupancy = static_cast<double>(queue_.size()) /
                           static_cast<double>(options_.queue_capacity);
  const bool degraded = degraded_.load(std::memory_order_relaxed);
  if (!degraded && occupancy >= options_.degrade_above_fraction) {
    degraded_.store(true, std::memory_order_relaxed);
    degrade_transitions_.fetch_add(1, std::memory_order_relaxed);
    MirrorCount("serve.degrade_transitions");
    MirrorGauge("serve.degraded", 1.0);
  } else if (degraded && occupancy <= options_.recover_below_fraction) {
    degraded_.store(false, std::memory_order_relaxed);
    MirrorGauge("serve.degraded", 0.0);
  }
}

void InferenceService::TripDegraded() {
  MutexLock lock(mu_);
  if (!degraded_.load(std::memory_order_relaxed)) {
    degraded_.store(true, std::memory_order_relaxed);
    degrade_transitions_.fetch_add(1, std::memory_order_relaxed);
    MirrorCount("serve.degrade_transitions");
    MirrorGauge("serve.degraded", 1.0);
  }
}

int64_t InferenceService::RetryAfterHintLocked() const {
  // Expected drain time for the queued work, from the latency EWMA. With no
  // completed requests yet, fall back to the default deadline.
  const int64_t ewma_q10 = latency_ewma_q10_.load(std::memory_order_relaxed);
  if (ewma_q10 == 0) return options_.default_deadline_ms;
  const int64_t per_request_ms = std::max<int64_t>(1, ewma_q10 >> 10);
  const int64_t depth = static_cast<int64_t>(queue_.size());
  const int64_t workers = static_cast<int64_t>(options_.workers);
  return std::max<int64_t>(1, per_request_ms * depth / workers);
}

void InferenceService::ObserveLatency(int64_t latency_ms) {
  const int64_t sample_q10 = std::max<int64_t>(0, latency_ms) << 10;
  int64_t cur = latency_ewma_q10_.load(std::memory_order_relaxed);
  for (;;) {
    // EWMA with alpha = 1/4; the first sample seeds the average.
    const int64_t next =
        cur == 0 ? std::max<int64_t>(1, sample_q10)
                 : cur + ((sample_q10 - cur) >> 2);
    if (latency_ewma_q10_.compare_exchange_weak(cur, next,
                                                std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace sampnn
