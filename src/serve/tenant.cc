#include "src/serve/tenant.h"

#include <cstdio>
#include <cstdlib>

#include "src/util/env.h"

namespace sampnn {

namespace {

// Parses a strictly positive decimal integer; false on garbage/overflow.
bool ParsePositive(const std::string& text, size_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value == 0 ||
      value > 1ull << 30) {
    return false;
  }
  *out = static_cast<size_t>(value);
  return true;
}

}  // namespace

StatusOr<std::vector<TenantConfig>> ParseTenantQuotas(
    const std::string& spec) {
  std::vector<TenantConfig> tenants;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad tenant spec item (want "
                                     "name=quota[:weight]): " +
                                     item);
    }
    TenantConfig tenant;
    tenant.name = item.substr(0, eq);
    for (const auto& existing : tenants) {
      if (existing.name == tenant.name) {
        return Status::InvalidArgument("duplicate tenant: " + tenant.name);
      }
    }
    const std::string rest = item.substr(eq + 1);
    const size_t colon = rest.find(':');
    const std::string quota_str =
        colon == std::string::npos ? rest : rest.substr(0, colon);
    if (!ParsePositive(quota_str, &tenant.quota)) {
      return Status::InvalidArgument("bad tenant quota in item: " + item);
    }
    if (colon != std::string::npos &&
        !ParsePositive(rest.substr(colon + 1), &tenant.weight)) {
      return Status::InvalidArgument("bad tenant weight in item: " + item);
    }
    tenants.push_back(std::move(tenant));
  }
  return tenants;
}

std::vector<TenantConfig> TenantQuotasFromEnv() {
  const std::string spec = GetEnvOr("SAMPNN_TENANT_QUOTAS", "");
  if (spec.empty()) return {};
  auto tenants = ParseTenantQuotas(spec);
  if (!tenants.ok()) {
    std::fprintf(stderr,
                 "[sampnn] SAMPNN_TENANT_QUOTAS ignored: %s\n",
                 tenants.status().ToString().c_str());
    return {};
  }
  return std::move(tenants).value();
}

}  // namespace sampnn
