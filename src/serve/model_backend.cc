#include "src/serve/model_backend.h"

#include <algorithm>
#include <utility>

#include "src/approx/adelman.h"
#include "src/tensor/kernel_config.h"
#include "src/tensor/kernels.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/sync.h"

namespace sampnn {

const char* ServeQualityToString(ServeQuality q) {
  switch (q) {
    case ServeQuality::kFull:
      return "full";
    case ServeQuality::kDegraded:
      return "degraded";
  }
  return "unknown";
}

namespace {

Status CheckBatchShape(const Matrix& batch, size_t input_dim,
                       const char* who) {
  if (batch.rows() == 0) {
    return Status::InvalidArgument(std::string(who) + ": empty batch");
  }
  if (batch.cols() != input_dim) {
    return Status::InvalidArgument(
        std::string(who) + ": batch has " + std::to_string(batch.cols()) +
        " features, model expects " + std::to_string(input_dim));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Dense: the exact cancellable forward at every rung.
// ---------------------------------------------------------------------------

class DenseBackend : public ModelBackend {
 public:
  explicit DenseBackend(Mlp model) : model_(std::move(model)) {}

  const char* name() const override { return "dense"; }
  size_t input_dim() const override { return model_.input_dim(); }
  size_t output_dim() const override { return model_.output_dim(); }

  Status Forward(const Matrix& batch, const CancelContext& ctx,
                 ServeQuality /*quality*/, Matrix* logits) override {
    SAMPNN_CHECK(logits != nullptr);
    SAMPNN_RETURN_NOT_OK(CheckBatchShape(batch, input_dim(), "DenseBackend"));
    MlpWorkspace ws;
    SAMPNN_RETURN_NOT_OK(model_.ForwardCancellable(batch, ctx, &ws));
    *logits = ws.a.back();
    return Status::OK();
  }

 private:
  const Mlp model_;
};

// ---------------------------------------------------------------------------
// ALSH: hash-probe sparse inference, dense batched fallback when degraded.
// ---------------------------------------------------------------------------

class AlshBackend : public ModelBackend {
 public:
  explicit AlshBackend(std::unique_ptr<AlshTrainer> trainer)
      : trainer_(std::move(trainer)) {}

  const char* name() const override { return "alsh"; }
  size_t input_dim() const override { return trainer_->net().input_dim(); }
  size_t output_dim() const override { return trainer_->net().output_dim(); }

  Status Forward(const Matrix& batch, const CancelContext& ctx,
                 ServeQuality quality, Matrix* logits) override {
    SAMPNN_CHECK(logits != nullptr);
    SAMPNN_RETURN_NOT_OK(CheckBatchShape(batch, input_dim(), "AlshBackend"));
    if (quality == ServeQuality::kDegraded) {
      // Degraded rung: one batched dense pass — no per-sample probing.
      MlpWorkspace ws;
      SAMPNN_RETURN_NOT_OK(trainer_->net().ForwardCancellable(batch, ctx, &ws));
      *logits = ws.a.back();
      return Status::OK();
    }
    // Full rung: per-sample hash probing, polled between samples. The
    // trainer's probe scratch is single-stream, so concurrent service
    // workers serialize here.
    MutexLock lock(mu_);
    if (logits->rows() != batch.rows() || logits->cols() != output_dim()) {
      *logits = Matrix(batch.rows(), output_dim());
    }
    for (size_t r = 0; r < batch.rows(); ++r) {
      if (ctx.ShouldStop()) return ctx.StopStatus();
      const std::vector<float> row = trainer_->ForwardSampleSparse(batch.Row(r));
      std::copy(row.begin(), row.end(), logits->Row(r).begin());
    }
    return Status::OK();
  }

 private:
  Mutex mu_{"serve.backend", lockrank::kServeBackend};
  // Not SAMPNN_GUARDED_BY(mu_): const accessors (net() dimensions) are
  // lock-free by design; only the mutable probe path serializes on mu_.
  std::unique_ptr<AlshTrainer> trainer_;
};

// ---------------------------------------------------------------------------
// MC-approx: exact when healthy, Adelman-sampled products when degraded.
// ---------------------------------------------------------------------------

class McBackend : public ModelBackend {
 public:
  McBackend(Mlp model, const McBackendOptions& options)
      : model_(std::move(model)), options_(options), rng_(options.seed) {}

  const char* name() const override { return "mc"; }
  size_t input_dim() const override { return model_.input_dim(); }
  size_t output_dim() const override { return model_.output_dim(); }

  Status Forward(const Matrix& batch, const CancelContext& ctx,
                 ServeQuality quality, Matrix* logits) override {
    SAMPNN_CHECK(logits != nullptr);
    SAMPNN_RETURN_NOT_OK(CheckBatchShape(batch, input_dim(), "McBackend"));
    if (quality == ServeQuality::kFull) {
      MlpWorkspace ws;
      SAMPNN_RETURN_NOT_OK(model_.ForwardCancellable(batch, ctx, &ws));
      *logits = ws.a.back();
      return Status::OK();
    }
    // Degraded rung: every layer's product estimated from
    // `degraded_samples` Adelman column-row samples — per-request compute
    // shrinks roughly by k / in_dim per layer. The estimator RNG is a
    // single stream, so workers serialize.
    MutexLock lock(mu_);
    Matrix a_prev = batch;
    Matrix z;
    for (size_t k = 0; k < model_.num_layers(); ++k) {
      if (ctx.ShouldStop()) return ctx.StopStatus();
      const Layer& layer = model_.layer(k);
      // Sample count never exceeds the inner dimension.
      const size_t samples =
          std::max<size_t>(1, std::min(options_.degraded_samples,
                                       layer.weights().rows()));
      SAMPNN_RETURN_NOT_OK(AdelmanApproxMatmul(a_prev, layer.weights(),
                                               samples, rng_, &z));
      AddRowVector(&z, layer.bias());
      Matrix a(z.rows(), z.cols());
      layer.Activate(z, &a);
      a_prev = std::move(a);
    }
    if (ctx.ShouldStop()) return ctx.StopStatus();
    *logits = std::move(a_prev);
    return Status::OK();
  }

 private:
  Mutex mu_{"serve.backend", lockrank::kServeBackend};
  const Mlp model_;
  const McBackendOptions options_;
  Rng rng_ SAMPNN_GUARDED_BY(mu_);
};

}  // namespace

std::unique_ptr<ModelBackend> MakeDenseBackend(Mlp model) {
  return std::make_unique<DenseBackend>(std::move(model));
}

std::unique_ptr<ModelBackend> MakeAlshBackend(
    std::unique_ptr<AlshTrainer> trainer) {
  SAMPNN_CHECK(trainer != nullptr);
  return std::make_unique<AlshBackend>(std::move(trainer));
}

std::unique_ptr<ModelBackend> MakeMcBackend(Mlp model,
                                            const McBackendOptions& options) {
  return std::make_unique<McBackend>(std::move(model), options);
}

}  // namespace sampnn
