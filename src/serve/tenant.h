// Multi-tenant serving configuration (DESIGN.md §13.4). A tenant is a
// traffic class with its own admission quota (bound on queued requests) and
// a weighted-fair share of batch assembly (deficit round-robin quantum), so
// a tenant flooding the service saturates its own quota and its own share
// of worker time — it cannot starve a light tenant out of either.
//
// Specs come from the SAMPNN_TENANT_QUOTAS environment variable or the
// serve_mlp --tenants flag, one comma-separated item per tenant:
//
//   "batch=8:1,interactive=4:3"        name=quota:weight
//   "batch=8"                          weight defaults to 1
//
// A service always has a "default" tenant (unknown submitters land there);
// when the spec omits it, one is appended with the service-wide defaults.

#pragma once

#include <string>
#include <vector>

#include "src/util/status.h"

namespace sampnn {

/// Name every request without an explicit tenant is accounted under.
inline constexpr const char* kDefaultTenant = "default";

/// One traffic class.
struct TenantConfig {
  std::string name;
  size_t quota = 0;   ///< max queued requests; above it, Submit sheds
  size_t weight = 1;  ///< deficit-round-robin quantum (relative share)
};

/// Parses a tenant spec ("name=quota[:weight],..."). Rules: names must be
/// non-empty and unique, quota >= 1, weight >= 1. An empty spec yields an
/// empty vector (the service then runs single-tenant with its global
/// defaults). Does NOT append the default tenant — the service does that,
/// because the fallback quota is the service's global queue capacity.
StatusOr<std::vector<TenantConfig>> ParseTenantQuotas(
    const std::string& spec);

/// ParseTenantQuotas over SAMPNN_TENANT_QUOTAS; empty vector when unset.
/// A malformed value is reported (stderr, once) and treated as unset, so a
/// typo degrades to single-tenant serving instead of failing startup.
std::vector<TenantConfig> TenantQuotasFromEnv();

}  // namespace sampnn
