// Deadline-aware inference service (DESIGN.md §10): a multi-threaded
// front-end that serves a trained model behind a bounded admission queue
// with micro-batching, per-request deadlines, explicit overload behavior,
// and a watchdog that rescues hung workers.
//
// Request lifecycle:
//
//   Submit ──admission──▶ queue ──micro-batcher──▶ backend Forward ──▶ future
//      │                    │                          │
//      │ queue full /       │ deadline already         │ deadline expires /
//      │ injected reject    │ expired at dequeue       │ watchdog cancels
//      ▼                    ▼                          ▼
//   kResourceExhausted   kDeadlineExceeded          kDeadlineExceeded /
//   (+ retry-after hint)                            kResourceExhausted
//
// Overload ladder (in escalation order, before any request is shed):
//   1. healthy  — full-quality inference, micro-batches up to max_batch;
//   2. degraded — queue occupancy crossed degrade_above_fraction (or the
//      watchdog tripped): batches shrink to degraded_max_batch, requests
//      without degraded_min_slack_ms of deadline left are failed fast, and
//      the backend runs its cheaper rung (ALSH: dense fallback; MC-approx:
//      reduced Adelman sample counts);
//   3. shedding — the queue is full: Submit fails immediately with
//      kResourceExhausted and a retry-after hint.
// Recovery back to healthy uses hysteresis (recover_below_fraction).
//
// All timing runs on an injectable Clock, so tests drive deadlines and the
// watchdog budget with a ManualClock — outcome mixes are exact, never
// wall-clock-flaky.

#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/request_context.h"
#include "src/serve/model_backend.h"
#include "src/telemetry/telemetry.h"
#include "src/util/deadline.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace sampnn {

class SloTracker;     // src/obs/slo_tracker.h
class StatuszServer;  // src/obs/statusz.h

/// Tuning for an InferenceService.
struct ServeOptions {
  size_t queue_capacity = 64;  ///< admission bound (SAMPNN_SERVE_QUEUE_CAP)
  size_t max_batch = 8;        ///< micro-batch cap when healthy
  size_t workers = 1;          ///< inference worker threads
  int64_t default_deadline_ms = 100;  ///< for Submit() without a deadline
                                      ///< (SAMPNN_SERVE_DEADLINE_MS)

  // Degradation ladder.
  double degrade_above_fraction = 0.5;   ///< occupancy that trips degraded
  double recover_below_fraction = 0.25;  ///< occupancy that restores healthy
  size_t degraded_max_batch = 2;         ///< micro-batch cap when degraded
  int64_t degraded_min_slack_ms = 1;     ///< fail-fast floor on remaining
                                         ///< deadline when degraded

  // Watchdog.
  int64_t watchdog_budget_ms = 500;  ///< batch runtime before a trip
  int64_t watchdog_poll_ms = 5;      ///< real-time poll cadence

  int64_t fault_delay_ms = 50;  ///< duration of an injected delay@ fault

  // Introspection plane (DESIGN.md §12).
  int statusz_port = -1;  ///< 127.0.0.1 port for /statusz, /metricsz, ...;
                          ///< -1 = off (default), 0 = ephemeral
                          ///< (SAMPNN_STATUSZ_PORT)
  int64_t slo_window_ms = 10'000;  ///< SLO sliding window length
                                   ///< (SAMPNN_SLO_WINDOW_MS)

  const Clock* clock = nullptr;  ///< nullptr = the real monotonic clock

  /// Defaults with SAMPNN_SERVE_QUEUE_CAP / SAMPNN_SERVE_DEADLINE_MS /
  /// SAMPNN_STATUSZ_PORT / SAMPNN_SLO_WINDOW_MS applied (hardened parse:
  /// garbage warns once and is clamped).
  static ServeOptions FromEnv();
};

/// Terminal outcome of one request. `status` is kOk, kDeadlineExceeded
/// (ran out of time in queue or mid-flight), kResourceExhausted (shed at
/// admission, cancelled by the watchdog, or cancelled at shutdown), or a
/// backend error.
struct InferenceResult {
  Status status;
  std::vector<float> logits;  ///< on kOk: one logit per class
  int32_t predicted = -1;     ///< on kOk: argmax class
  bool degraded = false;      ///< served on the degraded rung
  int64_t retry_after_ms = 0;  ///< on shed: back-off hint for the client
  int64_t latency_ms = 0;      ///< admission -> completion (service clock)
};

/// Monotonic outcome counters plus instantaneous depth/state. Snapshot via
/// InferenceService::Stats(); totals satisfy
///   submitted == admitted + shed  and
///   admitted == completed + completed_degraded + deadline_exceeded
///               + cancelled        (once all futures are resolved).
/// The first identity counts well-formed, pre-stop submissions only:
/// malformed inputs (kInvalidArgument) and submissions after Stop
/// (kFailedPrecondition) increment `submitted` but are neither admitted
/// nor shed.
struct ServeStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;           ///< full-quality successes
  uint64_t completed_degraded = 0;  ///< degraded-rung successes
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;  ///< watchdog / shutdown cancellations
  uint64_t watchdog_trips = 0;
  uint64_t degrade_transitions = 0;  ///< healthy -> degraded edges
  size_t queue_depth = 0;
  size_t executing = 0;  ///< requests inside running micro-batches
  bool degraded = false;
};

/// \brief The deadline-aware serving front-end. Thread-safe; one instance
/// serves concurrent Submit() callers.
class InferenceService {
 public:
  /// Validates options and starts worker + watchdog threads.
  static StatusOr<std::unique_ptr<InferenceService>> Create(
      std::unique_ptr<ModelBackend> backend, const ServeOptions& options);

  /// Stops with StopMode::kDrain.
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Submits one input row under the default deadline.
  std::future<InferenceResult> Submit(std::vector<float> input);
  /// Submits one input row with an explicit deadline. The returned future
  /// always becomes ready: sheds and validation failures resolve
  /// immediately, admitted requests resolve when their batch completes or
  /// their deadline is enforced.
  std::future<InferenceResult> Submit(std::vector<float> input,
                                      Deadline deadline);

  enum class StopMode {
    kDrain,          ///< process everything already admitted, then stop
    kCancelPending,  ///< fail queued requests and cancel running batches
  };
  /// Stops the service. Idempotent; safe to call concurrently. After Stop,
  /// Submit fails with kFailedPrecondition.
  void Stop(StopMode mode = StopMode::kDrain);

  /// True while the degradation ladder is on the degraded rung.
  bool degraded() const;

  ServeStats Stats() const;
  const ServeOptions& options() const { return options_; }
  const ModelBackend& backend() const { return *backend_; }

  /// Bound port of the embedded introspection server, or -1 when it is off
  /// (options.statusz_port == -1 or the bind failed).
  int statusz_port() const;

 private:
  struct PendingRequest {
    std::vector<float> input;
    Deadline deadline;
    std::promise<InferenceResult> promise;
    int64_t enqueue_ms = 0;
    RequestContext rc;  ///< id + phase-boundary stamps (DESIGN.md §12)
  };

  // Watchdog heartbeat per worker. batch_start_ms: kIdle when between
  // batches, kTripped after the watchdog cancelled the current batch,
  // otherwise the service-clock instant the batch started.
  struct WorkerSlot {
    static constexpr int64_t kIdle = -1;
    static constexpr int64_t kTripped = -2;
    std::atomic<int64_t> batch_start_ms{kIdle};
    // All token mutexes share one rank: no path holds two slots' tokens.
    Mutex token_mu{"serve.worker_token", lockrank::kServeWorkerToken};
    CancellationToken batch_token SAMPNN_GUARDED_BY(token_mu);
  };

  InferenceService(std::unique_ptr<ModelBackend> backend,
                   const ServeOptions& options);
  void Start();

  void WorkerLoop(size_t worker_index);
  void WatchdogLoop();
  void RunBatch(std::vector<PendingRequest> batch, ServeQuality quality,
                WorkerSlot* slot);
  void CompleteShed(PendingRequest* req, const std::string& why);
  void CompleteDeadline(PendingRequest* req, const std::string& why);
  // Evaluates the occupancy hysteresis; callers hold mu_.
  void UpdateLadderLocked() SAMPNN_REQUIRES(mu_);
  // Trips the ladder to degraded (watchdog path); takes mu_ itself.
  void TripDegraded() SAMPNN_EXCLUDES(mu_);
  int64_t RetryAfterHintLocked() const SAMPNN_REQUIRES(mu_);
  int64_t NowMs() const { return clock_->NowMillis(); }
  void ObserveLatency(int64_t latency_ms);

  // Observability gate: metrics flow to the registry when telemetry is on
  // OR the introspection server is configured (a /metricsz scrape must see
  // serve metrics even without SAMPNN_TELEMETRY). When both are off the
  // Mirror* helpers are single-branch no-ops and the registry is never
  // touched from the serving path (the zero-overhead guard test relies on
  // this).
  bool ObsEnabled() const {
    return TelemetryEnabled() || options_.statusz_port >= 0;
  }
  void MirrorCount(const char* name, uint64_t delta = 1) const;
  void MirrorGauge(const char* name, double value) const;
  void MirrorHistogram(const char* name, uint64_t value) const;
  /// Observes every closed phase segment of `rc` into the serve.phase.*
  /// histograms, with the request id as the exemplar.
  void ObservePhases(const RequestContext& rc) const;
  std::string RenderServeSection() const;

  const ServeOptions options_;
  const Clock* const clock_;
  std::unique_ptr<ModelBackend> backend_;

  mutable Mutex mu_{"serve.queue", lockrank::kServeQueue};
  CondVar work_cv_;
  std::deque<PendingRequest> queue_ SAMPNN_GUARDED_BY(mu_);
  bool stopping_ SAMPNN_GUARDED_BY(mu_) = false;
  bool cancel_pending_ SAMPNN_GUARDED_BY(mu_) = false;

  // Serializes Stop() callers (including the destructor) across the joins.
  // Lowest rank in the process: it wraps acquisitions of mu_ and the worker
  // token mutexes.
  Mutex lifecycle_mu_{"serve.lifecycle", lockrank::kServeLifecycle};

  std::atomic<bool> degraded_{false};
  std::atomic<bool> watchdog_stop_{false};

  // Outcome counters (see ServeStats).
  std::atomic<uint64_t> submitted_{0}, admitted_{0}, shed_{0}, completed_{0},
      completed_degraded_{0}, deadline_exceeded_{0}, cancelled_{0},
      watchdog_trips_{0}, degrade_transitions_{0};
  std::atomic<size_t> executing_{0};
  // EWMA of per-request latency in ms * 1024 (fixed point), 0 = no data.
  std::atomic<int64_t> latency_ewma_q10_{0};

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;

  // Introspection plane; null when ObsEnabled() / statusz_port say off.
  std::unique_ptr<SloTracker> slo_;  ///< ticked by the watchdog thread
  // Declared last so it is destroyed first: the accept thread's callbacks
  // read every other member, so it must be joined before they die.
  std::unique_ptr<StatuszServer> statusz_;
};

}  // namespace sampnn
