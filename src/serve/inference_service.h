// Deadline-aware inference service (DESIGN.md §10): a multi-threaded
// front-end that serves a trained model behind a bounded admission queue
// with micro-batching, per-request deadlines, explicit overload behavior,
// and a watchdog that rescues hung workers.
//
// Request lifecycle:
//
//   Submit ──admission──▶ queue ──micro-batcher──▶ backend Forward ──▶ future
//      │                    │                          │
//      │ queue full /       │ deadline already         │ deadline expires /
//      │ injected reject    │ expired at dequeue       │ watchdog cancels
//      ▼                    ▼                          ▼
//   kResourceExhausted   kDeadlineExceeded          kDeadlineExceeded /
//   (+ retry-after hint)                            kResourceExhausted
//
// Overload ladder (in escalation order, before any request is shed):
//   1. healthy  — full-quality inference, micro-batches up to max_batch;
//   2. degraded — queue occupancy crossed degrade_above_fraction (or the
//      watchdog tripped): batches shrink to degraded_max_batch, requests
//      without degraded_min_slack_ms of deadline left are failed fast, and
//      the backend runs its cheaper rung (ALSH: dense fallback; MC-approx:
//      reduced Adelman sample counts);
//   3. shedding — the queue is full: Submit fails immediately with
//      kResourceExhausted and a retry-after hint.
// Recovery back to healthy uses hysteresis (recover_below_fraction).
//
// Multi-tenant serving (DESIGN.md §13.4): requests carry a tenant name.
// Each configured tenant gets its own admission quota (a sub-queue bound
// inside the global queue_capacity) and a weighted-fair share of batch
// assembly via deficit round-robin, so a flooding tenant exhausts its own
// quota and its own share of worker time without starving anyone else.
// Shed hints are per-tenant: the retry-after estimate is computed from the
// shedding tenant's own backlog and latency EWMA, not a global average that
// a heavy tenant would inflate for everyone.
//
// The model itself lives in a ModelRegistry (src/registry/): each batch
// pins the live ModelEntry with one lock-free Current() call and finishes
// on that version even if a promotion flips the registry mid-batch —
// zero-downtime hot swap with no request drops. Create(backend) wraps the
// backend in a single-entry registry, so single-model callers see no
// difference.
//
// All timing runs on an injectable Clock, so tests drive deadlines and the
// watchdog budget with a ManualClock — outcome mixes are exact, never
// wall-clock-flaky.

#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/lifecycle/request_log.h"
#include "src/obs/request_context.h"
#include "src/registry/model_registry.h"
#include "src/serve/model_backend.h"
#include "src/serve/tenant.h"
#include "src/telemetry/telemetry.h"
#include "src/util/deadline.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace sampnn {

class SloTracker;     // src/obs/slo_tracker.h
class StatuszServer;  // src/obs/statusz.h

/// Tuning for an InferenceService.
struct ServeOptions {
  size_t queue_capacity = 64;  ///< admission bound (SAMPNN_SERVE_QUEUE_CAP)
  size_t max_batch = 8;        ///< micro-batch cap when healthy
  size_t workers = 1;          ///< inference worker threads
  int64_t default_deadline_ms = 100;  ///< for Submit() without a deadline
                                      ///< (SAMPNN_SERVE_DEADLINE_MS)

  // Degradation ladder.
  double degrade_above_fraction = 0.5;   ///< occupancy that trips degraded
  double recover_below_fraction = 0.25;  ///< occupancy that restores healthy
  size_t degraded_max_batch = 2;         ///< micro-batch cap when degraded
  int64_t degraded_min_slack_ms = 1;     ///< fail-fast floor on remaining
                                         ///< deadline when degraded

  // Watchdog.
  int64_t watchdog_budget_ms = 500;  ///< batch runtime before a trip
  int64_t watchdog_poll_ms = 5;      ///< real-time poll cadence

  int64_t fault_delay_ms = 50;  ///< duration of an injected delay@ fault

  // Introspection plane (DESIGN.md §12).
  int statusz_port = -1;  ///< 127.0.0.1 port for /statusz, /metricsz, ...;
                          ///< -1 = off (default), 0 = ephemeral
                          ///< (SAMPNN_STATUSZ_PORT)
  int64_t slo_window_ms = 10'000;  ///< SLO sliding window length
                                   ///< (SAMPNN_SLO_WINDOW_MS)

  /// Tenant quotas and weights (SAMPNN_TENANT_QUOTAS, see tenant.h). A
  /// "default" tenant with quota == queue_capacity and weight 1 is appended
  /// when the list omits it; an empty list yields single-tenant serving.
  std::vector<TenantConfig> tenants;

  /// Request log feeding the continuous-lifecycle loop (src/lifecycle/).
  /// When set, Submit offers every validated input row (tenant-tagged,
  /// outside the queue lock) and stamps the assigned sequence number into
  /// the result, so clients can join delayed ground truth via
  /// RequestLog::Label. Null = no logging (the default).
  std::shared_ptr<RequestLog> request_log;

  const Clock* clock = nullptr;  ///< nullptr = the real monotonic clock

  /// Defaults with SAMPNN_SERVE_QUEUE_CAP / SAMPNN_SERVE_DEADLINE_MS /
  /// SAMPNN_STATUSZ_PORT / SAMPNN_SLO_WINDOW_MS / SAMPNN_TENANT_QUOTAS
  /// applied (hardened parse: garbage warns once and is clamped).
  static ServeOptions FromEnv();
};

/// Terminal outcome of one request. `status` is kOk, kDeadlineExceeded
/// (ran out of time in queue or mid-flight), kResourceExhausted (shed at
/// admission, cancelled by the watchdog, or cancelled at shutdown), or a
/// backend error.
struct InferenceResult {
  Status status;
  std::vector<float> logits;  ///< on kOk: one logit per class
  int32_t predicted = -1;     ///< on kOk: argmax class
  bool degraded = false;      ///< served on the degraded rung
  int64_t retry_after_ms = 0;  ///< on shed: back-off hint for the client,
                               ///< estimated from the shedding tenant's own
                               ///< backlog and latency EWMA
  int64_t latency_ms = 0;      ///< admission -> completion (service clock)
  uint64_t model_version = 0;  ///< on kOk: registry version that served it
  uint64_t log_seq = 0;  ///< request-log sequence for delayed-label joins;
                         ///< 0 = not logged (no log, or sampled out)
};

/// Per-tenant slice of ServeStats. The same conservation identities hold
/// within each tenant (a shed or completion is accounted to exactly one).
struct TenantStats {
  std::string name;
  size_t quota = 0;
  size_t weight = 1;
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;
  uint64_t completed_degraded = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  size_t queue_depth = 0;
};

/// Monotonic outcome counters plus instantaneous depth/state. Snapshot via
/// InferenceService::Stats(); totals satisfy
///   submitted == admitted + shed  and
///   admitted == completed + completed_degraded + deadline_exceeded
///               + cancelled        (once all futures are resolved).
/// The first identity counts well-formed, pre-stop submissions only:
/// malformed inputs (kInvalidArgument) and submissions after Stop
/// (kFailedPrecondition) increment `submitted` but are neither admitted
/// nor shed.
struct ServeStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;           ///< full-quality successes
  uint64_t completed_degraded = 0;  ///< degraded-rung successes
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;  ///< watchdog / shutdown cancellations
  uint64_t watchdog_trips = 0;
  uint64_t degrade_transitions = 0;  ///< healthy -> degraded edges
  size_t queue_depth = 0;
  size_t executing = 0;  ///< requests inside running micro-batches
  bool degraded = false;
  std::vector<TenantStats> tenants;  ///< per-tenant slices, config order
};

/// \brief The deadline-aware serving front-end. Thread-safe; one instance
/// serves concurrent Submit() callers.
class InferenceService {
 public:
  /// Wraps `backend` in a fixed single-entry registry (promotion disabled)
  /// and starts the service — the single-model entry point.
  static StatusOr<std::unique_ptr<InferenceService>> Create(
      std::unique_ptr<ModelBackend> backend, const ServeOptions& options);

  /// Serves whatever `registry` holds live. The registry is shared: the
  /// caller keeps its handle and drives promotions/rollbacks concurrently
  /// with traffic; each batch pins the entry it started on.
  static StatusOr<std::unique_ptr<InferenceService>> Create(
      std::shared_ptr<ModelRegistry> registry, const ServeOptions& options);

  /// Stops with StopMode::kDrain.
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Submits one input row under the default deadline, as the default
  /// tenant.
  std::future<InferenceResult> Submit(std::vector<float> input);
  /// Submits one input row with an explicit deadline, as the default
  /// tenant. The returned future always becomes ready: sheds and validation
  /// failures resolve immediately, admitted requests resolve when their
  /// batch completes or their deadline is enforced.
  std::future<InferenceResult> Submit(std::vector<float> input,
                                      Deadline deadline);
  /// Tenant-attributed submission under the default deadline. Unknown
  /// tenant names are accounted to (and bounded by) the default tenant.
  std::future<InferenceResult> Submit(std::string_view tenant,
                                      std::vector<float> input);
  /// Tenant-attributed submission with an explicit deadline.
  std::future<InferenceResult> Submit(std::string_view tenant,
                                      std::vector<float> input,
                                      Deadline deadline);

  enum class StopMode {
    kDrain,          ///< process everything already admitted, then stop
    kCancelPending,  ///< fail queued requests and cancel running batches
  };
  /// Stops the service. Idempotent; safe to call concurrently. After Stop,
  /// Submit fails with kFailedPrecondition.
  void Stop(StopMode mode = StopMode::kDrain);

  /// True while the degradation ladder is on the degraded rung.
  bool degraded() const;

  ServeStats Stats() const;
  const ServeOptions& options() const { return options_; }
  /// The live backend (a convenience over registry()->Current(); the
  /// reference is only stable while no promotion flips the registry).
  const ModelBackend& backend() const { return *registry_->Current()->backend; }
  /// The registry this service serves from. Never null; single-model
  /// services own a fixed registry with promotion disabled.
  ModelRegistry* registry() const { return registry_.get(); }

  /// Bound port of the embedded introspection server, or -1 when it is off
  /// (options.statusz_port == -1 or the bind failed).
  int statusz_port() const;

  /// The windowed SLO tracker, or nullptr when observability is off. The
  /// lifecycle loop's demotion watch reads Snapshot() through this.
  SloTracker* slo_tracker() const { return slo_.get(); }
  /// The embedded introspection server, or nullptr when off. Lets callers
  /// register extra /statusz sections (e.g. the lifecycle loop's).
  StatuszServer* statusz_server() const { return statusz_.get(); }

 private:
  struct TenantState;

  struct PendingRequest {
    std::vector<float> input;
    Deadline deadline;
    std::promise<InferenceResult> promise;
    int64_t enqueue_ms = 0;
    RequestContext rc;  ///< id + phase-boundary stamps (DESIGN.md §12)
    TenantState* tenant = nullptr;  ///< owning sub-queue (stable pointer)
    uint64_t log_seq = 0;  ///< request-log sequence (0 = not logged)
  };

  /// One tenant's sub-queue plus its always-on counters (ServeStats slice)
  /// and the precomputed serve.tenant.<name>.* metric names, built once at
  /// startup so the hot path never concatenates strings. Queue, deficit and
  /// depth live under mu_; the counters are relaxed atomics like the global
  /// ones.
  struct TenantState {
    explicit TenantState(TenantConfig config);

    const TenantConfig config;
    std::deque<PendingRequest> queue;  // guarded by mu_ (see tenants_)
    int64_t deficit = 0;               // DRR credit, guarded by mu_

    std::atomic<uint64_t> submitted{0}, admitted{0}, shed{0}, completed{0},
        completed_degraded{0}, deadline_exceeded{0}, cancelled{0};
    // Per-tenant latency EWMA (ms * 1024 fixed point), feeding the
    // per-tenant retry-after hint. 0 = no data yet.
    std::atomic<int64_t> latency_ewma_q10{0};

    // serve.tenant.<name>.{submitted,admitted,shed,...} etc.
    const std::string m_submitted, m_admitted, m_shed, m_completed,
        m_completed_degraded, m_deadline_exceeded, m_cancelled,
        m_queue_depth, m_retry_after_ms, m_latency_ms;
  };

  // Watchdog heartbeat per worker. batch_start_ms: kIdle when between
  // batches, kTripped after the watchdog cancelled the current batch,
  // otherwise the service-clock instant the batch started.
  struct WorkerSlot {
    static constexpr int64_t kIdle = -1;
    static constexpr int64_t kTripped = -2;
    std::atomic<int64_t> batch_start_ms{kIdle};
    // All token mutexes share one rank: no path holds two slots' tokens.
    Mutex token_mu{"serve.worker_token", lockrank::kServeWorkerToken};
    CancellationToken batch_token SAMPNN_GUARDED_BY(token_mu);
  };

  InferenceService(std::shared_ptr<ModelRegistry> registry,
                   const ServeOptions& options);
  void Start();

  void WorkerLoop(size_t worker_index);
  void WatchdogLoop();
  void RunBatch(std::vector<PendingRequest> batch, ServeQuality quality,
                WorkerSlot* slot);
  void CompleteShed(PendingRequest* req, const std::string& why);
  void CompleteDeadline(PendingRequest* req, const std::string& why);
  // Evaluates the occupancy hysteresis; callers hold mu_.
  void UpdateLadderLocked() SAMPNN_REQUIRES(mu_);
  // Trips the ladder to degraded (watchdog path); takes mu_ itself.
  void TripDegraded() SAMPNN_EXCLUDES(mu_);
  /// Deficit-round-robin batch assembly: pops up to `cap` ready requests
  /// across the tenant sub-queues in weight proportion (fail-fasting
  /// expired ones as it goes). Deterministic given queue contents: the
  /// round-robin cursor and per-tenant deficits persist across batches.
  std::vector<PendingRequest> AssembleBatchLocked(size_t cap,
                                                  ServeQuality quality)
      SAMPNN_REQUIRES(mu_);
  /// Tenant lookup by name; unknown names map to the default tenant.
  TenantState* ResolveTenant(std::string_view name);
  /// Back-off hint for a shed on `tenant`: expected drain time of the
  /// backlog the shed actually hit — the tenant's own queue when its quota
  /// rejected the request, the whole queue when global capacity did —
  /// priced at the tenant's latency EWMA (global EWMA, then the default
  /// deadline, as fallbacks).
  int64_t RetryAfterHintLocked(const TenantState& tenant,
                               bool tenant_bound) const SAMPNN_REQUIRES(mu_);
  int64_t NowMs() const { return clock_->NowMillis(); }
  void ObserveLatency(TenantState* tenant, int64_t latency_ms);

  // Observability gate: metrics flow to the registry when telemetry is on
  // OR the introspection server is configured (a /metricsz scrape must see
  // serve metrics even without SAMPNN_TELEMETRY). When both are off the
  // Mirror* helpers are single-branch no-ops and the registry is never
  // touched from the serving path (the zero-overhead guard test relies on
  // this).
  bool ObsEnabled() const {
    return TelemetryEnabled() || options_.statusz_port >= 0;
  }
  void MirrorCount(std::string_view name, uint64_t delta = 1) const;
  void MirrorGauge(std::string_view name, double value) const;
  void MirrorHistogram(std::string_view name, uint64_t value) const;
  /// Observes every closed phase segment of `rc` into the serve.phase.*
  /// histograms, with the request id as the exemplar.
  void ObservePhases(const RequestContext& rc) const;
  std::string RenderServeSection() const;

  const ServeOptions options_;
  const Clock* const clock_;
  // The model source. Dim compatibility is a promotion invariant, so the
  // input dim is cached once instead of chasing the live entry per Submit.
  const std::shared_ptr<ModelRegistry> registry_;
  const size_t input_dim_;

  mutable Mutex mu_{"serve.queue", lockrank::kServeQueue};
  CondVar work_cv_;
  // Tenant sub-queues, config order with "default" guaranteed present.
  // The vector itself is immutable after Start(); each element's queue /
  // deficit are guarded by mu_ (annotated inside TenantState by comment —
  // the analysis cannot tie a nested struct's fields to an outer mutex).
  std::vector<std::unique_ptr<TenantState>> tenants_;
  size_t default_tenant_ = 0;  ///< index of kDefaultTenant in tenants_
  size_t total_queued_ SAMPNN_GUARDED_BY(mu_) = 0;
  size_t drr_cursor_ SAMPNN_GUARDED_BY(mu_) = 0;
  bool stopping_ SAMPNN_GUARDED_BY(mu_) = false;
  bool cancel_pending_ SAMPNN_GUARDED_BY(mu_) = false;

  // Serializes Stop() callers (including the destructor) across the joins.
  // Lowest rank in the process: it wraps acquisitions of mu_ and the worker
  // token mutexes.
  Mutex lifecycle_mu_{"serve.lifecycle", lockrank::kServeLifecycle};

  std::atomic<bool> degraded_{false};
  std::atomic<bool> watchdog_stop_{false};

  // Outcome counters (see ServeStats).
  std::atomic<uint64_t> submitted_{0}, admitted_{0}, shed_{0}, completed_{0},
      completed_degraded_{0}, deadline_exceeded_{0}, cancelled_{0},
      watchdog_trips_{0}, degrade_transitions_{0};
  std::atomic<size_t> executing_{0};
  // EWMA of per-request latency in ms * 1024 (fixed point), 0 = no data.
  std::atomic<int64_t> latency_ewma_q10_{0};

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;

  // Introspection plane; null when ObsEnabled() / statusz_port say off.
  std::unique_ptr<SloTracker> slo_;  ///< ticked by the watchdog thread
  // Declared last so it is destroyed first: the accept thread's callbacks
  // read every other member, so it must be joined before they die.
  std::unique_ptr<StatuszServer> statusz_;
};

}  // namespace sampnn
