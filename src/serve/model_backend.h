// Model backends for the inference service (DESIGN.md §10): one interface
// over "compute logits for a micro-batch, cooperatively cancellable, at a
// quality rung the degradation ladder selects".
//
// The ladder exploits the paper's own accuracy-for-speed trades (§8):
//   - dense MLP      : full == degraded (exact forward is the floor),
//   - ALSH-backed    : full = per-sample hash-probe sparse inference (the
//                      selection the method trained with); degraded = one
//                      batched dense pass through the packed GEMM — cheaper
//                      under load than per-sample probing, at the cost of
//                      the train/inference distribution gap,
//   - MC-approx      : full = exact forward; degraded = Adelman-sampled
//                      (arXiv:1805.08079) forward products with a reduced
//                      sample count — the smooth per-request compute knob.

#pragma once

#include <cstddef>
#include <memory>

#include "src/core/alsh_trainer.h"
#include "src/nn/mlp.h"
#include "src/tensor/matrix.h"
#include "src/util/deadline.h"
#include "src/util/status.h"

namespace sampnn {

/// Degradation rung the service requests from a backend.
enum class ServeQuality {
  kFull,      ///< healthy service: the method's native inference path
  kDegraded,  ///< overloaded service: the backend's cheaper fallback
};

const char* ServeQualityToString(ServeQuality q);

/// \brief One servable model. Forward() must poll `ctx` cooperatively and
/// must be safe to call from the service's worker threads (backends with
/// mutable scratch serialize internally).
class ModelBackend {
 public:
  virtual ~ModelBackend() = default;

  virtual const char* name() const = 0;
  virtual size_t input_dim() const = 0;
  virtual size_t output_dim() const = 0;

  /// Computes logits (batch.rows() x output_dim) for a micro-batch. On a
  /// cancelled or expired `ctx` returns ctx.StopStatus() and leaves
  /// `logits` unspecified.
  virtual Status Forward(const Matrix& batch, const CancelContext& ctx,
                         ServeQuality quality, Matrix* logits) = 0;
};

/// Exact dense serving: the cancellable Mlp forward at every quality rung.
std::unique_ptr<ModelBackend> MakeDenseBackend(Mlp model);

/// ALSH serving over a trained AlshTrainer (owns it; hash tables must be
/// built, which AlshTrainer::Create guarantees). Full quality hash-probes
/// per sample; degraded runs the batched dense fallback.
std::unique_ptr<ModelBackend> MakeAlshBackend(
    std::unique_ptr<AlshTrainer> trainer);

/// MC-approx serving options: Adelman sample counts per quality rung.
struct McBackendOptions {
  size_t degraded_samples = 8;  ///< k for the degraded forward products
  uint64_t seed = 42;           ///< estimator RNG seed
};

/// MC-approx serving: exact forward at full quality, Adelman-sampled
/// forward products at `degraded_samples` when degraded.
std::unique_ptr<ModelBackend> MakeMcBackend(Mlp model,
                                            const McBackendOptions& options);

}  // namespace sampnn
