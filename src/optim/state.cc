// Optimizer state serialization for checkpointing. The shared helpers
// handle the MlpGrads-shaped buffers (momentum, Adam moments, Adagrad
// accumulators); each optimizer's SaveState/LoadState composes them with
// its scalar counters. Format is self-describing enough to validate
// against the live network's shapes on load.

#include <cstring>

#include "src/optim/optimizer.h"
#include "src/util/binary_io.h"
#include "src/util/check.h"

namespace sampnn {

Status SaveGradsShapedState(std::ostream& out, const MlpGrads& grads) {
  WriteU64(out, grads.size());
  for (const LayerGrads& g : grads) {
    WriteU64(out, g.weights.rows());
    WriteU64(out, g.weights.cols());
    WriteFloats(out, {g.weights.data(), g.weights.size()});
    WriteFloats(out, {g.bias.data(), g.bias.size()});
  }
  if (!out) return Status::IOError("optimizer state write failure");
  return Status::OK();
}

Status LoadGradsShapedState(std::istream& in, const Mlp& net,
                            MlpGrads* grads) {
  SAMPNN_CHECK(grads != nullptr);
  SAMPNN_ASSIGN_OR_RETURN(uint64_t num_layers, ReadU64(in));
  if (num_layers == 0) {
    // Saved before the first Step(): restore the lazy-uninitialized state.
    grads->clear();
    return Status::OK();
  }
  if (num_layers != net.num_layers()) {
    return Status::InvalidArgument(
        "optimizer state has " + std::to_string(num_layers) +
        " layers, network has " + std::to_string(net.num_layers()));
  }
  MlpGrads loaded = net.ZeroGrads();
  std::vector<float> buf;
  for (size_t k = 0; k < loaded.size(); ++k) {
    LayerGrads& g = loaded[k];
    SAMPNN_ASSIGN_OR_RETURN(uint64_t rows, ReadU64(in));
    SAMPNN_ASSIGN_OR_RETURN(uint64_t cols, ReadU64(in));
    if (rows != g.weights.rows() || cols != g.weights.cols()) {
      return Status::InvalidArgument(
          "optimizer state layer " + std::to_string(k) +
          " shape mismatch: " + std::to_string(rows) + "x" +
          std::to_string(cols) + " vs network " +
          std::to_string(g.weights.rows()) + "x" +
          std::to_string(g.weights.cols()));
    }
    SAMPNN_RETURN_NOT_OK(ReadFloats(in, &buf));
    if (buf.size() != g.weights.size()) {
      return Status::InvalidArgument("optimizer state layer " +
                                     std::to_string(k) +
                                     " weight buffer size mismatch");
    }
    std::memcpy(g.weights.data(), buf.data(), buf.size() * sizeof(float));
    SAMPNN_RETURN_NOT_OK(ReadFloats(in, &buf));
    if (buf.size() != g.bias.size()) {
      return Status::InvalidArgument("optimizer state layer " +
                                     std::to_string(k) +
                                     " bias buffer size mismatch");
    }
    std::memcpy(g.bias.data(), buf.data(), buf.size() * sizeof(float));
  }
  *grads = std::move(loaded);
  return Status::OK();
}

Status SgdOptimizer::SaveState(std::ostream& out) const {
  return SaveGradsShapedState(out, velocity_);
}

Status SgdOptimizer::LoadState(std::istream& in, const Mlp& net) {
  return LoadGradsShapedState(in, net, &velocity_);
}

Status AdamOptimizer::SaveState(std::ostream& out) const {
  WriteU64(out, static_cast<uint64_t>(t_));
  SAMPNN_RETURN_NOT_OK(SaveGradsShapedState(out, m_));
  return SaveGradsShapedState(out, v_);
}

Status AdamOptimizer::LoadState(std::istream& in, const Mlp& net) {
  SAMPNN_ASSIGN_OR_RETURN(uint64_t t, ReadU64(in));
  MlpGrads m, v;
  SAMPNN_RETURN_NOT_OK(LoadGradsShapedState(in, net, &m));
  SAMPNN_RETURN_NOT_OK(LoadGradsShapedState(in, net, &v));
  if (m.size() != v.size()) {
    return Status::InvalidArgument("adam state m/v layer count mismatch");
  }
  t_ = static_cast<long long>(t);
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

Status AdagradOptimizer::SaveState(std::ostream& out) const {
  return SaveGradsShapedState(out, accum_);
}

Status AdagradOptimizer::LoadState(std::istream& in, const Mlp& net) {
  return LoadGradsShapedState(in, net, &accum_);
}

}  // namespace sampnn
