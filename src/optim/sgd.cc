#include <cmath>

#include "src/optim/optimizer.h"
#include "src/tensor/kernels.h"
#include "src/util/check.h"

namespace sampnn {

SgdOptimizer::SgdOptimizer(float lr, float momentum)
    : lr_(lr), momentum_(momentum) {
  SAMPNN_CHECK_GT(lr, 0.0f);
  SAMPNN_CHECK_GE(momentum, 0.0f);
  SAMPNN_CHECK_LT(momentum, 1.0f);
}

void SgdOptimizer::Step(Mlp* net, const MlpGrads& grads) {
  SAMPNN_CHECK(net != nullptr);
  SAMPNN_CHECK_EQ(grads.size(), net->num_layers());
  const bool use_momentum = momentum_ > 0.0f;
  if (use_momentum && velocity_.size() != grads.size()) {
    velocity_ = net->ZeroGrads();
  }
  for (size_t k = 0; k < grads.size(); ++k) {
    Layer& layer = net->layer(k);
    const LayerGrads& g = grads[k];
    SAMPNN_CHECK_EQ(g.weights.rows(), layer.weights().rows());
    SAMPNN_CHECK_EQ(g.weights.cols(), layer.weights().cols());
    if (use_momentum) {
      LayerGrads& vel = velocity_[k];
      // v = momentum * v + g; w -= lr * v
      Scale(&vel.weights, momentum_);
      Axpy(1.0f, g.weights, &vel.weights);
      Axpy(-lr_, vel.weights, &layer.weights());
      auto bias = layer.bias();
      for (size_t j = 0; j < bias.size(); ++j) {
        vel.bias[j] = momentum_ * vel.bias[j] + g.bias[j];
        bias[j] -= lr_ * vel.bias[j];
      }
    } else {
      Axpy(-lr_, g.weights, &layer.weights());
      auto bias = layer.bias();
      for (size_t j = 0; j < bias.size(); ++j) bias[j] -= lr_ * g.bias[j];
    }
  }
}

void SgdOptimizer::Reset() { velocity_.clear(); }

}  // namespace sampnn
