// Optimizer interface and factory. The paper trains with SGD or Adam
// (ALSH-approx performs better with Adam; the original ALSH code used
// Adagrad), so all three are provided.

#pragma once

#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "src/nn/mlp.h"
#include "src/util/status.h"

namespace sampnn {

/// \brief Applies parameter updates from dense gradients.
///
/// Stateful optimizers (Adam, Adagrad) shape their state lazily on the first
/// Step() call and are tied to that network's architecture afterwards.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update: params -= f(grads). `grads` must be index-aligned
  /// with `net`'s layers.
  virtual void Step(Mlp* net, const MlpGrads& grads) = 0;

  /// Drops accumulated state (moments, step counters).
  virtual void Reset() = 0;

  /// Current learning rate.
  virtual float learning_rate() const = 0;
  /// Updates the learning rate (for schedules / the paper's per-setting lr).
  virtual void set_learning_rate(float lr) = 0;

  /// Short identifier, e.g. "sgd".
  virtual const char* name() const = 0;

  /// Serializes accumulated state (moments, step counters) for
  /// checkpointing. The learning rate is configuration, not state, and is
  /// restored separately by the caller.
  virtual Status SaveState(std::ostream& out) const = 0;

  /// Restores state written by SaveState(). `net` provides the expected
  /// shapes; a mismatch returns InvalidArgument. A state saved before the
  /// first Step() restores to the lazily-uninitialized condition.
  virtual Status LoadState(std::istream& in, const Mlp& net) = 0;
};

/// Shared helpers for the MlpGrads-shaped state every optimizer carries.
/// An empty `grads` (lazy, never stepped) round-trips as such.
Status SaveGradsShapedState(std::ostream& out, const MlpGrads& grads);
Status LoadGradsShapedState(std::istream& in, const Mlp& net, MlpGrads* grads);

/// \brief Plain SGD with optional momentum.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(float lr, float momentum = 0.0f);

  void Step(Mlp* net, const MlpGrads& grads) override;
  void Reset() override;
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }
  const char* name() const override { return "sgd"; }
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in, const Mlp& net) override;

 private:
  float lr_;
  float momentum_;
  MlpGrads velocity_;  // empty until momentum is used
};

/// \brief Adam (Kingma & Ba) with bias correction.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                         float eps = 1e-8f);

  void Step(Mlp* net, const MlpGrads& grads) override;
  void Reset() override;
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }
  const char* name() const override { return "adam"; }
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in, const Mlp& net) override;

 private:
  float lr_, beta1_, beta2_, eps_;
  long long t_ = 0;
  MlpGrads m_, v_;
};

/// \brief Adagrad (Duchi et al.).
class AdagradOptimizer : public Optimizer {
 public:
  explicit AdagradOptimizer(float lr, float eps = 1e-10f);

  void Step(Mlp* net, const MlpGrads& grads) override;
  void Reset() override;
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }
  const char* name() const override { return "adagrad"; }
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in, const Mlp& net) override;

 private:
  float lr_, eps_;
  MlpGrads accum_;
};

/// Creates an optimizer by name: "sgd" | "sgd-momentum" | "adam" | "adagrad".
StatusOr<std::unique_ptr<Optimizer>> MakeOptimizer(const std::string& name,
                                                   float lr);

}  // namespace sampnn
