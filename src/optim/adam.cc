#include <cmath>

#include "src/optim/optimizer.h"
#include "src/util/check.h"

namespace sampnn {

AdamOptimizer::AdamOptimizer(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  SAMPNN_CHECK_GT(lr, 0.0f);
  SAMPNN_CHECK(beta1 >= 0.0f && beta1 < 1.0f);
  SAMPNN_CHECK(beta2 >= 0.0f && beta2 < 1.0f);
}

void AdamOptimizer::Step(Mlp* net, const MlpGrads& grads) {
  SAMPNN_CHECK(net != nullptr);
  SAMPNN_CHECK_EQ(grads.size(), net->num_layers());
  if (m_.size() != grads.size()) {
    m_ = net->ZeroGrads();
    v_ = net->ZeroGrads();
    t_ = 0;
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const float step_size = lr_ * std::sqrt(bc2) / bc1;

  for (size_t k = 0; k < grads.size(); ++k) {
    Layer& layer = net->layer(k);
    const LayerGrads& g = grads[k];
    float* w = layer.weights().data();
    float* m = m_[k].weights.data();
    float* v = v_[k].weights.data();
    const float* gd = g.weights.data();
    const size_t n = layer.weights().size();
    for (size_t i = 0; i < n; ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * gd[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * gd[i] * gd[i];
      w[i] -= step_size * m[i] / (std::sqrt(v[i]) + eps_);
    }
    auto bias = layer.bias();
    for (size_t j = 0; j < bias.size(); ++j) {
      float& mb = m_[k].bias[j];
      float& vb = v_[k].bias[j];
      mb = beta1_ * mb + (1.0f - beta1_) * g.bias[j];
      vb = beta2_ * vb + (1.0f - beta2_) * g.bias[j] * g.bias[j];
      bias[j] -= step_size * mb / (std::sqrt(vb) + eps_);
    }
  }
}

void AdamOptimizer::Reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

}  // namespace sampnn
