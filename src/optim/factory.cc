#include <memory>

#include "src/optim/optimizer.h"

namespace sampnn {

StatusOr<std::unique_ptr<Optimizer>> MakeOptimizer(const std::string& name,
                                                   float lr) {
  if (lr <= 0.0f) {
    return Status::InvalidArgument("learning rate must be > 0");
  }
  if (name == "sgd") {
    return std::unique_ptr<Optimizer>(new SgdOptimizer(lr));
  }
  if (name == "sgd-momentum") {
    return std::unique_ptr<Optimizer>(new SgdOptimizer(lr, 0.9f));
  }
  if (name == "adam") {
    return std::unique_ptr<Optimizer>(new AdamOptimizer(lr));
  }
  if (name == "adagrad") {
    return std::unique_ptr<Optimizer>(new AdagradOptimizer(lr));
  }
  return Status::InvalidArgument("unknown optimizer: " + name);
}

}  // namespace sampnn
