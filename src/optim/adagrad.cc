#include <cmath>

#include "src/optim/optimizer.h"
#include "src/util/check.h"

namespace sampnn {

AdagradOptimizer::AdagradOptimizer(float lr, float eps) : lr_(lr), eps_(eps) {
  SAMPNN_CHECK_GT(lr, 0.0f);
}

void AdagradOptimizer::Step(Mlp* net, const MlpGrads& grads) {
  SAMPNN_CHECK(net != nullptr);
  SAMPNN_CHECK_EQ(grads.size(), net->num_layers());
  if (accum_.size() != grads.size()) accum_ = net->ZeroGrads();

  for (size_t k = 0; k < grads.size(); ++k) {
    Layer& layer = net->layer(k);
    const LayerGrads& g = grads[k];
    float* w = layer.weights().data();
    float* acc = accum_[k].weights.data();
    const float* gd = g.weights.data();
    const size_t n = layer.weights().size();
    for (size_t i = 0; i < n; ++i) {
      acc[i] += gd[i] * gd[i];
      w[i] -= lr_ * gd[i] / (std::sqrt(acc[i]) + eps_);
    }
    auto bias = layer.bias();
    for (size_t j = 0; j < bias.size(); ++j) {
      float& ab = accum_[k].bias[j];
      ab += g.bias[j] * g.bias[j];
      bias[j] -= lr_ * g.bias[j] / (std::sqrt(ab) + eps_);
    }
  }
}

void AdagradOptimizer::Reset() { accum_.clear(); }

}  // namespace sampnn
