// Dense and sparse linear-algebra kernels.
//
// These are the Θ(n²)-per-layer operations the paper identifies as the
// training bottleneck (§4.1), plus the sparse/active-set variants that the
// sampling-based methods substitute for them:
//   - full gemm family (standard training, minibatch),
//   - column-subset products (ALSH-approx: "sampling from current layer"),
//   - row-subset products (MC-approx: "sampling from previous layer").
//
// The gemm family runs on a packed, register-blocked microkernel
// (src/tensor/gemm.h): AVX2+FMA when the CPU supports it, ThreadPool
// row-partitioned above a FLOP threshold (SAMPNN_THREADS workers), with a
// bitwise-stable serial scalar path under SAMPNN_DETERMINISTIC_KERNELS=1.
// Elementwise ops vectorize through src/tensor/simd.h. Tuning knobs and
// the determinism switch live in src/tensor/kernel_config.h; DESIGN.md §9
// documents the architecture and the float-reassociation tolerance.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/matrix.h"

namespace sampnn {

/// C = alpha * A(m x k) * B(k x n) + beta * C(m x n).
void Gemm(const Matrix& a, const Matrix& b, Matrix* c, float alpha = 1.0f,
          float beta = 0.0f);

/// C = alpha * A^T(m x k) * B(m x n) + beta * C(k x n).
/// Used for weight gradients: grad_W = A_prev^T * delta.
void GemmTransA(const Matrix& a, const Matrix& b, Matrix* c,
                float alpha = 1.0f, float beta = 0.0f);

/// C = alpha * A(m x k) * B^T(n x k) + beta * C(m x n).
/// Used to push deltas back: delta_prev = delta * W^T.
void GemmTransB(const Matrix& a, const Matrix& b, Matrix* c,
                float alpha = 1.0f, float beta = 0.0f);

/// y(1 x n) = x(1 x k) * W(k x n) + b(1 x n). The SGD hot path.
void VecMat(std::span<const float> x, const Matrix& w,
            std::span<const float> bias, std::span<float> y);

/// Adds row vector `v` (1 x cols) to every row of `m`.
void AddRowVector(Matrix* m, std::span<const float> v);

/// a := a ⊙ b elementwise (Hadamard). Shapes must match.
void HadamardInPlace(Matrix* a, const Matrix& b);

/// y := y + alpha * x elementwise. Shapes must match.
void Axpy(float alpha, const Matrix& x, Matrix* y);

/// m := alpha * m.
void Scale(Matrix* m, float alpha);

/// Sums each column of `m` into `out` (size cols). Used for bias gradients.
void ColumnSums(const Matrix& m, std::span<float> out);

// ---------------------------------------------------------------------------
// Sparse / active-set kernels (the sampling-based substitutes).
// ---------------------------------------------------------------------------

/// For each active column j in `cols`: y[j] = <x, W[:, j]> + bias[j].
/// Entries of y outside `cols` are left untouched (callers zero y first to
/// realize the paper's "estimate inactive activations as zero").
void VecMatCols(std::span<const float> x, const Matrix& w,
                std::span<const float> bias,
                std::span<const uint32_t> cols, std::span<float> y);

/// Restricted inner product: sum over i in `rows` of x[i] * W(i, j).
float SparseDot(std::span<const float> x, const Matrix& w, size_t col,
                std::span<const uint32_t> rows);

/// delta_prev[i] += sum over active j of delta[j] * W(i, j), for all i in
/// [0, w.rows()). Backprop through active columns only.
void BackpropActiveCols(std::span<const float> delta, const Matrix& w,
                        std::span<const uint32_t> cols,
                        std::span<float> delta_prev);

/// Rank-1 sparse update: W(:, j) -= lr * delta[j] * a_prev for active j,
/// bias[j] -= lr * delta[j]. The sparse weight update of ALSH-approx.
void SparseOuterUpdate(std::span<const float> a_prev,
                       std::span<const float> delta,
                       std::span<const uint32_t> cols, float lr, Matrix* w,
                       std::span<float> bias);

}  // namespace sampnn
