#include "src/tensor/gemm.h"

#include <algorithm>
#include <map>
#include <memory>

#include "src/util/sync.h"

#include "src/obs/phase_sampler.h"
#include "src/tensor/aligned_buffer.h"
#include "src/tensor/kernel_config.h"
#include "src/util/check.h"
#include "src/util/deadline.h"
#include "src/util/threadpool.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SAMPNN_GEMM_X86 1
#include <immintrin.h>
#endif

namespace sampnn::gemm_internal {

namespace {

// Cache blocking. One B panel (kKC x kNC floats) is 1 MiB — streams through
// L2/L3 once per k-block; one A block (kMC x kKC) is 96 KiB and stays
// L2-resident while its kMC rows sweep the whole B panel.
constexpr size_t kKC = 256;
constexpr size_t kMC = 96;  // 16 microtiles of kMR rows
constexpr size_t kNC = 1024;

// ---------------------------------------------------------------------------
// Microkernels: C_tile(kMR x kNR) += sum_p apanel[p][0..kMR) ⊗ bpanel[p][0..kNR).
// Panels are packed (contiguous, aligned, zero-padded), so the k-loop is
// two aligned B loads + kMR broadcasts + 2*kMR FMAs per step with no edge
// branches; tails only affect the final store.
// ---------------------------------------------------------------------------

#ifdef SAMPNN_GEMM_X86

__attribute__((target("avx2,fma"))) void MicroKernelAvx2(
    size_t kc, const float* ap, const float* bp, float* c, size_t ldc,
    size_t mr, size_t nr) {
  __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
  __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
  __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
  __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
  __m256 acc40 = _mm256_setzero_ps(), acc41 = _mm256_setzero_ps();
  __m256 acc50 = _mm256_setzero_ps(), acc51 = _mm256_setzero_ps();
  for (size_t p = 0; p < kc; ++p, ap += kMR, bp += kNR) {
    const __m256 b0 = _mm256_load_ps(bp);
    const __m256 b1 = _mm256_load_ps(bp + 8);
    __m256 a = _mm256_broadcast_ss(ap + 0);
    acc00 = _mm256_fmadd_ps(a, b0, acc00);
    acc01 = _mm256_fmadd_ps(a, b1, acc01);
    a = _mm256_broadcast_ss(ap + 1);
    acc10 = _mm256_fmadd_ps(a, b0, acc10);
    acc11 = _mm256_fmadd_ps(a, b1, acc11);
    a = _mm256_broadcast_ss(ap + 2);
    acc20 = _mm256_fmadd_ps(a, b0, acc20);
    acc21 = _mm256_fmadd_ps(a, b1, acc21);
    a = _mm256_broadcast_ss(ap + 3);
    acc30 = _mm256_fmadd_ps(a, b0, acc30);
    acc31 = _mm256_fmadd_ps(a, b1, acc31);
    a = _mm256_broadcast_ss(ap + 4);
    acc40 = _mm256_fmadd_ps(a, b0, acc40);
    acc41 = _mm256_fmadd_ps(a, b1, acc41);
    a = _mm256_broadcast_ss(ap + 5);
    acc50 = _mm256_fmadd_ps(a, b0, acc50);
    acc51 = _mm256_fmadd_ps(a, b1, acc51);
  }
  if (mr == kMR && nr == kNR) {
    float* cr = c;
    _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc00));
    _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc01));
    cr += ldc;
    _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc10));
    _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc11));
    cr += ldc;
    _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc20));
    _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc21));
    cr += ldc;
    _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc30));
    _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc31));
    cr += ldc;
    _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc40));
    _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc41));
    cr += ldc;
    _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc50));
    _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc51));
    return;
  }
  // Edge tile: spill the full register tile and add the live mr x nr
  // corner. The packed zero padding makes the dead lanes exact zeros.
  alignas(32) float tmp[kMR * kNR];
  _mm256_store_ps(tmp + 0 * kNR, acc00);
  _mm256_store_ps(tmp + 0 * kNR + 8, acc01);
  _mm256_store_ps(tmp + 1 * kNR, acc10);
  _mm256_store_ps(tmp + 1 * kNR + 8, acc11);
  _mm256_store_ps(tmp + 2 * kNR, acc20);
  _mm256_store_ps(tmp + 2 * kNR + 8, acc21);
  _mm256_store_ps(tmp + 3 * kNR, acc30);
  _mm256_store_ps(tmp + 3 * kNR + 8, acc31);
  _mm256_store_ps(tmp + 4 * kNR, acc40);
  _mm256_store_ps(tmp + 4 * kNR + 8, acc41);
  _mm256_store_ps(tmp + 5 * kNR, acc50);
  _mm256_store_ps(tmp + 5 * kNR + 8, acc51);
  for (size_t r = 0; r < mr; ++r) {
    for (size_t j = 0; j < nr; ++j) c[r * ldc + j] += tmp[r * kNR + j];
  }
}

#endif  // SAMPNN_GEMM_X86

// Portable microkernel: same packed layout, same per-lane accumulation
// order; auto-vectorizes at the baseline ISA (and never FMA-contracts under
// the project's default flags, matching the scalar deterministic path's
// rounding per lane).
void MicroKernelPortable(size_t kc, const float* __restrict__ ap,
                         const float* __restrict__ bp, float* c, size_t ldc,
                         size_t mr, size_t nr) {
  float acc[kMR][kNR] = {};
  for (size_t p = 0; p < kc; ++p, ap += kMR, bp += kNR) {
    for (size_t r = 0; r < kMR; ++r) {
      const float a = ap[r];
      for (size_t j = 0; j < kNR; ++j) acc[r][j] += a * bp[j];
    }
  }
  for (size_t r = 0; r < mr; ++r) {
    for (size_t j = 0; j < nr; ++j) c[r * ldc + j] += acc[r][j];
  }
}

using MicroKernelFn = void (*)(size_t, const float*, const float*, float*,
                               size_t, size_t, size_t);

MicroKernelFn PickMicroKernel() {
#ifdef SAMPNN_GEMM_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return MicroKernelAvx2;
  }
#endif
  return MicroKernelPortable;
}

MicroKernelFn ActiveMicroKernel() {
  static const MicroKernelFn fn = PickMicroKernel();
  return fn;
}

// ---------------------------------------------------------------------------
// Packing. Panels are written tile-contiguous — B as [jr-tile][p][kNR],
// A as [ir-tile][p][kMR] — so the microkernel streams both with unit
// stride. Out-of-range rows/columns are written as zeros, which keeps the
// microkernel edge-free and makes full-width loads on the last tile exact.
// ---------------------------------------------------------------------------

void PackB(const float* b, size_t b_rs, size_t b_cs, size_t pc, size_t kc,
           size_t jc, size_t nc, float* __restrict__ out) {
  const size_t tiles = (nc + kNR - 1) / kNR;
  for (size_t t = 0; t < tiles; ++t) {
    const size_t j0 = jc + t * kNR;
    const size_t jw = std::min(kNR, jc + nc - j0);
    for (size_t p = 0; p < kc; ++p) {
      const float* src = b + (pc + p) * b_rs + j0 * b_cs;
      float* dst = out + (t * kc + p) * kNR;
      if (b_cs == 1) {
        for (size_t j = 0; j < jw; ++j) dst[j] = src[j];
      } else {
        for (size_t j = 0; j < jw; ++j) dst[j] = src[j * b_cs];
      }
      for (size_t j = jw; j < kNR; ++j) dst[j] = 0.0f;
    }
  }
}

void PackA(const float* a, size_t a_rs, size_t a_cs, size_t ic, size_t mc,
           size_t pc, size_t kc, float alpha, float* __restrict__ out) {
  const size_t tiles = (mc + kMR - 1) / kMR;
  for (size_t t = 0; t < tiles; ++t) {
    const size_t i0 = ic + t * kMR;
    const size_t iw = std::min(kMR, ic + mc - i0);
    for (size_t p = 0; p < kc; ++p) {
      const float* src = a + i0 * a_rs + (pc + p) * a_cs;
      float* dst = out + (t * kc + p) * kMR;
      for (size_t r = 0; r < iw; ++r) dst[r] = alpha * src[r * a_rs];
      for (size_t r = iw; r < kMR; ++r) dst[r] = 0.0f;
    }
  }
}

// Per-thread pack scratch. Workers in the kernel pool are long-lived, so
// these warm up once and are reused across dispatches.
thread_local AlignedBuffer t_apack;
thread_local AlignedBuffer t_bpack;

// One A row-block against one packed B panel: pack, then sweep microtiles.
void RunRowBlock(const float* a, size_t a_rs, size_t a_cs, size_t ic,
                 size_t mc, size_t pc, size_t kc, size_t jc, size_t nc,
                 float alpha, const float* bpack, float* c, size_t ldc,
                 MicroKernelFn micro) {
  t_apack.GrowTo(((kMC + kMR - 1) / kMR) * kMR * kKC);
  PackA(a, a_rs, a_cs, ic, mc, pc, kc, alpha, t_apack.data());
  const float* apack = t_apack.data();
  for (size_t jr = 0; jr < nc; jr += kNR) {
    const size_t nr = std::min(kNR, nc - jr);
    const float* bp = bpack + (jr / kNR) * kc * kNR;
    for (size_t ir = 0; ir < mc; ir += kMR) {
      const size_t mr = std::min(kMR, mc - ir);
      const float* ap = apack + (ir / kMR) * kc * kMR;
      micro(kc, ap, bp, c + (ic + ir) * ldc + jc + jr, ldc, mr, nr);
    }
  }
}

// Kernel pools, one per worker count, created lazily and kept for the
// process lifetime (drained and joined by static destruction). Keeping a
// pool per size sidesteps destroy-while-in-use races when tests flip
// SetGemmThreads between dispatches.
ThreadPool& PoolFor(size_t threads) {
  // Ranked below threadpool.pool: constructing a ThreadPool under this lock
  // may touch the pool's own mutex on its exception path.
  static Mutex mu{"tensor.gemm_pools", lockrank::kGemmPools};
  static std::map<size_t, std::unique_ptr<ThreadPool>> pools;
  MutexLock lock(mu);
  auto& slot = pools[threads];
  if (slot == nullptr) slot = std::make_unique<ThreadPool>(threads);
  return *slot;
}

}  // namespace

bool MicroKernelIsAvx2() {
#ifdef SAMPNN_GEMM_X86
  return ActiveMicroKernel() == MicroKernelAvx2;
#else
  return false;
#endif
}

void PackedGemm(size_t m, size_t n, size_t k, float alpha, const float* a,
                size_t a_rs, size_t a_cs, const float* b, size_t b_rs,
                size_t b_cs, float* c, size_t ldc) {
  PackedGemmParallel(m, n, k, alpha, a, a_rs, a_cs, b, b_rs, b_cs, c, ldc, 1);
}

void PackedGemmParallel(size_t m, size_t n, size_t k, float alpha,
                        const float* a, size_t a_rs, size_t a_cs,
                        const float* b, size_t b_rs, size_t b_cs, float* c,
                        size_t ldc, size_t threads) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) return;  // C += 0
  const MicroKernelFn micro = ActiveMicroKernel();
  // Serving-layer cancellation: the dispatching thread's context, if any,
  // is captured here and polled between panels and row blocks (including by
  // the pool workers the blocks fan out to). A cancelled product leaves C
  // partially written; the cancellable caller discards it.
  const CancelContext* cancel = CurrentKernelCancellation();
  // Phase tag for /statusz: the dispatching thread advertises "gemm" with
  // the serving request id (0 outside the serving path) for the duration of
  // the product. Two relaxed stores; numerics are untouched.
  ScopedPhase gemm_phase("gemm", cancel != nullptr ? cancel->trace_id : 0);
  ThreadPool* pool = threads > 1 ? &PoolFor(threads) : nullptr;
  for (size_t jc = 0; jc < n; jc += kNC) {
    const size_t nc = std::min(kNC, n - jc);
    for (size_t pc = 0; pc < k; pc += kKC) {
      if (cancel != nullptr && cancel->ShouldStop()) return;
      const size_t kc = std::min(kKC, k - pc);
      // The B panel is packed once on the dispatching thread, then read
      // concurrently by the row-block tasks (ThreadPool::Submit's mutex
      // publishes it). Each task packs its own A block into its
      // thread-local scratch, and owns a disjoint range of C rows — no
      // write sharing, and a fixed per-element accumulation order
      // independent of the thread count.
      t_bpack.GrowTo(((kNC + kNR - 1) / kNR) * kNR * kKC);
      PackB(b, b_rs, b_cs, pc, kc, jc, nc, t_bpack.data());
      const float* bpack = t_bpack.data();
      const size_t blocks = (m + kMC - 1) / kMC;
      auto run_block = [&](size_t blk) {
        if (cancel != nullptr && cancel->ShouldStop()) return;
        const size_t ic = blk * kMC;
        const size_t mc = std::min(kMC, m - ic);
        RunRowBlock(a, a_rs, a_cs, ic, mc, pc, kc, jc, nc, alpha, bpack, c,
                    ldc, micro);
      };
      if (pool != nullptr && blocks > 1) {
        // Pool workers tag themselves too, so a snapshot mid-product shows
        // which threads are inside this request's row blocks.
        pool->ParallelFor(blocks, [&](size_t blk) {
          ScopedPhase block_phase(
              "gemm_block", cancel != nullptr ? cancel->trace_id : 0);
          run_block(blk);
        });
      } else {
        for (size_t blk = 0; blk < blocks; ++blk) run_block(blk);
      }
    }
  }
}

}  // namespace sampnn::gemm_internal
