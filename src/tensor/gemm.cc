#include "src/tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>

#include "src/util/sync.h"

#include "src/obs/phase_sampler.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/tensor/aligned_buffer.h"
#include "src/tensor/kernel_config.h"
#include "src/tensor/packed_buffer_pool.h"
#include "src/util/check.h"
#include "src/util/deadline.h"
#include "src/util/threadpool.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SAMPNN_GEMM_X86 1
#include <immintrin.h>
#endif

namespace sampnn::gemm_internal {

namespace {

// Column chunking of the Nc loop: each Kc x Nc panel sweep is carved into
// up to this many column chunks per Mc row block, so the parallel task
// grid has slack in both dimensions — tall-skinny MLP products (one Mc
// block) still fan out across columns. Part of the fixed topology: the
// grid depends on shape and blocking only, never on the worker count.
constexpr size_t kColChunkTarget = 16;

// ---------------------------------------------------------------------------
// Microkernels: C_tile(kMR x kNR) += sum_p apanel[p][0..kMR) ⊗ bpanel[p][0..kNR).
// Panels are packed (contiguous, aligned, zero-padded), so the k-loop is
// two aligned B loads + kMR broadcasts + 2*kMR FMAs per step with no edge
// branches; tails only affect the final store.
// ---------------------------------------------------------------------------

#ifdef SAMPNN_GEMM_X86

__attribute__((target("avx2,fma"))) void MicroKernelAvx2(
    size_t kc, const float* ap, const float* bp, float* c, size_t ldc,
    size_t mr, size_t nr) {
  __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
  __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
  __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
  __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
  __m256 acc40 = _mm256_setzero_ps(), acc41 = _mm256_setzero_ps();
  __m256 acc50 = _mm256_setzero_ps(), acc51 = _mm256_setzero_ps();
  for (size_t p = 0; p < kc; ++p, ap += kMR, bp += kNR) {
    const __m256 b0 = _mm256_load_ps(bp);
    const __m256 b1 = _mm256_load_ps(bp + 8);
    __m256 a = _mm256_broadcast_ss(ap + 0);
    acc00 = _mm256_fmadd_ps(a, b0, acc00);
    acc01 = _mm256_fmadd_ps(a, b1, acc01);
    a = _mm256_broadcast_ss(ap + 1);
    acc10 = _mm256_fmadd_ps(a, b0, acc10);
    acc11 = _mm256_fmadd_ps(a, b1, acc11);
    a = _mm256_broadcast_ss(ap + 2);
    acc20 = _mm256_fmadd_ps(a, b0, acc20);
    acc21 = _mm256_fmadd_ps(a, b1, acc21);
    a = _mm256_broadcast_ss(ap + 3);
    acc30 = _mm256_fmadd_ps(a, b0, acc30);
    acc31 = _mm256_fmadd_ps(a, b1, acc31);
    a = _mm256_broadcast_ss(ap + 4);
    acc40 = _mm256_fmadd_ps(a, b0, acc40);
    acc41 = _mm256_fmadd_ps(a, b1, acc41);
    a = _mm256_broadcast_ss(ap + 5);
    acc50 = _mm256_fmadd_ps(a, b0, acc50);
    acc51 = _mm256_fmadd_ps(a, b1, acc51);
  }
  if (mr == kMR && nr == kNR) {
    float* cr = c;
    _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc00));
    _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc01));
    cr += ldc;
    _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc10));
    _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc11));
    cr += ldc;
    _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc20));
    _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc21));
    cr += ldc;
    _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc30));
    _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc31));
    cr += ldc;
    _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc40));
    _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc41));
    cr += ldc;
    _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc50));
    _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc51));
    return;
  }
  // Edge tile: spill the full register tile and add the live mr x nr
  // corner. The packed zero padding makes the dead lanes exact zeros.
  alignas(32) float tmp[kMR * kNR];
  _mm256_store_ps(tmp + 0 * kNR, acc00);
  _mm256_store_ps(tmp + 0 * kNR + 8, acc01);
  _mm256_store_ps(tmp + 1 * kNR, acc10);
  _mm256_store_ps(tmp + 1 * kNR + 8, acc11);
  _mm256_store_ps(tmp + 2 * kNR, acc20);
  _mm256_store_ps(tmp + 2 * kNR + 8, acc21);
  _mm256_store_ps(tmp + 3 * kNR, acc30);
  _mm256_store_ps(tmp + 3 * kNR + 8, acc31);
  _mm256_store_ps(tmp + 4 * kNR, acc40);
  _mm256_store_ps(tmp + 4 * kNR + 8, acc41);
  _mm256_store_ps(tmp + 5 * kNR, acc50);
  _mm256_store_ps(tmp + 5 * kNR + 8, acc51);
  for (size_t r = 0; r < mr; ++r) {
    for (size_t j = 0; j < nr; ++j) c[r * ldc + j] += tmp[r * kNR + j];
  }
}

#endif  // SAMPNN_GEMM_X86

// Portable microkernel: same packed layout, same per-lane accumulation
// order; auto-vectorizes at the baseline ISA (and never FMA-contracts under
// the project's default flags, matching the scalar deterministic path's
// rounding per lane).
void MicroKernelPortable(size_t kc, const float* __restrict__ ap,
                         const float* __restrict__ bp, float* c, size_t ldc,
                         size_t mr, size_t nr) {
  float acc[kMR][kNR] = {};
  for (size_t p = 0; p < kc; ++p, ap += kMR, bp += kNR) {
    for (size_t r = 0; r < kMR; ++r) {
      const float a = ap[r];
      for (size_t j = 0; j < kNR; ++j) acc[r][j] += a * bp[j];
    }
  }
  for (size_t r = 0; r < mr; ++r) {
    for (size_t j = 0; j < nr; ++j) c[r * ldc + j] += acc[r][j];
  }
}

using MicroKernelFn = void (*)(size_t, const float*, const float*, float*,
                               size_t, size_t, size_t);

MicroKernelFn PickMicroKernel() {
#ifdef SAMPNN_GEMM_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return MicroKernelAvx2;
  }
#endif
  return MicroKernelPortable;
}

MicroKernelFn ActiveMicroKernel() {
  static const MicroKernelFn fn = PickMicroKernel();
  return fn;
}

// ---------------------------------------------------------------------------
// Packing. Panels are written tile-contiguous — B as [jr-tile][p][kNR],
// A as [ir-tile][p][kMR] — so the microkernel streams both with unit
// stride. Out-of-range rows/columns are written as zeros, which keeps the
// microkernel edge-free and makes full-width loads on the last tile exact.
// ---------------------------------------------------------------------------

// Packs B column tiles [t0, t1) of the current Kc x Nc panel. Tile indices
// are panel-absolute, so cooperative packing writes disjoint ranges of the
// shared buffer.
void PackBTiles(const float* b, size_t b_rs, size_t b_cs, size_t pc,
                size_t kc, size_t jc, size_t nc, size_t t0, size_t t1,
                float* __restrict__ out) {
  for (size_t t = t0; t < t1; ++t) {
    const size_t j0 = jc + t * kNR;
    const size_t jw = std::min(kNR, jc + nc - j0);
    for (size_t p = 0; p < kc; ++p) {
      const float* src = b + (pc + p) * b_rs + j0 * b_cs;
      float* dst = out + (t * kc + p) * kNR;
      if (b_cs == 1) {
        for (size_t j = 0; j < jw; ++j) dst[j] = src[j];
      } else {
        for (size_t j = 0; j < jw; ++j) dst[j] = src[j * b_cs];
      }
      for (size_t j = jw; j < kNR; ++j) dst[j] = 0.0f;
    }
  }
}

void PackA(const float* a, size_t a_rs, size_t a_cs, size_t ic, size_t mc,
           size_t pc, size_t kc, float alpha, float* __restrict__ out) {
  const size_t tiles = (mc + kMR - 1) / kMR;
  for (size_t t = 0; t < tiles; ++t) {
    const size_t i0 = ic + t * kMR;
    const size_t iw = std::min(kMR, ic + mc - i0);
    for (size_t p = 0; p < kc; ++p) {
      const float* src = a + i0 * a_rs + (pc + p) * a_cs;
      float* dst = out + (t * kc + p) * kMR;
      for (size_t r = 0; r < iw; ++r) dst[r] = alpha * src[r * a_rs];
      for (size_t r = iw; r < kMR; ++r) dst[r] = 0.0f;
    }
  }
}

// Per-thread A-pack scratch. Workers in the kernel pool are long-lived, so
// these warm up once and are reused across dispatches. The tag caches
// which (call, pc, ic) block currently sits in the scratch: consecutive
// column-chunk tasks of the same row block skip the re-pack.
thread_local AlignedBuffer t_apack;
struct ApackTag {
  uint64_t call = 0;
  size_t pc = 0;
  size_t ic = 0;
  bool valid = false;
};
thread_local ApackTag t_apack_tag;

// Distinguishes concurrent/successive GEMM calls in the A-pack cache tags.
std::atomic<uint64_t> g_call_serial{1};

// Blocked-nest telemetry, charged once per dispatch on scope exit (also on
// the cancellation early-outs): B panels packed, A blocks packed (across
// all workers), and microtile-sweep tasks executed.
struct BlockTally {
  explicit BlockTally(bool enabled) : on(enabled) {}
  ~BlockTally() {
    if (!on) return;
    static Counter& bp =
        MetricsRegistry::Get().GetCounter("tensor.gemm.pack_b_panels");
    static Counter& ap =
        MetricsRegistry::Get().GetCounter("tensor.gemm.pack_a_panels");
    static Counter& bt =
        MetricsRegistry::Get().GetCounter("tensor.gemm.block_tasks");
    bp.Add(b_packs);
    ap.Add(a_packs.load(std::memory_order_relaxed));
    bt.Add(tasks.load(std::memory_order_relaxed));
  }
  const bool on;
  uint64_t b_packs = 0;
  std::atomic<uint64_t> a_packs{0};
  std::atomic<uint64_t> tasks{0};
};

// Kernel pools, one per worker count, created lazily and kept for the
// process lifetime (drained and joined by static destruction). Keeping a
// pool per size sidesteps destroy-while-in-use races when tests flip
// SetGemmThreads between dispatches.
ThreadPool& PoolFor(size_t threads) {
  // Ranked below threadpool.pool: constructing a ThreadPool under this lock
  // may touch the pool's own mutex on its exception path.
  static Mutex mu{"tensor.gemm_pools", lockrank::kGemmPools};
  static std::map<size_t, std::unique_ptr<ThreadPool>> pools;
  MutexLock lock(mu);
  auto& slot = pools[threads];
  if (slot == nullptr) slot = std::make_unique<ThreadPool>(threads);
  return *slot;
}

}  // namespace

bool MicroKernelIsAvx2() {
#ifdef SAMPNN_GEMM_X86
  return ActiveMicroKernel() == MicroKernelAvx2;
#else
  return false;
#endif
}

void PackedGemm(size_t m, size_t n, size_t k, float alpha, const float* a,
                size_t a_rs, size_t a_cs, const float* b, size_t b_rs,
                size_t b_cs, float* c, size_t ldc) {
  PackedGemmParallel(m, n, k, alpha, a, a_rs, a_cs, b, b_rs, b_cs, c, ldc, 1);
}

void PackedGemmParallel(size_t m, size_t n, size_t k, float alpha,
                        const float* a, size_t a_rs, size_t a_cs,
                        const float* b, size_t b_rs, size_t b_cs, float* c,
                        size_t ldc, size_t threads) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) return;  // C += 0
  const MicroKernelFn micro = ActiveMicroKernel();
  // Serving-layer cancellation: the dispatching thread's context, if any,
  // is captured here and polled between panels and grid tasks (including
  // by the pool workers the tasks fan out to). A cancelled product leaves
  // C partially written; the cancellable caller discards it.
  const CancelContext* cancel = CurrentKernelCancellation();
  // Phase tag for /statusz: the dispatching thread advertises "gemm" with
  // the serving request id (0 outside the serving path) for the duration of
  // the product. Two relaxed stores; numerics are untouched.
  ScopedPhase gemm_phase("gemm", cancel != nullptr ? cancel->trace_id : 0);

  // One blocking snapshot per dispatch: mid-call SetGemmBlockSizes flips
  // never tear a product. kc participates in rounding; mc/nc (and the task
  // grid) never do.
  const GemmBlocking blk = GemmBlockSizes();
  const size_t kc_max = std::min(blk.kc, k);
  const size_t mc_max = blk.mc;
  const size_t nc_max = blk.nc;
  // Oversubscription never helps a compute-bound kernel, so the worker
  // count is clamped to hardware concurrency (monotone thread scaling by
  // construction); results are identical either way.
  const size_t workers = GemmEffectiveWorkers(threads);
  ThreadPool* pool = workers > 1 ? &PoolFor(workers) : nullptr;
  const uint64_t call_id =
      g_call_serial.fetch_add(1, std::memory_order_relaxed);
  BlockTally tally(TelemetryEnabled());

  // Shared B-panel buffer for the whole call, checked out of the pool —
  // written once per (jc, pc) block, read concurrently by every grid task.
  // Hot-path GEMMs hit the freelist and allocate nothing.
  const size_t b_panel_floats =
      (std::min(n, nc_max) + kNR - 1) / kNR * kNR * kc_max;
  PackedBufferPool::Handle b_handle =
      PackedBufferPool::Global().Acquire(b_panel_floats);
  float* const bpack = b_handle.data();
  // Per-thread A scratch requirement for this call's largest block.
  const size_t a_pack_floats =
      (std::min(m, mc_max) + kMR - 1) / kMR * kMR * kc_max;

  // Loop 5: B panel columns.
  for (size_t jc = 0; jc < n; jc += nc_max) {
    const size_t nc = std::min(nc_max, n - jc);
    const size_t nc_tiles = (nc + kNR - 1) / kNR;
    // Fixed-topology task grid over (Mc row blocks) x (column chunks):
    // shaped by the operands and blocking only, so every worker count
    // walks the same tasks and every C element keeps one writer.
    const size_t jchunk_tiles =
        std::max<size_t>(1, (nc_tiles + kColChunkTarget - 1) / kColChunkTarget);
    const size_t jchunks = (nc_tiles + jchunk_tiles - 1) / jchunk_tiles;
    const size_t ic_blocks = (m + mc_max - 1) / mc_max;
    const size_t tasks = ic_blocks * jchunks;
    // Loop 4: k blocks; one shared B pack per iteration.
    for (size_t pc = 0; pc < k; pc += kc_max) {
      if (cancel != nullptr && cancel->ShouldStop()) return;
      const size_t kc = std::min(kc_max, k - pc);
      // The panel is packed cooperatively when enough tiles exist to
      // amortize the fan-out, otherwise on the dispatching thread; either
      // way every worker then reads the same shared panel (ParallelFor /
      // Submit publish the writes).
      if (pool != nullptr && nc_tiles >= 2 * workers) {
        pool->ParallelFor(workers, [&](size_t w) {
          PackBTiles(b, b_rs, b_cs, pc, kc, jc, nc, nc_tiles * w / workers,
                     nc_tiles * (w + 1) / workers, bpack);
        });
      } else {
        PackBTiles(b, b_rs, b_cs, pc, kc, jc, nc, 0, nc_tiles, bpack);
      }
      ++tally.b_packs;

      // Loops 3-1 as one grid task: pack (or reuse) the A block, then
      // sweep this chunk's microtiles.
      auto run_task = [&](size_t t) {
        if (cancel != nullptr && cancel->ShouldStop()) return;
        if (tally.on) tally.tasks.fetch_add(1, std::memory_order_relaxed);
        const size_t ic = (t / jchunks) * mc_max;
        const size_t mc = std::min(mc_max, m - ic);
        ApackTag& tag = t_apack_tag;
        if (!tag.valid || tag.call != call_id || tag.pc != pc ||
            tag.ic != ic) {
          t_apack.GrowTo(a_pack_floats);
          PackA(a, a_rs, a_cs, ic, mc, pc, kc, alpha, t_apack.data());
          tag = {call_id, pc, ic, true};
          if (tally.on) tally.a_packs.fetch_add(1, std::memory_order_relaxed);
        }
        const float* apack = t_apack.data();
        const size_t jt0 = (t % jchunks) * jchunk_tiles;
        const size_t jt1 = std::min(nc_tiles, jt0 + jchunk_tiles);
        for (size_t jt = jt0; jt < jt1; ++jt) {
          const size_t jr = jt * kNR;
          const size_t nr = std::min(kNR, nc - jr);
          const float* bp = bpack + jt * kc * kNR;
          for (size_t ir = 0; ir < mc; ir += kMR) {
            const size_t mr = std::min(kMR, mc - ir);
            const float* ap = apack + (ir / kMR) * kc * kMR;
            micro(kc, ap, bp, c + (ic + ir) * ldc + jc + jr, ldc, mr, nr);
          }
        }
      };
      if (pool != nullptr && tasks > 1) {
        // Pool workers tag themselves too, so a snapshot mid-product shows
        // which threads are inside this request's grid tasks.
        pool->ParallelFor(tasks, [&](size_t t) {
          ScopedPhase block_phase("gemm_block",
                                  cancel != nullptr ? cancel->trace_id : 0);
          run_task(t);
        });
      } else {
        for (size_t t = 0; t < tasks; ++t) run_task(t);
      }
    }
  }
}

}  // namespace sampnn::gemm_internal
