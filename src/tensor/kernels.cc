#include "src/tensor/kernels.h"

#include <algorithm>
#include <cstring>

#include "src/tensor/gemm.h"
#include "src/tensor/kernel_config.h"
#include "src/tensor/simd.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"

namespace sampnn {

namespace {
// Block sizes for the deterministic scalar path, tuned for ~32 KiB L1:
// a 64x64 float tile of B is 16 KiB.
constexpr size_t kBlockK = 64;
constexpr size_t kBlockJ = 256;

// Telemetry FLOP tallies (2 flops per multiply-accumulate), charged once per
// kernel call so the inner loops stay untouched. `nominal` is the dense
// 2*m*n*k cost of the product; `realized` is the work actually executed
// after input-sparsity shortcuts. The packed GEMM path skips nothing, so
// the two coincide there; VecMat still skips zero input rows (dropout
// produces exact zeros on the SGD path), so its realized count is lower.
// SparseDot is left uninstrumented: it runs once per active node per
// sample, where even a gated atomic add is measurable.
inline void CountDenseFlops(size_t nominal, size_t realized) {
  if (!TelemetryEnabled()) return;
  static Counter& n = MetricsRegistry::Get().GetCounter("tensor.gemm.flops");
  static Counter& r =
      MetricsRegistry::Get().GetCounter("tensor.gemm.flops_realized");
  n.Add(nominal);
  r.Add(realized);
}

inline void CountSparseFlops(size_t flops) {
  if (!TelemetryEnabled()) return;
  static Counter& c = MetricsRegistry::Get().GetCounter("tensor.sparse.flops");
  c.Add(flops);
}

// Serial/parallel dispatch tallies for the batch GEMM family, exported per
// epoch (scripts/check_telemetry.py keys gemm_*_dispatches).
inline void CountDispatch(bool parallel) {
  if (!TelemetryEnabled()) return;
  static Counter& p =
      MetricsRegistry::Get().GetCounter("tensor.gemm.parallel_dispatches");
  static Counter& s =
      MetricsRegistry::Get().GetCounter("tensor.gemm.serial_dispatches");
  (parallel ? p : s).Increment();
}

// Applies beta to C before the accumulating product: C = beta * C.
inline void ApplyBeta(Matrix* c, float beta) {
  if (beta == 0.0f) {
    c->SetZero();
  } else if (beta != 1.0f) {
    Scale(c, beta);
  }
}

// Chooses the execution mode for one dense product of `flops` nominal
// FLOPs and runs it: deterministic scalar (caller-provided), packed serial,
// or packed ThreadPool-partitioned when the product is big enough to
// amortize packing and worker wakeup.
template <typename DetFn>
void DispatchGemm(size_t m, size_t n, size_t k, float alpha, const float* a,
                  size_t a_rs, size_t a_cs, const float* b, size_t b_rs,
                  size_t b_cs, float* c, size_t ldc, DetFn&& deterministic) {
  if (DeterministicKernels()) {
    deterministic();
    return;
  }
  TraceSpan span("gemm");
  const uint64_t flops = uint64_t{2} * m * n * k;
  const size_t threads =
      flops >= GemmParallelMinFlops() ? GemmThreads() : size_t{1};
  CountDispatch(threads > 1);
  gemm_internal::PackedGemmParallel(m, n, k, alpha, a, a_rs, a_cs, b, b_rs,
                                    b_cs, c, ldc, threads);
}

// --- Deterministic scalar kernels: the seed's serial loop orderings. ---

void GemmScalar(const float* ad, const float* bd, float* cd, size_t m,
                size_t k, size_t n, float alpha) {
  for (size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const size_t k1 = std::min(k, k0 + kBlockK);
    for (size_t j0 = 0; j0 < n; j0 += kBlockJ) {
      const size_t j1 = std::min(n, j0 + kBlockJ);
      for (size_t i = 0; i < m; ++i) {
        const float* arow = ad + i * k;
        float* crow = cd + i * n;
        for (size_t l = k0; l < k1; ++l) {
          const float av = alpha * arow[l];
          const float* brow = bd + l * n;
          for (size_t j = j0; j < j1; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void GemmTransAScalar(const float* ad, const float* bd, float* cd, size_t m,
                      size_t k, size_t n, float alpha) {
  // C[l, j] += A[i, l] * B[i, j]: stream rows of A and B, scatter into C
  // rows.
  for (size_t i = 0; i < m; ++i) {
    const float* arow = ad + i * k;
    const float* brow = bd + i * n;
    for (size_t l = 0; l < k; ++l) {
      const float av = alpha * arow[l];
      float* crow = cd + l * n;
      for (size_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void GemmTransBScalar(const float* ad, const float* bd, float* cd, size_t m,
                      size_t k, size_t n, float alpha) {
  // C[i, j] += <A row i, B row j>: both operands stream row-major.
  for (size_t i = 0; i < m; ++i) {
    const float* arow = ad + i * k;
    float* crow = cd + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = bd + j * k;
      float acc = 0.0f;
      for (size_t l = 0; l < k; ++l) acc += arow[l] * brow[l];
      crow[j] += alpha * acc;
    }
  }
}

}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
          float beta) {
  SAMPNN_CHECK(c != nullptr);
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  SAMPNN_CHECK_EQ(b.rows(), k);
  SAMPNN_CHECK_EQ(c->rows(), m);
  SAMPNN_CHECK_EQ(c->cols(), n);
  ApplyBeta(c, beta);
  CountDenseFlops(2 * m * k * n, 2 * m * k * n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c->data();
  DispatchGemm(m, n, k, alpha, ad, k, 1, bd, n, 1, cd, n,
               [&] { GemmScalar(ad, bd, cd, m, k, n, alpha); });
}

void GemmTransA(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
                float beta) {
  SAMPNN_CHECK(c != nullptr);
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  SAMPNN_CHECK_EQ(b.rows(), m);
  SAMPNN_CHECK_EQ(c->rows(), k);
  SAMPNN_CHECK_EQ(c->cols(), n);
  ApplyBeta(c, beta);
  CountDenseFlops(2 * m * k * n, 2 * m * k * n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c->data();
  // op(A) = A^T: the packed path partitions over C's rows (the gradient's
  // output neurons), so each worker owns a disjoint row range and the
  // weight-gradient scatter is race-free by construction.
  DispatchGemm(k, n, m, alpha, ad, 1, k, bd, n, 1, cd, n,
               [&] { GemmTransAScalar(ad, bd, cd, m, k, n, alpha); });
}

void GemmTransB(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
                float beta) {
  SAMPNN_CHECK(c != nullptr);
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  SAMPNN_CHECK_EQ(b.cols(), k);
  SAMPNN_CHECK_EQ(c->rows(), m);
  SAMPNN_CHECK_EQ(c->cols(), n);
  ApplyBeta(c, beta);
  CountDenseFlops(2 * m * k * n, 2 * m * k * n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c->data();
  DispatchGemm(m, n, k, alpha, ad, k, 1, bd, 1, k, cd, n,
               [&] { GemmTransBScalar(ad, bd, cd, m, k, n, alpha); });
}

void VecMat(std::span<const float> x, const Matrix& w,
            std::span<const float> bias, std::span<float> y) {
  const size_t k = w.rows(), n = w.cols();
  SAMPNN_CHECK_EQ(x.size(), k);
  SAMPNN_CHECK_EQ(y.size(), n);
  if (!bias.empty()) {
    SAMPNN_CHECK_EQ(bias.size(), n);
    std::memcpy(y.data(), bias.data(), n * sizeof(float));
  } else {
    std::fill(y.begin(), y.end(), 0.0f);
  }
  // The SGD hot path keeps the sparse-input fast path: dropout zeroes
  // entire input coordinates, so skipping x[i] == 0 rows skips real work.
  const float* wd = w.data();
  size_t nonzero = 0;
  for (size_t i = 0; i < k; ++i) {
    const float xv = x[i];
    if (xv == 0.0f) continue;
    ++nonzero;
    simd::Axpy(n, xv, wd + i * n, y.data());
  }
  CountDenseFlops(2 * k * n, 2 * nonzero * n);
}

void AddRowVector(Matrix* m, std::span<const float> v) {
  SAMPNN_CHECK(m != nullptr);
  SAMPNN_CHECK_EQ(v.size(), m->cols());
  const size_t cols = m->cols();
  float* d = m->data();
  for (size_t i = 0; i < m->rows(); ++i) {
    simd::Add(cols, v.data(), d + i * cols);
  }
}

void HadamardInPlace(Matrix* a, const Matrix& b) {
  SAMPNN_CHECK(a != nullptr);
  SAMPNN_CHECK_EQ(a->rows(), b.rows());
  SAMPNN_CHECK_EQ(a->cols(), b.cols());
  simd::Mul(a->size(), b.data(), a->data());
}

void Axpy(float alpha, const Matrix& x, Matrix* y) {
  SAMPNN_CHECK(y != nullptr);
  SAMPNN_CHECK_EQ(x.rows(), y->rows());
  SAMPNN_CHECK_EQ(x.cols(), y->cols());
  simd::Axpy(x.size(), alpha, x.data(), y->data());
}

void Scale(Matrix* m, float alpha) {
  SAMPNN_CHECK(m != nullptr);
  simd::Scale(m->size(), alpha, m->data());
}

void ColumnSums(const Matrix& m, std::span<float> out) {
  SAMPNN_CHECK_EQ(out.size(), m.cols());
  std::fill(out.begin(), out.end(), 0.0f);
  const size_t cols = m.cols();
  const float* d = m.data();
  for (size_t i = 0; i < m.rows(); ++i) {
    simd::Add(cols, d + i * cols, out.data());
  }
}

void VecMatCols(std::span<const float> x, const Matrix& w,
                std::span<const float> bias, std::span<const uint32_t> cols,
                std::span<float> y) {
  const size_t k = w.rows(), n = w.cols();
  SAMPNN_CHECK_EQ(x.size(), k);
  SAMPNN_CHECK_EQ(y.size(), n);
  CountSparseFlops(2 * k * cols.size());
  const float* wd = w.data();
  for (uint32_t j : cols) {
    SAMPNN_DCHECK_BOUNDS(j, n);
    float acc = bias.empty() ? 0.0f : bias[j];
    const float* col = wd + j;
    for (size_t i = 0; i < k; ++i) acc += x[i] * col[i * n];
    y[j] = acc;
  }
}

float SparseDot(std::span<const float> x, const Matrix& w, size_t col,
                std::span<const uint32_t> rows) {
  SAMPNN_DCHECK_BOUNDS(col, w.cols());
  SAMPNN_DCHECK_EQ(x.size(), w.rows());
  const size_t n = w.cols();
  const float* wd = w.data();
  float acc = 0.0f;
  for (uint32_t i : rows) {
    SAMPNN_DCHECK_BOUNDS(i, w.rows());
    acc += x[i] * wd[i * n + col];
  }
  return acc;
}

void BackpropActiveCols(std::span<const float> delta, const Matrix& w,
                        std::span<const uint32_t> cols,
                        std::span<float> delta_prev) {
  const size_t k = w.rows(), n = w.cols();
  SAMPNN_CHECK_EQ(delta.size(), n);
  SAMPNN_CHECK_EQ(delta_prev.size(), k);
  CountSparseFlops(2 * k * cols.size());
  const float* wd = w.data();
  for (uint32_t j : cols) {
    SAMPNN_DCHECK_BOUNDS(j, n);
    const float dv = delta[j];
    if (dv == 0.0f) continue;
    const float* col = wd + j;
    for (size_t i = 0; i < k; ++i) delta_prev[i] += dv * col[i * n];
  }
}

void SparseOuterUpdate(std::span<const float> a_prev,
                       std::span<const float> delta,
                       std::span<const uint32_t> cols, float lr, Matrix* w,
                       std::span<float> bias) {
  SAMPNN_CHECK(w != nullptr);
  const size_t k = w->rows(), n = w->cols();
  SAMPNN_CHECK_EQ(a_prev.size(), k);
  SAMPNN_CHECK_EQ(delta.size(), n);
  SAMPNN_CHECK_EQ(bias.size(), n);
  CountSparseFlops(2 * k * cols.size());
  float* wd = w->data();
  for (uint32_t j : cols) {
    SAMPNN_DCHECK_BOUNDS(j, n);
    const float step = lr * delta[j];
    if (step == 0.0f) continue;
    float* col = wd + j;
    for (size_t i = 0; i < k; ++i) {
      if (a_prev[i] != 0.0f) col[i * n] -= step * a_prev[i];
    }
    bias[j] -= step;
  }
}

}  // namespace sampnn
