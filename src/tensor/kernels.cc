#include "src/tensor/kernels.h"

#include <algorithm>
#include <cstring>

#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"

namespace sampnn {

namespace {
// Block sizes tuned for ~32 KiB L1: a 64x64 float tile of B is 16 KiB.
constexpr size_t kBlockK = 64;
constexpr size_t kBlockJ = 256;

// Telemetry FLOP tallies (2 flops per multiply-accumulate), charged once per
// kernel call so the inner loops stay untouched. SparseDot is left
// uninstrumented: it runs once per active node per sample, where even a
// gated atomic add is measurable.
inline void CountDenseFlops(size_t flops) {
  if (!TelemetryEnabled()) return;
  static Counter& c = MetricsRegistry::Get().GetCounter("tensor.gemm.flops");
  c.Add(flops);
}

inline void CountSparseFlops(size_t flops) {
  if (!TelemetryEnabled()) return;
  static Counter& c = MetricsRegistry::Get().GetCounter("tensor.sparse.flops");
  c.Add(flops);
}
}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
          float beta) {
  SAMPNN_CHECK(c != nullptr);
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  SAMPNN_CHECK_EQ(b.rows(), k);
  SAMPNN_CHECK_EQ(c->rows(), m);
  SAMPNN_CHECK_EQ(c->cols(), n);
  if (beta == 0.0f) {
    c->SetZero();
  } else if (beta != 1.0f) {
    Scale(c, beta);
  }
  CountDenseFlops(2 * m * k * n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c->data();
  for (size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const size_t k1 = std::min(k, k0 + kBlockK);
    for (size_t j0 = 0; j0 < n; j0 += kBlockJ) {
      const size_t j1 = std::min(n, j0 + kBlockJ);
      for (size_t i = 0; i < m; ++i) {
        const float* arow = ad + i * k;
        float* crow = cd + i * n;
        for (size_t l = k0; l < k1; ++l) {
          const float av = alpha * arow[l];
          if (av == 0.0f) continue;
          const float* brow = bd + l * n;
          for (size_t j = j0; j < j1; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void GemmTransA(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
                float beta) {
  SAMPNN_CHECK(c != nullptr);
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  SAMPNN_CHECK_EQ(b.rows(), m);
  SAMPNN_CHECK_EQ(c->rows(), k);
  SAMPNN_CHECK_EQ(c->cols(), n);
  if (beta == 0.0f) {
    c->SetZero();
  } else if (beta != 1.0f) {
    Scale(c, beta);
  }
  CountDenseFlops(2 * m * k * n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c->data();
  // C[l, j] += A[i, l] * B[i, j]: stream rows of A and B, scatter into C rows.
  for (size_t i = 0; i < m; ++i) {
    const float* arow = ad + i * k;
    const float* brow = bd + i * n;
    for (size_t l = 0; l < k; ++l) {
      const float av = alpha * arow[l];
      if (av == 0.0f) continue;
      float* crow = cd + l * n;
      for (size_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void GemmTransB(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
                float beta) {
  SAMPNN_CHECK(c != nullptr);
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  SAMPNN_CHECK_EQ(b.cols(), k);
  SAMPNN_CHECK_EQ(c->rows(), m);
  SAMPNN_CHECK_EQ(c->cols(), n);
  CountDenseFlops(2 * m * k * n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c->data();
  // C[i, j] = <A row i, B row j>: both operands stream row-major.
  for (size_t i = 0; i < m; ++i) {
    const float* arow = ad + i * k;
    float* crow = cd + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = bd + j * k;
      float acc = 0.0f;
      for (size_t l = 0; l < k; ++l) acc += arow[l] * brow[l];
      crow[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * crow[j]);
    }
  }
}

void VecMat(std::span<const float> x, const Matrix& w,
            std::span<const float> bias, std::span<float> y) {
  const size_t k = w.rows(), n = w.cols();
  SAMPNN_CHECK_EQ(x.size(), k);
  SAMPNN_CHECK_EQ(y.size(), n);
  if (!bias.empty()) {
    SAMPNN_CHECK_EQ(bias.size(), n);
    std::memcpy(y.data(), bias.data(), n * sizeof(float));
  } else {
    std::fill(y.begin(), y.end(), 0.0f);
  }
  CountDenseFlops(2 * k * n);
  const float* wd = w.data();
  for (size_t i = 0; i < k; ++i) {
    const float xv = x[i];
    if (xv == 0.0f) continue;
    const float* wrow = wd + i * n;
    for (size_t j = 0; j < n; ++j) y[j] += xv * wrow[j];
  }
}

void AddRowVector(Matrix* m, std::span<const float> v) {
  SAMPNN_CHECK(m != nullptr);
  SAMPNN_CHECK_EQ(v.size(), m->cols());
  for (size_t i = 0; i < m->rows(); ++i) {
    auto row = m->Row(i);
    for (size_t j = 0; j < row.size(); ++j) row[j] += v[j];
  }
}

void HadamardInPlace(Matrix* a, const Matrix& b) {
  SAMPNN_CHECK(a != nullptr);
  SAMPNN_CHECK_EQ(a->rows(), b.rows());
  SAMPNN_CHECK_EQ(a->cols(), b.cols());
  float* ad = a->data();
  const float* bd = b.data();
  for (size_t i = 0; i < a->size(); ++i) ad[i] *= bd[i];
}

void Axpy(float alpha, const Matrix& x, Matrix* y) {
  SAMPNN_CHECK(y != nullptr);
  SAMPNN_CHECK_EQ(x.rows(), y->rows());
  SAMPNN_CHECK_EQ(x.cols(), y->cols());
  const float* xd = x.data();
  float* yd = y->data();
  for (size_t i = 0; i < x.size(); ++i) yd[i] += alpha * xd[i];
}

void Scale(Matrix* m, float alpha) {
  SAMPNN_CHECK(m != nullptr);
  float* d = m->data();
  for (size_t i = 0; i < m->size(); ++i) d[i] *= alpha;
}

void ColumnSums(const Matrix& m, std::span<float> out) {
  SAMPNN_CHECK_EQ(out.size(), m.cols());
  std::fill(out.begin(), out.end(), 0.0f);
  for (size_t i = 0; i < m.rows(); ++i) {
    auto row = m.Row(i);
    for (size_t j = 0; j < row.size(); ++j) out[j] += row[j];
  }
}

void VecMatCols(std::span<const float> x, const Matrix& w,
                std::span<const float> bias, std::span<const uint32_t> cols,
                std::span<float> y) {
  const size_t k = w.rows(), n = w.cols();
  SAMPNN_CHECK_EQ(x.size(), k);
  SAMPNN_CHECK_EQ(y.size(), n);
  CountSparseFlops(2 * k * cols.size());
  const float* wd = w.data();
  for (uint32_t j : cols) {
    SAMPNN_DCHECK_BOUNDS(j, n);
    float acc = bias.empty() ? 0.0f : bias[j];
    const float* col = wd + j;
    for (size_t i = 0; i < k; ++i) acc += x[i] * col[i * n];
    y[j] = acc;
  }
}

float SparseDot(std::span<const float> x, const Matrix& w, size_t col,
                std::span<const uint32_t> rows) {
  SAMPNN_DCHECK_BOUNDS(col, w.cols());
  SAMPNN_DCHECK_EQ(x.size(), w.rows());
  const size_t n = w.cols();
  const float* wd = w.data();
  float acc = 0.0f;
  for (uint32_t i : rows) {
    SAMPNN_DCHECK_BOUNDS(i, w.rows());
    acc += x[i] * wd[i * n + col];
  }
  return acc;
}

void BackpropActiveCols(std::span<const float> delta, const Matrix& w,
                        std::span<const uint32_t> cols,
                        std::span<float> delta_prev) {
  const size_t k = w.rows(), n = w.cols();
  SAMPNN_CHECK_EQ(delta.size(), n);
  SAMPNN_CHECK_EQ(delta_prev.size(), k);
  CountSparseFlops(2 * k * cols.size());
  const float* wd = w.data();
  for (uint32_t j : cols) {
    SAMPNN_DCHECK_BOUNDS(j, n);
    const float dv = delta[j];
    if (dv == 0.0f) continue;
    const float* col = wd + j;
    for (size_t i = 0; i < k; ++i) delta_prev[i] += dv * col[i * n];
  }
}

void SparseOuterUpdate(std::span<const float> a_prev,
                       std::span<const float> delta,
                       std::span<const uint32_t> cols, float lr, Matrix* w,
                       std::span<float> bias) {
  SAMPNN_CHECK(w != nullptr);
  const size_t k = w->rows(), n = w->cols();
  SAMPNN_CHECK_EQ(a_prev.size(), k);
  SAMPNN_CHECK_EQ(delta.size(), n);
  SAMPNN_CHECK_EQ(bias.size(), n);
  CountSparseFlops(2 * k * cols.size());
  float* wd = w->data();
  for (uint32_t j : cols) {
    SAMPNN_DCHECK_BOUNDS(j, n);
    const float step = lr * delta[j];
    if (step == 0.0f) continue;
    float* col = wd + j;
    for (size_t i = 0; i < k; ++i) {
      if (a_prev[i] != 0.0f) col[i * n] -= step * a_prev[i];
    }
    bias[j] -= step;
  }
}

}  // namespace sampnn
