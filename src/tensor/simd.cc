#include "src/tensor/simd.h"

#include "src/tensor/kernel_config.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SAMPNN_SIMD_X86 1
#include <immintrin.h>
#endif

namespace sampnn::simd {

namespace {

// ---------------------------------------------------------------------------
// Portable lane-wise loops. __restrict__ lets the compiler vectorize at the
// baseline ISA without runtime alias checks; every caller passes
// non-overlapping (or identical-and-in-place-safe) arrays.
// ---------------------------------------------------------------------------

void AxpyPortable(size_t n, float alpha, const float* __restrict__ x,
                  float* __restrict__ y) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalePortable(size_t n, float alpha, float* __restrict__ x) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void MulPortable(size_t n, const float* __restrict__ x,
                 float* __restrict__ y) {
  for (size_t i = 0; i < n; ++i) y[i] *= x[i];
}

void AddPortable(size_t n, const float* __restrict__ x,
                 float* __restrict__ y) {
  for (size_t i = 0; i < n; ++i) y[i] += x[i];
}

void ReluPortable(size_t n, const float* x, float* y) {
  // x may equal y (in-place), so no __restrict__ here.
  for (size_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void ReluGradMulPortable(size_t n, const float* __restrict__ z,
                         float* __restrict__ d) {
  for (size_t i = 0; i < n; ++i) d[i] *= z[i] > 0.0f ? 1.0f : 0.0f;
}

#ifdef SAMPNN_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2+FMA versions, compiled per-function via target attributes so the TU
// keeps the project's baseline -march. Tails run scalar; lanes are processed
// in index order, so results match the portable loop except that FMA skips
// the intermediate rounding of mul-then-add.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"))) void AxpyAvx2(size_t n, float alpha,
                                                  const float* x, float* y) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256 y0 = _mm256_loadu_ps(y + i);
    __m256 y1 = _mm256_loadu_ps(y + i + 8);
    y0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), y0);
    y1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i + 8), y1);
    _mm256_storeu_ps(y + i, y0);
    _mm256_storeu_ps(y + i + 8, y1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 y0 =
        _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, y0);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2,fma"))) void ScaleAvx2(size_t n, float alpha,
                                                   float* x) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2,fma"))) void MulAvx2(size_t n, const float* x,
                                                 float* y) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

__attribute__((target("avx2,fma"))) void AddAvx2(size_t n, const float* x,
                                                 float* y) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

__attribute__((target("avx2,fma"))) void ReluAvx2(size_t n, const float* x,
                                                  float* y) {
  // vmaxps returns the second operand for NaN and for equal (-0 vs +0)
  // inputs, so max(x, +0) reproduces `x > 0 ? x : 0` bit-for-bit.
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

__attribute__((target("avx2,fma"))) void ReluGradMulAvx2(size_t n,
                                                         const float* z,
                                                         float* d) {
  // Materialize the {0,1} gradient and multiply (rather than masking d
  // directly) so non-finite deltas propagate exactly like the scalar loop:
  // NaN * 0 stays NaN.
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(z + i), zero,
                                      _CMP_GT_OQ);
    const __m256 grad = _mm256_and_ps(one, mask);
    _mm256_storeu_ps(d + i, _mm256_mul_ps(_mm256_loadu_ps(d + i), grad));
  }
  for (; i < n; ++i) d[i] *= z[i] > 0.0f ? 1.0f : 0.0f;
}

#endif  // SAMPNN_SIMD_X86

inline bool UseAvx2() { return !DeterministicKernels() && HasAvx2Fma(); }

}  // namespace

bool HasAvx2Fma() {
#ifdef SAMPNN_SIMD_X86
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

void Axpy(size_t n, float alpha, const float* x, float* y) {
#ifdef SAMPNN_SIMD_X86
  if (UseAvx2()) {
    AxpyAvx2(n, alpha, x, y);
    return;
  }
#endif
  AxpyPortable(n, alpha, x, y);
}

void Scale(size_t n, float alpha, float* x) {
#ifdef SAMPNN_SIMD_X86
  if (UseAvx2()) {
    ScaleAvx2(n, alpha, x);
    return;
  }
#endif
  ScalePortable(n, alpha, x);
}

void Mul(size_t n, const float* x, float* y) {
#ifdef SAMPNN_SIMD_X86
  if (UseAvx2()) {
    MulAvx2(n, x, y);
    return;
  }
#endif
  MulPortable(n, x, y);
}

void Add(size_t n, const float* x, float* y) {
#ifdef SAMPNN_SIMD_X86
  if (UseAvx2()) {
    AddAvx2(n, x, y);
    return;
  }
#endif
  AddPortable(n, x, y);
}

void Relu(size_t n, const float* x, float* y) {
#ifdef SAMPNN_SIMD_X86
  if (UseAvx2()) {
    ReluAvx2(n, x, y);
    return;
  }
#endif
  ReluPortable(n, x, y);
}

void ReluGradMul(size_t n, const float* z, float* d) {
#ifdef SAMPNN_SIMD_X86
  if (UseAvx2()) {
    ReluGradMulAvx2(n, z, d);
    return;
  }
#endif
  ReluGradMulPortable(n, z, d);
}

}  // namespace sampnn::simd
