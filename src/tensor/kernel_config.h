// Runtime configuration for the dense kernel layer: worker count, the
// FLOP threshold below which GEMM stays serial, and the deterministic-mode
// switch. All knobs are process-global relaxed atomics — cheap to read on
// every dispatch, safe to flip from tests.
//
// Environment:
//   SAMPNN_THREADS                 worker count for partitioned GEMM
//                                  (default: hardware concurrency)
//   SAMPNN_DETERMINISTIC_KERNELS   1 = force the serial, scalar, seed-ordered
//                                  kernels everywhere (bitwise-stable across
//                                  hosts and thread settings; used by the
//                                  crash-resume smoke job)
//   SAMPNN_GEMM_PARALLEL_MIN_FLOPS override the serial/parallel threshold

#pragma once

#include <cstddef>
#include <cstdint>

namespace sampnn {

struct CancelContext;  // src/util/deadline.h

/// Worker threads the partitioned GEMM path may use. Resolved on first call
/// from SAMPNN_THREADS, else std::thread::hardware_concurrency (min 1).
size_t GemmThreads();

/// Overrides the GEMM worker count. 0 re-resolves from the environment /
/// hardware on the next GemmThreads() call. The shared kernel pool is
/// re-created lazily on the next parallel dispatch.
void SetGemmThreads(size_t n);

/// 2*m*n*k threshold at or above which a GEMM dispatch is partitioned
/// across the kernel pool. Small products stay serial: the pack + wake cost
/// exceeds the work well below this size.
uint64_t GemmParallelMinFlops();
void SetGemmParallelMinFlops(uint64_t flops);

/// When true, every dense kernel takes its serial, scalar, fixed-order
/// path: no SIMD microkernel, no FMA contraction, no thread partitioning.
/// Results are then bitwise-identical across hosts, ISAs, and thread
/// settings — the mode checkpoint/resume verification runs under.
bool DeterministicKernels();
void SetDeterministicKernels(bool on);

/// The cancel context the current thread's GEMM dispatches poll, or nullptr.
/// The packed driver captures this pointer at dispatch time, so row-block
/// tasks fanned out to the kernel pool poll the dispatching request's
/// context — an expired serving request stops burning CPU between row
/// blocks instead of finishing a doomed product (DESIGN.md §10).
const CancelContext* CurrentKernelCancellation();

/// RAII installer for CurrentKernelCancellation on this thread. Nests:
/// restores the previous context on destruction. The context must outlive
/// the scope and every dispatch made inside it.
class ScopedKernelCancellation {
 public:
  explicit ScopedKernelCancellation(const CancelContext* ctx);
  ~ScopedKernelCancellation();
  ScopedKernelCancellation(const ScopedKernelCancellation&) = delete;
  ScopedKernelCancellation& operator=(const ScopedKernelCancellation&) = delete;

 private:
  const CancelContext* prev_;
};

}  // namespace sampnn
