// Runtime configuration for the dense kernel layer: worker count, the
// FLOP threshold below which GEMM stays serial, the Mc/Kc/Nc cache-block
// sizes of the five-loop GEMM nest, and the deterministic-mode switch. All
// knobs are process-global relaxed atomics — cheap to read on every
// dispatch, safe to flip from tests.
//
// Environment:
//   SAMPNN_THREADS                 worker count for partitioned GEMM
//                                  (default: hardware concurrency)
//   SAMPNN_DETERMINISTIC_KERNELS   1 = force the serial, scalar, seed-ordered
//                                  kernels everywhere (bitwise-stable across
//                                  hosts and thread settings; used by the
//                                  crash-resume smoke job)
//   SAMPNN_GEMM_PARALLEL_MIN_FLOPS override the serial/parallel threshold
//   SAMPNN_GEMM_MC / _KC / _NC     override one or more cache-block sizes
//                                  of the blocked GEMM nest (values are
//                                  rounded to microtile multiples; unset
//                                  dimensions derive from detected cache
//                                  geometry)
//   SAMPNN_GEMM_OVERSUBSCRIBE      1 = let the GEMM run more workers than
//                                  the machine has cores (tests only; by
//                                  default the worker count is clamped to
//                                  hardware concurrency, since
//                                  oversubscribing a compute-bound kernel
//                                  only adds context-switch overhead)

#pragma once

#include <cstddef>
#include <cstdint>

namespace sampnn {

struct CancelContext;  // src/util/deadline.h

/// Worker threads the partitioned GEMM path may use. Resolved on first call
/// from SAMPNN_THREADS, else std::thread::hardware_concurrency (min 1).
size_t GemmThreads();

/// Overrides the GEMM worker count. 0 re-resolves from the environment /
/// hardware on the next GemmThreads() call. The shared kernel pool is
/// re-created lazily on the next parallel dispatch.
void SetGemmThreads(size_t n);

/// 2*m*n*k threshold at or above which a GEMM dispatch is partitioned
/// across the kernel pool. Small products stay serial: the pack + wake cost
/// exceeds the work well below this size.
uint64_t GemmParallelMinFlops();
void SetGemmParallelMinFlops(uint64_t flops);

/// Per-core data-cache capacities in bytes, detected once per process from
/// sysconf / sysfs. A level that cannot be detected reads 0; block-size
/// derivation substitutes conservative defaults (32 KiB / 1 MiB / 8 MiB).
struct CacheGeometry {
  size_t l1d_bytes = 0;
  size_t l2_bytes = 0;
  size_t l3_bytes = 0;
};
CacheGeometry DetectCacheGeometry();

/// Cache-block sizes for the five-loop BLIS-style GEMM nest
/// (src/tensor/gemm.cc). Invariants: mc is a multiple of the 6-row
/// microtile, nc a multiple of the 16-column microtile, kc a multiple of 8.
/// Defaults derive from DetectCacheGeometry(): kc sized so one A microtile
/// (6 x kc) plus one B microtile (kc x 16) stays L1-resident, mc so the
/// packed A block (mc x kc) fills about half of L2, nc so the shared packed
/// B panel (kc x nc) stays within a bounded L3 share. Each dimension is
/// independently overridable via SAMPNN_GEMM_{MC,KC,NC}.
///
/// Note: kc participates in rounding (the packed path adds one partial sum
/// to C per k-block), so changing it changes low-order result bits — like
/// the microkernel choice, it is fixed per process, and thread count never
/// affects results for a given configuration.
struct GemmBlocking {
  size_t mc = 0;
  size_t kc = 0;
  size_t nc = 0;
};

/// The blocking the next GEMM dispatch will use. Resolved on first call
/// from the environment / cache geometry, then cached.
GemmBlocking GemmBlockSizes();

/// Overrides the blocked nest's Mc/Kc/Nc (tests and tuning sweeps). Values
/// are rounded down to the microtile invariants above and floored at one
/// tile; a 0 field re-derives that dimension from the environment / cache
/// geometry on the next GemmBlockSizes() call. Not meant to be flipped
/// while GEMMs are in flight (each dispatch snapshots the blocking once).
void SetGemmBlockSizes(size_t mc, size_t kc, size_t nc);

/// Worker count a dispatch actually fans out to for `requested` workers:
/// min(requested, hardware concurrency) unless oversubscription is enabled.
/// Clamping keeps thread scaling monotone by construction on small hosts —
/// extra software threads on a saturated compute-bound kernel only add
/// context switches — and never changes results (the packed path is
/// bitwise-invariant across worker counts).
size_t GemmEffectiveWorkers(size_t requested);

/// When true, GemmEffectiveWorkers returns `requested` unclamped, so tests
/// can exercise real multi-worker execution (shared packed-B reads, the
/// TSan surface) even on single-core hosts. Resolved once from
/// SAMPNN_GEMM_OVERSUBSCRIBE; settable from tests.
bool GemmOversubscribe();
void SetGemmOversubscribe(bool on);

/// When true, every dense kernel takes its serial, scalar, fixed-order
/// path: no SIMD microkernel, no FMA contraction, no thread partitioning.
/// Results are then bitwise-identical across hosts, ISAs, and thread
/// settings — the mode checkpoint/resume verification runs under.
bool DeterministicKernels();
void SetDeterministicKernels(bool on);

/// The cancel context the current thread's GEMM dispatches poll, or nullptr.
/// The packed driver captures this pointer at dispatch time, so row-block
/// tasks fanned out to the kernel pool poll the dispatching request's
/// context — an expired serving request stops burning CPU between row
/// blocks instead of finishing a doomed product (DESIGN.md §10).
const CancelContext* CurrentKernelCancellation();

/// RAII installer for CurrentKernelCancellation on this thread. Nests:
/// restores the previous context on destruction. The context must outlive
/// the scope and every dispatch made inside it.
class ScopedKernelCancellation {
 public:
  explicit ScopedKernelCancellation(const CancelContext* ctx);
  ~ScopedKernelCancellation();
  ScopedKernelCancellation(const ScopedKernelCancellation&) = delete;
  ScopedKernelCancellation& operator=(const ScopedKernelCancellation&) = delete;

 private:
  const CancelContext* prev_;
};

}  // namespace sampnn
