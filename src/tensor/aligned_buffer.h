// 64-byte-aligned float storage for Matrix and the GEMM pack buffers.
//
// Alignment serves two purposes: (1) the packed GEMM microkernel uses
// aligned 32-byte vector loads on its scratch panels, and (2) Matrix data
// starts on a cache-line boundary so the vectorized elementwise kernels
// never straddle a line on their first access. The logical size is padded
// up to a whole cache line (16 floats) and the padding is kept
// zero-initialized, so full-width vector *loads* over the tail of a buffer
// are always in-bounds — kernels still never write past size().

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <limits>
#include <new>

#include "src/util/check.h"

namespace sampnn {

/// \brief Fixed-size, 64-byte-aligned float array with value semantics.
///
/// Replaces std::vector<float> as Matrix storage. Not resizable in place
/// (Resize discards contents); Matrix shapes are immutable after
/// construction, and the GEMM scratch buffers only ever grow-and-overwrite.
class AlignedBuffer {
 public:
  static constexpr size_t kAlignment = 64;  // bytes; one cache line
  static constexpr size_t kPadFloats = kAlignment / sizeof(float);

  AlignedBuffer() = default;

  /// Allocates `n` floats, zero-initialized (padding included).
  explicit AlignedBuffer(size_t n) { Allocate(n); }

  AlignedBuffer(const AlignedBuffer& other) {
    Allocate(other.size_);
    if (size_ != 0) std::memcpy(data_, other.data_, size_ * sizeof(float));
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this == &other) return *this;
    if (PaddedSize(size_) != PaddedSize(other.size_)) {
      Deallocate();
      Allocate(other.size_);
    } else {
      size_ = other.size_;
    }
    if (size_ != 0) std::memcpy(data_, other.data_, size_ * sizeof(float));
    return *this;
  }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this == &other) return *this;
    Deallocate();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
    return *this;
  }

  ~AlignedBuffer() { Deallocate(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Floats actually allocated (size rounded up to a cache line).
  size_t padded_size() const { return PaddedSize(size_); }

  float* data() { return data_; }
  const float* data() const { return data_; }

  float& operator[](size_t i) {
    SAMPNN_DCHECK_BOUNDS(i, size_);
    return data_[i];
  }
  float operator[](size_t i) const {
    SAMPNN_DCHECK_BOUNDS(i, size_);
    return data_[i];
  }

  float* begin() { return data_; }
  float* end() { return data_ + size_; }
  const float* begin() const { return data_; }
  const float* end() const { return data_ + size_; }

  /// Largest representable element count (used by shape-overflow checks).
  static constexpr size_t max_size() {
    return (std::numeric_limits<size_t>::max() - kAlignment) / sizeof(float);
  }

  /// Reallocates to exactly `n` floats, zero-initialized. Discards
  /// contents — scratch-buffer semantics, not std::vector::resize.
  void Resize(size_t n) {
    if (PaddedSize(n) == PaddedSize(size_)) {
      size_ = n;
      if (size_ != 0) std::memset(data_, 0, padded_size() * sizeof(float));
      return;
    }
    Deallocate();
    Allocate(n);
  }

  /// Grows to at least `n` floats (discarding contents when growing);
  /// never shrinks. The GEMM pack-scratch entry point.
  void GrowTo(size_t n) {
    if (n > size_) Resize(n);
  }

 private:
  static size_t PaddedSize(size_t n) {
    return (n + kPadFloats - 1) / kPadFloats * kPadFloats;
  }

  void Allocate(size_t n) {
    SAMPNN_CHECK_MSG(n <= max_size(), "AlignedBuffer size overflows");
    size_ = n;
    if (n == 0) {
      data_ = nullptr;
      return;
    }
    const size_t bytes = PaddedSize(n) * sizeof(float);
    data_ = static_cast<float*>(
        ::operator new(bytes, std::align_val_t{kAlignment}));
    std::memset(data_, 0, bytes);
  }

  void Deallocate() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kAlignment});
      data_ = nullptr;
    }
    size_ = 0;
  }

  float* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace sampnn
