#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace sampnn {

Matrix::Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {
  // rows * cols must not wrap: a silent overflow here would produce an
  // undersized buffer that every unchecked accessor then overruns.
  SAMPNN_CHECK_MSG(cols == 0 || rows <= AlignedBuffer::max_size() / cols,
                   "Matrix dimensions overflow size_t");
  data_ = AlignedBuffer(rows * cols);
}

StatusOr<Matrix> Matrix::FromVector(size_t rows, size_t cols,
                                    std::vector<float> data) {
  if (data.size() != rows * cols) {
    return Status::InvalidArgument(
        "FromVector: buffer size " + std::to_string(data.size()) +
        " != " + std::to_string(rows) + "x" + std::to_string(cols));
  }
  Matrix m(rows, cols);
  if (!data.empty()) {
    std::memcpy(m.data_.data(), data.data(), data.size() * sizeof(float));
  }
  return m;
}

Matrix Matrix::Filled(size_t rows, size_t cols, float value) {
  Matrix m(rows, cols);
  m.Fill(value);
  return m;
}

Matrix Matrix::RandomGaussian(size_t rows, size_t cols, Rng& rng, float mean,
                              float stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.NextGaussian(mean, stddev);
  return m;
}

Matrix Matrix::RandomUniform(size_t rows, size_t cols, Rng& rng, float lo,
                             float hi) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.NextUniform(lo, hi);
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

void Matrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0f); }

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const float* src = data_.data() + i * cols_;
    for (size_t j = 0; j < cols_; ++j) {
      t.data_[j * rows_ + i] = src[j];
    }
  }
  return t;
}

std::vector<float> Matrix::Col(size_t j) const {
  SAMPNN_CHECK_LT(j, cols_);
  std::vector<float> out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = data_[i * cols_ + j];
  return out;
}

float Matrix::ColNorm(size_t j) const {
  SAMPNN_CHECK_LT(j, cols_);
  double acc = 0.0;
  for (size_t i = 0; i < rows_; ++i) {
    const float v = data_[i * cols_ + j];
    acc += static_cast<double>(v) * v;
  }
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::RowNorm(size_t i) const {
  SAMPNN_CHECK_LT(i, rows_);
  double acc = 0.0;
  const float* r = data_.data() + i * cols_;
  for (size_t j = 0; j < cols_; ++j) acc += static_cast<double>(r[j]) * r[j];
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::AllClose(const Matrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(size_t max_rows, size_t max_cols) const {
  std::ostringstream os;
  os << "Matrix " << rows_ << "x" << cols_ << " [";
  const size_t r = std::min(rows_, max_rows);
  const size_t c = std::min(cols_, max_cols);
  for (size_t i = 0; i < r; ++i) {
    os << (i ? ", [" : "[");
    for (size_t j = 0; j < c; ++j) {
      if (j) os << ", ";
      os << (*this)(i, j);
    }
    if (c < cols_) os << ", ...";
    os << "]";
  }
  if (r < rows_) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace sampnn
