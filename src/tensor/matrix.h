// Dense row-major float matrix — the storage type for weights, activations,
// and data batches throughout the library.
//
// Shape errors on hot paths are programmer errors and guarded with
// SAMPNN_DCHECK; fallible construction from user data goes through
// StatusOr factories.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/tensor/aligned_buffer.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

/// \brief Dense row-major matrix of float.
///
/// A (rows x cols) matrix stored contiguously. Vectors are represented as
/// 1 x n matrices (matching the paper's row-vector convention a^k ∈ R^{1×n}).
/// Storage is 64-byte aligned with a zero-kept cache-line tail pad
/// (AlignedBuffer), so the SIMD kernels may issue aligned vector loads and
/// full-width loads over a row tail without leaving the allocation.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// Allocates a rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols);

  /// Builds from a flat row-major buffer. Returns InvalidArgument if
  /// data.size() != rows*cols.
  static StatusOr<Matrix> FromVector(size_t rows, size_t cols,
                                     std::vector<float> data);

  /// rows x cols matrix with every entry `value`.
  static Matrix Filled(size_t rows, size_t cols, float value);

  /// rows x cols matrix with i.i.d. N(mean, stddev) entries.
  static Matrix RandomGaussian(size_t rows, size_t cols, Rng& rng,
                               float mean = 0.0f, float stddev = 1.0f);

  /// rows x cols matrix with i.i.d. U[lo, hi) entries.
  static Matrix RandomUniform(size_t rows, size_t cols, Rng& rng, float lo,
                              float hi);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Element access (unchecked in release builds).
  float& operator()(size_t i, size_t j) {
    SAMPNN_DCHECK_BOUNDS(i, rows_);
    SAMPNN_DCHECK_BOUNDS(j, cols_);
    return data_[i * cols_ + j];
  }
  float operator()(size_t i, size_t j) const {
    SAMPNN_DCHECK_BOUNDS(i, rows_);
    SAMPNN_DCHECK_BOUNDS(j, cols_);
    return data_[i * cols_ + j];
  }

  /// Mutable view of row i.
  std::span<float> Row(size_t i) {
    SAMPNN_DCHECK_BOUNDS(i, rows_);
    return {data_.data() + i * cols_, cols_};
  }
  /// Const view of row i.
  std::span<const float> Row(size_t i) const {
    SAMPNN_DCHECK_BOUNDS(i, rows_);
    return {data_.data() + i * cols_, cols_};
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every element to zero.
  void SetZero();
  /// Sets every element to `value`.
  void Fill(float value);

  /// Returns the transpose as a new matrix.
  Matrix Transposed() const;

  /// Copies column j into a contiguous vector.
  std::vector<float> Col(size_t j) const;

  /// L2 norm of column j.
  float ColNorm(size_t j) const;
  /// L2 norm of row i.
  float RowNorm(size_t i) const;
  /// Frobenius norm.
  float FrobeniusNorm() const;
  /// Maximum absolute entry.
  float MaxAbs() const;

  /// Elementwise equality within `tol`.
  bool AllClose(const Matrix& other, float tol = 1e-5f) const;

  /// Short debug rendering ("Matrix 3x4 [[..],[..]]"), truncated for large
  /// matrices.
  std::string ToString(size_t max_rows = 6, size_t max_cols = 8) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  AlignedBuffer data_;
};

}  // namespace sampnn
