// Reusable checkout pool for the blocked GEMM's shared packed-B panels.
//
// Each GEMM dispatch checks out one 64-byte-aligned buffer for the
// lifetime of the call, packs successive B panels into it, and returns it
// on scope exit. Buffers are recycled across dispatches, so steady-state
// GEMMs allocate nothing — concurrent dispatches simply check out distinct
// buffers. Per-thread A-pack scratch stays thread-local (see gemm.cc);
// this pool exists for the one buffer that is written by the dispatching
// thread and read concurrently by every worker of the call.
//
// The pool mutex (rank tensor.pack_pool, DESIGN.md §11) is held only for
// the freelist push/pop — never across packing, kernel execution, or any
// other lock.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/aligned_buffer.h"
#include "src/util/sync.h"

namespace sampnn {

class PackedBufferPool {
 public:
  /// RAII checkout: returns the buffer to the pool on destruction.
  class Handle {
   public:
    Handle() = default;
    Handle(PackedBufferPool* pool, std::unique_ptr<AlignedBuffer> buf)
        : pool_(pool), buf_(std::move(buf)) {}
    ~Handle() { Release(); }

    Handle(Handle&& other) noexcept
        : pool_(other.pool_), buf_(std::move(other.buf_)) {
      other.pool_ = nullptr;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        buf_ = std::move(other.buf_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    float* data() { return buf_ != nullptr ? buf_->data() : nullptr; }
    size_t size() const { return buf_ != nullptr ? buf_->size() : 0; }

   private:
    void Release();

    PackedBufferPool* pool_ = nullptr;
    std::unique_ptr<AlignedBuffer> buf_;
  };

  PackedBufferPool() = default;
  PackedBufferPool(const PackedBufferPool&) = delete;
  PackedBufferPool& operator=(const PackedBufferPool&) = delete;

  /// Checks out a buffer of at least `min_floats` floats. Prefers the
  /// smallest sufficient idle buffer; if none is big enough, the largest
  /// idle buffer is grown (outside the lock). Allocates fresh only when
  /// the freelist is empty.
  Handle Acquire(size_t min_floats);

  /// Process-wide pool the GEMM dispatch path uses.
  static PackedBufferPool& Global();

  /// Introspection for tests: buffers currently idle / total fresh
  /// allocations / checkouts served from the freelist.
  size_t IdleCount() const;
  uint64_t Allocations() const;
  uint64_t Reuses() const;

 private:
  friend class Handle;

  // Idle buffers retained beyond this are freed on return instead — a
  // burst of concurrent dispatches must not pin panel memory forever.
  static constexpr size_t kMaxIdle = 8;

  void Return(std::unique_ptr<AlignedBuffer> buf);

  mutable Mutex mu_{"tensor.pack_pool", lockrank::kGemmPackPool};
  std::vector<std::unique_ptr<AlignedBuffer>> idle_ SAMPNN_GUARDED_BY(mu_);
  uint64_t allocations_ SAMPNN_GUARDED_BY(mu_) = 0;
  uint64_t reuses_ SAMPNN_GUARDED_BY(mu_) = 0;
};

}  // namespace sampnn
