#include "src/tensor/packed_buffer_pool.h"

#include <algorithm>
#include <utility>

namespace sampnn {

void PackedBufferPool::Handle::Release() {
  if (pool_ != nullptr && buf_ != nullptr) {
    pool_->Return(std::move(buf_));
  }
  pool_ = nullptr;
  buf_.reset();
}

PackedBufferPool::Handle PackedBufferPool::Acquire(size_t min_floats) {
  std::unique_ptr<AlignedBuffer> buf;
  {
    MutexLock lock(mu_);
    if (!idle_.empty()) {
      // Smallest sufficient idle buffer, else the largest (grown below).
      size_t pick = 0;
      bool pick_fits = idle_[0]->size() >= min_floats;
      for (size_t i = 1; i < idle_.size(); ++i) {
        const size_t sz = idle_[i]->size();
        const bool fits = sz >= min_floats;
        if ((fits && (!pick_fits || sz < idle_[pick]->size())) ||
            (!fits && !pick_fits && sz > idle_[pick]->size())) {
          pick = i;
          pick_fits = fits;
        }
      }
      buf = std::move(idle_[pick]);
      idle_.erase(idle_.begin() + static_cast<ptrdiff_t>(pick));
      ++reuses_;
    } else {
      ++allocations_;
    }
  }
  if (buf == nullptr) {
    buf = std::make_unique<AlignedBuffer>(min_floats);
  } else {
    buf->GrowTo(min_floats);  // no-op when the buffer already fits
  }
  return Handle(this, std::move(buf));
}

void PackedBufferPool::Return(std::unique_ptr<AlignedBuffer> buf) {
  MutexLock lock(mu_);
  if (idle_.size() < kMaxIdle) idle_.push_back(std::move(buf));
  // else: drop — the unique_ptr frees it on scope exit.
}

PackedBufferPool& PackedBufferPool::Global() {
  static PackedBufferPool* pool = new PackedBufferPool();  // never destroyed
  return *pool;
}

size_t PackedBufferPool::IdleCount() const {
  MutexLock lock(mu_);
  return idle_.size();
}

uint64_t PackedBufferPool::Allocations() const {
  MutexLock lock(mu_);
  return allocations_;
}

uint64_t PackedBufferPool::Reuses() const {
  MutexLock lock(mu_);
  return reuses_;
}

}  // namespace sampnn
