// Packed, register-blocked GEMM driver — the shared engine behind
// Gemm / GemmTransA / GemmTransB (src/tensor/kernels.h).
//
// The driver computes C(m x n) += alpha * op(A) * op(B) where both operands
// are described by (row stride, column stride) pairs, so the three public
// transpose variants are one code path with different strides:
//
//     Gemm        A: (k, 1)   B: (n, 1)
//     GemmTransA  A: (1, k)   B: (n, 1)     (reads A transposed)
//     GemmTransB  A: (k, 1)   B: (1, k)     (reads B transposed)
//
// Both operands are packed into 64-byte-aligned, zero-padded panels
// (B into kKC x kNC column panels of kNR-wide tiles, A into kMC x kKC row
// panels of kMR-tall tiles, alpha folded into the A pack), and a kMR x kNR
// register-tile microkernel runs over the panels: AVX2+FMA via a
// function-level target attribute when the CPU supports it, otherwise a
// portable lane-ordered loop the compiler vectorizes at the baseline ISA.
//
// Parallel execution partitions the kMC row blocks of each panel across the
// shared kernel pool. Every output tile is computed by exactly one task in
// a fixed block order, so results are bitwise-identical for every thread
// count (including serial packed execution) — only the deterministic-mode
// scalar path (kernels.cc) is ordered differently. See DESIGN.md §9.

#pragma once

#include <cstddef>

namespace sampnn::gemm_internal {

/// Microkernel register-tile shape (rows x columns).
inline constexpr size_t kMR = 6;
inline constexpr size_t kNR = 16;

/// True when the AVX2+FMA microkernel is selected at runtime.
bool MicroKernelIsAvx2();

/// C += alpha * op(A) * op(B), serial packed path. C is row-major with
/// leading dimension ldc; callers apply beta before dispatching.
void PackedGemm(size_t m, size_t n, size_t k, float alpha, const float* a,
                size_t a_rs, size_t a_cs, const float* b, size_t b_rs,
                size_t b_cs, float* c, size_t ldc);

/// Same product with the row blocks of each panel partitioned across the
/// shared kernel pool (`threads` workers; <= 1 falls back to serial).
/// Bitwise-identical to PackedGemm for any thread count.
void PackedGemmParallel(size_t m, size_t n, size_t k, float alpha,
                        const float* a, size_t a_rs, size_t a_cs,
                        const float* b, size_t b_rs, size_t b_cs, float* c,
                        size_t ldc, size_t threads);

}  // namespace sampnn::gemm_internal
