// Packed, register-blocked GEMM driver — the shared engine behind
// Gemm / GemmTransA / GemmTransB (src/tensor/kernels.h).
//
// The driver computes C(m x n) += alpha * op(A) * op(B) where both operands
// are described by (row stride, column stride) pairs, so the three public
// transpose variants are one code path with different strides:
//
//     Gemm        A: (k, 1)   B: (n, 1)
//     GemmTransA  A: (1, k)   B: (n, 1)     (reads A transposed)
//     GemmTransB  A: (k, 1)   B: (1, k)     (reads B transposed)
//
// The driver is the full BLIS-style five-loop cache-blocked nest around a
// kMR x kNR register-tile microkernel (AVX2+FMA via a function-level
// target attribute when the CPU supports it, otherwise a portable
// lane-ordered loop the compiler vectorizes at the baseline ISA):
//
//     loop 5  jc over n  in steps of Nc   (B panel columns; L3 resident)
//     loop 4  pc over k  in steps of Kc   (pack B panel, shared via
//                                          PackedBufferPool)
//     loop 3  ic over m  in steps of Mc   (pack A block, thread-local;
//                                          L2 resident)
//     loop 2  jr over Nc in steps of kNR  (B microtile; L1 resident)
//     loop 1  ir over Mc in steps of kMR  (microkernel)
//
// Mc/Kc/Nc derive from detected cache geometry, overridable via
// SAMPNN_GEMM_{MC,KC,NC} (src/tensor/kernel_config.h). Both operands are
// packed into 64-byte-aligned, zero-padded panels (alpha folded into the A
// pack); edge tiles take the same packed path as interior tiles — the zero
// padding keeps the microkernel branch-free, only the final store narrows.
//
// Parallel execution packs each Kc x Nc B panel once into a pooled shared
// buffer (cooperatively, column tiles split across the workers), then
// partitions a fixed 2-D grid of (Mc row block) x (column chunk) tasks
// across the shared kernel pool. The grid shape depends only on the
// operand shape and blocking — never on the worker count — and every
// output element has exactly one writer accumulating in a fixed k order,
// so results are bitwise-identical for every thread count (including
// serial packed execution) for a given blocking. Worker counts are clamped
// to hardware concurrency (monotone scaling by construction; see
// GemmEffectiveWorkers). Only the deterministic-mode scalar path
// (kernels.cc) is ordered differently. See DESIGN.md §9.

#pragma once

#include <cstddef>

namespace sampnn::gemm_internal {

/// Microkernel register-tile shape (rows x columns).
inline constexpr size_t kMR = 6;
inline constexpr size_t kNR = 16;

/// True when the AVX2+FMA microkernel is selected at runtime.
bool MicroKernelIsAvx2();

/// C += alpha * op(A) * op(B), serial packed path. C is row-major with
/// leading dimension ldc; callers apply beta before dispatching.
void PackedGemm(size_t m, size_t n, size_t k, float alpha, const float* a,
                size_t a_rs, size_t a_cs, const float* b, size_t b_rs,
                size_t b_cs, float* c, size_t ldc);

/// Same product with the row blocks of each panel partitioned across the
/// shared kernel pool (`threads` workers; <= 1 falls back to serial).
/// Bitwise-identical to PackedGemm for any thread count.
void PackedGemmParallel(size_t m, size_t n, size_t k, float alpha,
                        const float* a, size_t a_rs, size_t a_cs,
                        const float* b, size_t b_rs, size_t b_cs, float* c,
                        size_t ldc, size_t threads);

}  // namespace sampnn::gemm_internal
