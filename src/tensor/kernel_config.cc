#include "src/tensor/kernel_config.h"

#include <atomic>
#include <thread>

#include "src/util/env.h"

namespace sampnn {

namespace {

// 0 = unresolved (read env/hardware on next query).
std::atomic<size_t> g_threads{0};

// Default threshold: a 128^3 product (~4 MFLOP) is roughly where the pack +
// ParallelFor wake cost drops under 10% of kernel time on the recording
// host; everything smaller stays serial.
constexpr uint64_t kDefaultParallelMinFlops = 4'000'000;
std::atomic<uint64_t> g_parallel_min_flops{0};  // 0 = unresolved

enum : int { kUnresolved = -1 };
std::atomic<int> g_deterministic{kUnresolved};

// Ceiling on SAMPNN_THREADS: far above any real machine, low enough that a
// mistyped value cannot ask for a million workers.
constexpr long long kMaxThreads = 1024;

size_t ResolveThreads() {
  // Hardened parse: garbage falls back to 0 (= auto), negative values clamp
  // to 0, absurd values clamp to kMaxThreads; each correction warns once.
  long long env = GetEnvIntInRangeOr("SAMPNN_THREADS", 0, 0, kMaxThreads);
  if (env > 0) return static_cast<size_t>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

thread_local const CancelContext* t_kernel_cancel = nullptr;

}  // namespace

const CancelContext* CurrentKernelCancellation() { return t_kernel_cancel; }

ScopedKernelCancellation::ScopedKernelCancellation(const CancelContext* ctx)
    : prev_(t_kernel_cancel) {
  t_kernel_cancel = ctx;
}

ScopedKernelCancellation::~ScopedKernelCancellation() {
  t_kernel_cancel = prev_;
}

size_t GemmThreads() {
  size_t t = g_threads.load(std::memory_order_relaxed);
  if (t == 0) {
    t = ResolveThreads();
    g_threads.store(t, std::memory_order_relaxed);
  }
  return t;
}

void SetGemmThreads(size_t n) {
  g_threads.store(n, std::memory_order_relaxed);
}

uint64_t GemmParallelMinFlops() {
  uint64_t v = g_parallel_min_flops.load(std::memory_order_relaxed);
  if (v == 0) {
    const long long env = GetEnvIntOr("SAMPNN_GEMM_PARALLEL_MIN_FLOPS", 0);
    v = env > 0 ? static_cast<uint64_t>(env) : kDefaultParallelMinFlops;
    g_parallel_min_flops.store(v, std::memory_order_relaxed);
  }
  return v;
}

void SetGemmParallelMinFlops(uint64_t flops) {
  g_parallel_min_flops.store(flops == 0 ? 1 : flops,
                             std::memory_order_relaxed);
}

bool DeterministicKernels() {
  int v = g_deterministic.load(std::memory_order_relaxed);
  if (v == kUnresolved) {
    v = GetEnvIntOr("SAMPNN_DETERMINISTIC_KERNELS", 0) != 0 ? 1 : 0;
    g_deterministic.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetDeterministicKernels(bool on) {
  g_deterministic.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace sampnn
