#include "src/tensor/kernel_config.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "src/tensor/gemm.h"
#include "src/util/env.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace sampnn {

namespace {

// 0 = unresolved (read env/hardware on next query).
std::atomic<size_t> g_threads{0};

// Default threshold: a 128^3 product (~4 MFLOP) is roughly where the pack +
// ParallelFor wake cost drops under 10% of kernel time on the recording
// host; everything smaller stays serial.
constexpr uint64_t kDefaultParallelMinFlops = 4'000'000;
std::atomic<uint64_t> g_parallel_min_flops{0};  // 0 = unresolved

enum : int { kUnresolved = -1 };
std::atomic<int> g_deterministic{kUnresolved};

// Ceiling on SAMPNN_THREADS: far above any real machine, low enough that a
// mistyped value cannot ask for a million workers.
constexpr long long kMaxThreads = 1024;

size_t ResolveThreads() {
  // Hardened parse: garbage falls back to 0 (= auto), negative values clamp
  // to 0, absurd values clamp to kMaxThreads; each correction warns once.
  long long env = GetEnvIntInRangeOr("SAMPNN_THREADS", 0, 0, kMaxThreads);
  if (env > 0) return static_cast<size_t>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

thread_local const CancelContext* t_kernel_cancel = nullptr;

// --- Cache geometry and block-size derivation ------------------------------

// Reads one sysfs cache attribute like "48K" / "2048K" / "1M"; 0 on failure.
size_t ReadSysfsCacheSize(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return 0;
  char buf[32] = {};
  const size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (got == 0) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf, &end, 10);
  if (end == buf) return 0;
  size_t bytes = static_cast<size_t>(v);
  if (*end == 'K' || *end == 'k') bytes *= 1024;
  if (*end == 'M' || *end == 'm') bytes *= 1024 * 1024;
  return bytes;
}

CacheGeometry DetectCacheGeometryUncached() {
  CacheGeometry geo;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  const long l1 = sysconf(_SC_LEVEL1_DCACHE_SIZE);
  if (l1 > 0) geo.l1d_bytes = static_cast<size_t>(l1);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  const long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (l2 > 0) geo.l2_bytes = static_cast<size_t>(l2);
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
  const long l3 = sysconf(_SC_LEVEL3_CACHE_SIZE);
  if (l3 > 0) geo.l3_bytes = static_cast<size_t>(l3);
#endif
#if defined(__linux__)
  // sysconf reports 0 (not an error) on many containerized kernels; fall
  // back to cpu0's sysfs cache directory, which cgroups do not mask.
  if (geo.l1d_bytes == 0 || geo.l2_bytes == 0 || geo.l3_bytes == 0) {
    for (int idx = 0; idx < 8; ++idx) {
      const std::string base =
          "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(idx);
      std::FILE* lf = std::fopen((base + "/level").c_str(), "r");
      if (lf == nullptr) break;
      int level = 0;
      const bool got_level = std::fscanf(lf, "%d", &level) == 1;
      std::fclose(lf);
      if (!got_level) continue;
      char type[16] = {};
      std::FILE* tf = std::fopen((base + "/type").c_str(), "r");
      if (tf != nullptr) {
        const bool got_type = std::fscanf(tf, "%15s", type) == 1;
        std::fclose(tf);
        if (!got_type) continue;
      }
      if (std::string(type) == "Instruction") continue;
      const size_t bytes = ReadSysfsCacheSize((base + "/size").c_str());
      if (bytes == 0) continue;
      if (level == 1 && geo.l1d_bytes == 0) geo.l1d_bytes = bytes;
      if (level == 2 && geo.l2_bytes == 0) geo.l2_bytes = bytes;
      if (level == 3 && geo.l3_bytes == 0) geo.l3_bytes = bytes;
    }
  }
#endif
  return geo;
}

size_t RoundDownTo(size_t v, size_t unit) { return v / unit * unit; }

// Derives the default blocking from the detected caches; see the header for
// the per-dimension targets. All values honor the microtile invariants.
GemmBlocking DeriveBlocking(const CacheGeometry& geo) {
  using gemm_internal::kMR;
  using gemm_internal::kNR;
  const size_t l1 = geo.l1d_bytes != 0 ? geo.l1d_bytes : 32 * 1024;
  const size_t l2 = geo.l2_bytes != 0 ? geo.l2_bytes : 1024 * 1024;
  const size_t l3 = geo.l3_bytes != 0 ? geo.l3_bytes : 8 * 1024 * 1024;

  GemmBlocking blk;
  // kc: one A microtile (kMR x kc) + one B microtile (kc x kNR) at ~2/3 of
  // L1d, leaving room for the C tile and the streaming stores.
  blk.kc = std::clamp(
      RoundDownTo(l1 * 2 / 3 / (sizeof(float) * (kMR + kNR)), size_t{8}),
      size_t{64}, size_t{512});
  // mc: packed A block (mc x kc) at ~half of L2; the other half holds the
  // B microtiles streaming through plus the C rows in flight.
  blk.mc = std::clamp(RoundDownTo(l2 / 2 / (sizeof(float) * blk.kc), kMR),
                      kMR * 4, size_t{600});
  // nc: shared packed B panel (kc x nc) within a bounded L3 share (a
  // quarter, capped — huge server L3 numbers must not produce unbounded
  // pack buffers).
  const size_t l3_budget = std::min(l3 / 4, size_t{16} * 1024 * 1024);
  blk.nc = std::clamp(RoundDownTo(l3_budget / (sizeof(float) * blk.kc), kNR),
                      kNR * 4, size_t{4096});
  return blk;
}

// Applies the microtile invariants to one override/env value; 0 = derive.
size_t NormalizeBlockDim(size_t v, size_t unit, size_t max) {
  if (v == 0) return 0;
  return std::clamp(RoundDownTo(v, unit), unit, max);
}

// Packed {mc, kc, nc} snapshot, published as one atomic so concurrent
// readers never observe a half-updated configuration. 16 bits per
// dimension is ample (dimensions cap at 4096).
std::atomic<uint64_t> g_blocking{0};  // 0 = unresolved

uint64_t PackBlocking(const GemmBlocking& blk) {
  return (uint64_t{blk.mc} << 32) | (uint64_t{blk.kc} << 16) |
         uint64_t{blk.nc};
}

GemmBlocking UnpackBlocking(uint64_t packed) {
  return GemmBlocking{static_cast<size_t>(packed >> 32) & 0xffff,
                      static_cast<size_t>(packed >> 16) & 0xffff,
                      static_cast<size_t>(packed) & 0xffff};
}

GemmBlocking ResolveBlocking(size_t mc_override, size_t kc_override,
                             size_t nc_override) {
  using gemm_internal::kMR;
  using gemm_internal::kNR;
  GemmBlocking blk = DeriveBlocking(DetectCacheGeometry());
  auto dim = [](const char* env, size_t override_v, size_t unit, size_t max) {
    if (override_v != 0) return NormalizeBlockDim(override_v, unit, max);
    const long long v = GetEnvIntInRangeOr(env, 0, 0, 4096);
    return NormalizeBlockDim(v > 0 ? static_cast<size_t>(v) : 0, unit, max);
  };
  if (const size_t mc = dim("SAMPNN_GEMM_MC", mc_override, kMR, 4096); mc)
    blk.mc = mc;
  if (const size_t kc = dim("SAMPNN_GEMM_KC", kc_override, 8, 4096); kc)
    blk.kc = kc;
  if (const size_t nc = dim("SAMPNN_GEMM_NC", nc_override, kNR, 4096); nc)
    blk.nc = nc;
  return blk;
}

enum : int { kOversubscribeUnresolved = -1 };
std::atomic<int> g_oversubscribe{kOversubscribeUnresolved};

}  // namespace

const CancelContext* CurrentKernelCancellation() { return t_kernel_cancel; }

ScopedKernelCancellation::ScopedKernelCancellation(const CancelContext* ctx)
    : prev_(t_kernel_cancel) {
  t_kernel_cancel = ctx;
}

ScopedKernelCancellation::~ScopedKernelCancellation() {
  t_kernel_cancel = prev_;
}

size_t GemmThreads() {
  size_t t = g_threads.load(std::memory_order_relaxed);
  if (t == 0) {
    t = ResolveThreads();
    g_threads.store(t, std::memory_order_relaxed);
  }
  return t;
}

void SetGemmThreads(size_t n) {
  g_threads.store(n, std::memory_order_relaxed);
}

uint64_t GemmParallelMinFlops() {
  uint64_t v = g_parallel_min_flops.load(std::memory_order_relaxed);
  if (v == 0) {
    const long long env = GetEnvIntOr("SAMPNN_GEMM_PARALLEL_MIN_FLOPS", 0);
    v = env > 0 ? static_cast<uint64_t>(env) : kDefaultParallelMinFlops;
    g_parallel_min_flops.store(v, std::memory_order_relaxed);
  }
  return v;
}

void SetGemmParallelMinFlops(uint64_t flops) {
  g_parallel_min_flops.store(flops == 0 ? 1 : flops,
                             std::memory_order_relaxed);
}

bool DeterministicKernels() {
  int v = g_deterministic.load(std::memory_order_relaxed);
  if (v == kUnresolved) {
    v = GetEnvIntOr("SAMPNN_DETERMINISTIC_KERNELS", 0) != 0 ? 1 : 0;
    g_deterministic.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetDeterministicKernels(bool on) {
  g_deterministic.store(on ? 1 : 0, std::memory_order_relaxed);
}

CacheGeometry DetectCacheGeometry() {
  static const CacheGeometry geo = DetectCacheGeometryUncached();
  return geo;
}

GemmBlocking GemmBlockSizes() {
  uint64_t packed = g_blocking.load(std::memory_order_relaxed);
  if (packed == 0) {
    packed = PackBlocking(ResolveBlocking(0, 0, 0));
    g_blocking.store(packed, std::memory_order_relaxed);
  }
  return UnpackBlocking(packed);
}

void SetGemmBlockSizes(size_t mc, size_t kc, size_t nc) {
  if (mc == 0 && kc == 0 && nc == 0) {
    g_blocking.store(0, std::memory_order_relaxed);  // re-resolve lazily
    return;
  }
  g_blocking.store(PackBlocking(ResolveBlocking(mc, kc, nc)),
                   std::memory_order_relaxed);
}

bool GemmOversubscribe() {
  int v = g_oversubscribe.load(std::memory_order_relaxed);
  if (v == kOversubscribeUnresolved) {
    v = GetEnvIntOr("SAMPNN_GEMM_OVERSUBSCRIBE", 0) != 0 ? 1 : 0;
    g_oversubscribe.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetGemmOversubscribe(bool on) {
  g_oversubscribe.store(on ? 1 : 0, std::memory_order_relaxed);
}

size_t GemmEffectiveWorkers(size_t requested) {
  if (requested <= 1 || GemmOversubscribe()) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<size_t>(requested, hw == 0 ? 1 : hw);
}

}  // namespace sampnn
