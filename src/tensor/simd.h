// Vectorized float array primitives shared by the dense kernels and the
// activation loops.
//
// Dispatch model: on x86-64 each primitive has an AVX2+FMA implementation
// compiled with a function-level target attribute (the translation unit
// itself keeps the project's baseline -march, so the binary still runs on
// any x86-64) and selected once at runtime via __builtin_cpu_supports. On
// other architectures, and whenever DeterministicKernels() is on, the
// portable loop runs instead: a plain lane-wise loop the compiler may
// auto-vectorize at the baseline ISA. Lane-wise operations keep the exact
// per-element accumulation order, so portable vs. AVX2 results differ only
// by FMA contraction (no reassociation) — see DESIGN.md §9.

#pragma once

#include <cstddef>

namespace sampnn::simd {

/// True when the AVX2+FMA paths are compiled in and the CPU supports them.
bool HasAvx2Fma();

/// y[i] += alpha * x[i].
void Axpy(size_t n, float alpha, const float* x, float* y);

/// x[i] *= alpha.
void Scale(size_t n, float alpha, float* x);

/// y[i] *= x[i].
void Mul(size_t n, const float* x, float* y);

/// y[i] += x[i].
void Add(size_t n, const float* x, float* y);

/// y[i] = max(x[i], 0) — bitwise-identical to the scalar `x > 0 ? x : 0`
/// (both map -0.0f and NaN to +0.0f).
void Relu(size_t n, const float* x, float* y);

/// d[i] *= (z[i] > 0 ? 1 : 0) — the ReLU backward Hadamard.
void ReluGradMul(size_t n, const float* z, float* d);

}  // namespace sampnn::simd
