#include "src/obs/slo_tracker.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace sampnn {

SloTracker::SloTracker(const Histogram* latency,
                       std::function<uint64_t()> violations,
                       std::function<uint64_t()> terminals,
                       const Options& options)
    : options_(options),
      latency_(latency),
      violations_(std::move(violations)),
      terminals_(std::move(terminals)) {
  MutexLock lock(mu_);
  slots_.resize(std::max<size_t>(1, options_.slots));
}

void SloTracker::Tick(int64_t now_ms) {
  const HistogramSnapshot hist = latency_->Snapshot();
  const uint64_t viol = violations_ ? violations_() : 0;
  const uint64_t term = terminals_ ? terminals_() : 0;

  MutexLock lock(mu_);
  const int64_t slot_ms =
      std::max<int64_t>(1, options_.window_ms /
                               static_cast<int64_t>(slots_.size()));
  if (!primed_) {
    // First tick establishes the baseline; nothing before it is windowable.
    primed_ = true;
    slots_[current_].start_ms = now_ms;
  } else {
    // Fold the deltas since the previous tick into the current slot.
    // Counter deltas saturate so a concurrent ResetAll cannot wrap them.
    Slot& slot = slots_[current_];
    slot.delta.Merge(hist.DeltaSince(last_hist_));
    slot.violations += viol >= last_violations_ ? viol - last_violations_ : 0;
    slot.terminals += term >= last_terminals_ ? term - last_terminals_ : 0;
  }
  last_hist_ = hist;
  last_violations_ = viol;
  last_terminals_ = term;

  // Rotate when the current slot has covered its share of the window.
  if (slots_[current_].start_ms >= 0 &&
      now_ms - slots_[current_].start_ms >= slot_ms) {
    current_ = (current_ + 1) % slots_.size();
    slots_[current_] = Slot{};
    slots_[current_].start_ms = now_ms;
  }

  // Merge every slot still inside the window.
  HistogramSnapshot window;
  uint64_t violations_in_window = 0;
  uint64_t terminals_in_window = 0;
  for (const Slot& slot : slots_) {
    if (slot.start_ms < 0) continue;
    if (now_ms - slot.start_ms > options_.window_ms) continue;
    window.Merge(slot.delta);
    violations_in_window += slot.violations;
    terminals_in_window += slot.terminals;
  }

  SloSnapshot snap;
  snap.p50_ms = window.Quantile(0.50);
  snap.p95_ms = window.Quantile(0.95);
  snap.p99_ms = window.Quantile(0.99);
  snap.window_count = window.count;
  snap.window_violations = violations_in_window;
  snap.violation_rate =
      terminals_in_window == 0
          ? 0.0
          : static_cast<double>(violations_in_window) /
                static_cast<double>(terminals_in_window);
  snap.window_ms = options_.window_ms;
  latest_ = snap;
  lock.Unlock();

  MetricsRegistry& reg = MetricsRegistry::Get();
  const std::string& p = options_.gauge_prefix;
  reg.GetGauge(p + ".p50").Set(snap.p50_ms);
  reg.GetGauge(p + ".p95").Set(snap.p95_ms);
  reg.GetGauge(p + ".p99").Set(snap.p99_ms);
  reg.GetGauge(p + ".violation_rate").Set(snap.violation_rate);
  reg.GetGauge(p + ".window_count")
      .Set(static_cast<double>(snap.window_count));
}

SloSnapshot SloTracker::Snapshot() const {
  MutexLock lock(mu_);
  return latest_;
}

std::string SloTracker::Render() const {
  const SloSnapshot s = Snapshot();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "window_ms=%lld observations=%llu violations=%llu\n"
                "p50_ms=%.2f p95_ms=%.2f p99_ms=%.2f violation_rate=%.4f\n",
                static_cast<long long>(s.window_ms),
                static_cast<unsigned long long>(s.window_count),
                static_cast<unsigned long long>(s.window_violations),
                s.p50_ms, s.p95_ms, s.p99_ms, s.violation_rate);
  return buf;
}

}  // namespace sampnn
