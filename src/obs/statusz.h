// Embedded introspection server (DESIGN.md §12): a minimal HTTP/1.0
// endpoint for pull-based scraping and operator debugging. Serves:
//
//   /metricsz  Prometheus text exposition of the MetricsRegistry
//   /statusz   human-readable process state: build info, uptime,
//              registered sections (serve stats, SLO window, queue
//              occupancy, ...) and the worker phase table
//   /tracez    TraceRecorder ring contents as Chrome Trace JSON
//   /healthz   200 when the health callback says "accepting",
//              503 when shedding or draining
//
// Scope and safety: this is an *introspection* plane, not a serving
// frontend. The listener binds to 127.0.0.1 only, is off by default
// (ServeOptions::statusz_port = -1 unless SAMPNN_STATUSZ_PORT is set),
// runs one accept thread handling one connection at a time, reads at
// most `max_request_bytes` per request, and understands just enough of
// HTTP/1.0 GET to answer curl and a Prometheus scraper. There is no TLS,
// no auth, and no request concurrency — deliberately, to keep the attack
// surface at "local operator with shell access", who could read the same
// state from the process anyway.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/status.h"
#include "src/util/sync.h"

namespace sampnn {

/// \brief Loopback-only HTTP/1.0 server exposing /metricsz, /statusz,
/// /tracez and /healthz. Create with Start(); the destructor stops the
/// accept thread and closes the listener.
class StatuszServer {
 public:
  struct Options {
    /// TCP port on 127.0.0.1. 0 picks an ephemeral port (tests); the bound
    /// port is available from port() either way.
    int port = 0;
    /// Upper bound on bytes read from one request (headers included).
    size_t max_request_bytes = 4096;
    /// Accept-loop poll granularity; bounds shutdown latency.
    int poll_interval_ms = 50;
  };

  /// Binds, listens, and spawns the accept thread. Fails with IOError if
  /// the port cannot be bound.
  static StatusOr<std::unique_ptr<StatuszServer>> Start(
      const Options& options);

  ~StatuszServer();

  StatuszServer(const StatuszServer&) = delete;
  StatuszServer& operator=(const StatuszServer&) = delete;

  /// The bound port (resolved even when Options::port was 0).
  int port() const { return port_; }

  /// Registers a named plain-text section rendered into /statusz, in
  /// registration order. `render` is invoked on the accept thread with no
  /// server lock held, so it may take subsystem locks freely.
  void AddSection(std::string name, std::function<std::string()> render);

  /// Health probe for /healthz: return true to answer 200, false for 503.
  /// Without a callback /healthz answers 200.
  void SetHealthCallback(std::function<bool()> healthy);

  /// Requests served since Start (any endpoint, including 404s).
  uint64_t RequestsServed() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Connections dropped without a response (malformed, over-long, or
  /// timed-out requests).
  uint64_t RequestsDropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Lifetime count of listener sockets opened by any StatuszServer in
  /// this process. The zero-overhead guard test asserts this stays 0 when
  /// introspection is disabled.
  static uint64_t SocketsOpenedForTest();

 private:
  explicit StatuszServer(const Options& options) : options_(options) {}

  void AcceptLoop();
  /// Reads one request from `fd`, writes one response. IOError on a
  /// malformed or over-long request (the connection is just dropped).
  Status HandleConnection(int fd);
  /// Routes `path` to a (status line, content type, body) response.
  std::string BuildResponse(const std::string& path);
  std::string RenderStatusz();

  const Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> dropped_{0};
  int64_t start_ms_ = 0;  ///< wall-clock start, for uptime

  mutable Mutex mu_{"obs.statusz", lockrank::kStatusz};
  std::vector<std::pair<std::string, std::function<std::string()>>> sections_
      SAMPNN_GUARDED_BY(mu_);
  std::function<bool()> healthy_ SAMPNN_GUARDED_BY(mu_);

  std::thread accept_thread_;  ///< started last, joined in the destructor
};

}  // namespace sampnn
