#include "src/obs/statusz.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "src/obs/phase_sampler.h"
#include "src/obs/prometheus.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/trace.h"

namespace sampnn {

namespace {

std::atomic<uint64_t> g_sockets_opened{0};

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string HttpResponse(const char* status_line, const char* content_type,
                         const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << status_line << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

Status WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("statusz: write failed");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint64_t StatuszServer::SocketsOpenedForTest() {
  return g_sockets_opened.load(std::memory_order_relaxed);
}

StatusOr<std::unique_ptr<StatuszServer>> StatuszServer::Start(
    const Options& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("statusz: socket() failed");
  g_sockets_opened.fetch_add(1, std::memory_order_relaxed);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::IOError("statusz: cannot bind 127.0.0.1:" +
                           std::to_string(options.port));
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return Status::IOError("statusz: listen() failed");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    return Status::IOError("statusz: getsockname() failed");
  }

  auto server = std::unique_ptr<StatuszServer>(new StatuszServer(options));
  server->listen_fd_ = fd;
  server->port_ = static_cast<int>(ntohs(bound.sin_port));
  server->start_ms_ = SteadyNowMs();
  server->accept_thread_ = std::thread([s = server.get()] {
    PhaseSampler::Get().SetCurrentThreadRole("statusz");
    s->AcceptLoop();
  });
  return server;
}

StatuszServer::~StatuszServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void StatuszServer::AddSection(std::string name,
                               std::function<std::string()> render) {
  MutexLock lock(mu_);
  sections_.emplace_back(std::move(name), std::move(render));
}

void StatuszServer::SetHealthCallback(std::function<bool()> healthy) {
  MutexLock lock(mu_);
  healthy_ = std::move(healthy);
}

void StatuszServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag

    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    // Bound the time one slow or stalled client can hold the accept
    // thread; introspection must never wedge on a bad peer.
    timeval tv{};
    tv.tv_sec = 1;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    ScopedPhase phase("statusz_request");
    // Malformed/over-long/timed-out requests drop the connection; the
    // dropped counter on /statusz is the only place the failure surfaces
    // (introspection must never log-spam or abort the process).
    if (const Status st = HandleConnection(conn); st.ok()) {
      requests_.fetch_add(1, std::memory_order_relaxed);
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(conn);
  }
}

Status StatuszServer::HandleConnection(int fd) {
  std::string request;
  char buf[1024];
  while (request.size() < options_.max_request_bytes) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("statusz: read failed");
    }
    if (n == 0) break;  // peer closed
    request.append(buf, static_cast<size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      break;  // end of headers; GET carries no body
    }
  }
  if (request.size() >= options_.max_request_bytes) {
    return Status::IOError("statusz: request exceeds max_request_bytes");
  }

  // Request line: "GET <path> HTTP/1.x". Anything else is a 400-class
  // problem, answered with 404 to keep the responder single-pathed.
  std::string path = "/";
  const size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  if (line.compare(0, 4, "GET ") == 0) {
    const size_t sp = line.find(' ', 4);
    path = line.substr(4, sp == std::string::npos ? std::string::npos
                                                  : sp - 4);
    // Strip a query string; endpoints take no parameters.
    const size_t q = path.find('?');
    if (q != std::string::npos) path.resize(q);
  } else {
    return Status::IOError("statusz: not a GET request");
  }

  return WriteAll(fd, BuildResponse(path));
}

std::string StatuszServer::BuildResponse(const std::string& path) {
  if (path == "/metricsz") {
    return HttpResponse("200 OK", "text/plain; version=0.0.4",
                        PrometheusRender(MetricsRegistry::Get()));
  }
  if (path == "/tracez") {
    return HttpResponse("200 OK", "application/json",
                        TraceRecorder::Get().ToJson());
  }
  if (path == "/healthz") {
    std::function<bool()> healthy;
    {
      MutexLock lock(mu_);
      healthy = healthy_;
    }
    const bool ok = !healthy || healthy();
    return ok ? HttpResponse("200 OK", "text/plain", "ok\n")
              : HttpResponse("503 Service Unavailable", "text/plain",
                             "shedding or draining\n");
  }
  if (path == "/statusz" || path == "/") {
    return HttpResponse("200 OK", "text/plain", RenderStatusz());
  }
  return HttpResponse(
      "404 Not Found", "text/plain",
      "unknown path; try /statusz /metricsz /tracez /healthz\n");
}

std::string StatuszServer::RenderStatusz() {
  std::vector<std::pair<std::string, std::function<std::string()>>> sections;
  {
    // Copy the callbacks out so they run with no server lock held: section
    // renderers take subsystem locks (serve.queue and friends) that rank
    // above obs.statusz.
    MutexLock lock(mu_);
    sections = sections_;
  }

  std::ostringstream os;
  os << "sampnn statusz\n";
  os << "==============\n";
  os << "compiler: " <<
#if defined(__VERSION__)
      __VERSION__
#else
      "unknown"
#endif
     << "\n";
  os << "c++: " << __cplusplus << "\n";
  const int64_t up_ms = SteadyNowMs() - start_ms_;
  char upbuf[64];
  std::snprintf(upbuf, sizeof(upbuf), "%lld.%03llds",
                static_cast<long long>(up_ms / 1000),
                static_cast<long long>(up_ms % 1000));
  os << "uptime: " << upbuf << "\n";
  os << "requests_served: "
     << requests_.load(std::memory_order_relaxed) << "\n";
  os << "requests_dropped: "
     << dropped_.load(std::memory_order_relaxed) << "\n";

  for (const auto& [name, render] : sections) {
    os << "\n[" << name << "]\n";
    os << (render ? render() : std::string("(null section)\n"));
  }

  os << "\n[workers]\n";
  os << PhaseSampler::Get().RenderTable();
  return os.str();
}

}  // namespace sampnn
