// Worker phase sampler (DESIGN.md §12): every thread doing interesting work
// advertises a thread-local "current phase" tag — a static string set by
// ScopedPhase (and, transitively, by every PhaseScope in the trainers) —
// plus an optional detail id (the request id the phase is serving). The
// statusz thread snapshots all live slots, so `/statusz` shows what each
// worker is doing *right now* without signals, ptrace, or symbolization.
//
// Costs: setting a phase is two relaxed stores on a thread-local slot;
// registration (first ScopedPhase on a thread) takes the sampler mutex
// once. There is no per-phase allocation and no global synchronization on
// the hot path, so phase tags stay on even when telemetry is disabled.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/sync.h"

namespace sampnn {

/// One thread's advertised state at snapshot time.
struct PhaseSample {
  uint32_t tid = 0;          ///< small dense thread id (1-based)
  const char* role = "";     ///< thread role ("serve_worker", "main", ...)
  const char* phase = "";    ///< current phase tag ("idle", "gemm", ...)
  uint64_t detail_id = 0;    ///< request id the phase serves, 0 = none
};

/// \brief Process-wide registry of per-thread phase slots.
class PhaseSampler {
 public:
  /// The process-wide sampler (leaked intentionally, like MetricsRegistry:
  /// thread-local slot handles may outlive static destruction order).
  static PhaseSampler& Get();

  /// Slot for the calling thread, registering it on first use. `role` is
  /// only applied at registration (later calls with a different role keep
  /// the original); it must have static storage duration.
  class Slot;
  Slot* SlotForCurrentThread(const char* role = "worker");

  /// Names the calling thread for the /statusz worker table. Must be called
  /// before (or instead of) the first ScopedPhase to take effect.
  void SetCurrentThreadRole(const char* role) { SlotForCurrentThread(role); }

  /// All live threads' current phases, registration order.
  std::vector<PhaseSample> Snapshot() const;

  /// Plain-text table ("tid role phase detail") for /statusz.
  std::string RenderTable() const;

  class Slot {
   public:
    void Set(const char* phase, uint64_t detail_id) {
      detail_id_.store(detail_id, std::memory_order_relaxed);
      phase_.store(phase, std::memory_order_relaxed);
    }
    const char* phase() const {
      return phase_.load(std::memory_order_relaxed);
    }
    uint64_t detail_id() const {
      return detail_id_.load(std::memory_order_relaxed);
    }
    /// Called from the owning thread's exit path: the slot stops appearing
    /// in snapshots but is never freed (a concurrent snapshot may still be
    /// reading it).
    void Retire() {
      Set("exited", 0);
      alive_.store(false, std::memory_order_relaxed);
    }

   private:
    friend class PhaseSampler;
    friend class ScopedPhase;
    uint32_t tid_ = 0;
    const char* role_ = "";
    std::atomic<const char*> phase_{"idle"};
    std::atomic<uint64_t> detail_id_{0};
    std::atomic<bool> alive_{true};
  };

 private:
  PhaseSampler() = default;

  mutable Mutex mu_{"obs.phase_sampler", lockrank::kPhaseSampler};
  std::vector<std::unique_ptr<Slot>> slots_ SAMPNN_GUARDED_BY(mu_);
};

/// RAII phase tag: sets the calling thread's phase (and optional detail id)
/// for the lifetime of the scope, restoring the previous tag on exit so
/// nested scopes unwind correctly ("serve_batch" > "gemm" > back).
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* phase, uint64_t detail_id = 0)
      : slot_(PhaseSampler::Get().SlotForCurrentThread()),
        prev_phase_(slot_->phase_.load(std::memory_order_relaxed)),
        prev_detail_(slot_->detail_id_.load(std::memory_order_relaxed)) {
    slot_->Set(phase, detail_id);
  }
  ~ScopedPhase() { slot_->Set(prev_phase_, prev_detail_); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseSampler::Slot* slot_;
  const char* prev_phase_;
  uint64_t prev_detail_;
};

}  // namespace sampnn
