#include "src/obs/phase_sampler.h"

#include <cstdio>
#include <sstream>

namespace sampnn {

namespace {

// Marks the slot dead when its thread exits, so Snapshot() stops listing
// it. The slot itself is never freed (snapshotting threads may hold the
// registry vector open), matching the leaked-singleton convention.
struct SlotHandle {
  PhaseSampler::Slot* slot = nullptr;
  ~SlotHandle();
};

}  // namespace

PhaseSampler& PhaseSampler::Get() {
  static PhaseSampler* sampler = new PhaseSampler();
  return *sampler;
}

PhaseSampler::Slot* PhaseSampler::SlotForCurrentThread(const char* role) {
  thread_local SlotHandle handle;
  if (handle.slot == nullptr) {
    auto slot = std::make_unique<Slot>();
    slot->role_ = role;
    handle.slot = slot.get();
    MutexLock lock(mu_);
    slot->tid_ = static_cast<uint32_t>(slots_.size() + 1);
    slots_.push_back(std::move(slot));
  }
  return handle.slot;
}

namespace {
SlotHandle::~SlotHandle() {
  if (slot != nullptr) slot->Retire();
}
}  // namespace

std::vector<PhaseSample> PhaseSampler::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<PhaseSample> out;
  out.reserve(slots_.size());
  for (const std::unique_ptr<Slot>& slot : slots_) {
    if (!slot->alive_.load(std::memory_order_relaxed)) continue;
    PhaseSample sample;
    sample.tid = slot->tid_;
    sample.role = slot->role_;
    sample.phase = slot->phase_.load(std::memory_order_relaxed);
    sample.detail_id = slot->detail_id_.load(std::memory_order_relaxed);
    out.push_back(sample);
  }
  return out;
}

std::string PhaseSampler::RenderTable() const {
  std::ostringstream os;
  os << "tid  role              phase             request\n";
  for (const PhaseSample& s : Snapshot()) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-4u %-17s %-17s %llu\n", s.tid,
                  s.role, s.phase,
                  static_cast<unsigned long long>(s.detail_id));
    os << line;
  }
  return os.str();
}

}  // namespace sampnn
