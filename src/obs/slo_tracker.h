// Sliding-window SLO tracking (DESIGN.md §12): turns a lifetime latency
// histogram plus violation/terminal counters into *windowed* p50/p95/p99
// and a deadline-violation rate, without any per-request bookkeeping.
//
// Mechanism: Tick() (driven from the serving watchdog thread) snapshots the
// histogram, takes the delta since the previous tick (lock-free reads,
// saturating subtraction), and accumulates it into the current slot of a
// ring of time slots. The window estimate merges every slot younger than
// `window_ms`, so quantiles reflect roughly the last window, sliding
// forward one slot at a time — the classic decay-by-bucketed-deltas scheme
// (no sample reservoir, O(slots * 33) memory, exact counts).
//
// All timestamps come from the caller (the service clock), so the window is
// deterministic under a ManualClock.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/telemetry/metrics_registry.h"
#include "src/util/sync.h"

namespace sampnn {

/// Windowed service-level estimate, produced by SloTracker::Snapshot().
struct SloSnapshot {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// violations / terminal outcomes over the window, in [0, 1].
  double violation_rate = 0.0;
  uint64_t window_count = 0;       ///< latency observations in the window
  uint64_t window_violations = 0;  ///< deadline violations in the window
  int64_t window_ms = 0;           ///< configured window length
};

/// \brief Computes windowed latency quantiles and violation rates from
/// snapshot deltas. Thread-safe: Tick() runs on one thread (the watchdog),
/// Snapshot() may be called concurrently from the statusz thread.
class SloTracker {
 public:
  struct Options {
    int64_t window_ms = 10'000;  ///< sliding window (SAMPNN_SLO_WINDOW_MS)
    size_t slots = 10;           ///< ring granularity (window_ms / slots each)
    /// Gauge name prefix; "<prefix>.p99" etc. are exported on every Tick.
    std::string gauge_prefix = "serve.slo";
  };

  /// `latency` is the lifetime histogram to window (must outlive the
  /// tracker). `violations` / `terminals` return lifetime counts (deadline
  /// violations, terminal outcomes); they are read on the Tick thread only.
  SloTracker(const Histogram* latency, std::function<uint64_t()> violations,
             std::function<uint64_t()> terminals, const Options& options);

  /// Advances the window to `now_ms` (service clock), folds the latest
  /// deltas in, and exports <prefix>.{p50,p95,p99,violation_rate,
  /// window_count} gauges.
  void Tick(int64_t now_ms);

  /// The most recent windowed estimate (cheap copy).
  SloSnapshot Snapshot() const;

  /// Plain-text rendering for /statusz.
  std::string Render() const;

  const Options& options() const { return options_; }

 private:
  struct Slot {
    int64_t start_ms = -1;  ///< -1 = never used
    HistogramSnapshot delta;
    uint64_t violations = 0;
    uint64_t terminals = 0;
  };

  const Options options_;
  const Histogram* const latency_;
  const std::function<uint64_t()> violations_;
  const std::function<uint64_t()> terminals_;

  mutable Mutex mu_{"obs.slo", lockrank::kSloTracker};
  std::vector<Slot> slots_ SAMPNN_GUARDED_BY(mu_);
  size_t current_ SAMPNN_GUARDED_BY(mu_) = 0;
  bool primed_ SAMPNN_GUARDED_BY(mu_) = false;
  HistogramSnapshot last_hist_ SAMPNN_GUARDED_BY(mu_);
  uint64_t last_violations_ SAMPNN_GUARDED_BY(mu_) = 0;
  uint64_t last_terminals_ SAMPNN_GUARDED_BY(mu_) = 0;
  SloSnapshot latest_ SAMPNN_GUARDED_BY(mu_);
};

}  // namespace sampnn
