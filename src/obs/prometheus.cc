#include "src/obs/prometheus.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <string>

#include "src/telemetry/metrics_registry.h"

namespace sampnn {

namespace {

// Doubles rendered with enough precision to round-trip gauges; trailing
// zeros are harmless in the exposition format.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void RenderHeader(std::ostringstream& os, const std::string& sanitized,
                  std::string_view original, const char* type) {
  os << "# HELP " << sanitized << " " << original << "\n";
  os << "# TYPE " << sanitized << " " << type << "\n";
}

}  // namespace

std::string PrometheusSanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 7);
  out += "sampnn_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string PrometheusRender(const MetricsRegistry& registry) {
  std::ostringstream os;
  for (const Counter* c : registry.Counters()) {
    const std::string name = PrometheusSanitizeName(std::string(c->name()));
    RenderHeader(os, name, c->name(), "counter");
    os << name << " " << c->Value() << "\n";
  }
  for (const Gauge* g : registry.Gauges()) {
    const std::string name = PrometheusSanitizeName(std::string(g->name()));
    RenderHeader(os, name, g->name(), "gauge");
    os << name << " " << FormatDouble(g->Value()) << "\n";
  }
  for (const Histogram* h : registry.Histograms()) {
    const std::string name = PrometheusSanitizeName(std::string(h->name()));
    RenderHeader(os, name, h->name(), "histogram");
    const HistogramSnapshot snap = h->Snapshot();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
      cumulative += snap.buckets[i];
      // Skip interior empty buckets to keep the payload small, but always
      // emit the first and last finite bucket so the series is never empty.
      if (snap.buckets[i] == 0 && i != 0 &&
          i + 1 != HistogramSnapshot::kNumBuckets) {
        continue;
      }
      // Upper bound of bucket i: bucket 0 holds exact zeros (le=0), bucket
      // i holds [2^(i-1), 2^i), so le = 2^i - 1 in integer terms.
      const uint64_t le =
          i == 0 ? 0 : (Histogram::BucketLowerBound(i) * 2 - 1);
      os << name << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    // +Inf includes the overflow bucket, restoring count == +Inf.
    os << name << "_bucket{le=\"+Inf\"} " << snap.count;
    if (h->HasExemplar()) {
      os << " # {request_id=\"" << h->ExemplarId() << "\"} "
         << h->ExemplarValue();
    }
    os << "\n";
    os << name << "_overflow " << snap.overflow << "\n";
    os << name << "_sum " << snap.sum << "\n";
    os << name << "_count " << snap.count << "\n";
  }
  return os.str();
}

}  // namespace sampnn
