// Per-request trace propagation (DESIGN.md §12): every admitted inference
// request carries a RequestContext — a process-monotonic request id plus
// the service-clock instants at which it crossed each lifecycle boundary:
//
//   admit ──▶ queue ──▶ batch_assembly ──▶ backend_compute ──▶ respond
//
// The serving layer stamps the boundaries as the request flows through
// Submit, micro-batch assembly, ModelBackend::Forward, and promise
// resolution; each closed segment is observed into a per-phase latency
// histogram with the request id as the exemplar, so `/metricsz` can answer
// "which phase is eating the p99, and which request was slowest there".
// All stamps come from the service's injectable Clock, so phase breakdowns
// are step-exact under a ManualClock in tests.

#pragma once

#include <atomic>
#include <cstdint>

namespace sampnn {

/// Process-monotonic request id (1-based; 0 means "no request").
inline uint64_t NextRequestId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// \brief Identity and phase-boundary stamps for one inference request.
/// Plain value type owned by the serving layer's PendingRequest; all
/// stamps are on the service clock, in milliseconds, -1 = not reached.
struct RequestContext {
  uint64_t id = 0;

  int64_t submit_ms = -1;    ///< Submit() entry (admission check starts)
  int64_t enqueue_ms = -1;   ///< admitted into the bounded queue
  int64_t dequeue_ms = -1;   ///< popped by a worker (assembly starts)
  int64_t compute_start_ms = -1;  ///< handed to ModelBackend::Forward
  int64_t compute_end_ms = -1;    ///< Forward returned
  int64_t respond_ms = -1;   ///< promise resolved

  /// Closed-segment durations; -1 while the segment is still open.
  int64_t AdmitMs() const { return Seg(submit_ms, enqueue_ms); }
  int64_t QueueMs() const { return Seg(enqueue_ms, dequeue_ms); }
  int64_t AssemblyMs() const { return Seg(dequeue_ms, compute_start_ms); }
  int64_t ComputeMs() const { return Seg(compute_start_ms, compute_end_ms); }
  int64_t RespondMs() const { return Seg(compute_end_ms, respond_ms); }

 private:
  static int64_t Seg(int64_t from, int64_t to) {
    if (from < 0 || to < 0) return -1;
    return to >= from ? to - from : 0;
  }
};

}  // namespace sampnn
