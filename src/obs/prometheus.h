// Prometheus text-exposition rendering of the MetricsRegistry (the body of
// /metricsz, DESIGN.md §12).
//
// Mapping:
//   Counter    -> `sampnn_<name> <value>` with `# TYPE ... counter`
//   Gauge      -> `sampnn_<name> <value>` with `# TYPE ... gauge`
//   Histogram  -> cumulative `_bucket{le="..."}` series over the log2
//                 buckets, `_sum`, `_count`, plus `_overflow` (observations
//                 above the top finite bucket — without it a saturating
//                 metric is indistinguishable from a busy top bucket).
//                 When the histogram holds an exemplar, the `le="+Inf"`
//                 bucket carries it in OpenMetrics syntax:
//                 `... # {request_id="1234"} <value>`.
//
// Metric names are sanitized ('.' and every other illegal character become
// '_'); the original dotted name is preserved in the `# HELP` line so
// operators can grep for the in-code name.

#pragma once

#include <string>

namespace sampnn {

class MetricsRegistry;

/// `name` with every character outside [a-zA-Z0-9_:] replaced by '_', and a
/// leading digit guarded with '_'.
std::string PrometheusSanitizeName(const std::string& name);

/// Renders the full registry in the Prometheus text exposition format
/// (version 0.0.4, with OpenMetrics-style exemplars on histogram buckets).
std::string PrometheusRender(const MetricsRegistry& registry);

}  // namespace sampnn
