#include "src/resilience/checkpoint.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/resilience/fault_injector.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/util/crc32.h"

namespace fs = std::filesystem;

namespace sampnn {

namespace {

constexpr char kMagic[8] = {'S', 'N', 'N', 'C', 'K', 'P', 'T', '1'};
constexpr size_t kHeaderSize = sizeof(kMagic) + sizeof(uint64_t);
constexpr const char* kSuffix = ".snnckpt";
constexpr const char* kPrefix = "ckpt-";

void AppendU64Le(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

void AppendU32Le(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 4);
}

uint64_t ReadU64Le(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint32_t ReadU32Le(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

// "ckpt-<digits>.snnckpt" -> step; false when the name doesn't match.
bool ParseCheckpointStep(const std::string& name, uint64_t* step) {
  const size_t prefix_len = std::strlen(kPrefix);
  const size_t suffix_len = std::strlen(kSuffix);
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty()) return false;
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *step = v;
  return true;
}

void CountSkippedCorrupt() {
  if (TelemetryEnabled()) {
    static Counter& c = MetricsRegistry::Get().GetCounter(
        "resilience.corrupt_checkpoints_skipped");
    c.Increment();
  }
}

// Advisory flock over "<dir>/.ckpt.lock" coordinating retention deletes
// against scans when a trainer and a promoter share one checkpoint dir.
// Prune() holds it exclusive across its list+delete; readers hold it shared
// across their whole list+read loop, so a scan can never observe a file
// vanishing between listing and reading it. flock is per open-file-
// description, so concurrent threads (each with their own open) and
// separate processes both serialize correctly. The ".ckpt.lock" name does
// not match ParseCheckpointStep, so the lock file is invisible to scans.
//
// Degrades to unlocked when the lock file cannot be opened (e.g. the dir
// does not exist yet): callers still get the pre-lock best-effort behavior
// rather than a new failure mode.
class CheckpointDirLock {
 public:
  CheckpointDirLock(const std::string& dir, int operation) {
    const std::string path = (fs::path(dir) / ".ckpt.lock").string();
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) return;
    while (::flock(fd_, operation) != 0) {
      if (errno != EINTR) {
        ::close(fd_);
        fd_ = -1;
        return;
      }
    }
  }
  ~CheckpointDirLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  CheckpointDirLock(const CheckpointDirLock&) = delete;
  CheckpointDirLock& operator=(const CheckpointDirLock&) = delete;

 private:
  int fd_ = -1;
};

}  // namespace

std::string CheckpointFileName(uint64_t step) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", kPrefix,
                static_cast<unsigned long long>(step), kSuffix);
  return buf;
}

StatusOr<CheckpointWriter> CheckpointWriter::Create(
    const CheckpointWriterOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("CheckpointWriter: empty directory");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint dir " + options.dir +
                           ": " + ec.message());
  }
  return CheckpointWriter(options);
}

Status CheckpointWriter::Write(uint64_t step, std::string_view payload) {
  // Assemble the full frame in memory first: one sequential write keeps
  // the torn-write window minimal and makes the fault hooks precise.
  std::string frame;
  frame.reserve(kHeaderSize + payload.size() + sizeof(uint32_t));
  frame.append(kMagic, sizeof(kMagic));
  AppendU64Le(&frame, payload.size());
  frame.append(payload.data(), payload.size());
  AppendU32Le(&frame, Crc32(payload.data(), payload.size()));

  if (FaultArmed(FaultKind::kCkptCorrupt) && !payload.empty()) {
    // Simulated bit rot: flip one payload byte after the CRC was computed.
    frame[kHeaderSize + payload.size() / 2] ^= static_cast<char>(0x40);
  }
  if (FaultArmed(FaultKind::kCkptTruncate)) {
    // Simulated torn write: drop the tail (always at least the CRC).
    frame.resize(kHeaderSize + payload.size() / 2);
  }

  const std::string final_path =
      (fs::path(options_.dir) / CheckpointFileName(step)).string();
  const std::string tmp_path = final_path + ".tmp";

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open " + tmp_path + ": " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return Status::IOError("write failure on " + tmp_path + ": " + err);
    }
    written += static_cast<size_t>(n);
  }
  const bool fsync_failed =
      FaultArmed(FaultKind::kFsyncFail) || ::fsync(fd) != 0;
  ::close(fd);
  if (fsync_failed) {
    ::unlink(tmp_path.c_str());
    return Status::IOError("fsync failure on " + tmp_path);
  }
  if (FaultArmed(FaultKind::kRenameFail) ||
      std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::IOError("rename failure " + tmp_path + " -> " + final_path);
  }
  // Durability of the rename itself: fsync the directory. A failure here is
  // not fatal — the data is safe, only the direntry might replay.
  const int dirfd = ::open(options_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  return Prune();
}

Status CheckpointWriter::Prune() const {
  if (options_.retain == 0) return Status::OK();
  // Exclusive: no scan may run while retention deletes files, or a reader
  // that listed N files could find the oldest already gone (satellite fix
  // for the shared trainer/promoter dir).
  CheckpointDirLock lock(options_.dir, LOCK_EX);
  std::vector<uint64_t> steps = ListCheckpointSteps(options_.dir);
  if (steps.size() <= options_.retain) return Status::OK();
  const size_t drop = steps.size() - options_.retain;
  for (size_t i = 0; i < drop; ++i) {
    std::error_code ec;
    fs::remove(fs::path(options_.dir) / CheckpointFileName(steps[i]), ec);
    // Best effort: a leftover old checkpoint is harmless.
  }
  return Status::OK();
}

StatusOr<std::string> ReadCheckpointPayload(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  if (file_size < kHeaderSize + sizeof(uint32_t)) {
    return Status::InvalidArgument(path + ": shorter than a checkpoint frame");
  }
  char header[kHeaderSize];
  in.read(header, kHeaderSize);
  if (!in || std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": bad checkpoint magic");
  }
  const uint64_t payload_size = ReadU64Le(header + sizeof(kMagic));
  // Bounds-check the declared size against the file length before
  // allocating; a corrupt length field must not drive a giant allocation.
  if (payload_size != file_size - kHeaderSize - sizeof(uint32_t)) {
    return Status::InvalidArgument(
        path + ": declared payload size " + std::to_string(payload_size) +
        " does not match file length " + std::to_string(file_size));
  }
  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  char crc_buf[4];
  in.read(crc_buf, 4);
  if (!in) return Status::IOError(path + ": truncated checkpoint read");
  const uint32_t expected = ReadU32Le(crc_buf);
  const uint32_t actual = Crc32(payload.data(), payload.size());
  if (expected != actual) {
    return Status::InvalidArgument(path + ": checkpoint CRC mismatch");
  }
  return payload;
}

std::vector<uint64_t> ListCheckpointSteps(const std::string& dir) {
  std::vector<uint64_t> steps;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return steps;
  for (const auto& entry : it) {
    uint64_t step = 0;
    if (ParseCheckpointStep(entry.path().filename().string(), &step)) {
      steps.push_back(step);
    }
  }
  std::sort(steps.begin(), steps.end());
  return steps;
}

StatusOr<LoadedCheckpoint> LatestValidCheckpoint(const std::string& dir) {
  // Shared: many scans may overlap each other, but none may overlap a
  // retention delete — the whole list+read loop sees a stable directory.
  CheckpointDirLock lock(dir, LOCK_SH);
  std::vector<uint64_t> steps = ListCheckpointSteps(dir);
  for (size_t i = steps.size(); i-- > 0;) {
    const std::string path =
        (fs::path(dir) / CheckpointFileName(steps[i])).string();
    auto payload = ReadCheckpointPayload(path);
    if (!payload.ok()) {
      CountSkippedCorrupt();
      continue;
    }
    LoadedCheckpoint loaded;
    loaded.path = path;
    loaded.step = steps[i];
    loaded.payload = std::move(payload).value();
    return loaded;
  }
  return Status::NotFound("no valid checkpoint in " + dir);
}

}  // namespace sampnn
