// Divergence sentinels: per-batch scans that catch a training run going off
// the rails — a non-finite loss, a non-finite gradient norm, or a loss
// spike far above the recent EWMA — so the experiment loop can roll back to
// the last good snapshot, back off the learning rate, and retry instead of
// silently converging to garbage (or crashing in a CHECK downstream).

#pragma once

#include <cstddef>
#include <cstdint>

namespace sampnn {

/// Sentinel + recovery knobs. The defaults are deliberately loose: a factor
/// of 25 over the EWMA is far beyond normal minibatch noise, so false trips
/// on healthy runs are essentially impossible while genuine divergence
/// (loss exploding by orders of magnitude) still triggers within batches.
struct SentinelOptions {
  bool enabled = false;
  double ewma_alpha = 0.02;    ///< smoothing of the batch-loss EWMA
  double spike_factor = 25.0;  ///< trip when loss > spike_factor * EWMA
  size_t warmup_batches = 50;  ///< spike detection arms after the EWMA
                               ///< settles; NaN/Inf scans are always armed
  size_t max_retries = 3;      ///< rollbacks before giving up with an error
  float lr_backoff = 0.5f;     ///< learning-rate multiplier per rollback
};

/// \brief Streaming divergence detector over per-batch loss (and, when the
/// trainer tracks it, gradient norm).
class DivergenceSentinel {
 public:
  enum class Verdict {
    kOk,
    kNonFiniteLoss,
    kNonFiniteGrad,
    kLossSpike,
  };

  explicit DivergenceSentinel(const SentinelOptions& options)
      : options_(options) {}

  /// Scans one batch. `grad_norm2` is the squared gradient norm, or any
  /// negative value when unavailable. A healthy observation updates the
  /// EWMA; a tripped one does not (the poisoned value must not drag the
  /// baseline up before the rollback rewinds it).
  Verdict Observe(double loss, double grad_norm2);

  /// EWMA state, checkpointed so a resumed run trips identically.
  double ewma() const { return ewma_; }
  uint64_t observed() const { return observed_; }
  void RestoreState(double ewma, uint64_t observed) {
    ewma_ = ewma;
    observed_ = observed;
  }

  const SentinelOptions& options() const { return options_; }

 private:
  SentinelOptions options_;
  double ewma_ = 0.0;
  uint64_t observed_ = 0;
};

/// Human-readable verdict for error messages and logs.
const char* SentinelVerdictToString(DivergenceSentinel::Verdict verdict);

}  // namespace sampnn
