#include "src/resilience/sentinel.h"

#include <cmath>

namespace sampnn {

DivergenceSentinel::Verdict DivergenceSentinel::Observe(double loss,
                                                        double grad_norm2) {
  if (!std::isfinite(loss)) return Verdict::kNonFiniteLoss;
  // "Unavailable" is encoded as a negative value; NaN compares false here,
  // so a NaN gradient norm counts as available — and trips the scan.
  const bool grad_available = !(grad_norm2 < 0.0);
  if (grad_available && !std::isfinite(grad_norm2)) {
    return Verdict::kNonFiniteGrad;
  }
  if (observed_ >= options_.warmup_batches && ewma_ > 0.0 &&
      loss > options_.spike_factor * ewma_) {
    return Verdict::kLossSpike;
  }
  ewma_ = observed_ == 0
              ? loss
              : (1.0 - options_.ewma_alpha) * ewma_ + options_.ewma_alpha * loss;
  ++observed_;
  return Verdict::kOk;
}

const char* SentinelVerdictToString(DivergenceSentinel::Verdict verdict) {
  switch (verdict) {
    case DivergenceSentinel::Verdict::kOk:
      return "ok";
    case DivergenceSentinel::Verdict::kNonFiniteLoss:
      return "non-finite loss";
    case DivergenceSentinel::Verdict::kNonFiniteGrad:
      return "non-finite gradient norm";
    case DivergenceSentinel::Verdict::kLossSpike:
      return "loss spike";
  }
  return "unknown";
}

}  // namespace sampnn
