// Deterministic fault injection for the resilience test suite and the CI
// crash-resume smoke job. A FaultInjector is parsed from a spec string like
//
//   "grad-nan@120,kill@350"
//
// meaning: poison a gradient with NaN at global batch step 120, SIGKILL the
// process at step 350. The step counter is advanced once per training batch
// by the experiment loop; each armed fault fires exactly once, on the first
// query at or after its step (">=" so faults that are only polled at
// checkpoint cadence, e.g. fsync-fail, still trigger).
//
// The injector is process-global by design: production code paths query
// FaultArmed(kind), which is a cheap null check when no injector is
// installed, so the hooks cost nothing outside tests. Specs can also come
// from the SAMPNN_FAULTS environment variable (read by drivers), which is
// how the CI smoke job kills a child trainer mid-epoch without test-only
// binaries.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/sync.h"

namespace sampnn {

/// Injectable fault kinds. The "where it is queried" site defines the
/// observable effect.
enum class FaultKind {
  kGradNan,       ///< trainer Step(): poison a gradient entry with NaN
  kKill,          ///< experiment loop: raise(SIGKILL) — a real crash
  kHaltTraining,  ///< experiment loop: return an Internal error mid-run
                  ///< (in-process stand-in for kKill so tests can resume)
  kCkptTruncate,  ///< checkpoint writer: drop the tail of the temp file
  kCkptCorrupt,   ///< checkpoint writer: flip a payload byte before rename
  kFsyncFail,     ///< checkpoint writer: report fsync failure
  kRenameFail,    ///< checkpoint writer: report rename failure
  // Serving faults (src/serve/): the step counter counts admitted requests.
  kServeDelay,       ///< inference worker: sleep before executing a batch
  kServeHang,        ///< inference worker: spin until the batch is cancelled
                     ///< (the watchdog's rescue path is the only way out)
  kRejectAdmission,  ///< InferenceService::Submit: shed as if saturated
  // Hot-swap faults (src/registry/): queried by the promotion pipeline. A
  // registry with its own injector (RegistryOptions::promote_fault_spec)
  // counts promotion attempts instead of admitted requests, so a spec like
  // "promote-corrupt@2" deterministically rejects the second promotion even
  // while serving traffic advances the global step counter.
  kPromoteCorrupt,    ///< ModelRegistry: candidate checkpoint fails CRC
  kPromoteRegressed,  ///< ModelRegistry: canary eval trips the sentinel
  kSwapRace,          ///< ModelRegistry: promotion raced with a drain
  // Lifecycle faults (src/lifecycle/): queried by the continuous
  // train-while-serve loop. drift-spike forces the DriftDetector to trip,
  // stream-stall starves the request-log ring (Drain returns nothing and
  // drops the buffered rows), canary-regress fails the loop-side canary
  // gate so the candidate is never handed to the registry.
  kDriftSpike,     ///< DriftDetector: force a trip regardless of stats
  kStreamStall,    ///< RequestLog: Drain starves (buffered rows dropped)
  kCanaryRegress,  ///< FineTuneLoop: canary eval reports a regression
};

/// Parses "grad-nan" | "kill" | "halt" | "ckpt-truncate" | "ckpt-corrupt" |
/// "fsync-fail" | "rename-fail" | "delay" | "hang" | "reject-admission" |
/// "promote-corrupt" | "promote-regressed" | "swap-race" | "drift-spike" |
/// "stream-stall" | "canary-regress".
StatusOr<FaultKind> FaultKindFromString(const std::string& name);
/// Canonical spec-string name.
const char* FaultKindToString(FaultKind kind);

/// One armed fault: fires once, at the first query at step >= `step`.
struct FaultSpec {
  FaultKind kind;
  uint64_t step = 0;
};

/// \brief Deterministic, step-indexed fault schedule.
///
/// Thread-safe: the serving layer queries and advances the injector from
/// submitter and worker threads concurrently (training loops remain
/// single-threaded queriers and pay one uncontended lock per query).
/// Copies share the lock but snapshot the armed/fired state.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Parses a comma-separated spec: "<kind>@<step>[,<kind>@<step>...]".
  /// "<kind>" alone means step 0. An empty spec yields no faults.
  static StatusOr<FaultInjector> Parse(const std::string& spec);

  /// The process-global injector, or nullptr when none is installed.
  static FaultInjector* Global();
  /// Installs `injector` as the process-global instance (replacing any).
  static void InstallGlobal(FaultInjector injector);
  /// Removes the process-global instance.
  static void ClearGlobal();
  /// Installs from the SAMPNN_FAULTS environment variable if set; no-op
  /// (and OK) when unset.
  static Status InstallGlobalFromEnv();

  /// Advances the global batch step (once per training batch; once per
  /// admitted request in the serving layer).
  void AdvanceStep() { step_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t step() const { return step_.load(std::memory_order_relaxed); }
  /// Resumed runs restore the batch cursor so "@step" stays aligned with
  /// the uninterrupted run's numbering.
  void set_step(uint64_t step) {
    step_.store(step, std::memory_order_relaxed);
  }

  /// True exactly once per armed fault of `kind`: at the first call with
  /// the current step at or past the fault's step. Concurrent callers see
  /// exactly one true per armed fault.
  bool ShouldFire(FaultKind kind);

  size_t num_armed() const { return specs_.size(); }

  // Copies snapshot the armed/fired state under the source's lock and then
  // share that lock (the atomic step is re-seated by hand). The analysis
  // cannot see that this->mu_ aliases other.mu_ after the reseat, so the
  // assignment opts out.
  FaultInjector(const FaultInjector& other) { *this = other; }
  FaultInjector(FaultInjector&& other) noexcept { *this = other; }
  FaultInjector& operator=(const FaultInjector& other)
      SAMPNN_NO_THREAD_SAFETY_ANALYSIS {
    if (this == &other) return *this;
    MutexLock lock(*other.mu_);
    specs_ = other.specs_;
    fired_ = other.fired_;
    mu_ = other.mu_;
    step_.store(other.step_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }
  FaultInjector& operator=(FaultInjector&& other) noexcept {
    return *this = other;
  }

 private:
  std::vector<FaultSpec> specs_;
  std::vector<bool> fired_ SAMPNN_GUARDED_BY(*mu_);
  // shared_ptr keeps the injector copyable; copies share the lock.
  std::shared_ptr<Mutex> mu_ = std::make_shared<Mutex>(
      "resilience.fault_injector", lockrank::kFaultInjector);
  std::atomic<uint64_t> step_{0};
};

/// True iff a global injector is installed and a fault of `kind` fires now.
/// The one-line hook used by production code paths.
bool FaultArmed(FaultKind kind);

}  // namespace sampnn
