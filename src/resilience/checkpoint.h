// Crash-safe checkpoint files. A checkpoint is an opaque payload (the
// experiment loop serializes model, optimizer, RNG and cursor state into
// it) wrapped in a self-validating frame:
//
//   "SNNCKPT1" | u64 payload_size | payload | u32 CRC32(payload)
//
// Writes are atomic: the frame goes to a temp file in the same directory,
// is fsync'd, and only then renamed over the final "ckpt-<step>.snnckpt"
// name, so a crash at any instant leaves either the previous checkpoint or
// a complete new one — never a half-written file under the final name.
// Readers verify the magic, the declared size against the file length, and
// the CRC, so torn or bit-flipped files are rejected; LatestValidCheckpoint
// then falls back to the newest file that does validate.
//
// Shared-directory coordination: when a trainer (writing + retaining) and a
// promoter (scanning) share one directory, an advisory flock over
// "<dir>/.ckpt.lock" keeps retention deletes (exclusive) from interleaving
// with scans (shared), so LatestValidCheckpoint can never list a file and
// then find it deleted mid-scan. Works across threads and processes; the
// writer's atomic temp+rename needs no lock of its own.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace sampnn {

/// Knobs for CheckpointWriter.
struct CheckpointWriterOptions {
  std::string dir;    ///< created (recursively) if missing
  size_t retain = 3;  ///< keep the newest K checkpoints; 0 = keep all
};

/// \brief Atomically writes framed, CRC-protected checkpoint files.
///
/// Honors the checkpoint fault kinds of FaultInjector: kCkptTruncate and
/// kCkptCorrupt silently damage the file (simulating a torn write — the
/// write still "succeeds", and recovery must detect it on read), while
/// kFsyncFail and kRenameFail surface as IOError from Write().
class CheckpointWriter {
 public:
  /// Creates `options.dir` if needed; IOError if that fails.
  static StatusOr<CheckpointWriter> Create(
      const CheckpointWriterOptions& options);

  /// Writes `payload` as "ckpt-<step>.snnckpt" via temp + fsync + rename,
  /// then prunes checkpoints beyond the retention count.
  Status Write(uint64_t step, std::string_view payload);

  const std::string& dir() const { return options_.dir; }

 private:
  explicit CheckpointWriter(CheckpointWriterOptions options)
      : options_(std::move(options)) {}

  Status Prune() const;

  CheckpointWriterOptions options_;
};

/// One successfully validated checkpoint.
struct LoadedCheckpoint {
  std::string path;
  uint64_t step = 0;
  std::string payload;
};

/// Canonical file name for a step: "ckpt-%020llu.snnckpt" (zero-padded so
/// lexicographic order equals step order).
std::string CheckpointFileName(uint64_t step);

/// Reads and validates one checkpoint file; InvalidArgument on bad magic,
/// size mismatch, or CRC failure, IOError on filesystem errors.
StatusOr<std::string> ReadCheckpointPayload(const std::string& path);

/// Returns the newest checkpoint in `dir` that passes validation, skipping
/// (and leaving in place) corrupt ones. NotFound when the directory holds
/// no valid checkpoint (including when it doesn't exist) — callers treat
/// that as "start fresh".
StatusOr<LoadedCheckpoint> LatestValidCheckpoint(const std::string& dir);

/// Checkpoint steps present in `dir` (valid or not), ascending. Test/debug
/// helper and the retention scan.
std::vector<uint64_t> ListCheckpointSteps(const std::string& dir);

}  // namespace sampnn
