#include "src/resilience/fault_injector.h"

#include <cstdlib>

#include "src/util/env.h"

namespace sampnn {

namespace {

// Intentionally leaked (trivially destructible pointer): the injector must
// outlive every training loop, including those running at exit.
FaultInjector* g_injector = nullptr;

}  // namespace

StatusOr<FaultKind> FaultKindFromString(const std::string& name) {
  if (name == "grad-nan") return FaultKind::kGradNan;
  if (name == "kill") return FaultKind::kKill;
  if (name == "halt") return FaultKind::kHaltTraining;
  if (name == "ckpt-truncate") return FaultKind::kCkptTruncate;
  if (name == "ckpt-corrupt") return FaultKind::kCkptCorrupt;
  if (name == "fsync-fail") return FaultKind::kFsyncFail;
  if (name == "rename-fail") return FaultKind::kRenameFail;
  if (name == "delay") return FaultKind::kServeDelay;
  if (name == "hang") return FaultKind::kServeHang;
  if (name == "reject-admission") return FaultKind::kRejectAdmission;
  if (name == "promote-corrupt") return FaultKind::kPromoteCorrupt;
  if (name == "promote-regressed") return FaultKind::kPromoteRegressed;
  if (name == "swap-race") return FaultKind::kSwapRace;
  if (name == "drift-spike") return FaultKind::kDriftSpike;
  if (name == "stream-stall") return FaultKind::kStreamStall;
  if (name == "canary-regress") return FaultKind::kCanaryRegress;
  return Status::InvalidArgument("unknown fault kind: " + name);
}

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGradNan:
      return "grad-nan";
    case FaultKind::kKill:
      return "kill";
    case FaultKind::kHaltTraining:
      return "halt";
    case FaultKind::kCkptTruncate:
      return "ckpt-truncate";
    case FaultKind::kCkptCorrupt:
      return "ckpt-corrupt";
    case FaultKind::kFsyncFail:
      return "fsync-fail";
    case FaultKind::kRenameFail:
      return "rename-fail";
    case FaultKind::kServeDelay:
      return "delay";
    case FaultKind::kServeHang:
      return "hang";
    case FaultKind::kRejectAdmission:
      return "reject-admission";
    case FaultKind::kPromoteCorrupt:
      return "promote-corrupt";
    case FaultKind::kPromoteRegressed:
      return "promote-regressed";
    case FaultKind::kSwapRace:
      return "swap-race";
    case FaultKind::kDriftSpike:
      return "drift-spike";
    case FaultKind::kStreamStall:
      return "stream-stall";
    case FaultKind::kCanaryRegress:
      return "canary-regress";
  }
  return "unknown";
}

StatusOr<FaultInjector> FaultInjector::Parse(const std::string& spec) {
  FaultInjector injector;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    FaultSpec fault;
    const size_t at = item.find('@');
    std::string kind_name = item.substr(0, at);
    if (at != std::string::npos) {
      const std::string step_str = item.substr(at + 1);
      char* end = nullptr;
      const unsigned long long step = std::strtoull(step_str.c_str(), &end, 10);
      if (step_str.empty() || end == nullptr || *end != '\0') {
        return Status::InvalidArgument("bad fault step in spec item: " + item);
      }
      fault.step = step;
    }
    SAMPNN_ASSIGN_OR_RETURN(fault.kind, FaultKindFromString(kind_name));
    injector.specs_.push_back(fault);
  }
  injector.fired_.assign(injector.specs_.size(), false);
  return injector;
}

FaultInjector* FaultInjector::Global() { return g_injector; }

void FaultInjector::InstallGlobal(FaultInjector injector) {
  ClearGlobal();
  g_injector = new FaultInjector(std::move(injector));
}

void FaultInjector::ClearGlobal() {
  delete g_injector;
  g_injector = nullptr;
}

Status FaultInjector::InstallGlobalFromEnv() {
  const std::string spec = GetEnvOr("SAMPNN_FAULTS", "");
  if (spec.empty()) return Status::OK();
  SAMPNN_ASSIGN_OR_RETURN(FaultInjector injector, Parse(spec));
  InstallGlobal(std::move(injector));
  return Status::OK();
}

bool FaultInjector::ShouldFire(FaultKind kind) {
  const uint64_t step = step_.load(std::memory_order_relaxed);
  MutexLock lock(*mu_);
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (fired_[i] || specs_[i].kind != kind) continue;
    if (step >= specs_[i].step) {
      fired_[i] = true;
      return true;
    }
  }
  return false;
}

bool FaultArmed(FaultKind kind) {
  return g_injector != nullptr && g_injector->ShouldFire(kind);
}

}  // namespace sampnn
