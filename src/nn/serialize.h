// Binary model serialization: save/load trained Mlp parameters. Format
// "SNN1": magic, layer count, then per layer (in, out, activation id,
// weights row-major, bias). Little-endian, float32 — matching the in-memory
// representation on every supported platform.

#pragma once

#include <string>

#include "src/nn/mlp.h"
#include "src/util/status.h"

namespace sampnn {

/// Writes `net`'s architecture and parameters to `path` (truncates).
Status SaveMlp(const Mlp& net, const std::string& path);

/// Reads a model written by SaveMlp. Returns InvalidArgument on malformed
/// files and IOError on filesystem failures.
StatusOr<Mlp> LoadMlp(const std::string& path);

}  // namespace sampnn
