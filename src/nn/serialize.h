// Binary model serialization: save/load trained Mlp parameters. Format
// "SNN1": magic, layer count, then per layer (in, out, activation id,
// weights row-major, bias). Little-endian, float32 — matching the in-memory
// representation on every supported platform.
//
// The stream overloads let checkpoints (src/resilience/checkpoint.*) embed
// a model section inside a larger CRC-protected payload. All readers
// bounds-check declared sizes against the bytes actually remaining before
// allocating, so truncated or corrupt inputs fail with InvalidArgument
// instead of crashing or over-allocating.

#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "src/nn/mlp.h"
#include "src/util/status.h"

namespace sampnn {

/// Writes `net`'s architecture and parameters to `path` (truncates).
Status SaveMlp(const Mlp& net, const std::string& path);

/// Writes the same "SNN1" image to an open stream.
Status SaveMlp(const Mlp& net, std::ostream& out);

/// Reads a model written by SaveMlp. Returns InvalidArgument on malformed
/// files and IOError on filesystem failures.
StatusOr<Mlp> LoadMlp(const std::string& path);

/// Stream form of LoadMlp (reads one "SNN1" image from the current
/// position; trailing bytes are left unread).
StatusOr<Mlp> LoadMlp(std::istream& in);

/// Reads an "SNN1" image and copies its parameters into `net`, which must
/// have the identical architecture (layer dims and activations). Used by
/// checkpoint restore, where the network object already exists.
Status LoadMlpParamsInto(std::istream& in, Mlp* net);

}  // namespace sampnn
