#include "src/nn/activation.h"

#include <cmath>
#include <cstring>

#include "src/tensor/simd.h"
#include "src/util/check.h"

namespace sampnn {

StatusOr<Activation> ActivationFromString(const std::string& name) {
  if (name == "linear") return Activation::kLinear;
  if (name == "relu") return Activation::kRelu;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "tanh") return Activation::kTanh;
  return Status::InvalidArgument("unknown activation: " + name);
}

const char* ActivationToString(Activation act) {
  switch (act) {
    case Activation::kLinear:
      return "linear";
    case Activation::kRelu:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
  }
  return "unknown";
}

float ActivationValue(Activation act, float z) {
  switch (act) {
    case Activation::kLinear:
      return z;
    case Activation::kRelu:
      return z > 0.0f ? z : 0.0f;
    case Activation::kSigmoid:
      return 1.0f / (1.0f + std::exp(-z));
    case Activation::kTanh:
      return std::tanh(z);
  }
  return z;
}

float ActivationGradValue(Activation act, float z) {
  switch (act) {
    case Activation::kLinear:
      return 1.0f;
    case Activation::kRelu:
      return z > 0.0f ? 1.0f : 0.0f;
    case Activation::kSigmoid: {
      const float s = 1.0f / (1.0f + std::exp(-z));
      return s * (1.0f - s);
    }
    case Activation::kTanh: {
      const float t = std::tanh(z);
      return 1.0f - t * t;
    }
  }
  return 1.0f;
}

void ApplyActivation(Activation act, std::span<const float> z,
                     std::span<float> a) {
  SAMPNN_CHECK_EQ(z.size(), a.size());
  switch (act) {
    case Activation::kLinear:
      if (a.data() != z.data() && !z.empty()) {
        std::memcpy(a.data(), z.data(), z.size() * sizeof(float));
      }
      break;
    case Activation::kRelu:
      simd::Relu(z.size(), z.data(), a.data());
      break;
    // Sigmoid and tanh stay scalar on purpose: a vector exp approximation
    // would change activations beyond FMA-contraction tolerance and break
    // loss parity with the seed (DESIGN.md §9). ReLU is the paper's hidden
    // activation, so it is the one that matters for wall-clock.
    case Activation::kSigmoid:
      for (size_t i = 0; i < z.size(); ++i)
        a[i] = 1.0f / (1.0f + std::exp(-z[i]));
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < z.size(); ++i) a[i] = std::tanh(z[i]);
      break;
  }
}

void ApplyActivation(Activation act, Matrix* m) {
  SAMPNN_CHECK(m != nullptr);
  std::span<float> d(m->data(), m->size());
  ApplyActivation(act, d, d);
}

void ActivationGradFromZ(Activation act, std::span<const float> z,
                         std::span<float> d) {
  SAMPNN_CHECK_EQ(z.size(), d.size());
  for (size_t i = 0; i < z.size(); ++i) d[i] = ActivationGradValue(act, z[i]);
}

void MultiplyActivationGrad(Activation act, const Matrix& z, Matrix* delta) {
  SAMPNN_CHECK(delta != nullptr);
  SAMPNN_CHECK_EQ(z.rows(), delta->rows());
  SAMPNN_CHECK_EQ(z.cols(), delta->cols());
  if (act == Activation::kLinear) return;
  const float* zd = z.data();
  float* dd = delta->data();
  if (act == Activation::kRelu) {
    simd::ReluGradMul(z.size(), zd, dd);
    return;
  }
  for (size_t i = 0; i < z.size(); ++i) {
    dd[i] *= ActivationGradValue(act, zd[i]);
  }
}

}  // namespace sampnn
