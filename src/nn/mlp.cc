#include "src/nn/mlp.h"

#include <sstream>

#include "src/nn/loss.h"
#include "src/tensor/kernel_config.h"
#include "src/tensor/kernels.h"
#include "src/util/rng.h"

namespace sampnn {

MlpConfig MlpConfig::Uniform(size_t input_dim, size_t output_dim, size_t depth,
                             size_t width) {
  MlpConfig cfg;
  cfg.input_dim = input_dim;
  cfg.output_dim = output_dim;
  cfg.hidden_dims.assign(depth, width);
  return cfg;
}

StatusOr<Mlp> Mlp::Create(const MlpConfig& config) {
  if (config.input_dim == 0) {
    return Status::InvalidArgument("MlpConfig.input_dim must be > 0");
  }
  if (config.output_dim == 0) {
    return Status::InvalidArgument("MlpConfig.output_dim must be > 0");
  }
  for (size_t d : config.hidden_dims) {
    if (d == 0) {
      return Status::InvalidArgument("hidden layer width must be > 0");
    }
  }
  Rng rng(config.seed);
  std::vector<Layer> layers;
  layers.reserve(config.hidden_dims.size() + 1);
  size_t in_dim = config.input_dim;
  for (size_t width : config.hidden_dims) {
    layers.emplace_back(in_dim, width, config.hidden_activation,
                        config.initializer, rng);
    in_dim = width;
  }
  // Output layer is linear: logits feed SoftmaxCrossEntropy.
  layers.emplace_back(in_dim, config.output_dim, Activation::kLinear,
                      config.initializer, rng);
  return Mlp(std::move(layers));
}

size_t Mlp::num_params() const {
  size_t total = 0;
  for (const Layer& l : layers_) total += l.num_params();
  return total;
}

const Matrix& Mlp::Forward(const Matrix& input, MlpWorkspace* ws) const {
  SAMPNN_CHECK(ws != nullptr);
  SAMPNN_CHECK_EQ(input.cols(), input_dim());
  ws->z.resize(layers_.size());
  ws->a.resize(layers_.size());
  const Matrix* prev = &input;
  for (size_t k = 0; k < layers_.size(); ++k) {
    layers_[k].ForwardLinear(*prev, &ws->z[k]);
    layers_[k].Activate(ws->z[k], &ws->a[k]);
    prev = &ws->a[k];
  }
  return ws->a.back();
}

Status Mlp::ForwardCancellable(const Matrix& input, const CancelContext& ctx,
                               MlpWorkspace* ws) const {
  SAMPNN_CHECK(ws != nullptr);
  if (input.cols() != input_dim()) {
    return Status::InvalidArgument("ForwardCancellable: input has " +
                                   std::to_string(input.cols()) +
                                   " features, network expects " +
                                   std::to_string(input_dim()));
  }
  // Row-block-granular cancellation inside the parallel GEMM dispatch.
  ScopedKernelCancellation scope(&ctx);
  ws->z.resize(layers_.size());
  ws->a.resize(layers_.size());
  const Matrix* prev = &input;
  for (size_t k = 0; k < layers_.size(); ++k) {
    if (ctx.ShouldStop()) return ctx.StopStatus();
    layers_[k].ForwardLinear(*prev, &ws->z[k]);
    layers_[k].Activate(ws->z[k], &ws->a[k]);
    prev = &ws->a[k];
  }
  // A dispatch cancelled mid-product leaves the last z/a garbage; report it.
  if (ctx.ShouldStop()) return ctx.StopStatus();
  return Status::OK();
}

std::vector<float> Mlp::ForwardSample(std::span<const float> x) const {
  SAMPNN_CHECK_EQ(x.size(), input_dim());
  std::vector<float> cur(x.begin(), x.end());
  std::vector<float> next;
  for (const Layer& l : layers_) {
    next.assign(l.out_dim(), 0.0f);
    l.ForwardLinear(cur, next);
    l.Activate(next, next);
    cur.swap(next);
  }
  return cur;
}

void Mlp::Backward(const Matrix& input, const MlpWorkspace& ws,
                   const Matrix& grad_logits, MlpGrads* grads) const {
  SAMPNN_CHECK(grads != nullptr);
  SAMPNN_CHECK_EQ(ws.z.size(), layers_.size());
  SAMPNN_CHECK_EQ(ws.a.size(), layers_.size());
  SAMPNN_CHECK_EQ(grad_logits.rows(), input.rows());
  SAMPNN_CHECK_EQ(grad_logits.cols(), output_dim());
  SAMPNN_DCHECK_EQ(input.cols(), input_dim());
  if (grads->size() != layers_.size()) *grads = ZeroGrads();

  // delta starts as dL/dlogits; the output layer is linear so f'(z) = 1.
  Matrix delta = grad_logits;
  Matrix delta_prev;
  for (size_t k = layers_.size(); k-- > 0;) {
    const Layer& l = layers_[k];
    LayerGrads& g = (*grads)[k];
    if (g.weights.rows() != l.in_dim() || g.weights.cols() != l.out_dim()) {
      g = LayerGrads::ZerosLike(l);
    }
    const Matrix& a_prev = (k == 0) ? input : ws.a[k - 1];
    // grad_W^k = a^{k-1 T} * delta^k; grad_b^k = column sums of delta^k.
    GemmTransA(a_prev, delta, &g.weights);
    g.bias.resize(l.out_dim());
    ColumnSums(delta, g.bias);
    if (k > 0) {
      // delta^{k-1} = (delta^k * W^{k T}) ⊙ f'(z^{k-1})   (Eq. 1)
      if (delta_prev.rows() != delta.rows() ||
          delta_prev.cols() != l.in_dim()) {
        delta_prev = Matrix(delta.rows(), l.in_dim());
      }
      GemmTransB(delta, l.weights(), &delta_prev);
      MultiplyActivationGrad(layers_[k - 1].activation(), ws.z[k - 1],
                             &delta_prev);
      delta = std::move(delta_prev);
      delta_prev = Matrix();
    }
  }
}

MlpGrads Mlp::ZeroGrads() const {
  MlpGrads grads;
  grads.reserve(layers_.size());
  for (const Layer& l : layers_) grads.push_back(LayerGrads::ZerosLike(l));
  return grads;
}

std::vector<int32_t> Mlp::Predict(const Matrix& input) const {
  MlpWorkspace ws;
  const Matrix& logits = Forward(input, &ws);
  return SoftmaxCrossEntropy::Predict(logits);
}

std::string Mlp::ArchitectureString() const {
  std::ostringstream os;
  os << input_dim();
  for (const Layer& l : layers_) os << "-" << l.out_dim();
  os << " (" << ActivationToString(layers_.front().activation()) << ")";
  return os.str();
}

}  // namespace sampnn
