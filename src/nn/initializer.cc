#include "src/nn/initializer.h"

#include <cmath>

namespace sampnn {

StatusOr<Initializer> InitializerFromString(const std::string& name) {
  if (name == "he") return Initializer::kHe;
  if (name == "xavier") return Initializer::kXavier;
  if (name == "uniform") return Initializer::kUniform;
  return Status::InvalidArgument("unknown initializer: " + name);
}

const char* InitializerToString(Initializer init) {
  switch (init) {
    case Initializer::kHe:
      return "he";
    case Initializer::kXavier:
      return "xavier";
    case Initializer::kUniform:
      return "uniform";
  }
  return "unknown";
}

Matrix InitializeWeights(Initializer init, size_t fan_in, size_t fan_out,
                         Rng& rng) {
  SAMPNN_CHECK_GT(fan_in, 0u);
  SAMPNN_CHECK_GT(fan_out, 0u);
  switch (init) {
    case Initializer::kHe: {
      const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
      return Matrix::RandomGaussian(fan_in, fan_out, rng, 0.0f, stddev);
    }
    case Initializer::kXavier: {
      const float bound =
          std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
      return Matrix::RandomUniform(fan_in, fan_out, rng, -bound, bound);
    }
    case Initializer::kUniform: {
      const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
      return Matrix::RandomUniform(fan_in, fan_out, rng, -bound, bound);
    }
  }
  return Matrix(fan_in, fan_out);
}

}  // namespace sampnn
