// Multilayer perceptron: the model under study (paper §4.1, Figure 1).
//
// The Mlp owns the layers and provides the exact dense feedforward and
// backpropagation (Eq. 1). Sampling-based trainers in src/core/ reuse the
// same parameters but substitute their own (sparse / approximated) matrix
// products, which is why layers are exposed mutably.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/nn/layer.h"
#include "src/util/deadline.h"
#include "src/util/status.h"

namespace sampnn {

/// Architecture and initialization options for an Mlp.
struct MlpConfig {
  size_t input_dim = 0;              ///< m_i in the paper
  size_t output_dim = 0;             ///< m_o (number of classes)
  std::vector<size_t> hidden_dims;   ///< n per hidden layer (paper uses equal n)
  Activation hidden_activation = Activation::kRelu;  ///< paper default §8.4
  Initializer initializer = Initializer::kHe;
  uint64_t seed = 42;

  /// Convenience: `depth` hidden layers of `width` units each.
  static MlpConfig Uniform(size_t input_dim, size_t output_dim, size_t depth,
                           size_t width);
};

/// Per-pass intermediate storage: z^k (pre-activations) and a^k (activations)
/// for every layer. Reused across steps to avoid reallocation.
struct MlpWorkspace {
  std::vector<Matrix> z;  ///< z[k]: batch x out_dim(k)
  std::vector<Matrix> a;  ///< a[k] = f(z[k]); a.back() holds raw logits
};

/// Gradients for every layer, index-aligned with Mlp::layer(k).
using MlpGrads = std::vector<LayerGrads>;

/// \brief A fully-connected feedforward network.
///
/// The output layer is linear (logits); pair with SoftmaxCrossEntropy for
/// the paper's log-softmax + NLL setting.
class Mlp {
 public:
  /// Validates the config and builds the network. Errors on zero dims.
  static StatusOr<Mlp> Create(const MlpConfig& config);

  /// Number of layers (hidden layers + output layer).
  size_t num_layers() const { return layers_.size(); }
  /// Number of hidden layers (num_layers() - 1).
  size_t num_hidden_layers() const { return layers_.size() - 1; }

  Layer& layer(size_t k) { return layers_[k]; }
  const Layer& layer(size_t k) const { return layers_[k]; }

  size_t input_dim() const { return layers_.front().in_dim(); }
  size_t output_dim() const { return layers_.back().out_dim(); }

  /// Total trainable parameter count.
  size_t num_params() const;

  /// Exact dense forward pass. Fills `ws` (z and a per layer) and returns a
  /// reference to the logits (ws->a.back()).
  const Matrix& Forward(const Matrix& input, MlpWorkspace* ws) const;

  /// Single-sample forward; returns logits. Scratch kept internally-free:
  /// caller supplies the workspace via the batch API if needed repeatedly.
  std::vector<float> ForwardSample(std::span<const float> x) const;

  /// Cancellable dense forward for the serving layer: polls `ctx` between
  /// layers and inside the parallel GEMM dispatch (row-block granularity,
  /// via ScopedKernelCancellation). On OK the logits are in ws->a.back(),
  /// exactly as Forward() leaves them; on kDeadlineExceeded /
  /// kResourceExhausted the workspace contents are unspecified and must be
  /// discarded.
  Status ForwardCancellable(const Matrix& input, const CancelContext& ctx,
                            MlpWorkspace* ws) const;

  /// Exact backpropagation (Eq. 1). `grad_logits` is dL/dlogits from the
  /// loss; `ws` must come from a matching Forward on `input`. Writes layer
  /// gradients into `grads` (shaped on first use) and returns nothing the
  /// caller doesn't already own.
  void Backward(const Matrix& input, const MlpWorkspace& ws,
                const Matrix& grad_logits, MlpGrads* grads) const;

  /// Zero-initialized gradient holder shaped like this network.
  MlpGrads ZeroGrads() const;

  /// Argmax class predictions for a batch.
  std::vector<int32_t> Predict(const Matrix& input) const;

  /// Returns a deep copy with identical parameters.
  Mlp Clone() const { return *this; }

  /// One-line architecture summary, e.g. "784-1000-1000-1000-10 (relu)".
  std::string ArchitectureString() const;

 private:
  explicit Mlp(std::vector<Layer> layers) : layers_(std::move(layers)) {}
  std::vector<Layer> layers_;
};

}  // namespace sampnn
