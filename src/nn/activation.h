// Elementwise activation functions and their derivatives (paper §4.1: f and
// f' in the feedforward chain a^k = f(z^k) and backprop Hadamard terms).

#pragma once

#include <span>
#include <string>

#include "src/tensor/matrix.h"
#include "src/util/status.h"

namespace sampnn {

/// Supported hidden-layer activation functions.
enum class Activation {
  kLinear,   ///< f(z) = z (used by the §7 error-propagation analysis)
  kRelu,     ///< f(z) = max(0, z) (paper default, §8.4)
  kSigmoid,  ///< f(z) = 1 / (1 + e^{-z})
  kTanh,     ///< f(z) = tanh(z)
};

/// Parses "linear" | "relu" | "sigmoid" | "tanh".
StatusOr<Activation> ActivationFromString(const std::string& name);

/// Canonical lowercase name.
const char* ActivationToString(Activation act);

/// Applies f elementwise: a[i] = f(z[i]). `a` may alias `z`.
void ApplyActivation(Activation act, std::span<const float> z,
                     std::span<float> a);

/// In-place activation over a whole matrix.
void ApplyActivation(Activation act, Matrix* m);

/// Derivative from the pre-activation z: d[i] = f'(z[i]). `d` may alias `z`.
void ActivationGradFromZ(Activation act, std::span<const float> z,
                         std::span<float> d);

/// Multiplies `delta` by f'(z) elementwise (the ⊙ f'(z^k) step of Eq. 1).
void MultiplyActivationGrad(Activation act, const Matrix& z, Matrix* delta);

/// Scalar evaluation, useful in tests and the single-sample path.
float ActivationValue(Activation act, float z);
/// Scalar derivative.
float ActivationGradValue(Activation act, float z);

}  // namespace sampnn
