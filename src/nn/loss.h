// Loss functions. The paper's setting (§8.4) is log-softmax output +
// negative log-likelihood, which we fuse into a numerically stable
// softmax-cross-entropy on logits (identical math, one pass).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/status.h"

namespace sampnn {

/// \brief Fused log-softmax + negative log-likelihood over logits.
///
/// Given logits Z (batch x classes) and integer labels, computes the mean
/// NLL loss and, optionally, dL/dZ = (softmax(Z) - onehot(y)) / batch,
/// which is the delta^l seeding Eq. 1's backward recursion.
class SoftmaxCrossEntropy {
 public:
  /// Mean loss over the batch. `labels.size()` must equal `logits.rows()`
  /// and every label must be < logits.cols().
  static StatusOr<double> Loss(const Matrix& logits,
                               std::span<const int32_t> labels);

  /// Mean loss and gradient w.r.t. logits. `grad` is resized/overwritten.
  static StatusOr<double> LossAndGrad(const Matrix& logits,
                                      std::span<const int32_t> labels,
                                      Matrix* grad);

  /// Row-wise log-softmax of `logits` into `out` (may alias).
  static void LogSoftmax(const Matrix& logits, Matrix* out);

  /// Argmax prediction per row.
  static std::vector<int32_t> Predict(const Matrix& logits);
};

/// \brief Mean squared error, used by tests and the linear-network theory
/// experiments.
class MeanSquaredError {
 public:
  /// Mean over all elements of (pred - target)^2 / 2.
  static StatusOr<double> Loss(const Matrix& pred, const Matrix& target);
  /// Loss and gradient dL/dpred = (pred - target) / (batch).
  static StatusOr<double> LossAndGrad(const Matrix& pred, const Matrix& target,
                                      Matrix* grad);
};

}  // namespace sampnn
