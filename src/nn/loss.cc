#include "src/nn/loss.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace sampnn {

namespace {

Status ValidateLabels(const Matrix& logits, std::span<const int32_t> labels) {
  if (labels.size() != logits.rows()) {
    return Status::InvalidArgument(
        "labels size " + std::to_string(labels.size()) + " != batch " +
        std::to_string(logits.rows()));
  }
  for (int32_t y : labels) {
    if (y < 0 || static_cast<size_t>(y) >= logits.cols()) {
      return Status::OutOfRange("label " + std::to_string(y) +
                                " outside [0, " + std::to_string(logits.cols()) +
                                ")");
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<double> SoftmaxCrossEntropy::Loss(const Matrix& logits,
                                           std::span<const int32_t> labels) {
  SAMPNN_RETURN_NOT_OK(ValidateLabels(logits, labels));
  if (logits.rows() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < logits.rows(); ++i) {
    auto row = logits.Row(i);
    const float mx = *std::max_element(row.begin(), row.end());
    double lse = 0.0;
    for (float v : row) lse += std::exp(static_cast<double>(v - mx));
    lse = std::log(lse) + mx;
    total += lse - row[static_cast<size_t>(labels[i])];
  }
  return total / static_cast<double>(logits.rows());
}

StatusOr<double> SoftmaxCrossEntropy::LossAndGrad(
    const Matrix& logits, std::span<const int32_t> labels, Matrix* grad) {
  SAMPNN_CHECK(grad != nullptr);
  SAMPNN_RETURN_NOT_OK(ValidateLabels(logits, labels));
  const size_t batch = logits.rows(), classes = logits.cols();
  if (grad->rows() != batch || grad->cols() != classes) {
    *grad = Matrix(batch, classes);
  }
  if (batch == 0) return 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  double total = 0.0;
  for (size_t i = 0; i < batch; ++i) {
    auto row = logits.Row(i);
    auto grow = grad->Row(i);
    const float mx = *std::max_element(row.begin(), row.end());
    double denom = 0.0;
    for (float v : row) denom += std::exp(static_cast<double>(v - mx));
    const double log_denom = std::log(denom);
    for (size_t j = 0; j < classes; ++j) {
      const double p = std::exp(static_cast<double>(row[j] - mx)) / denom;
      grow[j] = static_cast<float>(p) * inv_batch;
    }
    const auto y = static_cast<size_t>(labels[i]);
    grow[y] -= inv_batch;
    total += log_denom + mx - row[y];
  }
  return total / static_cast<double>(batch);
}

void SoftmaxCrossEntropy::LogSoftmax(const Matrix& logits, Matrix* out) {
  SAMPNN_CHECK(out != nullptr);
  if (out->rows() != logits.rows() || out->cols() != logits.cols()) {
    *out = Matrix(logits.rows(), logits.cols());
  }
  for (size_t i = 0; i < logits.rows(); ++i) {
    auto row = logits.Row(i);
    auto orow = out->Row(i);
    const float mx = *std::max_element(row.begin(), row.end());
    double lse = 0.0;
    for (float v : row) lse += std::exp(static_cast<double>(v - mx));
    const float log_denom = static_cast<float>(std::log(lse)) + mx;
    for (size_t j = 0; j < row.size(); ++j) orow[j] = row[j] - log_denom;
  }
}

std::vector<int32_t> SoftmaxCrossEntropy::Predict(const Matrix& logits) {
  std::vector<int32_t> out(logits.rows());
  for (size_t i = 0; i < logits.rows(); ++i) {
    auto row = logits.Row(i);
    out[i] = static_cast<int32_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

StatusOr<double> MeanSquaredError::Loss(const Matrix& pred,
                                        const Matrix& target) {
  if (pred.rows() != target.rows() || pred.cols() != target.cols()) {
    return Status::InvalidArgument("MSE shape mismatch");
  }
  if (pred.size() == 0) return 0.0;
  double acc = 0.0;
  const float* pd = pred.data();
  const float* td = target.data();
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = static_cast<double>(pd[i]) - td[i];
    acc += d * d;
  }
  return acc / (2.0 * static_cast<double>(pred.size()));
}

StatusOr<double> MeanSquaredError::LossAndGrad(const Matrix& pred,
                                               const Matrix& target,
                                               Matrix* grad) {
  SAMPNN_CHECK(grad != nullptr);
  SAMPNN_ASSIGN_OR_RETURN(double loss, Loss(pred, target));
  if (grad->rows() != pred.rows() || grad->cols() != pred.cols()) {
    *grad = Matrix(pred.rows(), pred.cols());
  }
  const float inv = 1.0f / static_cast<float>(pred.size());
  const float* pd = pred.data();
  const float* td = target.data();
  float* gd = grad->data();
  for (size_t i = 0; i < pred.size(); ++i) gd[i] = (pd[i] - td[i]) * inv;
  return loss;
}

}  // namespace sampnn
