// A fully-connected layer: z = a_prev * W + b, a = f(z) (paper §4.1).
//
// Layers expose their weights mutably because the sampling-based trainers
// (ALSH-approx in particular) bypass the dense forward/backward and operate
// on columns of W directly.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/nn/activation.h"
#include "src/nn/initializer.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"

namespace sampnn {

/// \brief One dense layer with weights W (in x out), bias b (out), and an
/// elementwise activation.
class Layer {
 public:
  /// Constructs with initialized weights and zero bias.
  Layer(size_t in_dim, size_t out_dim, Activation act, Initializer init,
        Rng& rng);

  size_t in_dim() const { return weights_.rows(); }
  size_t out_dim() const { return weights_.cols(); }
  Activation activation() const { return act_; }

  /// Weight matrix; column j is the incoming weight vector of node j
  /// (the paper's W^k_{*j}).
  Matrix& weights() { return weights_; }
  const Matrix& weights() const { return weights_; }

  /// Bias row vector (length out_dim).
  std::span<float> bias() { return bias_; }
  std::span<const float> bias() const { return bias_; }

  /// Dense batch forward: z = input * W + b (rows = samples); activation NOT
  /// applied (callers keep z for Eq. 1's f'(z) term).
  void ForwardLinear(const Matrix& input, Matrix* z) const;

  /// Dense single-sample forward into `z` (length out_dim).
  void ForwardLinear(std::span<const float> x, std::span<float> z) const;

  /// Applies this layer's activation: a = f(z).
  void Activate(const Matrix& z, Matrix* a) const;
  void Activate(std::span<const float> z, std::span<float> a) const;

  /// Number of trainable parameters (weights + bias).
  size_t num_params() const { return weights_.size() + bias_.size(); }

 private:
  Matrix weights_;
  std::vector<float> bias_;
  Activation act_;
};

/// Per-layer gradients produced by a backward pass.
struct LayerGrads {
  Matrix weights;           ///< dL/dW, same shape as Layer::weights()
  std::vector<float> bias;  ///< dL/db, length out_dim

  /// Zero-initialized gradients shaped for `layer`.
  static LayerGrads ZerosLike(const Layer& layer);
  /// Resets to zero without reallocating.
  void SetZero();
};

}  // namespace sampnn
