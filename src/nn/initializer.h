// Weight initialization schemes.

#pragma once

#include <string>

#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

/// Initialization scheme for layer weights.
enum class Initializer {
  kHe,       ///< N(0, sqrt(2 / fan_in)) — pairs with ReLU (paper default)
  kXavier,   ///< U(±sqrt(6 / (fan_in + fan_out)))
  kUniform,  ///< U(±1 / sqrt(fan_in)) — the classic PyTorch Linear default
};

/// Parses "he" | "xavier" | "uniform".
StatusOr<Initializer> InitializerFromString(const std::string& name);

/// Canonical lowercase name.
const char* InitializerToString(Initializer init);

/// Returns an initialized (fan_in x fan_out) weight matrix.
Matrix InitializeWeights(Initializer init, size_t fan_in, size_t fan_out,
                         Rng& rng);

}  // namespace sampnn
