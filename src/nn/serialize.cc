#include "src/nn/serialize.h"

#include <cstring>
#include <fstream>

namespace sampnn {

namespace {

constexpr char kMagic[4] = {'S', 'N', 'N', '1'};

void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

StatusOr<uint64_t> ReadU64(std::ifstream& in) {
  uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) return Status::InvalidArgument("truncated model file");
  return v;
}

}  // namespace

Status SaveMlp(const Mlp& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  out.write(kMagic, 4);
  WriteU64(out, net.num_layers());
  for (size_t k = 0; k < net.num_layers(); ++k) {
    const Layer& layer = net.layer(k);
    WriteU64(out, layer.in_dim());
    WriteU64(out, layer.out_dim());
    WriteU64(out, static_cast<uint64_t>(layer.activation()));
    out.write(reinterpret_cast<const char*>(layer.weights().data()),
              static_cast<std::streamsize>(layer.weights().size() *
                                           sizeof(float)));
    out.write(reinterpret_cast<const char*>(layer.bias().data()),
              static_cast<std::streamsize>(layer.bias().size() *
                                           sizeof(float)));
  }
  out.flush();
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

StatusOr<Mlp> LoadMlp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument(path + ": bad model magic");
  }
  SAMPNN_ASSIGN_OR_RETURN(uint64_t num_layers, ReadU64(in));
  if (num_layers == 0 || num_layers > 1024) {
    return Status::InvalidArgument(path + ": implausible layer count " +
                                   std::to_string(num_layers));
  }
  // Reconstruct via MlpConfig (hidden activation from layer 0), then
  // overwrite the parameters.
  struct RawLayer {
    size_t in, out;
    Activation act;
    std::vector<float> weights, bias;
  };
  std::vector<RawLayer> layers;
  layers.reserve(num_layers);
  size_t prev_out = 0;
  for (uint64_t k = 0; k < num_layers; ++k) {
    SAMPNN_ASSIGN_OR_RETURN(uint64_t in_dim, ReadU64(in));
    SAMPNN_ASSIGN_OR_RETURN(uint64_t out_dim, ReadU64(in));
    SAMPNN_ASSIGN_OR_RETURN(uint64_t act_raw, ReadU64(in));
    if (in_dim == 0 || out_dim == 0) {
      return Status::InvalidArgument(path + ": zero layer dimension");
    }
    if (k > 0 && in_dim != prev_out) {
      return Status::InvalidArgument(path + ": layer dimension chain broken");
    }
    if (act_raw > static_cast<uint64_t>(Activation::kTanh)) {
      return Status::InvalidArgument(path + ": unknown activation id");
    }
    prev_out = out_dim;
    RawLayer layer;
    layer.in = in_dim;
    layer.out = out_dim;
    layer.act = static_cast<Activation>(act_raw);
    layer.weights.resize(in_dim * out_dim);
    in.read(reinterpret_cast<char*>(layer.weights.data()),
            static_cast<std::streamsize>(layer.weights.size() * sizeof(float)));
    layer.bias.resize(out_dim);
    in.read(reinterpret_cast<char*>(layer.bias.data()),
            static_cast<std::streamsize>(layer.bias.size() * sizeof(float)));
    if (!in) return Status::InvalidArgument(path + ": truncated parameters");
    layers.push_back(std::move(layer));
  }

  MlpConfig cfg;
  cfg.input_dim = layers.front().in;
  cfg.output_dim = layers.back().out;
  for (size_t k = 0; k + 1 < layers.size(); ++k) {
    cfg.hidden_dims.push_back(layers[k].out);
  }
  cfg.hidden_activation =
      layers.size() > 1 ? layers.front().act : Activation::kLinear;
  SAMPNN_ASSIGN_OR_RETURN(Mlp net, Mlp::Create(cfg));
  for (size_t k = 0; k < layers.size(); ++k) {
    if (net.layer(k).activation() != layers[k].act) {
      return Status::InvalidArgument(
          path + ": mixed hidden activations are not representable");
    }
    std::memcpy(net.layer(k).weights().data(), layers[k].weights.data(),
                layers[k].weights.size() * sizeof(float));
    std::memcpy(net.layer(k).bias().data(), layers[k].bias.data(),
                layers[k].bias.size() * sizeof(float));
  }
  return net;
}

}  // namespace sampnn
