#include "src/nn/serialize.h"

#include <cstring>
#include <fstream>

#include "src/util/binary_io.h"
#include "src/util/check.h"

namespace sampnn {

namespace {

constexpr char kMagic[4] = {'S', 'N', 'N', '1'};
// Plausibility cap on a single layer dimension: rejects garbage headers
// before any allocation (2^24 units is far beyond the paper's scale).
constexpr uint64_t kMaxLayerDim = uint64_t{1} << 24;

struct RawLayer {
  size_t in, out;
  Activation act;
  std::vector<float> weights, bias;
};

// Reads the "SNN1" image into raw per-layer buffers, validating structure
// and bounds-checking every declared size against the remaining stream.
StatusOr<std::vector<RawLayer>> ReadRawLayers(std::istream& in,
                                              const std::string& context) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument(context + ": bad model magic");
  }
  SAMPNN_ASSIGN_OR_RETURN(uint64_t num_layers, ReadU64(in));
  if (num_layers == 0 || num_layers > 1024) {
    return Status::InvalidArgument(context + ": implausible layer count " +
                                   std::to_string(num_layers));
  }
  std::vector<RawLayer> layers;
  layers.reserve(num_layers);
  size_t prev_out = 0;
  for (uint64_t k = 0; k < num_layers; ++k) {
    SAMPNN_ASSIGN_OR_RETURN(uint64_t in_dim, ReadU64(in));
    SAMPNN_ASSIGN_OR_RETURN(uint64_t out_dim, ReadU64(in));
    SAMPNN_ASSIGN_OR_RETURN(uint64_t act_raw, ReadU64(in));
    if (in_dim == 0 || out_dim == 0) {
      return Status::InvalidArgument(context + ": zero layer dimension");
    }
    if (in_dim > kMaxLayerDim || out_dim > kMaxLayerDim) {
      return Status::InvalidArgument(context + ": implausible layer dimension");
    }
    if (k > 0 && in_dim != prev_out) {
      return Status::InvalidArgument(context +
                                     ": layer dimension chain broken");
    }
    if (act_raw > static_cast<uint64_t>(Activation::kTanh)) {
      return Status::InvalidArgument(context + ": unknown activation id");
    }
    // Bounds-check the declared parameter block against the actual bytes
    // left before allocating (kMaxLayerDim^2 * 4 still fits in u64).
    if (!FitsRemaining(in, in_dim * out_dim + out_dim, sizeof(float))) {
      return Status::InvalidArgument(context +
                                     ": declared parameters past end of file");
    }
    prev_out = out_dim;
    RawLayer layer;
    layer.in = in_dim;
    layer.out = out_dim;
    layer.act = static_cast<Activation>(act_raw);
    layer.weights.resize(in_dim * out_dim);
    SAMPNN_RETURN_NOT_OK(ReadBytes(in, layer.weights.data(),
                                   layer.weights.size() * sizeof(float)));
    layer.bias.resize(out_dim);
    SAMPNN_RETURN_NOT_OK(
        ReadBytes(in, layer.bias.data(), layer.bias.size() * sizeof(float)));
    layers.push_back(std::move(layer));
  }
  return layers;
}

}  // namespace

Status SaveMlp(const Mlp& net, std::ostream& out) {
  out.write(kMagic, 4);
  WriteU64(out, net.num_layers());
  for (size_t k = 0; k < net.num_layers(); ++k) {
    const Layer& layer = net.layer(k);
    WriteU64(out, layer.in_dim());
    WriteU64(out, layer.out_dim());
    WriteU64(out, static_cast<uint64_t>(layer.activation()));
    out.write(reinterpret_cast<const char*>(layer.weights().data()),
              static_cast<std::streamsize>(layer.weights().size() *
                                           sizeof(float)));
    out.write(reinterpret_cast<const char*>(layer.bias().data()),
              static_cast<std::streamsize>(layer.bias().size() *
                                           sizeof(float)));
  }
  if (!out) return Status::IOError("model write failure");
  return Status::OK();
}

Status SaveMlp(const Mlp& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  SAMPNN_RETURN_NOT_OK(SaveMlp(net, out));
  out.flush();
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

StatusOr<Mlp> LoadMlp(std::istream& in) {
  SAMPNN_ASSIGN_OR_RETURN(std::vector<RawLayer> layers,
                          ReadRawLayers(in, "model stream"));
  // Reconstruct via MlpConfig (hidden activation from layer 0), then
  // overwrite the parameters.
  MlpConfig cfg;
  cfg.input_dim = layers.front().in;
  cfg.output_dim = layers.back().out;
  for (size_t k = 0; k + 1 < layers.size(); ++k) {
    cfg.hidden_dims.push_back(layers[k].out);
  }
  cfg.hidden_activation =
      layers.size() > 1 ? layers.front().act : Activation::kLinear;
  SAMPNN_ASSIGN_OR_RETURN(Mlp net, Mlp::Create(cfg));
  for (size_t k = 0; k < layers.size(); ++k) {
    if (net.layer(k).activation() != layers[k].act) {
      return Status::InvalidArgument(
          "mixed hidden activations are not representable");
    }
    std::memcpy(net.layer(k).weights().data(), layers[k].weights.data(),
                layers[k].weights.size() * sizeof(float));
    std::memcpy(net.layer(k).bias().data(), layers[k].bias.data(),
                layers[k].bias.size() * sizeof(float));
  }
  return net;
}

StatusOr<Mlp> LoadMlp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  auto result = LoadMlp(in);
  if (!result.ok()) {
    return Status(result.status().code(),
                  path + ": " + result.status().message());
  }
  return result;
}

Status LoadMlpParamsInto(std::istream& in, Mlp* net) {
  SAMPNN_CHECK(net != nullptr);
  SAMPNN_ASSIGN_OR_RETURN(std::vector<RawLayer> layers,
                          ReadRawLayers(in, "model stream"));
  if (layers.size() != net->num_layers()) {
    return Status::InvalidArgument(
        "checkpointed model has " + std::to_string(layers.size()) +
        " layers, network has " + std::to_string(net->num_layers()));
  }
  for (size_t k = 0; k < layers.size(); ++k) {
    const Layer& layer = net->layer(k);
    if (layers[k].in != layer.in_dim() || layers[k].out != layer.out_dim() ||
        layers[k].act != layer.activation()) {
      return Status::InvalidArgument("checkpointed layer " +
                                     std::to_string(k) +
                                     " does not match network architecture");
    }
  }
  for (size_t k = 0; k < layers.size(); ++k) {
    std::memcpy(net->layer(k).weights().data(), layers[k].weights.data(),
                layers[k].weights.size() * sizeof(float));
    std::memcpy(net->layer(k).bias().data(), layers[k].bias.data(),
                layers[k].bias.size() * sizeof(float));
  }
  return Status::OK();
}

}  // namespace sampnn
