#include "src/nn/layer.h"

#include <algorithm>

#include "src/tensor/kernels.h"

namespace sampnn {

Layer::Layer(size_t in_dim, size_t out_dim, Activation act, Initializer init,
             Rng& rng)
    : weights_(InitializeWeights(init, in_dim, out_dim, rng)),
      bias_(out_dim, 0.0f),
      act_(act) {}

void Layer::ForwardLinear(const Matrix& input, Matrix* z) const {
  SAMPNN_CHECK(z != nullptr);
  SAMPNN_CHECK_EQ(input.cols(), in_dim());
  if (z->rows() != input.rows() || z->cols() != out_dim()) {
    *z = Matrix(input.rows(), out_dim());
  }
  Gemm(input, weights_, z);
  AddRowVector(z, bias_);
}

void Layer::ForwardLinear(std::span<const float> x, std::span<float> z) const {
  SAMPNN_DCHECK_EQ(x.size(), in_dim());
  SAMPNN_DCHECK_EQ(z.size(), out_dim());
  VecMat(x, weights_, bias_, z);
}

void Layer::Activate(const Matrix& z, Matrix* a) const {
  SAMPNN_CHECK(a != nullptr);
  if (a->rows() != z.rows() || a->cols() != z.cols()) {
    *a = Matrix(z.rows(), z.cols());
  }
  ApplyActivation(act_, std::span<const float>(z.data(), z.size()),
                  std::span<float>(a->data(), a->size()));
}

void Layer::Activate(std::span<const float> z, std::span<float> a) const {
  SAMPNN_DCHECK_EQ(z.size(), a.size());
  ApplyActivation(act_, z, a);
}

LayerGrads LayerGrads::ZerosLike(const Layer& layer) {
  LayerGrads g;
  g.weights = Matrix(layer.in_dim(), layer.out_dim());
  g.bias.assign(layer.out_dim(), 0.0f);
  return g;
}

void LayerGrads::SetZero() {
  weights.SetZero();
  std::fill(bias.begin(), bias.end(), 0.0f);
}

}  // namespace sampnn
