// Process-wide metrics registry: counters, gauges, and log2-bucketed
// histograms. Registration (name -> metric) is a mutex-guarded cold path;
// every hot-path operation (Add / Set / Observe) is a handful of relaxed
// atomic operations on a metric reference the caller obtained once and
// cached, so concurrent writers never serialize on a lock.
//
// Usage at an instrumentation site:
//
//   if (TelemetryEnabled()) {
//     static Counter& flops =
//         MetricsRegistry::Get().GetCounter("tensor.gemm.flops");
//     flops.Add(2 * m * n * k);
//   }
//
// The registry owns the metrics and never deletes them, so cached references
// stay valid for the life of the process. Names are interned: the metric
// stores its name once and exposes it as a string_view.

#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/sync.h"

namespace sampnn {

class MetricsRegistry;

/// Monotonically increasing event/quantity count.
class Counter {
 public:
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::string_view name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, active fraction, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // CAS loop instead of atomic<double>::fetch_add for portability.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }
  std::string_view name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0.0};
};

class Histogram;

/// Point-in-time copy of a Histogram's atomics, read lock-free. Snapshots
/// support delta-merge (what happened *between* two snapshots) and a
/// log2-bucket quantile estimate over whatever the snapshot holds — the
/// building blocks of sliding-window SLO tracking (DESIGN.md §12).
struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = 33;

  uint64_t buckets[kNumBuckets] = {};
  uint64_t overflow = 0;  ///< observations above the top finite bucket
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< 0 when empty
  uint64_t max = 0;

  /// Counts accumulated since `earlier` (same histogram, taken earlier).
  /// Per-field saturating subtraction, so a Reset() between the two
  /// snapshots yields an empty delta instead of wrapping. min/max are not
  /// windowable from totals; the delta keeps this snapshot's values.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;

  /// Adds `other`'s bucket counts into this snapshot (window merge).
  void Merge(const HistogramSnapshot& other);

  /// Estimated value at quantile `q` in [0, 1]: walks the log2 buckets to
  /// the target rank and interpolates linearly inside the bucket, clamped
  /// to [min, max]. Overflow observations sit above every finite bucket
  /// and resolve to `max`. Returns 0 for an empty snapshot.
  double Quantile(double q) const;
};

/// Lock-free histogram over non-negative integer values with power-of-two
/// buckets: bucket 0 holds zeros, bucket i >= 1 holds [2^(i-1), 2^i).
/// Observations at or above 2^(kNumBuckets-1) do not fit any finite bucket
/// and are counted in a separate overflow bucket instead of being silently
/// clamped — sum(BucketCount) + OverflowCount() == Count() always holds,
/// and the exporter surfaces the overflow so a saturating metric is
/// detectable instead of masquerading as a full top bucket.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  void Observe(uint64_t value) {
    if (Overflows(value)) {
      overflow_.fetch_add(1, std::memory_order_relaxed);
    } else {
      buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    }
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    UpdateMin(value);
    UpdateMax(value);
  }

  /// Observe() plus exemplar retention: the largest observation's `id`
  /// (e.g. a request id) is kept so an operator can jump from "p99 is bad"
  /// to the specific slowest request. Value is clamped to 32 bits for the
  /// packed compare-and-swap; ids wrap at 32 bits (documented best-effort).
  void ObserveWithExemplar(uint64_t value, uint64_t id) {
    Observe(value);
    const uint64_t packed =
        (std::min<uint64_t>(value, 0xffffffffu) << 32) | (id & 0xffffffffu);
    uint64_t cur = exemplar_.load(std::memory_order_relaxed);
    while ((packed >> 32) >= (cur >> 32) && packed != cur &&
           !exemplar_.compare_exchange_weak(cur, packed,
                                            std::memory_order_relaxed)) {
    }
  }

  /// Largest observation seen via ObserveWithExemplar (0 when none).
  uint64_t ExemplarValue() const {
    return exemplar_.load(std::memory_order_relaxed) >> 32;
  }
  /// The id recorded with the largest observation.
  uint64_t ExemplarId() const {
    return exemplar_.load(std::memory_order_relaxed) & 0xffffffffu;
  }
  /// True when ObserveWithExemplar has recorded at least one exemplar.
  bool HasExemplar() const {
    return exemplar_.load(std::memory_order_relaxed) != 0;
  }

  /// Lock-free point-in-time copy. Individual fields are read relaxed, so
  /// a snapshot taken concurrently with writers may be off by in-flight
  /// observations — fine for monitoring, never for conservation proofs.
  HistogramSnapshot Snapshot() const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  /// Observations above the top finite bucket (see class comment).
  uint64_t OverflowCount() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t c = Count();
    return c == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(c);
  }
  /// 0 when empty.
  uint64_t Min() const {
    return Count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Smallest value belonging to bucket `i`.
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }
  static size_t BucketIndex(uint64_t value) {
    if (value == 0) return 0;
    const size_t width = static_cast<size_t>(std::bit_width(value));
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }
  /// True when `value` is too large for any finite bucket and Observe()
  /// will count it in the overflow bucket.
  static bool Overflows(uint64_t value) {
    return value != 0 &&
           static_cast<size_t>(std::bit_width(value)) >= kNumBuckets;
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    overflow_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<uint64_t>::max(),
               std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    exemplar_.store(0, std::memory_order_relaxed);
  }

  std::string_view name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void UpdateMin(uint64_t v) {
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void UpdateMax(uint64_t v) {
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::string name_;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> overflow_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{std::numeric_limits<uint64_t>::max()};
  std::atomic<uint64_t> max_{0};
  // Packed (value:32 | id:32) exemplar of the largest observation; 0 = none.
  std::atomic<uint64_t> exemplar_{0};
};

/// \brief Owns all metrics, keyed by name within each kind.
///
/// Get*() registers on first use and always returns the same reference for a
/// given name, so call sites may cache it in a function-local static.
class MetricsRegistry {
 public:
  /// The process-wide registry (leaked intentionally: cached metric
  /// references must outlive every static destructor).
  static MetricsRegistry& Get();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Sorted snapshots for export (pointers remain owned by the registry).
  std::vector<const Counter*> Counters() const;
  std::vector<const Gauge*> Gauges() const;
  std::vector<const Histogram*> Histograms() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  /// Zeroes every metric (tests and per-run isolation). Does not unregister.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  // Registration-path lock. Ranked near the leaves: instrumentation sites
  // register metrics while holding subsystem locks (threadpool.pool,
  // serve.queue), never the other way around.
  mutable Mutex mu_{"telemetry.metrics", lockrank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SAMPNN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SAMPNN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SAMPNN_GUARDED_BY(mu_);
};

}  // namespace sampnn
