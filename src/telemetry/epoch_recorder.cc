#include "src/telemetry/epoch_recorder.h"

#include <cstdio>
#include <sstream>

#include "src/telemetry/telemetry.h"
#include "src/util/check.h"

namespace sampnn {

void StderrSink::DoWrite(std::string_view line) {
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

StatusOr<std::unique_ptr<FileSink>> FileSink::Open(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open telemetry file for writing: " + path);
  }
  return std::unique_ptr<FileSink>(new FileSink(std::move(out)));
}

void FileSink::DoWrite(std::string_view line) {
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  out_.put('\n');
}

Status FileSink::Flush() {
  out_.flush();
  if (!out_) return Status::IOError("telemetry stream error on flush");
  return Status::OK();
}

StatusOr<std::unique_ptr<TelemetrySink>> MakeSink(const std::string& spec) {
  if (spec == "null") return std::unique_ptr<TelemetrySink>(new NullSink());
  if (spec == "stderr") {
    return std::unique_ptr<TelemetrySink>(new StderrSink());
  }
  SAMPNN_ASSIGN_OR_RETURN(std::unique_ptr<FileSink> sink,
                          FileSink::Open(spec));
  return std::unique_ptr<TelemetrySink>(std::move(sink));
}

std::string EpochTelemetryToJson(const EpochTelemetry& rec) {
  std::ostringstream os;
  os.precision(10);
  os << "{\"run\":\"" << JsonEscape(rec.run) << "\",\"method\":\""
     << JsonEscape(rec.method) << "\",\"architecture\":\""
     << JsonEscape(rec.architecture) << "\",\"epoch\":" << rec.epoch
     << ",\"train_loss\":" << rec.train_loss
     << ",\"test_accuracy\":" << rec.test_accuracy
     << ",\"validation_accuracy\":" << rec.validation_accuracy
     << ",\"epoch_seconds\":" << rec.epoch_seconds
     << ",\"forward_seconds\":" << rec.forward_seconds
     << ",\"backward_seconds\":" << rec.backward_seconds
     << ",\"sampling_seconds\":" << rec.sampling_seconds
     << ",\"rebuild_seconds\":" << rec.rebuild_seconds
     << ",\"parallel_seconds\":" << rec.parallel_seconds
     << ",\"active_node_fraction\":" << rec.active_node_fraction
     << ",\"hash_rebuilds\":" << rec.hash_rebuilds
     << ",\"alsh_avg_bucket_occupancy\":" << rec.alsh_avg_bucket_occupancy
     << ",\"alsh_max_bucket_occupancy\":" << rec.alsh_max_bucket_occupancy
     << ",\"alsh_nonempty_buckets\":" << rec.alsh_nonempty_buckets
     << ",\"mc_batch_samples\":" << rec.mc_batch_samples
     << ",\"mc_delta_samples\":" << rec.mc_delta_samples
     << ",\"rollbacks\":" << rec.rollbacks
     << ",\"nan_batches\":" << rec.nan_batches
     << ",\"alsh_dense_fallbacks\":" << rec.alsh_dense_fallbacks
     << ",\"gemm_flops\":" << rec.gemm_flops
     << ",\"gemm_flops_realized\":" << rec.gemm_flops_realized
     << ",\"sparse_flops\":" << rec.sparse_flops
     << ",\"gemm_parallel_dispatches\":" << rec.gemm_parallel_dispatches
     << ",\"gemm_serial_dispatches\":" << rec.gemm_serial_dispatches
     << ",\"gemm_pack_b_panels\":" << rec.gemm_pack_b_panels
     << ",\"gemm_pack_a_panels\":" << rec.gemm_pack_a_panels
     << ",\"gemm_block_tasks\":" << rec.gemm_block_tasks
     << ",\"drift_score\":" << rec.drift_score
     << ",\"drift_trips\":" << rec.drift_trips
     << ",\"lifecycle_promotions\":" << rec.lifecycle_promotions
     << ",\"lifecycle_rollbacks\":" << rec.lifecycle_rollbacks
     << ",\"lifecycle_diverged\":" << rec.lifecycle_diverged
     << ",\"rss_bytes\":" << rec.rss_bytes << "}";
  return os.str();
}

EpochRecorder::EpochRecorder(std::unique_ptr<TelemetrySink> sink)
    : sink_(std::move(sink)) {
  SAMPNN_CHECK(sink_ != nullptr);
}

void EpochRecorder::SetRunLabel(std::string label) {
  run_label_ = std::move(label);
}

void EpochRecorder::Record(const EpochTelemetry& rec) {
  if (!TelemetryEnabled()) return;
  std::string line;
  if (rec.run.empty() && !run_label_.empty()) {
    EpochTelemetry labeled = rec;
    labeled.run = run_label_;
    line = EpochTelemetryToJson(labeled);
  } else {
    line = EpochTelemetryToJson(rec);
  }
  MutexLock lock(mu_);
  sink_->WriteLine(line);
}

namespace {
std::atomic<EpochRecorder*> g_epoch_recorder{nullptr};
}  // namespace

void SetGlobalEpochRecorder(EpochRecorder* recorder) {
  g_epoch_recorder.store(recorder, std::memory_order_release);
}

EpochRecorder* GlobalEpochRecorder() {
  return g_epoch_recorder.load(std::memory_order_acquire);
}

}  // namespace sampnn
