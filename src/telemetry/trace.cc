#include "src/telemetry/trace.h"

#include <atomic>
#include <fstream>
#include <sstream>

namespace sampnn {

TraceRecorder& TraceRecorder::Get() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::TraceRecorder()
    : capacity_(1 << 16), epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceRecorder::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

uint32_t TraceRecorder::CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceRecorder::Append(const char* name, int64_t ts_us, int64_t dur_us) {
  TraceEvent event;
  event.name = name;
  event.tid = CurrentThreadId();
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out.assign(ring_.begin(), ring_.end());
  } else {
    // Full ring: next_ is simultaneously the oldest slot.
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(next_));
  }
  return out;
}

size_t TraceRecorder::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

uint64_t TraceRecorder::total_appended() const {
  MutexLock lock(mu_);
  return total_;
}

uint64_t TraceRecorder::dropped() const {
  MutexLock lock(mu_);
  return total_ - ring_.size();
}

void TraceRecorder::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

void TraceRecorder::SetCapacity(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity > 0 ? capacity : 1;
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  total_ = 0;
}

std::string TraceRecorder::ToJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << (i ? "," : "") << "{\"name\":\"" << JsonEscape(e.name)
       << "\",\"cat\":\"sampnn\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us << "}";
  }
  os << "]}";
  return os.str();
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open trace file for writing: " + path);
  }
  out << ToJson();
  out.flush();
  if (!out) return Status::IOError("trace stream error: " + path);
  return Status::OK();
}

}  // namespace sampnn
