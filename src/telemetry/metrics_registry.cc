#include "src/telemetry/metrics_registry.h"

#include <sstream>

#include "src/telemetry/telemetry.h"

namespace sampnn {

namespace {
uint64_t SatSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }
}  // namespace

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    delta.buckets[i] = SatSub(buckets[i], earlier.buckets[i]);
  }
  delta.overflow = SatSub(overflow, earlier.overflow);
  delta.count = SatSub(count, earlier.count);
  delta.sum = SatSub(sum, earlier.sum);
  // min/max cannot be recovered for a window from lifetime totals; keep the
  // newer snapshot's values as the best available clamp for Quantile().
  delta.min = min;
  delta.max = max;
  return delta;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  overflow += other.overflow;
  count += other.count;
  sum += other.sum;
  if (other.count > 0) {
    if (count == other.count || other.min < min) min = other.min;
    max = std::max(max, other.max);
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly: answer them without interpolating.
  if (q == 0.0) return static_cast<double>(min);
  if (q == 1.0) return static_cast<double>(max);
  // Rank of the target observation (1-based, ceil so q=1 hits the last).
  const double target = std::max(1.0, q * static_cast<double>(count));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i == 0) return 0.0;  // the zero bucket holds exact zeros
    const double lo =
        static_cast<double>(Histogram::BucketLowerBound(i));
    const double hi = lo * 2.0;
    const double frac =
        (target - before) / static_cast<double>(buckets[i]);
    double estimate = lo + frac * (hi - lo);
    // Clamp into the observed range so a sparse top bucket cannot report
    // a value beyond anything actually seen.
    if (max > 0) estimate = std::min(estimate, static_cast<double>(max));
    if (min > 0) estimate = std::max(estimate, static_cast<double>(min));
    return estimate;
  }
  // Target rank lies in the overflow region: everything there is at least
  // 2^(kNumBuckets-1); max is the only honest point estimate.
  return static_cast<double>(max);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.overflow = overflow_.load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = Min();
  snap.max = Max();
  return snap;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(
                                             new Histogram(std::string(name))))
             .first;
  }
  return *it->second;
}

std::vector<const Counter*> MetricsRegistry::Counters() const {
  MutexLock lock(mu_);
  std::vector<const Counter*> out;
  out.reserve(counters_.size());
  for (const auto& [_, c] : counters_) out.push_back(c.get());
  return out;
}

std::vector<const Gauge*> MetricsRegistry::Gauges() const {
  MutexLock lock(mu_);
  std::vector<const Gauge*> out;
  out.reserve(gauges_.size());
  for (const auto& [_, g] : gauges_) out.push_back(g.get());
  return out;
}

std::vector<const Histogram*> MetricsRegistry::Histograms() const {
  MutexLock lock(mu_);
  std::vector<const Histogram*> out;
  out.reserve(histograms_.size());
  for (const auto& [_, h] : histograms_) out.push_back(h.get());
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const Counter* c : Counters()) {
    os << (first ? "" : ",") << '"' << JsonEscape(c->name()) << "\":"
       << c->Value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const Gauge* g : Gauges()) {
    os << (first ? "" : ",") << '"' << JsonEscape(g->name()) << "\":"
       << g->Value();
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const Histogram* h : Histograms()) {
    os << (first ? "" : ",") << '"' << JsonEscape(h->name())
       << "\":{\"count\":" << h->Count() << ",\"sum\":" << h->Sum()
       << ",\"min\":" << h->Min() << ",\"max\":" << h->Max()
       << ",\"mean\":" << h->Mean() << ",\"overflow\":" << h->OverflowCount()
       << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

}  // namespace sampnn
