#include "src/telemetry/metrics_registry.h"

#include <sstream>

#include "src/telemetry/telemetry.h"

namespace sampnn {

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(
                                             new Histogram(std::string(name))))
             .first;
  }
  return *it->second;
}

std::vector<const Counter*> MetricsRegistry::Counters() const {
  MutexLock lock(mu_);
  std::vector<const Counter*> out;
  out.reserve(counters_.size());
  for (const auto& [_, c] : counters_) out.push_back(c.get());
  return out;
}

std::vector<const Gauge*> MetricsRegistry::Gauges() const {
  MutexLock lock(mu_);
  std::vector<const Gauge*> out;
  out.reserve(gauges_.size());
  for (const auto& [_, g] : gauges_) out.push_back(g.get());
  return out;
}

std::vector<const Histogram*> MetricsRegistry::Histograms() const {
  MutexLock lock(mu_);
  std::vector<const Histogram*> out;
  out.reserve(histograms_.size());
  for (const auto& [_, h] : histograms_) out.push_back(h.get());
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const Counter* c : Counters()) {
    os << (first ? "" : ",") << '"' << JsonEscape(c->name()) << "\":"
       << c->Value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const Gauge* g : Gauges()) {
    os << (first ? "" : ",") << '"' << JsonEscape(g->name()) << "\":"
       << g->Value();
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const Histogram* h : Histograms()) {
    os << (first ? "" : ",") << '"' << JsonEscape(h->name())
       << "\":{\"count\":" << h->Count() << ",\"sum\":" << h->Sum()
       << ",\"min\":" << h->Min() << ",\"max\":" << h->Max()
       << ",\"mean\":" << h->Mean() << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

}  // namespace sampnn
