// Per-epoch training telemetry, emitted as JSONL (one JSON object per line)
// through a pluggable sink. The schema is documented in DESIGN.md §7 and
// validated by scripts/check_telemetry.py; every field is flat so the lines
// load directly into pandas/jq.

#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>

#include "src/util/status.h"
#include "src/util/sync.h"

namespace sampnn {

/// \brief Destination for telemetry JSONL lines. WriteLine counts every
/// line, so tests can assert that a disabled run wrote nothing.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  void WriteLine(std::string_view line) {
    lines_.fetch_add(1, std::memory_order_relaxed);
    DoWrite(line);
  }
  uint64_t lines_written() const {
    return lines_.load(std::memory_order_relaxed);
  }
  virtual Status Flush() { return Status::OK(); }

 protected:
  /// `line` excludes the trailing newline; the sink appends it.
  virtual void DoWrite(std::string_view line) = 0;

 private:
  std::atomic<uint64_t> lines_{0};
};

/// Discards everything (still counts lines).
class NullSink final : public TelemetrySink {
 protected:
  void DoWrite(std::string_view /*line*/) override {}
};

/// Writes lines to stderr.
class StderrSink final : public TelemetrySink {
 protected:
  void DoWrite(std::string_view line) override;
};

/// Appends lines to a file (truncated on open).
class FileSink final : public TelemetrySink {
 public:
  static StatusOr<std::unique_ptr<FileSink>> Open(const std::string& path);
  Status Flush() override;

 protected:
  void DoWrite(std::string_view line) override;

 private:
  explicit FileSink(std::ofstream out) : out_(std::move(out)) {}
  std::ofstream out_;
};

/// "null" -> NullSink, "stderr" -> StderrSink, anything else -> FileSink.
StatusOr<std::unique_ptr<TelemetrySink>> MakeSink(const std::string& spec);

/// One epoch of one training run. Fields that do not apply to a method keep
/// their zero/negative defaults and are still emitted (flat schema).
struct EpochTelemetry {
  std::string run;           ///< harness label (bench name)
  std::string method;        ///< trainer name ("standard", "alsh", ...)
  std::string architecture;  ///< e.g. "784-128-128-10"
  size_t epoch = 0;          ///< 1-based

  double train_loss = 0.0;
  double test_accuracy = 0.0;
  double validation_accuracy = 0.0;
  double epoch_seconds = 0.0;

  // Phase-split seconds for this epoch (deltas of the trainer SplitTimer).
  // `sampling` is a sub-phase nested inside forward/backward, so the four
  // do not sum to epoch_seconds.
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  double sampling_seconds = 0.0;
  double rebuild_seconds = 0.0;
  double parallel_seconds = 0.0;

  // ALSH-approx: realized sparsity and index health (cumulative-so-far).
  double active_node_fraction = -1.0;  ///< < 0 when not applicable
  uint64_t hash_rebuilds = 0;
  double alsh_avg_bucket_occupancy = 0.0;
  uint64_t alsh_max_bucket_occupancy = 0;
  uint64_t alsh_nonempty_buckets = 0;

  // MC-approx: realized sample counts (cumulative-so-far).
  uint64_t mc_batch_samples = 0;
  uint64_t mc_delta_samples = 0;

  // Resilience (cumulative-so-far within the run): sentinel-triggered
  // rollbacks, batches whose loss/grad scan found a non-finite value, and
  // ALSH empty-probe dense fallbacks.
  uint64_t rollbacks = 0;
  uint64_t nan_batches = 0;
  uint64_t alsh_dense_fallbacks = 0;

  // FLOPs charged to the dense gemm family / the sparse active-set kernels
  // during this epoch (deltas of the registry counters). `gemm_flops` is
  // the nominal 2*m*n*k cost; `gemm_flops_realized` subtracts the work the
  // input-sparsity shortcuts skipped (VecMat zero rows), so the gap is the
  // FLOP count dropout actually saved.
  uint64_t gemm_flops = 0;
  uint64_t gemm_flops_realized = 0;
  uint64_t sparse_flops = 0;

  // Dense GEMM dispatch fate during this epoch (deltas): products large
  // enough to be partitioned across the kernel pool vs run serially.
  uint64_t gemm_parallel_dispatches = 0;
  uint64_t gemm_serial_dispatches = 0;

  // Blocked-nest activity during this epoch (deltas): shared B panels
  // packed (one per Kc x Nc block), thread-local A blocks packed (re-packs
  // across workers included), and microtile-sweep grid tasks executed. The
  // pack ratios expose blocking efficiency — e.g. a_panels / b_panels
  // growing with worker count means the A-pack cache is missing.
  uint64_t gemm_pack_b_panels = 0;
  uint64_t gemm_pack_a_panels = 0;
  uint64_t gemm_block_tasks = 0;

  // Continuous-lifecycle loop (cumulative-so-far within the run; zero for
  // plain training runs, which never drift-detect or promote). A lifecycle
  // "epoch" is one fine-tune round; `drift_score` is the detector's
  // aggregate z at the end of the round.
  double drift_score = 0.0;
  uint64_t drift_trips = 0;
  uint64_t lifecycle_promotions = 0;
  uint64_t lifecycle_rollbacks = 0;
  uint64_t lifecycle_diverged = 0;

  uint64_t rss_bytes = 0;  ///< process RSS at epoch end
};

/// Serializes `rec` to one JSON line (no trailing newline).
std::string EpochTelemetryToJson(const EpochTelemetry& rec);

/// \brief Serializes EpochTelemetry records to a sink as JSONL.
///
/// Record() is a no-op while telemetry is disabled, so a recorder can stay
/// installed permanently at zero cost.
class EpochRecorder {
 public:
  explicit EpochRecorder(std::unique_ptr<TelemetrySink> sink);

  /// Label stamped into the "run" field of every record (bench name).
  void SetRunLabel(std::string label);
  const std::string& run_label() const { return run_label_; }

  void Record(const EpochTelemetry& rec);

  uint64_t records_written() const { return sink_->lines_written(); }
  Status Flush() { return sink_->Flush(); }
  TelemetrySink& sink() { return *sink_; }

 private:
  std::unique_ptr<TelemetrySink> sink_;
  std::string run_label_;
  // Serializes Record() lines. The sink pointer itself is set once at
  // construction; only WriteLine needs mutual exclusion.
  Mutex mu_{"telemetry.epoch_recorder", lockrank::kEpochRecorder};
};

/// Installs/reads the process-wide default recorder used by RunExperiment
/// when the config does not name one. Borrowed pointer; pass nullptr to
/// uninstall before the recorder dies.
void SetGlobalEpochRecorder(EpochRecorder* recorder);
EpochRecorder* GlobalEpochRecorder();

}  // namespace sampnn
