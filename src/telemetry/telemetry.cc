#include "src/telemetry/telemetry.h"

#include <cstdio>

#include "src/util/env.h"

namespace sampnn {

namespace telemetry_internal {
std::atomic<bool> g_enabled{false};
}  // namespace telemetry_internal

void SetTelemetryEnabled(bool enabled) {
#ifdef SAMPNN_TELEMETRY_DISABLED
  (void)enabled;
#else
  telemetry_internal::g_enabled.store(enabled, std::memory_order_relaxed);
#endif
}

bool InitTelemetryFromEnv() {
  const std::string v = GetEnvOr("SAMPNN_TELEMETRY", "");
  const bool on = v == "1" || v == "true" || v == "on";
  SetTelemetryEnabled(on);
  return TelemetryEnabled();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace sampnn
