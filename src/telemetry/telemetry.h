// Process-wide telemetry switch. Every instrumentation hook in the library
// (trace spans, metric increments, per-epoch records) is guarded by
// TelemetryEnabled(): a single relaxed atomic load plus a predictable branch,
// so the disabled cost on hot paths is negligible. Building with
// -DSAMPNN_TELEMETRY=OFF removes even that load (TelemetryEnabled() becomes
// a constant false and the toggles become no-ops).

#pragma once

#include <atomic>
#include <string>
#include <string_view>

namespace sampnn {

/// True when telemetry instrumentation was compiled in (the default).
constexpr bool TelemetryCompiled() {
#ifdef SAMPNN_TELEMETRY_DISABLED
  return false;
#else
  return true;
#endif
}

namespace telemetry_internal {
extern std::atomic<bool> g_enabled;
}  // namespace telemetry_internal

/// Hot-path guard for all instrumentation. Relaxed load: enabling mid-run
/// takes effect "soon" on other threads, which is all telemetry needs.
inline bool TelemetryEnabled() {
#ifdef SAMPNN_TELEMETRY_DISABLED
  return false;
#else
  return telemetry_internal::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// Turns instrumentation on or off at runtime. No-op (stays off) when
/// telemetry was compiled out.
void SetTelemetryEnabled(bool enabled);

/// Applies the SAMPNN_TELEMETRY environment variable ("1"/"true"/"on" enable)
/// and returns the resulting state. Call explicitly from main-like entry
/// points; nothing reads the environment during static initialization.
bool InitTelemetryFromEnv();

/// Escapes `s` for embedding inside a JSON string literal (the surrounding
/// quotes are the caller's).
std::string JsonEscape(std::string_view s);

}  // namespace sampnn
