// chrome://tracing span recorder. Spans are complete events ("ph":"X") held
// in a fixed-capacity ring buffer: recording never allocates after the first
// SetCapacity/Append, old events are overwritten when the ring wraps, and
// the buffer is serialized on demand to the Chrome Trace Event JSON format
// (load the file in chrome://tracing or https://ui.perfetto.dev).
//
// TraceSpan / PhaseScope are the instrumentation entry points. When
// telemetry is disabled a TraceSpan costs one relaxed atomic load and no
// clock read.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/metrics/split_timer.h"
#include "src/obs/phase_sampler.h"
#include "src/telemetry/telemetry.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace sampnn {

/// One completed span. `name` must have static storage duration (phase
/// labels are string literals), so events are 24 bytes and appends never
/// copy strings.
struct TraceEvent {
  const char* name = nullptr;
  uint32_t tid = 0;     ///< small per-thread id (1, 2, ...), stable per thread
  int64_t ts_us = 0;    ///< microseconds since the recorder's epoch
  int64_t dur_us = 0;
};

/// \brief Process-wide ring buffer of trace spans.
class TraceRecorder {
 public:
  /// The process-wide recorder (leaked intentionally, like MetricsRegistry).
  static TraceRecorder& Get();

  /// Microseconds since the recorder's epoch (process start, steady clock).
  int64_t NowUs() const;

  /// Appends one completed span, overwriting the oldest when full.
  void Append(const char* name, int64_t ts_us, int64_t dur_us);

  /// Events currently retained, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Retained / lifetime-appended counts. dropped() = overwritten by wraps.
  size_t size() const;
  uint64_t total_appended() const;
  uint64_t dropped() const;

  void Clear();

  /// Resizes the ring (default 65536 events) and clears it.
  void SetCapacity(size_t capacity);

  /// Chrome Trace Event JSON ({"traceEvents":[...]}), oldest span first.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  /// Small dense id for the calling thread (1-based, assigned on first use).
  static uint32_t CurrentThreadId();

 private:
  TraceRecorder();

  mutable Mutex mu_{"telemetry.trace", lockrank::kTrace};
  // capacity_ slots, valid entries = count
  std::vector<TraceEvent> ring_ SAMPNN_GUARDED_BY(mu_);
  size_t capacity_ SAMPNN_GUARDED_BY(mu_);
  size_t next_ SAMPNN_GUARDED_BY(mu_) = 0;  // ring insertion point
  uint64_t total_ SAMPNN_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point epoch_;  // const after construction
};

/// RAII span: records [construction, destruction) under `name` when
/// telemetry is enabled at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TelemetryEnabled()) {
      name_ = name;
      start_us_ = TraceRecorder::Get().NowUs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      TraceRecorder& recorder = TraceRecorder::Get();
      recorder.Append(name_, start_us_, recorder.NowUs() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_us_ = 0;
};

/// Compatibility shim for the trainer hot paths: charges a SplitTimer phase
/// (always, preserving the Tables 3-4 accounting), advertises the phase in
/// the worker phase table (always — /statusz must work with telemetry off),
/// and emits a trace span (only when telemetry is enabled). Drop-in
/// replacement for SplitTimer::Scope.
class PhaseScope {
 public:
  PhaseScope(SplitTimer* timer, const char* phase)
      : scope_(timer, phase), tag_(phase), span_(phase) {}
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  SplitTimer::Scope scope_;
  ScopedPhase tag_;
  TraceSpan span_;
};

}  // namespace sampnn
