#include "src/metrics/confusion_matrix.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "src/nn/loss.h"
#include "src/util/check.h"
#include "src/util/csv.h"

namespace sampnn {

ConfusionMatrix::ConfusionMatrix(size_t num_classes)
    : n_(num_classes), counts_(num_classes * num_classes, 0) {
  SAMPNN_CHECK_GT(num_classes, 0u);
}

Status ConfusionMatrix::Add(int32_t truth, int32_t prediction) {
  if (truth < 0 || static_cast<size_t>(truth) >= n_) {
    return Status::OutOfRange("confusion: truth " + std::to_string(truth));
  }
  if (prediction < 0 || static_cast<size_t>(prediction) >= n_) {
    return Status::OutOfRange("confusion: prediction " +
                              std::to_string(prediction));
  }
  ++counts_[static_cast<size_t>(truth) * n_ + static_cast<size_t>(prediction)];
  return Status::OK();
}

Status ConfusionMatrix::AddBatch(std::span<const int32_t> truths,
                                 std::span<const int32_t> predictions) {
  if (truths.size() != predictions.size()) {
    return Status::InvalidArgument("confusion: batch size mismatch");
  }
  for (size_t i = 0; i < truths.size(); ++i) {
    SAMPNN_RETURN_NOT_OK(Add(truths[i], predictions[i]));
  }
  return Status::OK();
}

uint64_t ConfusionMatrix::At(size_t truth, size_t prediction) const {
  SAMPNN_CHECK(truth < n_ && prediction < n_);
  return counts_[truth * n_ + prediction];
}

uint64_t ConfusionMatrix::Total() const {
  return std::accumulate(counts_.begin(), counts_.end(), uint64_t{0});
}

double ConfusionMatrix::Accuracy() const {
  const uint64_t total = Total();
  if (total == 0) return 0.0;
  uint64_t diag = 0;
  for (size_t i = 0; i < n_; ++i) diag += counts_[i * n_ + i];
  return static_cast<double>(diag) / static_cast<double>(total);
}

std::vector<double> ConfusionMatrix::PerClassRecall() const {
  std::vector<double> out(n_, 0.0);
  for (size_t i = 0; i < n_; ++i) {
    uint64_t row = 0;
    for (size_t j = 0; j < n_; ++j) row += counts_[i * n_ + j];
    if (row > 0) {
      out[i] = static_cast<double>(counts_[i * n_ + i]) /
               static_cast<double>(row);
    }
  }
  return out;
}

std::vector<double> ConfusionMatrix::PerClassPrecision() const {
  std::vector<double> out(n_, 0.0);
  for (size_t j = 0; j < n_; ++j) {
    uint64_t col = 0;
    for (size_t i = 0; i < n_; ++i) col += counts_[i * n_ + j];
    if (col > 0) {
      out[j] = static_cast<double>(counts_[j * n_ + j]) /
               static_cast<double>(col);
    }
  }
  return out;
}

std::vector<uint64_t> ConfusionMatrix::PredictionCounts() const {
  std::vector<uint64_t> out(n_, 0);
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) out[j] += counts_[i * n_ + j];
  }
  return out;
}

size_t ConfusionMatrix::NumDistinctPredictions() const {
  const auto counts = PredictionCounts();
  return static_cast<size_t>(
      std::count_if(counts.begin(), counts.end(),
                    [](uint64_t c) { return c > 0; }));
}

std::string ConfusionMatrix::ToString() const {
  std::ostringstream os;
  os << "pred→  ";
  for (size_t j = 0; j < n_; ++j) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%6zu", j);
    os << buf;
  }
  os << "\n";
  for (size_t i = 0; i < n_; ++i) {
    char head[32];
    std::snprintf(head, sizeof(head), "true %2zu", i);
    os << head;
    for (size_t j = 0; j < n_; ++j) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%6llu",
                    static_cast<unsigned long long>(counts_[i * n_ + j]));
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

std::vector<std::vector<std::string>> ConfusionMatrix::ToCsvRows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(n_);
  for (size_t i = 0; i < n_; ++i) {
    uint64_t row_total = 0;
    for (size_t j = 0; j < n_; ++j) row_total += counts_[i * n_ + j];
    std::vector<std::string> cells;
    cells.reserve(n_);
    for (size_t j = 0; j < n_; ++j) {
      const double pct =
          row_total == 0
              ? 0.0
              : 100.0 * static_cast<double>(counts_[i * n_ + j]) / row_total;
      cells.push_back(CsvWriter::Num(pct, 2));
    }
    rows.push_back(std::move(cells));
  }
  return rows;
}

ConfusionMatrix ComputeConfusion(const Mlp& net, const Dataset& data,
                                 size_t eval_batch) {
  ConfusionMatrix cm(data.num_classes());
  Matrix x;
  std::vector<int32_t> y;
  std::vector<size_t> idx;
  MlpWorkspace ws;
  for (size_t begin = 0; begin < data.size(); begin += eval_batch) {
    const size_t end = std::min(data.size(), begin + eval_batch);
    idx.resize(end - begin);
    std::iota(idx.begin(), idx.end(), begin);
    data.FillBatch(idx, &x, &y);
    const Matrix& logits = net.Forward(x, &ws);
    const auto preds = SoftmaxCrossEntropy::Predict(logits);
    cm.AddBatch(y, preds).Abort("ComputeConfusion");
  }
  return cm;
}

}  // namespace sampnn
