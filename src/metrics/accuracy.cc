#include "src/metrics/accuracy.h"

#include <algorithm>
#include <numeric>

#include "src/nn/loss.h"
#include "src/util/check.h"

namespace sampnn {

StatusOr<double> Accuracy(std::span<const int32_t> predictions,
                          std::span<const int32_t> labels) {
  if (predictions.size() != labels.size()) {
    return Status::InvalidArgument("Accuracy: size mismatch");
  }
  if (predictions.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

double EvaluateAccuracy(const Mlp& net, const Dataset& data,
                        size_t eval_batch) {
  SAMPNN_CHECK_GE(eval_batch, 1u);
  if (data.size() == 0) return 0.0;
  size_t correct = 0;
  Matrix x;
  std::vector<int32_t> y;
  std::vector<size_t> idx(eval_batch);
  MlpWorkspace ws;
  for (size_t begin = 0; begin < data.size(); begin += eval_batch) {
    const size_t end = std::min(data.size(), begin + eval_batch);
    idx.resize(end - begin);
    std::iota(idx.begin(), idx.end(), begin);
    data.FillBatch(idx, &x, &y);
    const Matrix& logits = net.Forward(x, &ws);
    const auto preds = SoftmaxCrossEntropy::Predict(logits);
    for (size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == y[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double EvaluateLoss(const Mlp& net, const Dataset& data, size_t eval_batch) {
  SAMPNN_CHECK_GE(eval_batch, 1u);
  if (data.size() == 0) return 0.0;
  double total = 0.0;
  Matrix x;
  std::vector<int32_t> y;
  std::vector<size_t> idx(eval_batch);
  MlpWorkspace ws;
  for (size_t begin = 0; begin < data.size(); begin += eval_batch) {
    const size_t end = std::min(data.size(), begin + eval_batch);
    idx.resize(end - begin);
    std::iota(idx.begin(), idx.end(), begin);
    data.FillBatch(idx, &x, &y);
    const Matrix& logits = net.Forward(x, &ws);
    const double loss =
        std::move(SoftmaxCrossEntropy::Loss(logits, y)).ValueOrDie("eval loss");
    total += loss * static_cast<double>(end - begin);
  }
  return total / static_cast<double>(data.size());
}

}  // namespace sampnn
