// Phase-split wall-clock timing. The paper's Tables 3 and 4 report training
// time split into feedforward and backpropagation; trainers charge their
// time to named phases through this accumulator.

#pragma once

#include <chrono>
#include <map>
#include <string>

namespace sampnn {

/// Phase labels used by all trainers.
inline constexpr const char* kPhaseForward = "forward";
inline constexpr const char* kPhaseBackward = "backward";
inline constexpr const char* kPhaseSampling = "sampling";   ///< hash/MC overhead
inline constexpr const char* kPhaseHashRebuild = "rebuild"; ///< ALSH table reconstruction

/// \brief Accumulates wall-clock seconds per named phase.
class SplitTimer {
 public:
  using Clock = std::chrono::steady_clock;

  /// RAII guard charging its lifetime to one phase.
  class Scope {
   public:
    Scope(SplitTimer* timer, const std::string& phase)
        : timer_(timer), phase_(phase), start_(Clock::now()) {}
    ~Scope() {
      if (timer_ != nullptr) timer_->Add(phase_, Elapsed());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    double Elapsed() const {
      return std::chrono::duration<double>(Clock::now() - start_).count();
    }

   private:
    SplitTimer* timer_;
    std::string phase_;
    Clock::time_point start_;
  };

  /// Adds `seconds` to `phase`.
  void Add(const std::string& phase, double seconds) {
    totals_[phase] += seconds;
  }

  /// Accumulated seconds for `phase` (0 if never charged).
  double Seconds(const std::string& phase) const {
    auto it = totals_.find(phase);
    return it == totals_.end() ? 0.0 : it->second;
  }

  /// Sum across all phases.
  double TotalSeconds() const {
    double total = 0.0;
    for (const auto& [_, s] : totals_) total += s;
    return total;
  }

  /// All phase totals (phase name -> seconds).
  const std::map<std::string, double>& totals() const { return totals_; }

  /// Clears all accumulators.
  void Reset() { totals_.clear(); }

  /// Merges another timer's phases into this one.
  void Merge(const SplitTimer& other) {
    for (const auto& [phase, s] : other.totals_) totals_[phase] += s;
  }

 private:
  std::map<std::string, double> totals_;
};

/// One-shot stopwatch for whole-block timing.
class Stopwatch {
 public:
  Stopwatch() : start_(SplitTimer::Clock::now()) {}
  /// Seconds since construction or the last Restart().
  double Elapsed() const {
    return std::chrono::duration<double>(SplitTimer::Clock::now() - start_)
        .count();
  }
  void Restart() { start_ = SplitTimer::Clock::now(); }

 private:
  SplitTimer::Clock::time_point start_;
};

}  // namespace sampnn
