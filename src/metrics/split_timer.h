// Phase-split wall-clock timing. The paper's Tables 3 and 4 report training
// time split into feedforward and backpropagation; trainers charge their
// time to named phases through this accumulator.
//
// Hot-path design: phases are identified by interned `const char*` labels
// with static storage duration (the kPhase* constants below, or other string
// literals). A Scope therefore costs two clock reads plus a short linear
// scan over a handful of entries — no std::string construction and no
// std::map node allocation per scope, which previously dominated the
// per-batch timing overhead (see the micro-benchmark note in
// bench/bench_common.h and BM_SplitTimerScope in bench_micro_telemetry).

#pragma once

#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sampnn {

/// Phase labels used by all trainers.
inline constexpr const char* kPhaseForward = "forward";
inline constexpr const char* kPhaseBackward = "backward";
inline constexpr const char* kPhaseSampling = "sampling";   ///< hash/MC overhead
inline constexpr const char* kPhaseHashRebuild = "rebuild"; ///< ALSH table reconstruction

/// \brief Accumulates wall-clock seconds per named phase.
///
/// Phase labels passed to Add()/Scope must outlive the timer (string
/// literals in practice); lookups compare pointers first and fall back to
/// strcmp so equal labels from different translation units still merge.
class SplitTimer {
 public:
  using Clock = std::chrono::steady_clock;

  /// RAII guard charging its lifetime to one phase.
  class Scope {
   public:
    Scope(SplitTimer* timer, const char* phase)
        : timer_(timer), phase_(phase), start_(Clock::now()) {}
    ~Scope() {
      if (timer_ != nullptr) timer_->Add(phase_, Elapsed());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    double Elapsed() const {
      return std::chrono::duration<double>(Clock::now() - start_).count();
    }

   private:
    SplitTimer* timer_;
    const char* phase_;
    Clock::time_point start_;
  };

  /// Adds `seconds` to `phase`. `phase` must have static storage duration.
  void Add(const char* phase, double seconds) {
    for (Entry& e : entries_) {
      if (e.phase == phase ||
          (e.phase != nullptr && std::strcmp(e.phase, phase) == 0)) {
        e.seconds += seconds;
        return;
      }
    }
    entries_.push_back(Entry{phase, seconds});
  }

  /// Accumulated seconds for `phase` (0 if never charged).
  double Seconds(std::string_view phase) const {
    for (const Entry& e : entries_) {
      if (phase == e.phase) return e.seconds;
    }
    return 0.0;
  }

  /// Sum across all phases.
  double TotalSeconds() const {
    double total = 0.0;
    for (const Entry& e : entries_) total += e.seconds;
    return total;
  }

  /// All phase totals (phase name -> seconds). Built on demand; cold path.
  std::map<std::string, double> totals() const {
    std::map<std::string, double> out;
    for (const Entry& e : entries_) out[e.phase] += e.seconds;
    return out;
  }

  /// Clears all accumulators.
  void Reset() { entries_.clear(); }

  /// Merges another timer's phases into this one.
  void Merge(const SplitTimer& other) {
    for (const Entry& e : other.entries_) Add(e.phase, e.seconds);
  }

 private:
  struct Entry {
    const char* phase;
    double seconds;
  };
  // Trainers use <= 6 phases; a linear scan over a flat vector beats any
  // associative container at that size.
  std::vector<Entry> entries_;
};

/// One-shot stopwatch for whole-block timing.
class Stopwatch {
 public:
  Stopwatch() : start_(SplitTimer::Clock::now()) {}
  /// Seconds since construction or the last Restart().
  double Elapsed() const {
    return std::chrono::duration<double>(SplitTimer::Clock::now() - start_)
        .count();
  }
  void Restart() { start_ = SplitTimer::Clock::now(); }

 private:
  SplitTimer::Clock::time_point start_;
};

}  // namespace sampnn
