// Fixed-width table rendering for the bench harness — prints the paper-style
// rows for each table/figure and mirrors them to CSV.

#pragma once

#include <string>
#include <vector>

#include "src/util/status.h"

namespace sampnn {

/// \brief Accumulates rows and renders an aligned ASCII table.
class TableReporter {
 public:
  /// `title` is printed above the table (e.g. "Table 2: Test accuracy (%)").
  TableReporter(std::string title, std::vector<std::string> columns);

  /// Appends a row; cell count must match the declared columns.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for numeric cells.
  static std::string Cell(double v, int precision = 2);

  /// Renders title + aligned table.
  std::string Render() const;

  /// Prints Render() to stdout.
  void Print() const;

  /// Writes header + rows to `path` as CSV.
  Status WriteCsv(const std::string& path) const;

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sampnn
