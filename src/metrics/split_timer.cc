// SplitTimer is header-only; this translation unit anchors the header so the
// library exports one definition of its inline constants.

#include "src/metrics/split_timer.h"

namespace sampnn {}  // namespace sampnn
