#include "src/metrics/memory_tracker.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sampnn {

StatusOr<MemoryUsage> ReadMemoryUsage() {
  std::ifstream in("/proc/self/status");
  if (!in.is_open()) {
    return Status::IOError("cannot open /proc/self/status");
  }
  MemoryUsage usage;
  std::string line;
  while (std::getline(in, line)) {
    // Lines look like "VmRSS:      123456 kB".
    auto parse_kb = [&line]() -> size_t {
      std::istringstream is(line.substr(line.find(':') + 1));
      size_t kb = 0;
      is >> kb;
      return kb * 1024;
    };
    if (line.rfind("VmRSS:", 0) == 0) {
      usage.rss_bytes = parse_kb();
    } else if (line.rfind("VmHWM:", 0) == 0) {
      usage.peak_rss_bytes = parse_kb();
    }
  }
  return usage;
}

MemoryTracker::MemoryTracker() { Reset(); }

void MemoryTracker::Reset() {
  auto usage = ReadMemoryUsage();
  baseline_ = usage.ok() ? usage->rss_bytes : 0;
}

size_t MemoryTracker::PeakBytes() const {
  auto usage = ReadMemoryUsage();
  return usage.ok() ? usage->peak_rss_bytes : 0;
}

size_t MemoryTracker::GrowthBytes() const {
  auto usage = ReadMemoryUsage();
  if (!usage.ok()) return 0;
  return usage->rss_bytes > baseline_ ? usage->rss_bytes - baseline_ : 0;
}

size_t MemoryTracker::CurrentBytes() const {
  auto usage = ReadMemoryUsage();
  return usage.ok() ? usage->rss_bytes : 0;
}

StatusOr<WorkingSetModel> EstimateWorkingSet(const Mlp& net,
                                             const std::string& method,
                                             size_t batch,
                                             double active_fraction) {
  if (batch == 0) {
    return Status::InvalidArgument("EstimateWorkingSet: batch must be >= 1");
  }
  if (active_fraction <= 0.0 || active_fraction > 1.0) {
    return Status::InvalidArgument(
        "EstimateWorkingSet: active_fraction in (0, 1]");
  }
  constexpr size_t kFloat = sizeof(float);
  WorkingSetModel model;

  size_t weight_bytes = 0;
  size_t activation_units = net.input_dim();
  for (size_t k = 0; k < net.num_layers(); ++k) {
    const Layer& l = net.layer(k);
    weight_bytes += l.num_params() * kFloat;
    activation_units += l.out_dim();
  }
  // Forward reads weights once, backward reads them again and writes the
  // update: ~3 weight passes for dense training. z, a, and delta per layer.
  const size_t dense_weights = 3 * weight_bytes;
  const size_t dense_activations = 3 * activation_units * batch * kFloat;

  if (method == "standard") {
    model.weights_touched = dense_weights;
    model.activations_touched = dense_activations;
    return model;
  }
  if (method == "dropout" || method == "adaptive-dropout") {
    // Mask-based dropout (as in the paper's PyTorch implementations) still
    // runs the dense products — the mask is applied on top — so the full
    // weight traffic remains, plus mask construction/multiplication. This
    // is the §9.4 explanation for the dropout pair's elevated cache misses
    // relative to MC-approx.
    model.weights_touched = dense_weights;
    model.activations_touched = dense_activations;
    model.auxiliary_touched = 2 * activation_units * batch * kFloat;  // masks
    if (method == "adaptive-dropout") {
      // The standout pass computes pi = sigmoid(alpha*z + beta) from a full
      // extra linear pass over the weights.
      model.auxiliary_touched += weight_bytes;
    }
    return model;
  }
  if (method == "alsh") {
    // Active columns only, plus hash signatures (L tables x K planes) and
    // bucket probes per sample, plus periodic table rebuild amortization.
    model.weights_touched =
        static_cast<size_t>(dense_weights * active_fraction);
    model.activations_touched =
        static_cast<size_t>(dense_activations * active_fraction);
    size_t hash_bytes = 0;
    for (size_t k = 0; k + 1 < net.num_layers(); ++k) {
      const Layer& l = net.layer(k);
      // One id per column per table (L=5 default) + SRP planes.
      hash_bytes += l.out_dim() * 5 * sizeof(uint32_t);
      hash_bytes += 5 * 6 * (l.in_dim() + 3) * kFloat;
    }
    model.auxiliary_touched = hash_bytes;
    return model;
  }
  if (method == "mc") {
    // Exact forward; backward touches sampled rows/columns only, plus the
    // probability-estimation pass over the batch and weights.
    model.weights_touched =
        weight_bytes + static_cast<size_t>(2 * weight_bytes * active_fraction);
    model.activations_touched =
        dense_activations / 3 +
        static_cast<size_t>(2.0 * dense_activations / 3 * active_fraction);
    model.auxiliary_touched = weight_bytes / 4;  // column-norm pass (read)
    return model;
  }
  return Status::InvalidArgument("EstimateWorkingSet: unknown method " +
                                 method);
}

std::string FormatBytes(size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB"};
  double v = static_cast<double>(bytes);
  size_t u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  return buf;
}

}  // namespace sampnn
