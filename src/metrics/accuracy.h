// Classification accuracy (paper §8.5: "percentage of correct predictions").

#pragma once

#include <cstdint>
#include <span>

#include "src/data/dataset.h"
#include "src/nn/mlp.h"
#include "src/util/status.h"

namespace sampnn {

/// Fraction (0..1) of matching entries. Sizes must agree.
StatusOr<double> Accuracy(std::span<const int32_t> predictions,
                          std::span<const int32_t> labels);

/// Evaluates `net` on `data` in chunks of `eval_batch` and returns accuracy
/// in [0, 1].
double EvaluateAccuracy(const Mlp& net, const Dataset& data,
                        size_t eval_batch = 256);

/// Mean NLL loss of `net` over `data`.
double EvaluateLoss(const Mlp& net, const Dataset& data,
                    size_t eval_batch = 256);

}  // namespace sampnn
