#include "src/metrics/reporter.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"
#include "src/util/csv.h"

namespace sampnn {

TableReporter::TableReporter(std::string title,
                             std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  SAMPNN_CHECK(!columns_.empty());
}

void TableReporter::AddRow(std::vector<std::string> cells) {
  SAMPNN_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TableReporter::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TableReporter::Render() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  os << "\n== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << "\n";
  };
  emit_row(columns_);
  size_t total_width = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total_width += widths[c] + (c ? 2 : 0);
  }
  os << std::string(total_width, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TableReporter::Print() const {
  const std::string s = Render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

Status TableReporter::WriteCsv(const std::string& path) const {
  SAMPNN_ASSIGN_OR_RETURN(CsvWriter writer, CsvWriter::Open(path));
  writer.WriteHeader(columns_);
  for (const auto& row : rows_) writer.WriteRow(row);
  return writer.Close();
}

}  // namespace sampnn
