// Memory accounting for the §9.4 memory analysis.
//
// Two complementary views:
//  - process RSS from /proc/self/status (what the paper measured), and
//  - an analytic per-step working-set model (bytes touched per training
//    step), our substitute for the paper's hardware cache-miss profiling —
//    documented in DESIGN.md.

#pragma once

#include <cstddef>
#include <string>

#include "src/nn/mlp.h"
#include "src/util/status.h"

namespace sampnn {

/// Snapshot of process memory, in bytes.
struct MemoryUsage {
  size_t rss_bytes = 0;      ///< VmRSS
  size_t peak_rss_bytes = 0; ///< VmHWM
};

/// Reads /proc/self/status. IOError on non-procfs systems.
StatusOr<MemoryUsage> ReadMemoryUsage();

/// \brief Records a baseline and reports growth, mirroring the paper's
/// "expands by N MB by the end of training" measurements.
class MemoryTracker {
 public:
  /// Captures the baseline now (0 baseline if procfs is unavailable).
  MemoryTracker();

  /// RSS growth since construction or the last Reset() (clamped at 0).
  size_t GrowthBytes() const;
  /// Current RSS.
  size_t CurrentBytes() const;
  /// Peak RSS (VmHWM) — monotone over the process lifetime; Reset() does
  /// not lower it because the kernel high-water mark never shrinks.
  size_t PeakBytes() const;
  /// Recaptures the baseline, so GrowthBytes() restarts from 0.
  void Reset();
  /// The captured baseline RSS (0 when procfs is unavailable).
  size_t baseline_bytes() const { return baseline_; }

 private:
  size_t baseline_ = 0;
};

/// Analytic working set of one training step, in bytes.
struct WorkingSetModel {
  size_t weights_touched = 0;      ///< weight bytes read+written per step
  size_t activations_touched = 0;  ///< activation/delta bytes per step
  size_t auxiliary_touched = 0;    ///< hash tables, probability buffers, masks
  size_t total() const {
    return weights_touched + activations_touched + auxiliary_touched;
  }
};

/// Estimates the per-step working set of a training method on `net`.
/// `method` is one of the TrainerKind names ("standard", "dropout",
/// "adaptive-dropout", "alsh", "mc"); `batch` the minibatch size;
/// `active_fraction` the expected fraction of nodes touched by sparse
/// methods (e.g. 0.05 for ALSH/Dropout at p=0.05, the MC sample ratio for
/// MC-approx).
StatusOr<WorkingSetModel> EstimateWorkingSet(const Mlp& net,
                                             const std::string& method,
                                             size_t batch,
                                             double active_fraction);

/// Human-readable byte count ("12.3 MB").
std::string FormatBytes(size_t bytes);

}  // namespace sampnn
