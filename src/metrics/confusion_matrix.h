// Confusion matrices (paper Figure 3): counts[true][predicted], with ASCII
// rendering for terminal output and CSV export for plotting.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/nn/mlp.h"
#include "src/util/status.h"

namespace sampnn {

/// \brief Square matrix of prediction counts indexed [true class][predicted].
class ConfusionMatrix {
 public:
  /// Zeroed num_classes x num_classes matrix.
  explicit ConfusionMatrix(size_t num_classes);

  /// Accumulates one (truth, prediction) pair; both must be in range.
  Status Add(int32_t truth, int32_t prediction);

  /// Accumulates a batch. Sizes must match.
  Status AddBatch(std::span<const int32_t> truths,
                  std::span<const int32_t> predictions);

  size_t num_classes() const { return n_; }
  /// Count at [truth][prediction].
  uint64_t At(size_t truth, size_t prediction) const;
  /// Total observations.
  uint64_t Total() const;

  /// Trace / total (0 when empty).
  double Accuracy() const;
  /// Per-class recall (diagonal / row sum; 0 for empty rows).
  std::vector<double> PerClassRecall() const;
  /// Per-class precision (diagonal / column sum; 0 for empty columns).
  std::vector<double> PerClassPrecision() const;
  /// How many examples were predicted per class (column sums).
  std::vector<uint64_t> PredictionCounts() const;
  /// Number of classes ever predicted at least once — the paper's §10.3
  /// "label prediction distribution" collapse indicator for deep ALSH nets.
  size_t NumDistinctPredictions() const;

  /// Fixed-width ASCII rendering with row/column class headers.
  std::string ToString() const;

  /// Rows of row-normalized percentages as CSV cells (for Figure 3 export).
  std::vector<std::vector<std::string>> ToCsvRows() const;

 private:
  size_t n_;
  std::vector<uint64_t> counts_;  // n_ x n_, row-major
};

/// Runs `net` over `data` and fills a confusion matrix.
ConfusionMatrix ComputeConfusion(const Mlp& net, const Dataset& data,
                                 size_t eval_batch = 256);

}  // namespace sampnn
