// Maximum inner-product search (paper §5.2): given a database of vectors and
// a query a, find vectors w maximizing <w, a>. Provides both the exact
// linear scan (ground truth for tests/benches) and the ALSH approximate
// search of Shrivastava & Li.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/lsh/hash_table.h"
#include "src/tensor/matrix.h"
#include "src/util/status.h"

namespace sampnn {

/// One MIPS result: item id and its exact inner product with the query.
struct MipsResult {
  uint32_t id = 0;
  float inner_product = 0.0f;
};

/// Exact top-k MIPS by linear scan over the columns of `database`.
/// Results are sorted by decreasing inner product. k is clamped to the
/// number of columns.
std::vector<MipsResult> ExactMips(const Matrix& database,
                                  std::span<const float> query, size_t k);

/// \brief Approximate MIPS over the columns of a database matrix using an
/// ALSH index, with exact reranking of the retrieved candidates.
class AlshMips {
 public:
  /// Builds the index over `database` columns (rows = vector dim).
  static StatusOr<AlshMips> Create(const Matrix& database,
                                   const AlshIndexOptions& options,
                                   uint64_t seed);

  /// Returns up to k candidates sorted by decreasing exact inner product.
  /// The candidate pool is the union of probed buckets, so fewer than k
  /// results may come back when buckets are sparse.
  std::vector<MipsResult> Query(std::span<const float> query, size_t k) const;

  /// Raw candidate ids without reranking (the trainer-facing path).
  void QueryCandidates(std::span<const float> query,
                       std::vector<uint32_t>* out) const;

  /// Fraction of top-k exact results retrieved, averaged over queries:
  /// the standard recall@k quality metric for the index.
  double RecallAtK(const Matrix& queries, size_t k) const;

  const AlshIndex& index() const { return index_; }

 private:
  AlshMips(const Matrix& database, AlshIndex index);
  Matrix database_;  // copy: columns are the indexed vectors
  AlshIndex index_;
};

}  // namespace sampnn
