#include "src/lsh/alsh_transform.h"

#include <cmath>

#include "src/util/check.h"

namespace sampnn {

StatusOr<AlshTransform> AlshTransform::Create(
    const AlshTransformOptions& options) {
  if (options.m == 0) {
    return Status::InvalidArgument("AlshTransform: m must be >= 1");
  }
  if (!(options.U > 0.0f && options.U < 1.0f)) {
    return Status::InvalidArgument("AlshTransform: U must be in (0, 1)");
  }
  return AlshTransform(options);
}

void AlshTransform::FitScaleFromColumns(const Matrix& w) {
  float max_norm = 0.0f;
  for (size_t j = 0; j < w.cols(); ++j) {
    max_norm = std::max(max_norm, w.ColNorm(j));
  }
  scale_ = (max_norm > 0.0f) ? options_.U / max_norm : 1.0f;
}

void AlshTransform::SetScale(float scale) {
  SAMPNN_CHECK_GT(scale, 0.0f);
  scale_ = scale;
}

void AlshTransform::TransformData(std::span<const float> w,
                                  std::span<float> out) const {
  SAMPNN_CHECK_EQ(out.size(), w.size() + options_.m);
  double norm_sq = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    const float v = scale_ * w[i];
    out[i] = v;
    norm_sq += static_cast<double>(v) * v;
  }
  // Padding term i is ||sw||^{2^{i+1}}: square norm_sq repeatedly.
  double power = norm_sq;  // ||sw||^2
  for (size_t i = 0; i < options_.m; ++i) {
    out[w.size() + i] = static_cast<float>(power);
    power *= power;
  }
}

void AlshTransform::TransformQuery(std::span<const float> a,
                                   std::span<float> out) const {
  SAMPNN_CHECK_EQ(out.size(), a.size() + options_.m);
  double norm_sq = 0.0;
  for (float v : a) norm_sq += static_cast<double>(v) * v;
  const float inv_norm =
      norm_sq > 0.0 ? 1.0f / static_cast<float>(std::sqrt(norm_sq)) : 1.0f;
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * inv_norm;
  for (size_t i = 0; i < options_.m; ++i) out[a.size() + i] = 0.5f;
}

}  // namespace sampnn
