// Winner-take-all (WTA) hashing (Yagnik et al.), the family used by
// SLIDE-style systems as an alternative to signed random projections for
// sparse, non-negative activation vectors: each sub-hash samples a window
// of `window` coordinates and emits the argmax position (log2(window)
// bits); K sub-hashes concatenate into the bucket code. WTA codes are
// rank-correlation hashes — invariant to any monotone transform of the
// inputs, which makes them robust to activation-scale drift between hash
// table rebuilds.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

/// \brief A WTA hash emitting `subhashes` argmax codes over random windows.
class WtaHash {
 public:
  /// `window` must be a power of two in [2, 256]; total bits =
  /// subhashes * log2(window) must be <= 30. `dim` >= window.
  static StatusOr<WtaHash> Create(size_t dim, size_t subhashes, size_t window,
                                  Rng& rng);

  /// Hashes `x` (length dim): concatenated argmax positions.
  uint32_t Hash(std::span<const float> x) const;

  size_t dim() const { return dim_; }
  size_t bits() const { return bits_; }
  uint32_t num_buckets() const { return 1u << bits_; }

 private:
  WtaHash(size_t dim, size_t subhashes, size_t window, size_t bits,
          std::vector<uint32_t> coords)
      : dim_(dim),
        subhashes_(subhashes),
        window_(window),
        bits_(bits),
        coords_(std::move(coords)) {}

  size_t dim_;
  size_t subhashes_;
  size_t window_;
  size_t bits_;
  // subhashes_ windows of window_ coordinate indices each.
  std::vector<uint32_t> coords_;
};

}  // namespace sampnn
