#include "src/lsh/wta_hash.h"

#include <bit>

#include "src/util/check.h"

namespace sampnn {

StatusOr<WtaHash> WtaHash::Create(size_t dim, size_t subhashes, size_t window,
                                  Rng& rng) {
  if (dim == 0) return Status::InvalidArgument("WtaHash: dim must be > 0");
  if (subhashes == 0) {
    return Status::InvalidArgument("WtaHash: subhashes must be >= 1");
  }
  if (window < 2 || window > 256 || !std::has_single_bit(window)) {
    return Status::InvalidArgument(
        "WtaHash: window must be a power of two in [2, 256]");
  }
  if (dim < window) {
    return Status::InvalidArgument("WtaHash: dim must be >= window");
  }
  const size_t bits_per = std::bit_width(window) - 1;  // log2(window)
  const size_t bits = subhashes * bits_per;
  if (bits > 30) {
    return Status::InvalidArgument("WtaHash: total bits must be <= 30");
  }
  std::vector<uint32_t> coords(subhashes * window);
  for (auto& c : coords) {
    c = static_cast<uint32_t>(rng.NextBounded(dim));
  }
  return WtaHash(dim, subhashes, window, bits, std::move(coords));
}

uint32_t WtaHash::Hash(std::span<const float> x) const {
  SAMPNN_DCHECK_EQ(x.size(), dim_);
  const size_t bits_per = bits_ / subhashes_;
  uint32_t code = 0;
  const uint32_t* w = coords_.data();
  for (size_t s = 0; s < subhashes_; ++s, w += window_) {
    uint32_t best = 0;
    float best_val = x[w[0]];
    for (size_t i = 1; i < window_; ++i) {
      const float v = x[w[i]];
      if (v > best_val) {
        best_val = v;
        best = static_cast<uint32_t>(i);
      }
    }
    code = (code << bits_per) | best;
  }
  return code;
}

}  // namespace sampnn
