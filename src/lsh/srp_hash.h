// Signed random projection (SimHash) hash functions.
//
// Each K-bit meta hash is the concatenation of K hyperplane sign bits
// (Def. 5.1's family H, instantiated for cosine similarity — the standard
// choice for ALSH after the P/Q transform).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

/// \brief A K-bit signed-random-projection hash over R^dim.
class SrpHash {
 public:
  /// Creates K Gaussian hyperplanes over dimension `dim`. Requires
  /// 1 <= bits <= 30 and dim > 0.
  static StatusOr<SrpHash> Create(size_t dim, size_t bits, Rng& rng);

  /// Hashes `x` (length dim) to a bits-wide code. Bit i is 1 iff
  /// <x, plane_i> >= 0.
  uint32_t Hash(std::span<const float> x) const;

  size_t dim() const { return dim_; }
  size_t bits() const { return bits_; }
  /// Number of distinct codes, 2^bits.
  uint32_t num_buckets() const { return 1u << bits_; }

 private:
  SrpHash(size_t dim, size_t bits, std::vector<float> planes)
      : dim_(dim), bits_(bits), planes_(std::move(planes)) {}

  size_t dim_;
  size_t bits_;
  // bits_ hyperplanes, row-major (bits_ x dim_).
  std::vector<float> planes_;
};

/// Probability two unit vectors at angle theta collide on one SRP bit:
/// 1 - theta / pi. Exposed for tests of the LSH property.
double SrpCollisionProbability(double cosine_similarity);

}  // namespace sampnn
