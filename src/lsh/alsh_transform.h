// The asymmetric transformations P and Q of Shrivastava & Li (paper §5.2,
// Eq. 2) that reduce maximum inner-product search to near-neighbor search:
//
//   P(w) = [w * s ; ||sw||^2 ; ||sw||^4 ; ... ; ||sw||^{2^m}]
//   Q(a) = [a / ||a|| ; 1/2 ; ... ; 1/2]            (m copies)
//
// where s scales the data so every ||s*w|| <= U < 1 (Eq. 3 then holds:
// argmax_w <w, a> = argmin_w ||Q(a) - P(w)||).

#pragma once

#include <span>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/status.h"

namespace sampnn {

/// Options for the ALSH transform.
struct AlshTransformOptions {
  size_t m = 3;     ///< number of padding terms (paper default §8.4)
  float U = 0.83f;  ///< target max norm after scaling (Shrivastava & Li)
};

/// \brief Stateless-per-call P/Q transform with a fitted data scale.
class AlshTransform {
 public:
  /// Validates options (0 < U < 1, m >= 1).
  static StatusOr<AlshTransform> Create(const AlshTransformOptions& options);

  /// Computes the scale s = U / max_j ||W_{*j}|| from the columns of `w`
  /// (each column is one data vector, matching the paper's use of weight
  /// columns as the MIPS database). A zero matrix gets scale 1.
  void FitScaleFromColumns(const Matrix& w);

  /// Sets the scale directly (used when the caller tracks norms itself).
  void SetScale(float scale);
  float scale() const { return scale_; }

  /// Transformed dimension: dim + m.
  size_t TransformedDim(size_t dim) const { return dim + options_.m; }

  /// P transform of a data vector into `out` (size dim + m).
  void TransformData(std::span<const float> w, std::span<float> out) const;

  /// Q transform of a query vector into `out` (size dim + m). The query is
  /// normalized to unit length; a zero query is passed through with zero
  /// padding replaced by 1/2 (it collides arbitrarily, as in the reference
  /// implementation).
  void TransformQuery(std::span<const float> a, std::span<float> out) const;

  const AlshTransformOptions& options() const { return options_; }

 private:
  explicit AlshTransform(const AlshTransformOptions& options)
      : options_(options) {}

  AlshTransformOptions options_;
  float scale_ = 1.0f;
};

}  // namespace sampnn
