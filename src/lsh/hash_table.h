// L-table ALSH index over the columns of a weight matrix (paper §5.2):
// "ALSH-approx constructs L independent hash tables with 2^K hash buckets
// and assigns a K-bit randomized hash function to every table."

#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <variant>
#include <vector>

#include "src/lsh/alsh_transform.h"
#include "src/lsh/srp_hash.h"
#include "src/lsh/wta_hash.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

/// Which hash family fills the tables.
enum class LshFamily {
  kSrp,  ///< signed random projections (cosine; the classic ALSH choice)
  kWta,  ///< winner-take-all rank hashes (SLIDE's choice for sparse
         ///< non-negative activations)
};

/// Parses "srp" | "wta".
StatusOr<LshFamily> LshFamilyFromString(const std::string& name);
/// Canonical lowercase name.
const char* LshFamilyToString(LshFamily family);

/// Hyperparameters of one per-layer ALSH index.
struct AlshIndexOptions {
  size_t bits = 6;             ///< K — bits per meta hash (paper default K=6)
  size_t tables = 5;           ///< L — number of tables (paper default L=5)
  size_t max_bucket_size = 0;  ///< 0 = unbounded; else reservoir-capped
  LshFamily family = LshFamily::kSrp;
  size_t wta_window = 8;       ///< WTA window (log2(window) bits/sub-hash)
  AlshTransformOptions transform;  ///< m and U for P/Q
};

/// Occupancy statistics, used by tests and the LSH micro bench.
struct AlshIndexStats {
  size_t num_items = 0;
  size_t num_tables = 0;
  size_t buckets_per_table = 0;
  size_t nonempty_buckets = 0;     ///< across all tables
  size_t max_bucket_occupancy = 0;
  double avg_nonempty_occupancy = 0.0;
};

/// \brief L independent SRP hash tables over ALSH-transformed vectors.
///
/// Items are the column indices of the matrix passed to Build(). Query()
/// returns the union of the probed buckets — the "active node" set.
class AlshIndex {
 public:
  /// `dim` is the original (untransformed) vector dimension.
  static StatusOr<AlshIndex> Create(size_t dim, const AlshIndexOptions& options,
                                    uint64_t seed);

  /// (Re)hashes all columns of `w` into the tables; w.rows() must equal dim.
  /// Refits the data scale from the current column norms.
  void Build(const Matrix& w);

  /// Probes the L tables with query `a` (length dim) and writes the union
  /// of bucket members to `out` (cleared first). Members are unique and
  /// sorted ascending. Thread-safe against concurrent Query() calls (but
  /// not against a concurrent Build()).
  void Query(std::span<const float> a, std::vector<uint32_t>* out) const;

  /// Number of indexed items (columns of the last Build matrix).
  size_t num_items() const { return num_items_; }
  size_t dim() const { return dim_; }
  const AlshIndexOptions& options() const { return options_; }
  const AlshTransform& transform() const { return transform_; }

  /// Number of Build() calls so far (hash-table reconstruction counter).
  size_t build_count() const { return build_count_; }

  AlshIndexStats ComputeStats() const;

  /// Serializes the mutable index state for checkpointing: bucket contents,
  /// item/build counters, fitted transform scale, and the reservoir RNG.
  /// Hash functions are NOT serialized — they are deterministic in the
  /// Create() seed, so save/load must pair indexes created with the same
  /// (dim, options, seed). Buckets are saved verbatim because they were
  /// built from *older* weights: rebuilding from current weights on resume
  /// would diverge from the uninterrupted run.
  Status SaveState(std::ostream& out) const;
  /// Restores state written by SaveState(). Validates table/bucket layout
  /// against this index's configuration; InvalidArgument on mismatch.
  Status LoadState(std::istream& in);

 private:
  using LshFunction = std::variant<SrpHash, WtaHash>;

  AlshIndex(size_t dim, const AlshIndexOptions& options,
            AlshTransform transform, std::vector<LshFunction> hashes,
            uint64_t reservoir_seed);

  static uint32_t HashWith(const LshFunction& fn, std::span<const float> x);
  static uint32_t BucketsOf(const LshFunction& fn);

  size_t dim_;
  AlshIndexOptions options_;
  AlshTransform transform_;
  std::vector<LshFunction> hashes_;  // one meta hash per table
  // buckets_[t][code] = item ids. Flat per table for locality.
  std::vector<std::vector<std::vector<uint32_t>>> buckets_;
  size_t num_items_ = 0;
  size_t build_count_ = 0;
  Rng reservoir_rng_;
};

}  // namespace sampnn
