#include "src/lsh/mips.h"

#include <algorithm>

#include "src/util/check.h"

namespace sampnn {

namespace {

float ColumnDot(const Matrix& m, size_t col, std::span<const float> x) {
  SAMPNN_DCHECK_EQ(x.size(), m.rows());
  SAMPNN_DCHECK_BOUNDS(col, m.cols());
  const size_t n = m.cols();
  const float* d = m.data() + col;
  float acc = 0.0f;
  for (size_t i = 0; i < m.rows(); ++i) acc += x[i] * d[i * n];
  return acc;
}

}  // namespace

std::vector<MipsResult> ExactMips(const Matrix& database,
                                  std::span<const float> query, size_t k) {
  SAMPNN_CHECK_EQ(query.size(), database.rows());
  std::vector<MipsResult> all(database.cols());
  for (size_t j = 0; j < database.cols(); ++j) {
    all[j] = {static_cast<uint32_t>(j), ColumnDot(database, j, query)};
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + k, all.end(),
                    [](const MipsResult& a, const MipsResult& b) {
                      return a.inner_product > b.inner_product;
                    });
  all.resize(k);
  return all;
}

StatusOr<AlshMips> AlshMips::Create(const Matrix& database,
                                    const AlshIndexOptions& options,
                                    uint64_t seed) {
  if (database.cols() == 0 || database.rows() == 0) {
    return Status::InvalidArgument("AlshMips: empty database");
  }
  SAMPNN_ASSIGN_OR_RETURN(AlshIndex index,
                          AlshIndex::Create(database.rows(), options, seed));
  index.Build(database);
  return AlshMips(database, std::move(index));
}

AlshMips::AlshMips(const Matrix& database, AlshIndex index)
    : database_(database), index_(std::move(index)) {}

std::vector<MipsResult> AlshMips::Query(std::span<const float> query,
                                        size_t k) const {
  std::vector<uint32_t> candidates;
  index_.Query(query, &candidates);
  std::vector<MipsResult> results;
  results.reserve(candidates.size());
  for (uint32_t id : candidates) {
    results.push_back({id, ColumnDot(database_, id, query)});
  }
  k = std::min(k, results.size());
  std::partial_sort(results.begin(), results.begin() + k, results.end(),
                    [](const MipsResult& a, const MipsResult& b) {
                      return a.inner_product > b.inner_product;
                    });
  results.resize(k);
  return results;
}

void AlshMips::QueryCandidates(std::span<const float> query,
                               std::vector<uint32_t>* out) const {
  index_.Query(query, out);
}

double AlshMips::RecallAtK(const Matrix& queries, size_t k) const {
  SAMPNN_CHECK_EQ(queries.cols(), database_.rows());
  if (queries.rows() == 0 || k == 0) return 0.0;
  double total = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    auto query = queries.Row(q);
    const auto exact = ExactMips(database_, query, k);
    const auto approx = Query(query, k);
    size_t hit = 0;
    for (const auto& e : exact) {
      for (const auto& a : approx) {
        if (a.id == e.id) {
          ++hit;
          break;
        }
      }
    }
    total += static_cast<double>(hit) / static_cast<double>(exact.size());
  }
  return total / static_cast<double>(queries.rows());
}

}  // namespace sampnn
