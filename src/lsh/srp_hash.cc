#include "src/lsh/srp_hash.h"

#include <cmath>

#include "src/util/check.h"

namespace sampnn {

StatusOr<SrpHash> SrpHash::Create(size_t dim, size_t bits, Rng& rng) {
  if (dim == 0) return Status::InvalidArgument("SrpHash: dim must be > 0");
  if (bits == 0 || bits > 30) {
    return Status::InvalidArgument("SrpHash: bits must be in [1, 30]");
  }
  std::vector<float> planes(bits * dim);
  for (auto& v : planes) v = rng.NextGaussian();
  return SrpHash(dim, bits, std::move(planes));
}

uint32_t SrpHash::Hash(std::span<const float> x) const {
  SAMPNN_DCHECK_EQ(x.size(), dim_);
  uint32_t code = 0;
  const float* p = planes_.data();
  for (size_t b = 0; b < bits_; ++b, p += dim_) {
    float dot = 0.0f;
    for (size_t i = 0; i < dim_; ++i) dot += p[i] * x[i];
    code = (code << 1) | (dot >= 0.0f ? 1u : 0u);
  }
  return code;
}

double SrpCollisionProbability(double cosine_similarity) {
  const double c = std::min(1.0, std::max(-1.0, cosine_similarity));
  return 1.0 - std::acos(c) / 3.14159265358979323846;
}

}  // namespace sampnn
