#include "src/lsh/hash_table.h"

#include <algorithm>
#include <bit>

#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/util/binary_io.h"
#include "src/util/check.h"

namespace sampnn {

StatusOr<LshFamily> LshFamilyFromString(const std::string& name) {
  if (name == "srp") return LshFamily::kSrp;
  if (name == "wta") return LshFamily::kWta;
  return Status::InvalidArgument("unknown LSH family: " + name);
}

const char* LshFamilyToString(LshFamily family) {
  switch (family) {
    case LshFamily::kSrp:
      return "srp";
    case LshFamily::kWta:
      return "wta";
  }
  return "unknown";
}

uint32_t AlshIndex::HashWith(const LshFunction& fn, std::span<const float> x) {
  return std::visit([&x](const auto& h) { return h.Hash(x); }, fn);
}

uint32_t AlshIndex::BucketsOf(const LshFunction& fn) {
  return std::visit([](const auto& h) { return h.num_buckets(); }, fn);
}

StatusOr<AlshIndex> AlshIndex::Create(size_t dim,
                                      const AlshIndexOptions& options,
                                      uint64_t seed) {
  if (dim == 0) return Status::InvalidArgument("AlshIndex: dim must be > 0");
  if (options.tables == 0) {
    return Status::InvalidArgument("AlshIndex: tables must be >= 1");
  }
  SAMPNN_ASSIGN_OR_RETURN(AlshTransform transform,
                          AlshTransform::Create(options.transform));
  Rng rng(seed);
  std::vector<LshFunction> hashes;
  hashes.reserve(options.tables);
  const size_t tdim = transform.TransformedDim(dim);
  for (size_t t = 0; t < options.tables; ++t) {
    if (options.family == LshFamily::kSrp) {
      SAMPNN_ASSIGN_OR_RETURN(SrpHash h,
                              SrpHash::Create(tdim, options.bits, rng));
      hashes.emplace_back(std::move(h));
    } else {
      // WTA: `bits` budgets the code width; each sub-hash spends
      // log2(window) bits.
      const size_t bits_per = std::bit_width(options.wta_window) - 1;
      if (bits_per == 0 || options.bits < bits_per) {
        return Status::InvalidArgument(
            "AlshIndex: bits too small for the WTA window");
      }
      SAMPNN_ASSIGN_OR_RETURN(
          WtaHash h, WtaHash::Create(tdim, options.bits / bits_per,
                                     options.wta_window, rng));
      hashes.emplace_back(std::move(h));
    }
  }
  return AlshIndex(dim, options, std::move(transform), std::move(hashes),
                   rng.NextU64());
}

AlshIndex::AlshIndex(size_t dim, const AlshIndexOptions& options,
                     AlshTransform transform, std::vector<LshFunction> hashes,
                     uint64_t reservoir_seed)
    : dim_(dim),
      options_(options),
      transform_(std::move(transform)),
      hashes_(std::move(hashes)),
      reservoir_rng_(reservoir_seed) {
  buckets_.resize(options_.tables);
  for (size_t t = 0; t < buckets_.size(); ++t) {
    buckets_[t].resize(BucketsOf(hashes_[t]));
  }
}

void AlshIndex::Build(const Matrix& w) {
  SAMPNN_CHECK_EQ(w.rows(), dim_);
  for (auto& table : buckets_) {
    for (auto& bucket : table) bucket.clear();
  }
  transform_.FitScaleFromColumns(w);
  num_items_ = w.cols();

  std::vector<float> col(dim_);
  std::vector<float> transformed(transform_.TransformedDim(dim_));
  for (size_t j = 0; j < w.cols(); ++j) {
    for (size_t i = 0; i < dim_; ++i) col[i] = w(i, j);
    transform_.TransformData(col, transformed);
    for (size_t t = 0; t < hashes_.size(); ++t) {
      const uint32_t code = HashWith(hashes_[t], transformed);
      auto& bucket = buckets_[t][code];
      if (options_.max_bucket_size > 0 &&
          bucket.size() >= options_.max_bucket_size) {
        // Reservoir replacement keeps each item equally likely to survive.
        const uint64_t slot = reservoir_rng_.NextBounded(bucket.size() + 1);
        if (slot < bucket.size()) {
          bucket[slot] = static_cast<uint32_t>(j);
        }
      } else {
        bucket.push_back(static_cast<uint32_t>(j));
      }
    }
  }
  ++build_count_;
}

void AlshIndex::Query(std::span<const float> a,
                      std::vector<uint32_t>* out) const {
  SAMPNN_CHECK(out != nullptr);
  SAMPNN_CHECK_EQ(a.size(), dim_);
  out->clear();
  if (num_items_ == 0) return;
  std::vector<float> transformed(transform_.TransformedDim(dim_));
  transform_.TransformQuery(a, transformed);
  const bool telemetry = TelemetryEnabled();
  for (size_t t = 0; t < hashes_.size(); ++t) {
    const uint32_t code = HashWith(hashes_[t], transformed);
    const auto& bucket = buckets_[t][code];
    out->insert(out->end(), bucket.begin(), bucket.end());
    if (telemetry) {
      static Histogram& h =
          MetricsRegistry::Get().GetHistogram("lsh.probe.bucket_size");
      h.Observe(bucket.size());
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  if (telemetry) {
    static Histogram& h =
        MetricsRegistry::Get().GetHistogram("lsh.query.active");
    h.Observe(out->size());
  }
}

Status AlshIndex::SaveState(std::ostream& out) const {
  WriteU64(out, num_items_);
  WriteU64(out, build_count_);
  WriteF32(out, transform_.scale());
  WriteRngState(out, reservoir_rng_.GetState());
  WriteU64(out, buckets_.size());
  for (const auto& table : buckets_) {
    WriteU64(out, table.size());
    for (const auto& bucket : table) {
      WriteU32s(out, bucket);
    }
  }
  if (!out) return Status::IOError("ALSH index state write failure");
  return Status::OK();
}

Status AlshIndex::LoadState(std::istream& in) {
  SAMPNN_ASSIGN_OR_RETURN(uint64_t num_items, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(uint64_t build_count, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(float scale, ReadF32(in));
  SAMPNN_ASSIGN_OR_RETURN(RngState reservoir_state, ReadRngState(in));
  SAMPNN_ASSIGN_OR_RETURN(uint64_t num_tables, ReadU64(in));
  if (num_tables != buckets_.size()) {
    return Status::InvalidArgument(
        "ALSH state has " + std::to_string(num_tables) + " tables, index has " +
        std::to_string(buckets_.size()));
  }
  std::vector<std::vector<std::vector<uint32_t>>> loaded(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    SAMPNN_ASSIGN_OR_RETURN(uint64_t num_buckets, ReadU64(in));
    if (num_buckets != buckets_[t].size()) {
      return Status::InvalidArgument(
          "ALSH state table " + std::to_string(t) + " has " +
          std::to_string(num_buckets) + " buckets, index has " +
          std::to_string(buckets_[t].size()));
    }
    loaded[t].resize(num_buckets);
    for (size_t b = 0; b < num_buckets; ++b) {
      SAMPNN_RETURN_NOT_OK(ReadU32s(in, &loaded[t][b]));
      for (uint32_t id : loaded[t][b]) {
        if (id >= num_items) {
          return Status::InvalidArgument(
              "ALSH state bucket item " + std::to_string(id) +
              " out of range (num_items=" + std::to_string(num_items) + ")");
        }
      }
    }
  }
  num_items_ = num_items;
  build_count_ = build_count;
  transform_.SetScale(scale);
  reservoir_rng_.SetState(reservoir_state);
  buckets_ = std::move(loaded);
  return Status::OK();
}

AlshIndexStats AlshIndex::ComputeStats() const {
  AlshIndexStats stats;
  stats.num_items = num_items_;
  stats.num_tables = buckets_.size();
  stats.buckets_per_table = buckets_.empty() ? 0 : buckets_[0].size();
  size_t total_occupancy = 0;
  for (const auto& table : buckets_) {
    for (const auto& bucket : table) {
      if (bucket.empty()) continue;
      ++stats.nonempty_buckets;
      total_occupancy += bucket.size();
      stats.max_bucket_occupancy =
          std::max(stats.max_bucket_occupancy, bucket.size());
    }
  }
  stats.avg_nonempty_occupancy =
      stats.nonempty_buckets == 0
          ? 0.0
          : static_cast<double>(total_occupancy) / stats.nonempty_buckets;
  return stats;
}

}  // namespace sampnn
