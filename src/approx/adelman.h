// The Adelman et al. sampled matrix-multiplication estimator used by
// MC-approx (paper §6.2): sample inner-dimension indices *independently*
// (Bernoulli) with the error-minimizing probabilities of Eq. 7
// (p_i = min{k ||A_{*i}|| ||B_{i*}|| / S, 1}, water-filled so sum p_i = k),
// and scale each kept column–row product by 1/p_i. Unbiased:
// E[A'B'] = AB.
//
// Three layouts are provided, matching the three gemms of MLP training:
//   AdelmanApproxMatmul     : C ≈ A  * B   (inner dim: cols(A)=rows(B))
//   AdelmanApproxGemmTransA : C ≈ A^T * B   (inner dim: rows(A)=rows(B))
//                             — the weight-gradient product X^T δ, sampled
//                               over the minibatch
//   AdelmanApproxGemmTransB : C ≈ A  * B^T (inner dim: cols(A)=cols(B))
//                             — the delta-propagation product δ W^T, sampled
//                               over current-layer nodes

#pragma once

#include <cstddef>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

/// Importance scores over the inner dimension of A*B:
/// s_i = ||A_{*i}|| * ||B_{i*}||.
StatusOr<std::vector<double>> AdelmanScores(const Matrix& a, const Matrix& b);
/// Scores for A^T*B: s_i = ||A_{i*}|| * ||B_{i*}|| (i over rows).
StatusOr<std::vector<double>> AdelmanScoresTransA(const Matrix& a,
                                                  const Matrix& b);
/// Scores for A*B^T: s_j = ||A_{*j}|| * ||B_{*j}|| (j over columns).
StatusOr<std::vector<double>> AdelmanScoresTransB(const Matrix& a,
                                                  const Matrix& b);

/// C ≈ A(m x n) * B(n x p) with expected k sampled inner indices.
/// `out` is resized to m x p. If k >= n the product is computed exactly.
Status AdelmanApproxMatmul(const Matrix& a, const Matrix& b, size_t k,
                           Rng& rng, Matrix* out);

/// C ≈ A^T(m x n) * B(m x p) — samples over the m rows (the minibatch when
/// A is the layer input and B the delta). `out` resized to n x p.
Status AdelmanApproxGemmTransA(const Matrix& a, const Matrix& b, size_t k,
                               Rng& rng, Matrix* out);

/// C ≈ A(m x n) * B^T(p x n) — samples over the n shared columns (the
/// current layer's nodes when A is the delta and B the weights).
/// `out` resized to m x p.
Status AdelmanApproxGemmTransB(const Matrix& a, const Matrix& b, size_t k,
                               Rng& rng, Matrix* out);

}  // namespace sampnn
