#include "src/approx/adelman.h"

#include <cmath>

#include "src/approx/sampling.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/tensor/kernels.h"
#include "src/util/check.h"

namespace sampnn {

StatusOr<std::vector<double>> AdelmanScores(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("AdelmanScores: inner dimension mismatch");
  }
  std::vector<double> scores(a.cols());
  for (size_t i = 0; i < a.cols(); ++i) {
    scores[i] = static_cast<double>(a.ColNorm(i)) * b.RowNorm(i);
  }
  return scores;
}

StatusOr<std::vector<double>> AdelmanScoresTransA(const Matrix& a,
                                                  const Matrix& b) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument(
        "AdelmanScoresTransA: inner dimension mismatch");
  }
  std::vector<double> scores(a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    scores[i] = static_cast<double>(a.RowNorm(i)) * b.RowNorm(i);
  }
  return scores;
}

StatusOr<std::vector<double>> AdelmanScoresTransB(const Matrix& a,
                                                  const Matrix& b) {
  if (a.cols() != b.cols()) {
    return Status::InvalidArgument(
        "AdelmanScoresTransB: inner dimension mismatch");
  }
  std::vector<double> scores(a.cols());
  for (size_t j = 0; j < a.cols(); ++j) {
    scores[j] = static_cast<double>(a.ColNorm(j)) * b.ColNorm(j);
  }
  return scores;
}

namespace {

// Shared selection step: water-fill + Bernoulli draw + inverse-probability
// scales for the selected indices. Non-finite scores (a NaN/Inf norm from a
// poisoned activation or weight) are clamped to zero first — the estimator
// degrades toward uniform sampling instead of propagating the poison into
// the probability water-fill; occurrences are counted for telemetry.
void SelectAndScale(std::vector<double>* scores, size_t k, Rng& rng,
                    std::vector<uint32_t>* selected,
                    std::vector<float>* scales) {
  size_t nonfinite = 0;
  for (double& s : *scores) {
    if (!std::isfinite(s)) {
      s = 0.0;
      ++nonfinite;
    }
  }
  if (nonfinite > 0 && TelemetryEnabled()) {
    static Counter& c =
        MetricsRegistry::Get().GetCounter("resilience.mc_nonfinite_norms");
    c.Add(nonfinite);
  }
  const std::vector<double> probs = WaterFillProbabilities(*scores, k);
  BernoulliSample(probs, rng, selected);
  scales->resize(selected->size());
  for (size_t s = 0; s < selected->size(); ++s) {
    const uint32_t i = (*selected)[s];
    // BernoulliSample only emits indices with p > 0, so the inverse scale
    // is finite; the bound guards the scores/probs size contract.
    SAMPNN_DCHECK_BOUNDS(i, probs.size());
    SAMPNN_DCHECK_GT(probs[i], 0.0);
    (*scales)[s] = static_cast<float>(1.0 / probs[i]);
  }
  if (TelemetryEnabled()) {
    // Realized (post-Bernoulli) sample count; expectation is k.
    static Histogram& h =
        MetricsRegistry::Get().GetHistogram("approx.adelman.samples");
    h.Observe(selected->size());
  }
}

}  // namespace

Status AdelmanApproxMatmul(const Matrix& a, const Matrix& b, size_t k,
                           Rng& rng, Matrix* out) {
  SAMPNN_CHECK(out != nullptr);
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("AdelmanApproxMatmul: dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("AdelmanApproxMatmul: k == 0");
  const size_t m = a.rows(), n = a.cols(), p = b.cols();
  if (out->rows() != m || out->cols() != p) *out = Matrix(m, p);
  if (k >= n) {
    Gemm(a, b, out);
    return Status::OK();
  }
  SAMPNN_ASSIGN_OR_RETURN(std::vector<double> scores, AdelmanScores(a, b));
  std::vector<uint32_t> selected;
  std::vector<float> scales;
  SelectAndScale(&scores, k, rng, &selected, &scales);
  out->SetZero();
  float* od = out->data();
  const float* bd = b.data();
  for (size_t s = 0; s < selected.size(); ++s) {
    const uint32_t i = selected[s];
    const float* brow = bd + static_cast<size_t>(i) * p;
    for (size_t r = 0; r < m; ++r) {
      const float av = a(r, i) * scales[s];
      if (av == 0.0f) continue;
      float* orow = od + r * p;
      for (size_t j = 0; j < p; ++j) orow[j] += av * brow[j];
    }
  }
  return Status::OK();
}

Status AdelmanApproxGemmTransA(const Matrix& a, const Matrix& b, size_t k,
                               Rng& rng, Matrix* out) {
  SAMPNN_CHECK(out != nullptr);
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument(
        "AdelmanApproxGemmTransA: dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("AdelmanApproxGemmTransA: k == 0");
  const size_t m = a.rows(), n = a.cols(), p = b.cols();
  if (out->rows() != n || out->cols() != p) *out = Matrix(n, p);
  if (k >= m) {
    GemmTransA(a, b, out);
    return Status::OK();
  }
  SAMPNN_ASSIGN_OR_RETURN(std::vector<double> scores,
                          AdelmanScoresTransA(a, b));
  std::vector<uint32_t> selected;
  std::vector<float> scales;
  SelectAndScale(&scores, k, rng, &selected, &scales);
  out->SetZero();
  float* od = out->data();
  for (size_t s = 0; s < selected.size(); ++s) {
    const uint32_t i = selected[s];
    auto arow = a.Row(i);
    auto brow = b.Row(i);
    for (size_t l = 0; l < n; ++l) {
      const float av = arow[l] * scales[s];
      if (av == 0.0f) continue;
      float* orow = od + l * p;
      for (size_t j = 0; j < p; ++j) orow[j] += av * brow[j];
    }
  }
  return Status::OK();
}

Status AdelmanApproxGemmTransB(const Matrix& a, const Matrix& b, size_t k,
                               Rng& rng, Matrix* out) {
  SAMPNN_CHECK(out != nullptr);
  if (a.cols() != b.cols()) {
    return Status::InvalidArgument(
        "AdelmanApproxGemmTransB: dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("AdelmanApproxGemmTransB: k == 0");
  const size_t m = a.rows(), n = a.cols(), p = b.rows();
  if (out->rows() != m || out->cols() != p) *out = Matrix(m, p);
  if (k >= n) {
    GemmTransB(a, b, out);
    return Status::OK();
  }
  SAMPNN_ASSIGN_OR_RETURN(std::vector<double> scores,
                          AdelmanScoresTransB(a, b));
  std::vector<uint32_t> selected;
  std::vector<float> scales;
  SelectAndScale(&scores, k, rng, &selected, &scales);
  out->SetZero();
  float* od = out->data();
  const float* bd = b.data();
  // C[r, l] += (1/p_j) * A[r, j] * B[l, j] over selected j.
  for (size_t s = 0; s < selected.size(); ++s) {
    const uint32_t j = selected[s];
    const float scale = scales[s];
    const float* acol = a.data() + j;
    const float* bcol = bd + j;
    for (size_t r = 0; r < m; ++r) {
      const float av = acol[r * n] * scale;
      if (av == 0.0f) continue;
      float* orow = od + r * p;
      for (size_t l = 0; l < p; ++l) orow[l] += av * bcol[l * n];
    }
  }
  return Status::OK();
}

}  // namespace sampnn
