// The Drineas–Kannan–Mahoney randomized matrix-multiplication estimator
// (paper §6.1, Eq. 5–6): sample c column–row pairs with replacement,
// probability proportional to ||A_{*i}|| * ||B_{i*}||, and average the
// scaled outer products. Unbiased: E[CR] = AB.

#pragma once

#include <cstddef>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

/// Optimal (error-minimizing) sampling probabilities of Eq. 6:
/// p_i = ||A_{*i}|| ||B_{i*}|| / sum_j ||A_{*j}|| ||B_{j*}||.
/// Returns InvalidArgument when inner dimensions mismatch.
StatusOr<std::vector<double>> DrineasProbabilities(const Matrix& a,
                                                   const Matrix& b);

/// Estimates AB with c samples drawn with replacement from `probs`
/// (typically DrineasProbabilities, but any full-support distribution keeps
/// the estimator unbiased). `out` is resized to (a.rows() x b.cols()).
/// Complexity O(m * c * p) versus O(m * n * p) exact.
Status DrineasApproxMatmul(const Matrix& a, const Matrix& b,
                           std::span<const double> probs, size_t c, Rng& rng,
                           Matrix* out);

/// Convenience: probabilities + estimate in one call.
Status DrineasApproxMatmul(const Matrix& a, const Matrix& b, size_t c,
                           Rng& rng, Matrix* out);

}  // namespace sampnn
