// Weighted sampling primitives shared by the Monte-Carlo matmul
// approximations (paper §6): alias-method sampling with replacement for the
// Drineas et al. estimator and water-filled Bernoulli probabilities for the
// Adelman et al. estimator (Eq. 7).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

/// Normalizes non-negative weights to a probability vector. All-zero weights
/// become the uniform distribution. Returns InvalidArgument on negative
/// weights or empty input.
StatusOr<std::vector<double>> NormalizeWeights(std::span<const double> weights);

/// \brief O(1)-per-draw discrete sampler (Walker alias method).
class AliasTable {
 public:
  /// Builds from a probability vector (must sum to ~1; renormalized
  /// defensively). Returns InvalidArgument on empty/negative input.
  static StatusOr<AliasTable> Create(std::span<const double> probs);

  /// Draws one index.
  uint32_t Sample(Rng& rng) const;

  /// Probability of index i as encoded by the table.
  double Probability(uint32_t i) const {
    SAMPNN_DCHECK_BOUNDS(i, probs_.size());
    return probs_[i];
  }

  size_t size() const { return probs_.size(); }

 private:
  AliasTable(std::vector<double> probs, std::vector<double> thresholds,
             std::vector<uint32_t> alias)
      : probs_(std::move(probs)),
        thresholds_(std::move(thresholds)),
        alias_(std::move(alias)) {}

  std::vector<double> probs_;       // original probabilities
  std::vector<double> thresholds_;  // per-cell acceptance threshold
  std::vector<uint32_t> alias_;     // per-cell alias target
};

/// \brief Computes Bernoulli inclusion probabilities p_i that minimize the
/// Adelman estimator's error subject to sum(p_i) = k and p_i <= 1 (Eq. 7's
/// min{k*s_i/S, 1} with iterative redistribution — "water filling").
///
/// `scores` are the non-negative importance scores s_i (||A_col|| * ||B_row||
/// in the matmul use). If k >= scores.size(), all probabilities are 1.
/// All-zero scores get the uniform assignment k/n.
std::vector<double> WaterFillProbabilities(std::span<const double> scores,
                                           size_t k);

/// Draws a Bernoulli subset: index i included with probability probs[i].
/// Appends selected indices (ascending) to `out` (cleared first).
void BernoulliSample(std::span<const double> probs, Rng& rng,
                     std::vector<uint32_t>* out);

/// Draws `count` indices i.i.d. from `table` (with replacement).
std::vector<uint32_t> SampleWithReplacement(const AliasTable& table,
                                            size_t count, Rng& rng);

}  // namespace sampnn
