// Scheme dispatcher over exact / Drineas / Adelman matrix products, used by
// the MC-approx trainer and by the approximation micro benches to swap
// estimators behind one call site.

#pragma once

#include <string>

#include "src/approx/adelman.h"
#include "src/approx/drineas.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

/// Which estimator computes a product.
enum class MatmulScheme {
  kExact,    ///< dense gemm
  kDrineas,  ///< with-replacement CR sampling (§6.1)
  kAdelman,  ///< Bernoulli column-row sampling (§6.2, Eq. 7)
};

/// Parses "exact" | "drineas" | "adelman".
StatusOr<MatmulScheme> MatmulSchemeFromString(const std::string& name);

/// Canonical lowercase name.
const char* MatmulSchemeToString(MatmulScheme scheme);

/// C = A * B under `scheme` with k samples (ignored for kExact).
Status SchemeMatmul(MatmulScheme scheme, const Matrix& a, const Matrix& b,
                    size_t k, Rng& rng, Matrix* out);

/// Relative Frobenius error ||AB - est||_F / ||AB||_F, for benches/tests.
StatusOr<double> RelativeFrobeniusError(const Matrix& exact,
                                        const Matrix& estimate);

}  // namespace sampnn
