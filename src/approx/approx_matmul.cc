#include "src/approx/approx_matmul.h"

#include <cmath>

#include "src/tensor/kernels.h"

namespace sampnn {

StatusOr<MatmulScheme> MatmulSchemeFromString(const std::string& name) {
  if (name == "exact") return MatmulScheme::kExact;
  if (name == "drineas") return MatmulScheme::kDrineas;
  if (name == "adelman") return MatmulScheme::kAdelman;
  return Status::InvalidArgument("unknown matmul scheme: " + name);
}

const char* MatmulSchemeToString(MatmulScheme scheme) {
  switch (scheme) {
    case MatmulScheme::kExact:
      return "exact";
    case MatmulScheme::kDrineas:
      return "drineas";
    case MatmulScheme::kAdelman:
      return "adelman";
  }
  return "unknown";
}

Status SchemeMatmul(MatmulScheme scheme, const Matrix& a, const Matrix& b,
                    size_t k, Rng& rng, Matrix* out) {
  SAMPNN_CHECK(out != nullptr);
  switch (scheme) {
    case MatmulScheme::kExact: {
      if (a.cols() != b.rows()) {
        return Status::InvalidArgument("SchemeMatmul: dimension mismatch");
      }
      if (out->rows() != a.rows() || out->cols() != b.cols()) {
        *out = Matrix(a.rows(), b.cols());
      }
      Gemm(a, b, out);
      return Status::OK();
    }
    case MatmulScheme::kDrineas:
      return DrineasApproxMatmul(a, b, k, rng, out);
    case MatmulScheme::kAdelman:
      return AdelmanApproxMatmul(a, b, k, rng, out);
  }
  return Status::Internal("unreachable scheme");
}

StatusOr<double> RelativeFrobeniusError(const Matrix& exact,
                                        const Matrix& estimate) {
  if (exact.rows() != estimate.rows() || exact.cols() != estimate.cols()) {
    return Status::InvalidArgument("RelativeFrobeniusError: shape mismatch");
  }
  double num = 0.0, den = 0.0;
  const float* ed = exact.data();
  const float* sd = estimate.data();
  for (size_t i = 0; i < exact.size(); ++i) {
    const double d = static_cast<double>(ed[i]) - sd[i];
    num += d * d;
    den += static_cast<double>(ed[i]) * ed[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : INFINITY;
  return std::sqrt(num / den);
}

}  // namespace sampnn
