#include "src/approx/drineas.h"

#include "src/approx/sampling.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/util/check.h"

namespace sampnn {

StatusOr<std::vector<double>> DrineasProbabilities(const Matrix& a,
                                                   const Matrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(
        "DrineasProbabilities: inner dimension mismatch: " +
        std::to_string(a.cols()) + " vs " + std::to_string(b.rows()));
  }
  std::vector<double> weights(a.cols());
  for (size_t i = 0; i < a.cols(); ++i) {
    weights[i] = static_cast<double>(a.ColNorm(i)) * b.RowNorm(i);
  }
  return NormalizeWeights(weights);
}

Status DrineasApproxMatmul(const Matrix& a, const Matrix& b,
                           std::span<const double> probs, size_t c, Rng& rng,
                           Matrix* out) {
  SAMPNN_CHECK(out != nullptr);
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("DrineasApproxMatmul: dimension mismatch");
  }
  if (probs.size() != a.cols()) {
    return Status::InvalidArgument("DrineasApproxMatmul: probs size mismatch");
  }
  if (c == 0) {
    return Status::InvalidArgument("DrineasApproxMatmul: c must be > 0");
  }
  SAMPNN_ASSIGN_OR_RETURN(AliasTable table, AliasTable::Create(probs));
  if (TelemetryEnabled()) {
    static Histogram& h =
        MetricsRegistry::Get().GetHistogram("approx.drineas.samples");
    h.Observe(c);
  }

  const size_t m = a.rows(), n = b.cols();
  if (out->rows() != m || out->cols() != n) *out = Matrix(m, n);
  out->SetZero();
  float* od = out->data();
  const float* bd = b.data();
  for (size_t s = 0; s < c; ++s) {
    const uint32_t i = table.Sample(rng);
    SAMPNN_DCHECK_BOUNDS(i, a.cols());
    const double pi = table.Probability(i);
    if (pi <= 0.0) continue;  // unreachable under a valid alias table
    const float scale = static_cast<float>(1.0 / (static_cast<double>(c) * pi));
    const float* brow = bd + static_cast<size_t>(i) * n;
    for (size_t r = 0; r < m; ++r) {
      const float av = a(r, i) * scale;
      if (av == 0.0f) continue;
      float* orow = od + r * n;
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return Status::OK();
}

Status DrineasApproxMatmul(const Matrix& a, const Matrix& b, size_t c,
                           Rng& rng, Matrix* out) {
  SAMPNN_ASSIGN_OR_RETURN(std::vector<double> probs,
                          DrineasProbabilities(a, b));
  return DrineasApproxMatmul(a, b, probs, c, rng, out);
}

}  // namespace sampnn
