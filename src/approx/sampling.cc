#include "src/approx/sampling.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"

namespace sampnn {

StatusOr<std::vector<double>> NormalizeWeights(
    std::span<const double> weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("NormalizeWeights: empty input");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("NormalizeWeights: negative weight");
    }
    total += w;
  }
  std::vector<double> probs(weights.size());
  if (total <= 0.0) {
    std::fill(probs.begin(), probs.end(), 1.0 / weights.size());
  } else {
    for (size_t i = 0; i < weights.size(); ++i) probs[i] = weights[i] / total;
  }
  return probs;
}

StatusOr<AliasTable> AliasTable::Create(std::span<const double> probs) {
  SAMPNN_ASSIGN_OR_RETURN(std::vector<double> p, NormalizeWeights(probs));
  const size_t n = p.size();
  std::vector<double> thresholds(n, 0.0);
  std::vector<uint32_t> alias(n, 0);
  // Scale to mean 1 and split into under/over-full cells.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = p[i] * n;
  std::vector<uint32_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    thresholds[s] = scaled[s];
    alias[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (uint32_t i : large) thresholds[i] = 1.0;
  for (uint32_t i : small) thresholds[i] = 1.0;  // numerical leftovers
  return AliasTable(std::move(p), std::move(thresholds), std::move(alias));
}

uint32_t AliasTable::Sample(Rng& rng) const {
  SAMPNN_DCHECK(!thresholds_.empty());
  const uint32_t cell =
      static_cast<uint32_t>(rng.NextBounded(thresholds_.size()));
  const uint32_t pick =
      rng.NextDouble() < thresholds_[cell] ? cell : alias_[cell];
  SAMPNN_DCHECK_BOUNDS(pick, probs_.size());
  return pick;
}

std::vector<double> WaterFillProbabilities(std::span<const double> scores,
                                           size_t k) {
  const size_t n = scores.size();
  std::vector<double> probs(n, 0.0);
  if (n == 0) return probs;
  if (k >= n) {
    std::fill(probs.begin(), probs.end(), 1.0);
    return probs;
  }
  double total = 0.0;
  for (double s : scores) {
    SAMPNN_DCHECK(s >= 0.0);
    total += s;
  }
  if (total <= 0.0) {
    std::fill(probs.begin(), probs.end(),
              static_cast<double>(k) / static_cast<double>(n));
    return probs;
  }
  // Iteratively pin p_i = 1 for entries whose proportional share exceeds 1
  // and redistribute the remaining budget over the rest.
  std::vector<bool> pinned(n, false);
  size_t num_pinned = 0;
  double pinned_free_total = total;
  double budget = static_cast<double>(k);
  for (;;) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (pinned[i]) continue;
      const double p = budget * scores[i] / pinned_free_total;
      if (p >= 1.0) {
        pinned[i] = true;
        ++num_pinned;
        budget -= 1.0;
        pinned_free_total -= scores[i];
        changed = true;
      }
    }
    if (!changed) break;
    if (num_pinned >= k || pinned_free_total <= 0.0) break;
  }
  for (size_t i = 0; i < n; ++i) {
    if (pinned[i]) {
      probs[i] = 1.0;
    } else if (pinned_free_total > 0.0 && budget > 0.0) {
      probs[i] = std::min(1.0, budget * scores[i] / pinned_free_total);
    } else {
      probs[i] = 0.0;
    }
  }
  return probs;
}

void BernoulliSample(std::span<const double> probs, Rng& rng,
                     std::vector<uint32_t>* out) {
  SAMPNN_CHECK(out != nullptr);
  out->clear();
  for (size_t i = 0; i < probs.size(); ++i) {
    SAMPNN_DCHECK_MSG(probs[i] >= 0.0 && probs[i] <= 1.0,
                      "BernoulliSample: probability outside [0, 1]");
    if (rng.NextBernoulli(probs[i])) out->push_back(static_cast<uint32_t>(i));
  }
}

std::vector<uint32_t> SampleWithReplacement(const AliasTable& table,
                                            size_t count, Rng& rng) {
  std::vector<uint32_t> out(count);
  for (auto& v : out) v = table.Sample(rng);
  return out;
}

}  // namespace sampnn
