#include "src/cnn/conv2d.h"

#include <algorithm>
#include <cstring>

#include "src/tensor/kernels.h"

namespace sampnn {

StatusOr<Conv2dLayer> Conv2dLayer::Create(const Conv2dConfig& config,
                                          const TensorShape& input_shape,
                                          Rng& rng) {
  if (config.in_channels != input_shape.channels) {
    return Status::InvalidArgument("Conv2d: in_channels mismatch");
  }
  if (config.out_channels == 0 || config.kernel == 0 || config.stride == 0) {
    return Status::InvalidArgument("Conv2d: zero-sized parameter");
  }
  const size_t padded_h = input_shape.height + 2 * config.padding;
  const size_t padded_w = input_shape.width + 2 * config.padding;
  if (padded_h < config.kernel || padded_w < config.kernel) {
    return Status::InvalidArgument("Conv2d: kernel larger than padded input");
  }
  TensorShape out;
  out.channels = config.out_channels;
  out.height = (padded_h - config.kernel) / config.stride + 1;
  out.width = (padded_w - config.kernel) / config.stride + 1;
  const size_t fan_in = config.in_channels * config.kernel * config.kernel;
  Matrix filters =
      InitializeWeights(config.initializer, fan_in, config.out_channels, rng);
  return Conv2dLayer(config, input_shape, out, std::move(filters));
}

void Conv2dLayer::Im2Col(std::span<const float> image, Matrix* cols) const {
  const size_t k = config_.kernel, stride = config_.stride,
               pad = config_.padding;
  const size_t in_h = input_shape_.height, in_w = input_shape_.width;
  const size_t out_h = output_shape_.height, out_w = output_shape_.width;
  const size_t patch = config_.in_channels * k * k;
  if (cols->rows() != out_h * out_w || cols->cols() != patch) {
    *cols = Matrix(out_h * out_w, patch);
  }
  float* cd = cols->data();
  for (size_t oy = 0; oy < out_h; ++oy) {
    for (size_t ox = 0; ox < out_w; ++ox) {
      float* row = cd + (oy * out_w + ox) * patch;
      size_t idx = 0;
      for (size_t c = 0; c < config_.in_channels; ++c) {
        const float* plane = image.data() + c * in_h * in_w;
        for (size_t ky = 0; ky < k; ++ky) {
          const long iy = static_cast<long>(oy * stride + ky) -
                          static_cast<long>(pad);
          for (size_t kx = 0; kx < k; ++kx, ++idx) {
            const long ix = static_cast<long>(ox * stride + kx) -
                            static_cast<long>(pad);
            row[idx] = (iy < 0 || iy >= static_cast<long>(in_h) || ix < 0 ||
                        ix >= static_cast<long>(in_w))
                           ? 0.0f
                           : plane[iy * static_cast<long>(in_w) + ix];
          }
        }
      }
    }
  }
}

void Conv2dLayer::Col2Im(const Matrix& cols, std::span<float> image) const {
  const size_t k = config_.kernel, stride = config_.stride,
               pad = config_.padding;
  const size_t in_h = input_shape_.height, in_w = input_shape_.width;
  const size_t out_h = output_shape_.height, out_w = output_shape_.width;
  const size_t patch = config_.in_channels * k * k;
  std::fill(image.begin(), image.end(), 0.0f);
  const float* cd = cols.data();
  for (size_t oy = 0; oy < out_h; ++oy) {
    for (size_t ox = 0; ox < out_w; ++ox) {
      const float* row = cd + (oy * out_w + ox) * patch;
      size_t idx = 0;
      for (size_t c = 0; c < config_.in_channels; ++c) {
        float* plane = image.data() + c * in_h * in_w;
        for (size_t ky = 0; ky < k; ++ky) {
          const long iy = static_cast<long>(oy * stride + ky) -
                          static_cast<long>(pad);
          for (size_t kx = 0; kx < k; ++kx, ++idx) {
            const long ix = static_cast<long>(ox * stride + kx) -
                            static_cast<long>(pad);
            if (iy >= 0 && iy < static_cast<long>(in_h) && ix >= 0 &&
                ix < static_cast<long>(in_w)) {
              plane[iy * static_cast<long>(in_w) + ix] += row[idx];
            }
          }
        }
      }
    }
  }
}

void Conv2dLayer::Forward(const Matrix& input, Matrix* z, Matrix* a) const {
  SAMPNN_CHECK_EQ(input.cols(), input_shape_.size());
  const size_t batch = input.rows();
  const size_t out_size = output_shape_.size();
  const size_t spatial = output_shape_.height * output_shape_.width;
  Matrix* target = z != nullptr ? z : a;
  SAMPNN_CHECK(target != nullptr);
  if (target->rows() != batch || target->cols() != out_size) {
    *target = Matrix(batch, out_size);
  }
  Matrix cols;
  Matrix prod(spatial, config_.out_channels);
  for (size_t b = 0; b < batch; ++b) {
    Im2Col(input.Row(b), &cols);
    // prod[s, o] = <patch s, filter o>.
    Gemm(cols, filters_, &prod);
    float* out_row = target->Row(b).data();
    for (size_t o = 0; o < config_.out_channels; ++o) {
      float* plane = out_row + o * spatial;
      const float bias = bias_[o];
      for (size_t s = 0; s < spatial; ++s) plane[s] = prod(s, o) + bias;
    }
  }
  if (a != nullptr) {
    if (a != target) {
      if (a->rows() != batch || a->cols() != out_size) {
        *a = Matrix(batch, out_size);
      }
      ApplyActivation(config_.activation,
                      std::span<const float>(target->data(), target->size()),
                      std::span<float>(a->data(), a->size()));
    } else {
      // a aliased with z storage only when z == nullptr: activate in place.
      ApplyActivation(config_.activation, a);
    }
  }
}

void Conv2dLayer::MultiplyActivationGradInPlace(const Matrix& z,
                                                Matrix* delta) const {
  sampnn::MultiplyActivationGrad(config_.activation, z, delta);
}

void Conv2dLayer::Backward(const Matrix& input, const Matrix& delta,
                           Matrix* grad_filters, std::span<float> grad_bias,
                           Matrix* grad_input) const {
  SAMPNN_CHECK_EQ(input.cols(), input_shape_.size());
  SAMPNN_CHECK_EQ(delta.cols(), output_shape_.size());
  SAMPNN_CHECK_EQ(input.rows(), delta.rows());
  const size_t batch = input.rows();
  const size_t spatial = output_shape_.height * output_shape_.width;
  const size_t patch = config_.in_channels * config_.kernel * config_.kernel;

  if (grad_filters != nullptr) {
    if (grad_filters->rows() != patch ||
        grad_filters->cols() != config_.out_channels) {
      *grad_filters = Matrix(patch, config_.out_channels);
    }
    grad_filters->SetZero();
  }
  if (!grad_bias.empty()) {
    SAMPNN_CHECK_EQ(grad_bias.size(), config_.out_channels);
    std::fill(grad_bias.begin(), grad_bias.end(), 0.0f);
  }
  if (grad_input != nullptr &&
      (grad_input->rows() != batch ||
       grad_input->cols() != input_shape_.size())) {
    *grad_input = Matrix(batch, input_shape_.size());
  }

  Matrix cols;
  Matrix delta_sc(spatial, config_.out_channels);  // delta as (spatial x out)
  Matrix grad_cols(spatial, patch);
  for (size_t b = 0; b < batch; ++b) {
    // Reorder this example's delta from (out, spatial) planes to
    // (spatial x out) for gemm.
    auto drow = delta.Row(b);
    for (size_t o = 0; o < config_.out_channels; ++o) {
      for (size_t s = 0; s < spatial; ++s) {
        delta_sc(s, o) = drow[o * spatial + s];
      }
    }
    if (grad_filters != nullptr || grad_input != nullptr) {
      Im2Col(input.Row(b), &cols);
    }
    if (grad_filters != nullptr) {
      // grad_F += cols^T * delta_sc.
      GemmTransA(cols, delta_sc, grad_filters, 1.0f, 1.0f);
    }
    if (!grad_bias.empty()) {
      for (size_t o = 0; o < config_.out_channels; ++o) {
        float acc = 0.0f;
        for (size_t s = 0; s < spatial; ++s) acc += delta_sc(s, o);
        grad_bias[o] += acc;
      }
    }
    if (grad_input != nullptr) {
      // grad_cols = delta_sc * F^T, then scatter back.
      GemmTransB(delta_sc, filters_, &grad_cols);
      Col2Im(grad_cols, grad_input->Row(b));
    }
  }
}

StatusOr<MaxPool2d> MaxPool2d::Create(const TensorShape& input_shape,
                                      size_t window) {
  if (window == 0) return Status::InvalidArgument("MaxPool2d: window == 0");
  if (input_shape.height % window != 0 || input_shape.width % window != 0) {
    return Status::InvalidArgument(
        "MaxPool2d: window must divide the spatial dimensions");
  }
  TensorShape out = input_shape;
  out.height /= window;
  out.width /= window;
  return MaxPool2d(input_shape, out, window);
}

void MaxPool2d::Forward(const Matrix& input, Matrix* output) {
  SAMPNN_CHECK(output != nullptr);
  SAMPNN_CHECK_EQ(input.cols(), input_shape_.size());
  const size_t batch = input.rows();
  if (output->rows() != batch || output->cols() != output_shape_.size()) {
    *output = Matrix(batch, output_shape_.size());
  }
  argmax_.assign(batch * output_shape_.size(), 0);
  const size_t in_h = input_shape_.height, in_w = input_shape_.width;
  const size_t out_h = output_shape_.height, out_w = output_shape_.width;
  for (size_t b = 0; b < batch; ++b) {
    auto in_row = input.Row(b);
    auto out_row = output->Row(b);
    for (size_t c = 0; c < input_shape_.channels; ++c) {
      const float* plane = in_row.data() + c * in_h * in_w;
      for (size_t oy = 0; oy < out_h; ++oy) {
        for (size_t ox = 0; ox < out_w; ++ox) {
          float best = -3.4e38f;
          size_t best_idx = 0;
          for (size_t wy = 0; wy < window_; ++wy) {
            for (size_t wx = 0; wx < window_; ++wx) {
              const size_t iy = oy * window_ + wy;
              const size_t ix = ox * window_ + wx;
              const size_t idx = iy * in_w + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          const size_t out_idx = c * out_h * out_w + oy * out_w + ox;
          out_row[out_idx] = best;
          argmax_[b * output_shape_.size() + out_idx] =
              static_cast<uint32_t>(c * in_h * in_w + best_idx);
        }
      }
    }
  }
}

void MaxPool2d::Backward(const Matrix& delta, Matrix* grad_input) const {
  SAMPNN_CHECK(grad_input != nullptr);
  SAMPNN_CHECK_EQ(delta.cols(), output_shape_.size());
  const size_t batch = delta.rows();
  SAMPNN_CHECK_EQ(argmax_.size(), batch * output_shape_.size());
  if (grad_input->rows() != batch ||
      grad_input->cols() != input_shape_.size()) {
    *grad_input = Matrix(batch, input_shape_.size());
  }
  grad_input->SetZero();
  for (size_t b = 0; b < batch; ++b) {
    auto drow = delta.Row(b);
    auto grow = grad_input->Row(b);
    const uint32_t* am = argmax_.data() + b * output_shape_.size();
    for (size_t i = 0; i < output_shape_.size(); ++i) {
      grow[am[i]] += drow[i];
    }
  }
}

}  // namespace sampnn
