// The paper's §8.4 convolutional experiment, as an API: a convolutional
// feature extractor trained exactly, with a two-layer fully-connected
// classifier on top whose training can be exact, MC-approximated (the
// sampled backward products of §6.2), or Dropout-masked. "We limit the
// approximation to the classifier and keep the convoluted operations
// exact. Also, for CIFAR-10, we use pure SGD" — hence plain SGD throughout.

#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "src/cnn/feature_extractor.h"
#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/metrics/split_timer.h"
#include "src/nn/mlp.h"

namespace sampnn {

/// How the FC classifier's backward pass is computed.
enum class ClassifierMode {
  kExact,    ///< dense gemms (the Standard baseline)
  kMc,       ///< Adelman-sampled backward products (MC-approx)
  kDropout,  ///< fixed-probability node masks (Dropout)
};

/// Parses "exact" | "mc" | "dropout".
StatusOr<ClassifierMode> ClassifierModeFromString(const std::string& name);

/// Configuration of the full conv + classifier model.
struct ConvClassifierConfig {
  FeatureExtractorConfig features;
  size_t hidden = 256;     ///< width of the first FC layer
  size_t num_classes = 10;
  ClassifierMode mode = ClassifierMode::kExact;
  McOptions mc;            ///< used in kMc mode
  float dropout_keep = 0.05f;  ///< used in kDropout mode
  float learning_rate = 0.01f;
  bool train_features = true;  ///< false = frozen random features
  uint64_t seed = 42;
};

/// \brief Conv feature extractor + 2-layer FC classifier with selectable
/// classifier approximation.
class ConvClassifier {
 public:
  static StatusOr<ConvClassifier> Create(const ConvClassifierConfig& config);

  /// One SGD step over a minibatch; returns the batch loss. Feedforward and
  /// backprop wall time are charged to the timer(), with the conv portion
  /// additionally recorded under "conv_forward"/"conv_backward".
  StatusOr<double> Step(const Matrix& x, std::span<const int32_t> y);

  /// Argmax predictions (exact forward everywhere).
  std::vector<int32_t> Predict(const Matrix& x);

  /// Accuracy over a dataset, evaluated in chunks.
  double Evaluate(const Dataset& data, size_t eval_batch = 64);

  const ConvClassifierConfig& config() const { return config_; }
  size_t num_params() const;
  SplitTimer& timer() { return timer_; }

 private:
  ConvClassifier(const ConvClassifierConfig& config, FeatureExtractor features,
                 Mlp classifier);

  ConvClassifierConfig config_;
  FeatureExtractor features_;
  Mlp classifier_;  // 1 hidden FC layer + linear output = "two FC layers"
  FeatureExtractor::Workspace fx_ws_;
  MlpWorkspace clf_ws_;
  Matrix grad_logits_;
  Matrix mask_;  // dropout mode
  Rng rng_;
  SplitTimer timer_;
};

}  // namespace sampnn
