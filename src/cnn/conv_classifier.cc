#include "src/cnn/conv_classifier.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/approx/adelman.h"
#include "src/nn/loss.h"
#include "src/telemetry/trace.h"
#include "src/tensor/kernels.h"

namespace sampnn {

StatusOr<ClassifierMode> ClassifierModeFromString(const std::string& name) {
  if (name == "exact") return ClassifierMode::kExact;
  if (name == "mc") return ClassifierMode::kMc;
  if (name == "dropout") return ClassifierMode::kDropout;
  return Status::InvalidArgument("unknown classifier mode: " + name);
}

StatusOr<ConvClassifier> ConvClassifier::Create(
    const ConvClassifierConfig& config) {
  if (config.num_classes == 0 || config.hidden == 0) {
    return Status::InvalidArgument("ConvClassifier: zero-sized classifier");
  }
  if (config.learning_rate <= 0.0f) {
    return Status::InvalidArgument("ConvClassifier: learning rate must be > 0");
  }
  if (config.mode == ClassifierMode::kDropout &&
      (config.dropout_keep <= 0.0f || config.dropout_keep > 1.0f)) {
    return Status::InvalidArgument("ConvClassifier: dropout_keep in (0, 1]");
  }
  SAMPNN_ASSIGN_OR_RETURN(FeatureExtractor features,
                          FeatureExtractor::Create(config.features));
  MlpConfig clf_cfg = MlpConfig::Uniform(features.feature_dim(),
                                         config.num_classes, /*depth=*/1,
                                         config.hidden);
  clf_cfg.seed = config.seed ^ 0xC1A551F1ull;
  SAMPNN_ASSIGN_OR_RETURN(Mlp classifier, Mlp::Create(clf_cfg));
  return ConvClassifier(config, std::move(features), std::move(classifier));
}

ConvClassifier::ConvClassifier(const ConvClassifierConfig& config,
                               FeatureExtractor features, Mlp classifier)
    : config_(config),
      features_(std::move(features)),
      classifier_(std::move(classifier)),
      rng_(config.seed ^ 0xC0371ull) {}

size_t ConvClassifier::num_params() const {
  return features_.num_params() + classifier_.num_params();
}

StatusOr<double> ConvClassifier::Step(const Matrix& x,
                                      std::span<const int32_t> y) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("ConvClassifier::Step: batch mismatch");
  }
  // --- Forward: exact conv, exact FC (masked in dropout mode). ---
  const Matrix* feats = nullptr;
  {
    PhaseScope scope(&timer_, "conv_forward");
    feats = &features_.Forward(x, &fx_ws_);
  }
  double loss = 0.0;
  {
    PhaseScope scope(&timer_, kPhaseForward);
    classifier_.Forward(*feats, &clf_ws_);
    if (config_.mode == ClassifierMode::kDropout) {
      Matrix& a1 = clf_ws_.a[0];
      if (mask_.rows() != a1.rows() || mask_.cols() != a1.cols()) {
        mask_ = Matrix(a1.rows(), a1.cols());
      }
      const float inv_keep = 1.0f / config_.dropout_keep;
      float* md = mask_.data();
      for (size_t i = 0; i < mask_.size(); ++i) {
        md[i] = rng_.NextBernoulli(config_.dropout_keep) ? inv_keep : 0.0f;
      }
      HadamardInPlace(&a1, mask_);
      // Recompute the output layer on the masked activations.
      classifier_.layer(1).ForwardLinear(a1, &clf_ws_.z[1]);
      clf_ws_.a[1] = clf_ws_.z[1];
    }
  }
  // --- Backward: classifier per mode, conv exact. ---
  {
    PhaseScope scope(&timer_, kPhaseBackward);
    SAMPNN_ASSIGN_OR_RETURN(loss, SoftmaxCrossEntropy::LossAndGrad(
                                      clf_ws_.a.back(), y, &grad_logits_));
    Layer& fc1 = classifier_.layer(0);
    Layer& fc2 = classifier_.layer(1);
    const Matrix& a1 = clf_ws_.a[0];

    Matrix grad_w2, grad_w1, delta1, delta_feats;
    std::vector<float> grad_b2(fc2.out_dim()), grad_b1(fc1.out_dim());
    const size_t batch = x.rows();
    if (config_.mode == ClassifierMode::kMc) {
      const size_t k_grad = std::min(batch, config_.mc.grad_batch_samples);
      SAMPNN_RETURN_NOT_OK(AdelmanApproxGemmTransA(a1, grad_logits_, k_grad,
                                                   rng_, &grad_w2));
      const size_t k_delta = std::min(
          fc2.in_dim(),
          std::max(config_.mc.delta_min_samples,
                   static_cast<size_t>(std::llround(
                       config_.mc.delta_sample_ratio *
                       static_cast<double>(fc2.in_dim())))));
      // delta1 over fc1 outputs: sampled over the shared inner dimension.
      SAMPNN_RETURN_NOT_OK(AdelmanApproxGemmTransB(
          grad_logits_, fc2.weights(),
          std::min(k_delta, fc2.weights().cols()), rng_, &delta1));
    } else {
      grad_w2 = Matrix(fc2.in_dim(), fc2.out_dim());
      GemmTransA(a1, grad_logits_, &grad_w2);
      delta1 = Matrix(batch, fc2.in_dim());
      GemmTransB(grad_logits_, fc2.weights(), &delta1);
    }
    ColumnSums(grad_logits_, grad_b2);
    MultiplyActivationGrad(fc1.activation(), clf_ws_.z[0], &delta1);
    if (config_.mode == ClassifierMode::kDropout) {
      HadamardInPlace(&delta1, mask_);
    }
    if (config_.mode == ClassifierMode::kMc) {
      const size_t k_grad = std::min(batch, config_.mc.grad_batch_samples);
      SAMPNN_RETURN_NOT_OK(
          AdelmanApproxGemmTransA(*feats, delta1, k_grad, rng_, &grad_w1));
    } else {
      grad_w1 = Matrix(fc1.in_dim(), fc1.out_dim());
      GemmTransA(*feats, delta1, &grad_w1);
    }
    ColumnSums(delta1, grad_b1);
    if (config_.train_features) {
      // Exact delta at the features (the conv path stays exact even in MC
      // mode, per §8.4).
      delta_feats = Matrix(batch, fc1.in_dim());
      GemmTransB(delta1, fc1.weights(), &delta_feats);
    }

    // Pure SGD updates on the classifier.
    const float lr = config_.learning_rate;
    Axpy(-lr, grad_w2, &fc2.weights());
    Axpy(-lr, grad_w1, &fc1.weights());
    auto b2 = fc2.bias();
    for (size_t j = 0; j < b2.size(); ++j) b2[j] -= lr * grad_b2[j];
    auto b1 = fc1.bias();
    for (size_t j = 0; j < b1.size(); ++j) b1[j] -= lr * grad_b1[j];

    if (config_.train_features) {
      PhaseScope conv_scope(&timer_, "conv_backward");
      features_.BackwardAndUpdate(x, &fx_ws_, delta_feats, lr);
    }
  }
  return loss;
}

std::vector<int32_t> ConvClassifier::Predict(const Matrix& x) {
  const Matrix& feats = features_.Forward(x, &fx_ws_);
  const Matrix& logits = classifier_.Forward(feats, &clf_ws_);
  return SoftmaxCrossEntropy::Predict(logits);
}

double ConvClassifier::Evaluate(const Dataset& data, size_t eval_batch) {
  if (data.size() == 0) return 0.0;
  size_t correct = 0;
  Matrix x;
  std::vector<int32_t> y;
  std::vector<size_t> idx;
  for (size_t begin = 0; begin < data.size(); begin += eval_batch) {
    const size_t end = std::min(data.size(), begin + eval_batch);
    idx.resize(end - begin);
    std::iota(idx.begin(), idx.end(), begin);
    data.FillBatch(idx, &x, &y);
    const auto preds = Predict(x);
    for (size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == y[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace sampnn
