// 2-D convolution for the paper's convolutional setting (§8.4: "we used
// ResNet-18 with two fully-connected layers as a classifier ... We limit
// the approximation to the classifier and keep the convoluted operations
// exact").
//
// Tensors are NCHW, flattened row-major inside a Matrix: each batch row is
// one example's C*H*W values. Convolution runs as im2col + the library's
// blocked gemm, the standard CPU implementation strategy.

#pragma once

#include <cstddef>

#include "src/nn/activation.h"
#include "src/nn/initializer.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

/// Spatial shape of a feature map batch (the per-row layout of a Matrix).
struct TensorShape {
  size_t channels = 0;
  size_t height = 0;
  size_t width = 0;
  size_t size() const { return channels * height * width; }
  bool operator==(const TensorShape&) const = default;
};

/// Configuration of one convolution layer.
struct Conv2dConfig {
  size_t in_channels = 0;
  size_t out_channels = 0;
  size_t kernel = 3;
  size_t stride = 1;
  size_t padding = 1;
  Activation activation = Activation::kRelu;
  Initializer initializer = Initializer::kHe;
};

/// \brief A conv + bias + activation layer with exact forward and backward.
class Conv2dLayer {
 public:
  /// Validates the config against the input shape (kernel fits, channels
  /// match) and initializes filters.
  static StatusOr<Conv2dLayer> Create(const Conv2dConfig& config,
                                      const TensorShape& input_shape,
                                      Rng& rng);

  const TensorShape& input_shape() const { return input_shape_; }
  const TensorShape& output_shape() const { return output_shape_; }
  const Conv2dConfig& config() const { return config_; }

  /// Filter matrix, (in_channels*k*k) x out_channels — column j is filter j.
  Matrix& filters() { return filters_; }
  const Matrix& filters() const { return filters_; }
  std::span<float> bias() { return bias_; }
  std::span<const float> bias() const { return bias_; }

  /// Forward: input (batch x in.size()) -> pre-activation z and activation a
  /// (batch x out.size()). `z` may be null when only `a` is needed.
  void Forward(const Matrix& input, Matrix* z, Matrix* a) const;

  /// Backward: given dL/da ⊙ f'(z) precomputed in `delta`
  /// (batch x out.size()) and the forward input, computes filter/bias
  /// gradients and (optionally) dL/dinput.
  void Backward(const Matrix& input, const Matrix& delta, Matrix* grad_filters,
                std::span<float> grad_bias, Matrix* grad_input) const;

  /// Applies dL/dz = dL/da ⊙ f'(z) in place given the stored z.
  void MultiplyActivationGradInPlace(const Matrix& z, Matrix* delta) const;

  size_t num_params() const { return filters_.size() + bias_.size(); }

 private:
  Conv2dLayer(const Conv2dConfig& config, const TensorShape& in,
              const TensorShape& out, Matrix filters)
      : config_(config),
        input_shape_(in),
        output_shape_(out),
        filters_(std::move(filters)),
        bias_(config.out_channels, 0.0f) {}

  // im2col of one example: (H_out*W_out) x (C_in*k*k).
  void Im2Col(std::span<const float> image, Matrix* cols) const;
  // Scatter-add of col-gradients back to image layout.
  void Col2Im(const Matrix& cols, std::span<float> image) const;

  Conv2dConfig config_;
  TensorShape input_shape_;
  TensorShape output_shape_;
  Matrix filters_;
  std::vector<float> bias_;
};

/// \brief 2x2 (configurable) max pooling with argmax-routed backward.
class MaxPool2d {
 public:
  /// `window` divides into the input via stride = window (non-overlapping).
  static StatusOr<MaxPool2d> Create(const TensorShape& input_shape,
                                    size_t window = 2);

  const TensorShape& input_shape() const { return input_shape_; }
  const TensorShape& output_shape() const { return output_shape_; }

  /// Forward; records argmax indices for the batch (used by Backward).
  void Forward(const Matrix& input, Matrix* output);

  /// Routes `delta` (batch x out.size()) back to input positions using the
  /// argmaxes of the latest Forward.
  void Backward(const Matrix& delta, Matrix* grad_input) const;

 private:
  MaxPool2d(const TensorShape& in, const TensorShape& out, size_t window)
      : input_shape_(in), output_shape_(out), window_(window) {}

  TensorShape input_shape_;
  TensorShape output_shape_;
  size_t window_;
  std::vector<uint32_t> argmax_;  // batch x out.size(), input offsets
};

}  // namespace sampnn
