// A ResNet-style convolutional feature extractor for the paper's §8.4
// convolutional setting: a stem convolution followed by residual blocks
// (two 3x3 convs + identity skip) and max pooling. The extractor trains
// with exact backpropagation — the paper keeps "the convoluted operations
// exact" and applies sampling only to the fully-connected classifier
// (see ConvClassifier in conv_classifier.h).
//
// Batch norm is intentionally omitted (He-initialized convs + ReLU are
// stable at these depths); this is the documented simplification of the
// paper's ResNet-18 (DESIGN.md).

#pragma once

#include <memory>
#include <vector>

#include "src/cnn/conv2d.h"
#include "src/tensor/matrix.h"
#include "src/util/status.h"

namespace sampnn {

/// Architecture of the extractor.
struct FeatureExtractorConfig {
  TensorShape input;           ///< e.g. {3, 32, 32} for CIFAR-like data
  size_t stem_channels = 16;   ///< channels after the stem convolution
  size_t num_blocks = 2;       ///< residual blocks after the stem
  size_t pool_window = 2;      ///< max-pool window after stem and blocks
  uint64_t seed = 42;
};

/// \brief Stem conv + N residual blocks + pooling, with exact backprop.
class FeatureExtractor {
 public:
  static StatusOr<FeatureExtractor> Create(
      const FeatureExtractorConfig& config);

  /// Flattened output dimension (input to the FC classifier).
  size_t feature_dim() const { return output_shape_.size(); }
  const TensorShape& output_shape() const { return output_shape_; }
  size_t num_params() const;

  /// Per-pass intermediate state (reused across steps).
  struct Workspace {
    // Stem.
    Matrix stem_z, stem_a, stem_pooled;
    // Per block: z1, a1, z2, sum (pre-activation of the skip add), out,
    // pooled out.
    struct BlockState {
      Matrix z1, a1, z2, sum, out, pooled;
    };
    std::vector<BlockState> blocks;
  };

  /// Forward pass; returns the flattened features (last pooled output).
  const Matrix& Forward(const Matrix& input, Workspace* ws);

  /// Exact backward from dL/dfeatures; applies a plain SGD update with
  /// learning rate `lr` to all filters/biases (the paper uses pure SGD in
  /// the convolutional setting).
  void BackwardAndUpdate(const Matrix& input, Workspace* ws,
                         const Matrix& delta_features, float lr);

 private:
  struct Block {
    std::unique_ptr<Conv2dLayer> conv1;  // linear activation; relu applied
    std::unique_ptr<Conv2dLayer> conv2;  // manually around the skip add
    std::unique_ptr<MaxPool2d> pool;
  };

  FeatureExtractor() = default;

  FeatureExtractorConfig config_;
  std::unique_ptr<Conv2dLayer> stem_;
  std::unique_ptr<MaxPool2d> stem_pool_;
  std::vector<Block> blocks_;
  TensorShape output_shape_;
};

}  // namespace sampnn
