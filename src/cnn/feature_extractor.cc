#include "src/cnn/feature_extractor.h"

#include "src/tensor/kernels.h"

namespace sampnn {

namespace {

// relu applied out-of-place into `a` (shape copied from z).
void Relu(const Matrix& z, Matrix* a) {
  if (a->rows() != z.rows() || a->cols() != z.cols()) {
    *a = Matrix(z.rows(), z.cols());
  }
  ApplyActivation(Activation::kRelu,
                  std::span<const float>(z.data(), z.size()),
                  std::span<float>(a->data(), a->size()));
}

}  // namespace

StatusOr<FeatureExtractor> FeatureExtractor::Create(
    const FeatureExtractorConfig& config) {
  if (config.input.size() == 0) {
    return Status::InvalidArgument("FeatureExtractor: empty input shape");
  }
  if (config.stem_channels == 0) {
    return Status::InvalidArgument("FeatureExtractor: stem_channels == 0");
  }
  FeatureExtractor fx;
  fx.config_ = config;
  Rng rng(config.seed);

  Conv2dConfig stem_cfg;
  stem_cfg.in_channels = config.input.channels;
  stem_cfg.out_channels = config.stem_channels;
  stem_cfg.activation = Activation::kRelu;
  SAMPNN_ASSIGN_OR_RETURN(Conv2dLayer stem,
                          Conv2dLayer::Create(stem_cfg, config.input, rng));
  TensorShape shape = stem.output_shape();
  fx.stem_ = std::make_unique<Conv2dLayer>(std::move(stem));
  SAMPNN_ASSIGN_OR_RETURN(MaxPool2d stem_pool,
                          MaxPool2d::Create(shape, config.pool_window));
  shape = stem_pool.output_shape();
  fx.stem_pool_ = std::make_unique<MaxPool2d>(std::move(stem_pool));

  for (size_t b = 0; b < config.num_blocks; ++b) {
    Block block;
    Conv2dConfig conv_cfg;
    conv_cfg.in_channels = shape.channels;
    conv_cfg.out_channels = shape.channels;  // identity skip: same channels
    conv_cfg.activation = Activation::kLinear;  // relu applied around the add
    SAMPNN_ASSIGN_OR_RETURN(Conv2dLayer c1,
                            Conv2dLayer::Create(conv_cfg, shape, rng));
    SAMPNN_ASSIGN_OR_RETURN(Conv2dLayer c2,
                            Conv2dLayer::Create(conv_cfg, shape, rng));
    block.conv1 = std::make_unique<Conv2dLayer>(std::move(c1));
    block.conv2 = std::make_unique<Conv2dLayer>(std::move(c2));
    // Pool while the spatial extent allows it.
    if (shape.height % config.pool_window == 0 &&
        shape.width % config.pool_window == 0 &&
        shape.height / config.pool_window >= 2 &&
        shape.width / config.pool_window >= 2) {
      SAMPNN_ASSIGN_OR_RETURN(MaxPool2d pool,
                              MaxPool2d::Create(shape, config.pool_window));
      shape = pool.output_shape();
      block.pool = std::make_unique<MaxPool2d>(std::move(pool));
    }
    fx.blocks_.push_back(std::move(block));
  }
  fx.output_shape_ = shape;
  return fx;
}

size_t FeatureExtractor::num_params() const {
  size_t total = stem_->num_params();
  for (const Block& b : blocks_) {
    total += b.conv1->num_params() + b.conv2->num_params();
  }
  return total;
}

const Matrix& FeatureExtractor::Forward(const Matrix& input, Workspace* ws) {
  SAMPNN_CHECK(ws != nullptr);
  stem_->Forward(input, &ws->stem_z, &ws->stem_a);
  stem_pool_->Forward(ws->stem_a, &ws->stem_pooled);
  ws->blocks.resize(blocks_.size());
  const Matrix* cur = &ws->stem_pooled;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    Block& block = blocks_[i];
    auto& state = ws->blocks[i];
    block.conv1->Forward(*cur, &state.z1, nullptr);
    Relu(state.z1, &state.a1);
    block.conv2->Forward(state.a1, &state.z2, nullptr);
    // Identity skip: sum = z2 + input, out = relu(sum).
    state.sum = state.z2;
    Axpy(1.0f, *cur, &state.sum);
    Relu(state.sum, &state.out);
    if (block.pool != nullptr) {
      block.pool->Forward(state.out, &state.pooled);
      cur = &state.pooled;
    } else {
      cur = &state.out;
    }
  }
  return *cur;
}

void FeatureExtractor::BackwardAndUpdate(const Matrix& input, Workspace* ws,
                                         const Matrix& delta_features,
                                         float lr) {
  SAMPNN_CHECK(ws != nullptr);
  SAMPNN_CHECK_EQ(ws->blocks.size(), blocks_.size());

  Matrix delta = delta_features;
  Matrix grad_filters;
  std::vector<float> grad_bias;
  Matrix delta_in, delta_skip;

  auto sgd_update = [lr](Conv2dLayer* conv, const Matrix& gf,
                         std::span<const float> gb) {
    Axpy(-lr, gf, &conv->filters());
    auto bias = conv->bias();
    for (size_t j = 0; j < bias.size(); ++j) bias[j] -= lr * gb[j];
  };

  for (size_t i = blocks_.size(); i-- > 0;) {
    Block& block = blocks_[i];
    auto& state = ws->blocks[i];
    if (block.pool != nullptr) {
      block.pool->Backward(delta, &delta_in);
      delta = std::move(delta_in);
      delta_in = Matrix();
    }
    // delta is dL/d(out); out = relu(sum).
    MultiplyActivationGrad(Activation::kRelu, state.sum, &delta);
    // sum = z2 + block_input: the delta splits into the conv path and the
    // identity skip.
    delta_skip = delta;
    // conv2 backward (linear activation): delta is already dL/dz2.
    const Matrix& block_input =
        (i == 0) ? ws->stem_pooled : (blocks_[i - 1].pool != nullptr
                                          ? ws->blocks[i - 1].pooled
                                          : ws->blocks[i - 1].out);
    grad_bias.assign(block.conv2->config().out_channels, 0.0f);
    block.conv2->Backward(state.a1, delta, &grad_filters, grad_bias,
                          &delta_in);
    sgd_update(block.conv2.get(), grad_filters, grad_bias);
    // Through relu(z1).
    MultiplyActivationGrad(Activation::kRelu, state.z1, &delta_in);
    grad_bias.assign(block.conv1->config().out_channels, 0.0f);
    Matrix delta_block_in;
    block.conv1->Backward(block_input, delta_in, &grad_filters, grad_bias,
                          &delta_block_in);
    sgd_update(block.conv1.get(), grad_filters, grad_bias);
    // Combine with the skip path.
    Axpy(1.0f, delta_skip, &delta_block_in);
    delta = std::move(delta_block_in);
  }

  // Stem pool + stem conv.
  stem_pool_->Backward(delta, &delta_in);
  stem_->MultiplyActivationGradInPlace(ws->stem_z, &delta_in);
  grad_bias.assign(stem_->config().out_channels, 0.0f);
  stem_->Backward(input, delta_in, &grad_filters, grad_bias, nullptr);
  sgd_update(stem_.get(), grad_filters, grad_bias);
}

}  // namespace sampnn
