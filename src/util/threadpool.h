// Fixed-size worker pool used for ALSH-approx parallel training (§9.2 of the
// paper) and for parallel experiment sweeps in the bench harness.

#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/sync.h"

namespace sampnn {

/// \brief Fixed-size thread pool with a blocking Wait() barrier.
///
/// Tasks are arbitrary std::function<void()>. Submission is thread-safe.
///
/// Shutdown ordering: the destructor first drains the queue — every task
/// submitted before destruction runs to completion — and only then lets the
/// workers exit and joins them. Queued-but-unstarted tasks are never
/// dropped, and destruction cannot deadlock on them.
///
/// Exception safety: a task that throws does not take the process down and
/// cannot wedge the completion count. The first exception is captured and
/// rethrown from the next Wait(); later exceptions from the same batch are
/// discarded. Exceptions still pending at destruction are swallowed — call
/// Wait() before destroying the pool if you need them.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1). If thread
  /// creation fails partway, already-started workers are shut down and
  /// joined before the exception escapes.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. It is a programmer error (checked) to
  /// submit after destruction has begun.
  void Submit(std::function<void()> task);

  /// Bounded-queue submission for admission-controlled callers: enqueues
  /// `task` unless the number of queued-but-unstarted tasks has reached
  /// `max_pending`, in which case it returns false and the task is NOT
  /// enqueued (the caller sheds it explicitly — nothing is dropped
  /// silently). An accepted task has exactly the same guarantees as
  /// Submit(): it runs to completion before destruction, and its exceptions
  /// surface from the next Wait().
  bool TryPost(std::function<void()> task, size_t max_pending);

  /// Blocks until all submitted tasks have completed, then rethrows the
  /// first exception any of them raised (if any).
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Work is handed out in contiguous chunks to limit queue contention.
  /// Completion is tracked by a private latch, so concurrent ParallelFor
  /// calls from different threads do not wait on each other's work. If `fn`
  /// throws, the first exception is rethrown here after all chunks finish.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_{"threadpool.pool", lockrank::kThreadPool};
  CondVar task_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ SAMPNN_GUARDED_BY(mu_);
  size_t in_flight_ SAMPNN_GUARDED_BY(mu_) = 0;
  bool shutdown_ SAMPNN_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ SAMPNN_GUARDED_BY(mu_);
};

}  // namespace sampnn
