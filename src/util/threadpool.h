// Fixed-size worker pool used for ALSH-approx parallel training (§9.2 of the
// paper) and for parallel experiment sweeps in the bench harness.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sampnn {

/// \brief Fixed-size thread pool with a blocking Wait() barrier.
///
/// Tasks are arbitrary std::function<void()>. Submission is thread-safe.
/// Destruction waits for queued tasks to finish.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Work is handed out in contiguous chunks to limit queue contention.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace sampnn
