// CSV emission for the benchmark harness. Every bench binary writes its
// table/figure series as CSV so results can be diffed and plotted.

#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace sampnn {

/// \brief Streams rows to a CSV file with RFC-4180-style quoting.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check ok() before use.
  static StatusOr<CsvWriter> Open(const std::string& path);

  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  /// Writes a header row.
  void WriteHeader(const std::vector<std::string>& columns);

  /// Writes one row of already-formatted cells.
  void WriteRow(const std::vector<std::string>& cells);

  /// Flushes and closes. Returns IOError if the stream went bad.
  Status Close();

  /// Quotes a cell per RFC 4180 when needed.
  static std::string Escape(const std::string& cell);

  /// Formats a double with fixed precision (default 4 digits).
  static std::string Num(double v, int precision = 4);

 private:
  explicit CsvWriter(std::ofstream out) : out_(std::move(out)) {}
  std::ofstream out_;
};

}  // namespace sampnn
