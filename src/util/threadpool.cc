#include "src/util/threadpool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/util/check.h"

namespace sampnn {

namespace {
// Pending-task gauge, updated under the pool mutex on submit/dequeue.
// (Registry registration on first use nests telemetry.metrics inside
// threadpool.pool, which the rank table allows.)
inline void RecordQueueDepth(size_t depth) {
  if (!TelemetryEnabled()) return;
  static Gauge& g = MetricsRegistry::Get().GetGauge("threadpool.queue_depth");
  g.Set(static_cast<double>(depth));
}
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  try {
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  } catch (...) {
    // Partial construction: release the workers that did start, or their
    // joinable std::thread destructors would terminate the process.
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    task_available_.NotifyAll();
    for (auto& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  // Workers drain the queue before honoring shutdown (see WorkerLoop), so
  // tasks queued before this point all run; NotifyAll wakes every idle
  // worker so none sleeps through its own shutdown.
  task_available_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SAMPNN_CHECK(task != nullptr);
  {
    MutexLock lock(mu_);
    SAMPNN_CHECK_MSG(!shutdown_, "Submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
    RecordQueueDepth(tasks_.size());
  }
  task_available_.NotifyOne();
}

bool ThreadPool::TryPost(std::function<void()> task, size_t max_pending) {
  SAMPNN_CHECK(task != nullptr);
  {
    MutexLock lock(mu_);
    SAMPNN_CHECK_MSG(!shutdown_, "TryPost after shutdown");
    if (tasks_.size() >= max_pending) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
    RecordQueueDepth(tasks_.size());
  }
  task_available_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  std::exception_ptr err;
  {
    MutexLock lock(mu_);
    while (in_flight_ != 0) all_done_.Wait(mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Private completion latch: ParallelFor must not return while its chunks
  // are still running (the caller's `fn` would dangle), and must not wait on
  // unrelated tasks from concurrent callers.
  struct Latch {
    Mutex mu{"threadpool.latch", lockrank::kThreadPoolLatch};
    CondVar done;
    size_t pending SAMPNN_GUARDED_BY(mu) = 0;
    std::exception_ptr error SAMPNN_GUARDED_BY(mu);
  } latch;
  const size_t chunks = std::min(n, workers_.size() * 4);
  const size_t per_chunk = (n + chunks - 1) / chunks;
  {
    MutexLock lock(latch.mu);
    latch.pending = (n + per_chunk - 1) / per_chunk;
  }
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * per_chunk;
    const size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    Submit([begin, end, &fn, &latch] {
      try {
        for (size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        MutexLock lock(latch.mu);
        if (!latch.error) latch.error = std::current_exception();
      }
      MutexLock lock(latch.mu);
      if (--latch.pending == 0) latch.done.NotifyAll();
    });
  }
  std::exception_ptr err;
  {
    MutexLock lock(latch.mu);
    while (latch.pending != 0) latch.done.Wait(latch.mu);
    err = std::exchange(latch.error, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && tasks_.empty()) task_available_.Wait(mu_);
      if (tasks_.empty()) return;  // shutdown_ is set and the queue is dry
      task = std::move(tasks_.front());
      tasks_.pop();
      RecordQueueDepth(tasks_.size());
    }
    const bool telemetry = TelemetryEnabled();
    const auto start = telemetry ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    if (telemetry) {
      static Histogram& h =
          MetricsRegistry::Get().GetHistogram("threadpool.task_us");
      h.Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    }
    {
      MutexLock lock(mu_);
      if (err && !first_error_) first_error_ = std::move(err);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace sampnn
