// Length-checked little-endian binary stream I/O shared by model
// serialization (src/nn/serialize.*) and the checkpoint subsystem
// (src/resilience/). Every Read* returns a Status instead of reading
// garbage past EOF, and the variable-length readers validate declared
// sizes against the bytes actually remaining in the stream *before*
// allocating, so truncated or corrupt files are rejected with a clean
// error rather than an allocation blow-up or a crash.

#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace sampnn {

// --- Writers (plain fixed-width little-endian; matches the in-memory
// representation on every supported platform, like SaveMlp) ---

void WriteU32(std::ostream& out, uint32_t v);
void WriteU64(std::ostream& out, uint64_t v);
void WriteF32(std::ostream& out, float v);
void WriteF64(std::ostream& out, double v);
/// u64 length prefix + raw bytes.
void WriteString(std::ostream& out, std::string_view s);
/// u64 count prefix + raw float32 payload.
void WriteFloats(std::ostream& out, std::span<const float> v);
/// u64 count prefix + raw u32 payload.
void WriteU32s(std::ostream& out, std::span<const uint32_t> v);
/// Fixed-layout Rng state (4x u64 + gaussian cache).
void WriteRngState(std::ostream& out, const RngState& state);

// --- Readers ---

StatusOr<uint32_t> ReadU32(std::istream& in);
StatusOr<uint64_t> ReadU64(std::istream& in);
StatusOr<float> ReadF32(std::istream& in);
StatusOr<double> ReadF64(std::istream& in);
/// Reads exactly `size` bytes into `dst`; InvalidArgument on short read.
Status ReadBytes(std::istream& in, void* dst, size_t size);
/// Length-prefixed string; rejects lengths above `max_len` or past EOF.
StatusOr<std::string> ReadString(std::istream& in, uint64_t max_len = 1 << 20);
/// Count-prefixed float32 vector; validates count * 4 bytes remain.
Status ReadFloats(std::istream& in, std::vector<float>* out);
/// Count-prefixed u32 vector; validates count * 4 bytes remain.
Status ReadU32s(std::istream& in, std::vector<uint32_t>* out);
StatusOr<RngState> ReadRngState(std::istream& in);

/// Bytes between the current read position and EOF for seekable streams
/// (files, string streams); UINT64_MAX when the stream cannot be seeked.
/// Used to bounds-check declared payload sizes before allocating.
uint64_t RemainingBytes(std::istream& in);

/// True iff `declared_count` elements of `elem_size` bytes fit in the
/// stream's remaining bytes (multiplication is overflow-checked).
bool FitsRemaining(std::istream& in, uint64_t declared_count,
                   uint64_t elem_size);

}  // namespace sampnn
