// Annotated synchronization primitives (DESIGN.md §11).
//
// Every mutex in the concurrent subsystems (threadpool, serve, telemetry,
// resilience) is a sampnn::Mutex, which layers two defenses over std::mutex:
//
//  1. Clang Thread Safety Analysis annotations. Guarded fields are declared
//     with SAMPNN_GUARDED_BY(mu_), lock-requiring methods with
//     SAMPNN_REQUIRES(mu_), and `-Wthread-safety -Wthread-safety-beta
//     -Werror` (the CI thread-safety job, or scripts/static_analysis.sh
//     under clang) proves the locking protocol at compile time. Off-Clang
//     the macros compile to nothing, so GCC builds are unchanged.
//
//  2. A debug-build lock-rank validator. Each Mutex carries a name and an
//     integer rank (the table lives in lockrank:: below and in DESIGN.md
//     §11); a thread may only acquire a mutex whose rank is strictly
//     greater than every rank it already holds. Out-of-rank or re-entrant
//     acquisition aborts immediately with both lock names, so a dynamic
//     ordering violation is caught deterministically on the first
//     interleaving that attempts it — even where the static analysis cannot
//     see through callbacks. The validator is compiled out under NDEBUG
//     (scripts/check_release_symbols.sh verifies no LockRank symbols reach
//     the release archive).
//
// New mutexes MUST declare a rank: pick the subsystem's constant from
// lockrank::, or add a new one to the table (and to DESIGN.md §11) that is
// consistent with every nesting the mutex participates in.

#pragma once

#include <condition_variable>
#include <mutex>

// --- Clang Thread Safety Analysis attribute macros -------------------------
// No-ops on compilers without the analysis (GCC), so the annotations are
// zero-cost documentation there and compile-time proof under Clang.
#if defined(__clang__)
#define SAMPNN_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define SAMPNN_TS_ATTRIBUTE(x)
#endif

/// Declares a type to be a capability (lockable).
#define SAMPNN_CAPABILITY(x) SAMPNN_TS_ATTRIBUTE(capability(x))
/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SAMPNN_SCOPED_CAPABILITY SAMPNN_TS_ATTRIBUTE(scoped_lockable)
/// Field may only be accessed while holding the given capability.
#define SAMPNN_GUARDED_BY(x) SAMPNN_TS_ATTRIBUTE(guarded_by(x))
/// Pointer field whose pointee may only be accessed while holding `x`.
#define SAMPNN_PT_GUARDED_BY(x) SAMPNN_TS_ATTRIBUTE(pt_guarded_by(x))
/// Function requires the capability to be held on entry (and keeps it held).
#define SAMPNN_REQUIRES(...) \
  SAMPNN_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
/// Function acquires the capability and holds it on return.
#define SAMPNN_ACQUIRE(...) \
  SAMPNN_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
/// Function releases a held capability.
#define SAMPNN_RELEASE(...) \
  SAMPNN_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `result`.
#define SAMPNN_TRY_ACQUIRE(result, ...) \
  SAMPNN_TS_ATTRIBUTE(try_acquire_capability(result, __VA_ARGS__))
/// Caller must NOT hold the capability (documents non-reentrant entry
/// points that take the lock themselves).
#define SAMPNN_EXCLUDES(...) SAMPNN_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
/// Asserts (without acquiring) that the capability is held.
#define SAMPNN_ASSERT_CAPABILITY(x) \
  SAMPNN_TS_ATTRIBUTE(assert_capability(x))
/// Function returns a reference to the given capability.
#define SAMPNN_RETURN_CAPABILITY(x) SAMPNN_TS_ATTRIBUTE(lock_returned(x))
/// Escape hatch for functions the analysis cannot verify (lock aliasing,
/// copy-assignment across instances sharing a lock). Use with a comment.
#define SAMPNN_NO_THREAD_SAFETY_ANALYSIS \
  SAMPNN_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace sampnn {

// --- Lock-rank table (DESIGN.md §11 has the rationale per row) -------------
// Acquisition order must be strictly increasing in rank. Mutexes sharing a
// rank may never be held together (e.g. two worker slots' token mutexes).
namespace lockrank {
inline constexpr int kServeLifecycle = 10;    ///< serve.lifecycle
inline constexpr int kStatusz = 14;           ///< obs.statusz
inline constexpr int kLifecycleLoop = 15;     ///< lifecycle.loop
inline constexpr int kSloTracker = 16;        ///< obs.slo
inline constexpr int kRegistrySwap = 18;      ///< registry.swap
inline constexpr int kServeQueue = 20;        ///< serve.queue
inline constexpr int kRequestLog = 22;        ///< lifecycle.request_log
inline constexpr int kServeWorkerToken = 30;  ///< serve.worker_token
inline constexpr int kServeBackend = 40;      ///< serve.backend
inline constexpr int kGemmPackPool = 44;      ///< tensor.pack_pool
inline constexpr int kGemmPools = 45;         ///< tensor.gemm_pools
inline constexpr int kThreadPool = 50;        ///< threadpool.pool
inline constexpr int kThreadPoolLatch = 60;   ///< threadpool.latch
inline constexpr int kFaultInjector = 70;     ///< resilience.fault_injector
inline constexpr int kEpochRecorder = 80;     ///< telemetry.epoch_recorder
inline constexpr int kTrace = 84;             ///< telemetry.trace
inline constexpr int kPhaseSampler = 86;      ///< obs.phase_sampler
inline constexpr int kMetricsRegistry = 88;   ///< telemetry.metrics
inline constexpr int kWarnOnce = 95;          ///< util.warn_once
}  // namespace lockrank

/// \brief std::mutex with thread-safety annotations and a named rank.
///
/// Satisfies BasicLockable/Lockable, so it works with CondVar (and, in a
/// pinch, std::scoped_lock) — but prefer MutexLock, which carries the
/// scoped-capability annotation the analysis needs.
class SAMPNN_CAPABILITY("mutex") Mutex {
 public:
  /// `name` must have static storage duration (it is stored, not copied,
  /// and printed by the rank validator on violation).
  Mutex(const char* name, int rank) noexcept : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SAMPNN_ACQUIRE();
  void unlock() SAMPNN_RELEASE();
  bool try_lock() SAMPNN_TRY_ACQUIRE(true);

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  std::mutex mu_;
  const char* const name_;
  const int rank_;
};

/// \brief Scoped lock over a Mutex (the annotated std::lock_guard /
/// std::unique_lock replacement).
///
/// Unlock()/Lock() support the unlock-early pattern (notify a CondVar after
/// releasing); the destructor only releases if the lock is still owned.
class SAMPNN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SAMPNN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SAMPNN_RELEASE() {
    if (owns_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex before scope exit.
  void Unlock() SAMPNN_RELEASE() {
    mu_.unlock();
    owns_ = false;
  }
  /// Re-acquires after Unlock().
  void Lock() SAMPNN_ACQUIRE() {
    mu_.lock();
    owns_ = true;
  }

 private:
  Mutex& mu_;
  bool owns_ = true;
};

/// \brief Condition variable for use with Mutex.
///
/// Wait() releases and re-acquires through Mutex::unlock/lock, so the
/// lock-rank bookkeeping stays exact across the wait. There is no predicate
/// overload on purpose: write the `while (!cond) cv.Wait(mu);` loop in the
/// annotated function body, where the analysis can see the guarded reads
/// (a predicate lambda is analyzed as a separate, capability-less function).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. `mu` must be held by the calling thread; it is
  /// released for the duration of the wait and re-held on return.
  void Wait(Mutex& mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

namespace internal {
#ifndef NDEBUG
// Lock-rank validator hooks (sync.cc). Debug-only: release builds call
// straight into std::mutex (scripts/check_release_symbols.sh proves these
// symbols are absent from the release archive).
void LockRankOnAcquire(const Mutex& mu);
void LockRankOnRelease(const Mutex& mu);
/// Number of Mutexes the calling thread currently holds (tests).
int LockRankHeldCount();
#endif
}  // namespace internal

}  // namespace sampnn
