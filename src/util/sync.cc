#include "src/util/sync.h"

#ifndef NDEBUG
#include <cstdio>
#include <cstdlib>
#endif

namespace sampnn {

#ifndef NDEBUG

namespace internal {

namespace {

// Per-thread stack of held locks, in acquisition order. Ranks are enforced
// strictly increasing on acquire, so the top entry always has the highest
// rank. std::mutex requires unlock on the owning thread, so a lock never
// has to be removed from another thread's stack.
//
// Deliberately a trivially-destructible POD array, NOT a std::vector: locks
// are taken during static destruction (e.g. the gemm pool cache destroys
// its ThreadPools at exit, and ~ThreadPool locks its mutex), which can run
// after a thread_local vector's destructor — a use-after-free. A plain
// array has no destructor, so the bookkeeping stays valid to the last
// unlock of the process.
constexpr int kMaxHeldLocks = 16;
thread_local const Mutex* t_held_locks[kMaxHeldLocks];
thread_local int t_held_count = 0;

[[noreturn]] void LockRankFail(const char* what, const Mutex& incoming,
                               const Mutex* held) {
  std::fprintf(stderr, "[sampnn] lock-rank violation: %s \"%s\" (rank %d)",
               what, incoming.name(), incoming.rank());
  if (held != nullptr) {
    std::fprintf(stderr, " while holding \"%s\" (rank %d)", held->name(),
                 held->rank());
  }
  std::fprintf(
      stderr,
      "; acquisition order must be strictly increasing in rank "
      "(see DESIGN.md §11)\n");
  std::abort();
}

}  // namespace

void LockRankOnAcquire(const Mutex& mu) {
  for (int i = 0; i < t_held_count; ++i) {
    if (t_held_locks[i] == &mu) {
      LockRankFail("re-entrant acquire of", mu, t_held_locks[i]);
    }
  }
  if (t_held_count > 0) {
    const Mutex* top = t_held_locks[t_held_count - 1];
    if (mu.rank() <= top->rank()) LockRankFail("acquiring", mu, top);
  }
  if (t_held_count == kMaxHeldLocks) {
    LockRankFail("holding too many locks while acquiring", mu,
                 t_held_locks[t_held_count - 1]);
  }
  t_held_locks[t_held_count++] = &mu;
}

void LockRankOnRelease(const Mutex& mu) {
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held_locks[i] == &mu) {
      for (int j = i; j + 1 < t_held_count; ++j) {
        t_held_locks[j] = t_held_locks[j + 1];
      }
      --t_held_count;
      return;
    }
  }
  LockRankFail("releasing un-held", mu, nullptr);
}

int LockRankHeldCount() { return t_held_count; }

}  // namespace internal

void Mutex::lock() {
  // Validate before blocking, so a would-be ABBA deadlock aborts with both
  // names instead of hanging.
  internal::LockRankOnAcquire(*this);
  mu_.lock();
}

void Mutex::unlock() {
  mu_.unlock();
  internal::LockRankOnRelease(*this);
}

bool Mutex::try_lock() {
  // try_lock cannot deadlock, but it follows the same discipline so the
  // rank table stays the single source of truth for lock ordering.
  internal::LockRankOnAcquire(*this);
  if (mu_.try_lock()) return true;
  internal::LockRankOnRelease(*this);
  return false;
}

#else  // NDEBUG: straight pass-through, no validator symbols in the binary.

void Mutex::lock() { mu_.lock(); }
void Mutex::unlock() { mu_.unlock(); }
bool Mutex::try_lock() { return mu_.try_lock(); }

#endif

}  // namespace sampnn
