#include "src/util/deadline.h"

#include <chrono>
#include <thread>

namespace sampnn {

namespace {

class SteadyClock : public Clock {
 public:
  int64_t NowMillis() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void SleepMillis(int64_t ms) const override {
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
};

}  // namespace

const Clock* Clock::Real() {
  // Leaked intentionally: deadlines cached in statics may outlive exit-time
  // destructors.
  static const Clock* const kReal = new SteadyClock();
  return kReal;
}

Deadline Deadline::FromNowMillis(int64_t ms, const Clock* clock) {
  if (clock == nullptr) clock = Clock::Real();
  return Deadline(clock, clock->NowMillis() + ms);
}

Deadline Deadline::AtMillis(int64_t at_ms, const Clock* clock) {
  if (clock == nullptr) clock = Clock::Real();
  return Deadline(clock, at_ms);
}

int64_t Deadline::remaining_millis() const {
  if (is_never()) return INT64_MAX;
  const int64_t rem = expires_at_ms_ - clock_->NowMillis();
  return rem > 0 ? rem : 0;
}

Status CancelContext::StopStatus() const {
  if (deadline.expired()) {
    return Status::DeadlineExceeded("request deadline expired");
  }
  return Status::ResourceExhausted("request cancelled");
}

}  // namespace sampnn
