// Deterministic, splittable random number generation.
//
// Every stochastic component in the library (initializers, samplers, hash
// functions, synthetic data) draws from an Rng seeded explicitly, so whole
// experiments are reproducible from a single seed. Rng wraps xoshiro256**,
// which is fast enough to sit on training hot paths.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sampnn {

/// Complete serializable generator state: the xoshiro256** words plus the
/// Box–Muller gaussian cache. Restoring a saved state reproduces the stream
/// exactly — resumed training runs draw the same dropout masks and MC
/// samples as uninterrupted ones.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_gaussian = false;
  float cached_gaussian = 0.0f;

  bool operator==(const RngState&) const = default;
};

/// \brief Fast deterministic PRNG (xoshiro256**).
///
/// Not thread-safe; use Split() to derive independent per-thread streams.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire) so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform float in [0, 1).
  float NextFloat();
  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float NextUniform(float lo, float hi);

  /// Standard normal draw (Box–Muller; caches the paired value).
  float NextGaussian();
  /// Normal with the given mean and standard deviation.
  float NextGaussian(float mean, float stddev);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Derives an independent generator; deterministic in the parent state.
  Rng Split();

  /// Snapshot of the full generator state (for checkpointing).
  RngState GetState() const;
  /// Restores a state captured by GetState(); the stream continues exactly
  /// where the snapshot left off. An all-zero state is replaced by the
  /// canonical nonzero state (all-zero is invalid for xoshiro).
  void SetState(const RngState& state);

  /// Fisher–Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0f;
};

}  // namespace sampnn
