#include "src/util/binary_io.h"

#include <limits>

namespace sampnn {

namespace {

template <typename T>
void WriteRaw(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
StatusOr<T> ReadRaw(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) return Status::InvalidArgument("truncated stream");
  return v;
}

}  // namespace

void WriteU32(std::ostream& out, uint32_t v) { WriteRaw(out, v); }
void WriteU64(std::ostream& out, uint64_t v) { WriteRaw(out, v); }
void WriteF32(std::ostream& out, float v) { WriteRaw(out, v); }
void WriteF64(std::ostream& out, double v) { WriteRaw(out, v); }

void WriteString(std::ostream& out, std::string_view s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void WriteFloats(std::ostream& out, std::span<const float> v) {
  WriteU64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void WriteU32s(std::ostream& out, std::span<const uint32_t> v) {
  WriteU64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(uint32_t)));
}

void WriteRngState(std::ostream& out, const RngState& state) {
  for (uint64_t s : state.s) WriteU64(out, s);
  WriteU32(out, state.has_cached_gaussian ? 1u : 0u);
  WriteF32(out, state.cached_gaussian);
}

StatusOr<uint32_t> ReadU32(std::istream& in) { return ReadRaw<uint32_t>(in); }
StatusOr<uint64_t> ReadU64(std::istream& in) { return ReadRaw<uint64_t>(in); }
StatusOr<float> ReadF32(std::istream& in) { return ReadRaw<float>(in); }
StatusOr<double> ReadF64(std::istream& in) { return ReadRaw<double>(in); }

Status ReadBytes(std::istream& in, void* dst, size_t size) {
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(size));
  if (!in) return Status::InvalidArgument("truncated stream");
  return Status::OK();
}

StatusOr<std::string> ReadString(std::istream& in, uint64_t max_len) {
  SAMPNN_ASSIGN_OR_RETURN(uint64_t len, ReadU64(in));
  if (len > max_len) {
    return Status::InvalidArgument("string length " + std::to_string(len) +
                                   " exceeds limit");
  }
  if (!FitsRemaining(in, len, 1)) {
    return Status::InvalidArgument("string length past end of stream");
  }
  std::string s(len, '\0');
  SAMPNN_RETURN_NOT_OK(ReadBytes(in, s.data(), len));
  return s;
}

Status ReadFloats(std::istream& in, std::vector<float>* out) {
  SAMPNN_ASSIGN_OR_RETURN(uint64_t count, ReadU64(in));
  if (!FitsRemaining(in, count, sizeof(float))) {
    return Status::InvalidArgument("float array length past end of stream");
  }
  out->resize(count);
  return ReadBytes(in, out->data(), count * sizeof(float));
}

Status ReadU32s(std::istream& in, std::vector<uint32_t>* out) {
  SAMPNN_ASSIGN_OR_RETURN(uint64_t count, ReadU64(in));
  if (!FitsRemaining(in, count, sizeof(uint32_t))) {
    return Status::InvalidArgument("u32 array length past end of stream");
  }
  out->resize(count);
  return ReadBytes(in, out->data(), count * sizeof(uint32_t));
}

StatusOr<RngState> ReadRngState(std::istream& in) {
  RngState state;
  for (uint64_t& s : state.s) {
    SAMPNN_ASSIGN_OR_RETURN(s, ReadU64(in));
  }
  SAMPNN_ASSIGN_OR_RETURN(uint32_t cached, ReadU32(in));
  state.has_cached_gaussian = cached != 0;
  SAMPNN_ASSIGN_OR_RETURN(state.cached_gaussian, ReadF32(in));
  return state;
}

uint64_t RemainingBytes(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) {
    return std::numeric_limits<uint64_t>::max();
  }
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) {
    return std::numeric_limits<uint64_t>::max();
  }
  return static_cast<uint64_t>(end - pos);
}

bool FitsRemaining(std::istream& in, uint64_t declared_count,
                   uint64_t elem_size) {
  if (declared_count == 0) return true;
  const uint64_t remaining = RemainingBytes(in);
  if (remaining == std::numeric_limits<uint64_t>::max()) return true;
  if (elem_size != 0 &&
      declared_count > std::numeric_limits<uint64_t>::max() / elem_size) {
    return false;
  }
  return declared_count * elem_size <= remaining;
}

}  // namespace sampnn
