#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace sampnn {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state so nearby seeds diverge immediately.
inline uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  // All-zero state is the one invalid state for xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SAMPNN_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method with rejection.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

float Rng::NextFloat() {
  return static_cast<float>(NextU64() >> 40) * (1.0f / 16777216.0f);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

float Rng::NextUniform(float lo, float hi) {
  return lo + (hi - lo) * NextFloat();
}

float Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; re-draw until u1 > 0 so log() is finite.
  float u1 = 0.0f;
  do {
    u1 = NextFloat();
  } while (u1 <= 1e-12f);
  const float u2 = NextFloat();
  const float r = std::sqrt(-2.0f * std::log(u1));
  const float theta = 6.28318530717958647692f * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

float Rng::NextGaussian(float mean, float stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Split() { return Rng(NextU64() ^ 0xA5A5A5A55A5A5A5Aull); }

RngState Rng::GetState() const {
  RngState state;
  for (size_t i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::SetState(const RngState& state) {
  for (size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

}  // namespace sampnn
