#include "src/util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/util/check.h"

namespace sampnn {

Flags::Flags(std::string program) : program_(std::move(program)) {}

void Flags::AddInt(const std::string& name, long long def,
                   const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_val = def;
  flags_[name] = std::move(f);
}

void Flags::AddDouble(const std::string& name, double def,
                      const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_val = def;
  flags_[name] = std::move(f);
}

void Flags::AddString(const std::string& name, const std::string& def,
                      const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_val = def;
  flags_[name] = std::move(f);
}

void Flags::AddBool(const std::string& name, bool def,
                    const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_val = def;
  flags_[name] = std::move(f);
}

Status Flags::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& f = it->second;
  f.set = true;
  try {
    switch (f.type) {
      case Type::kInt: {
        size_t pos = 0;
        f.int_val = std::stoll(value, &pos);
        if (pos != value.size()) {
          return Status::InvalidArgument("bad integer for --" + name + ": " + value);
        }
        break;
      }
      case Type::kDouble: {
        size_t pos = 0;
        f.double_val = std::stod(value, &pos);
        if (pos != value.size()) {
          return Status::InvalidArgument("bad number for --" + name + ": " + value);
        }
        break;
      }
      case Type::kString:
        f.string_val = value;
        break;
      case Type::kBool:
        if (value == "true" || value == "1") {
          f.bool_val = true;
        } else if (value == "false" || value == "0") {
          f.bool_val = false;
        } else {
          return Status::InvalidArgument("bad bool for --" + name + ": " + value);
        }
        break;
    }
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad value for --" + name + ": " + value);
  }
  return Status::OK();
}

Status Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stdout);
      return Status::FailedPrecondition("help");
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name, value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      SAMPNN_RETURN_NOT_OK(SetValue(name, value));
      continue;
    }
    name = arg;
    // Boolean flags: --flag and --no-flag forms.
    auto it = flags_.find(name);
    if (it != flags_.end() && it->second.type == Type::kBool) {
      it->second.bool_val = true;
      it->second.set = true;
      continue;
    }
    if (name.rfind("no-", 0) == 0) {
      auto neg = flags_.find(name.substr(3));
      if (neg != flags_.end() && neg->second.type == Type::kBool) {
        neg->second.bool_val = false;
        neg->second.set = true;
        continue;
      }
    }
    // Space-separated value form.
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + name + " needs a value");
    }
    value = argv[++i];
    SAMPNN_RETURN_NOT_OK(SetValue(name, value));
  }
  return Status::OK();
}

const Flags::Flag& Flags::Get(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  SAMPNN_CHECK_MSG(it != flags_.end(), "flag not declared");
  SAMPNN_CHECK_MSG(it->second.type == type, "flag type mismatch");
  return it->second;
}

long long Flags::GetInt(const std::string& name) const {
  return Get(name, Type::kInt).int_val;
}

double Flags::GetDouble(const std::string& name) const {
  return Get(name, Type::kDouble).double_val;
}

const std::string& Flags::GetString(const std::string& name) const {
  return Get(name, Type::kString).string_val;
}

bool Flags::GetBool(const std::string& name) const {
  return Get(name, Type::kBool).bool_val;
}

bool Flags::IsSet(const std::string& name) const {
  auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::string Flags::Usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& [name, f] : flags_) {
    os << "  --" << name;
    switch (f.type) {
      case Type::kInt:
        os << "=<int> (default " << f.int_val << ")";
        break;
      case Type::kDouble:
        os << "=<num> (default " << f.double_val << ")";
        break;
      case Type::kString:
        os << "=<str> (default \"" << f.string_val << "\")";
        break;
      case Type::kBool:
        os << " | --no-" << name << " (default " << (f.bool_val ? "true" : "false")
           << ")";
        break;
    }
    os << "\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace sampnn
