// Minimal command-line flag parsing for bench and example binaries.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Unknown flags are an error (so typos in experiment sweeps fail loudly).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace sampnn {

/// \brief Declarative flag set for a binary.
///
/// Usage:
///   Flags flags("bench_table2");
///   flags.AddInt("epochs", 10, "training epochs");
///   flags.AddString("dataset", "mnist", "dataset name");
///   flags.Parse(argc, argv).Abort();
///   int epochs = flags.GetInt("epochs");
class Flags {
 public:
  /// `program` is used in help output.
  explicit Flags(std::string program);

  /// Declares an integer flag with a default.
  void AddInt(const std::string& name, long long def, const std::string& help);
  /// Declares a floating-point flag with a default.
  void AddDouble(const std::string& name, double def, const std::string& help);
  /// Declares a string flag with a default.
  void AddString(const std::string& name, const std::string& def,
                 const std::string& help);
  /// Declares a boolean flag with a default; parsed as --name / --no-name /
  /// --name=true|false.
  void AddBool(const std::string& name, bool def, const std::string& help);

  /// Parses argv. Returns InvalidArgument for unknown flags or bad values.
  /// Recognizes --help and returns FailedPrecondition("help") after printing
  /// usage so callers can exit cleanly.
  Status Parse(int argc, char** argv);

  /// Typed accessors; abort if the flag was not declared with that type.
  long long GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True if the flag was explicitly set on the command line.
  bool IsSet(const std::string& name) const;

  /// The program name passed to the constructor (used for default output
  /// paths, e.g. results/<program>.csv).
  const std::string& program() const { return program_; }

  /// Renders usage text.
  std::string Usage() const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string help;
    long long int_val = 0;
    double double_val = 0.0;
    std::string string_val;
    bool bool_val = false;
    bool set = false;
  };

  Status SetValue(const std::string& name, const std::string& value);
  const Flag& Get(const std::string& name, Type type) const;

  std::string program_;
  std::map<std::string, Flag> flags_;
};

}  // namespace sampnn
