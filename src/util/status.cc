#include "src/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace sampnn {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDataLoss:
      return "Data loss";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code == StatusCode::kOk) {
    // Misuse; represent as an internal error rather than silently succeeding.
    code = StatusCode::kInternal;
    msg = "Status constructed with kOk and a message: " + msg;
  }
  state_ = std::make_shared<State>(State{code, std::move(msg)});
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return ok() ? kEmpty : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::Abort() const { Abort(""); }

void Status::Abort(const std::string& context) const {
  if (ok()) return;
  if (context.empty()) {
    std::fprintf(stderr, "[sampnn] fatal: %s\n", ToString().c_str());
  } else {
    std::fprintf(stderr, "[sampnn] fatal: %s: %s\n", context.c_str(),
                 ToString().c_str());
  }
  std::abort();
}

}  // namespace sampnn
