// Internal invariant checking macros (analogue of ARROW_CHECK / DCHECK).
// These guard programmer errors, not user input; user input errors go
// through Status. A failed check aborts with file/line context.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace sampnn::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "[sampnn] check failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg && msg[0]) ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace sampnn::internal

/// Aborts if `cond` is false. Always on; use for cheap invariants.
#define SAMPNN_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::sampnn::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
  } while (false)

/// Aborts with a message if `cond` is false.
#define SAMPNN_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond))                                                        \
      ::sampnn::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
  } while (false)

#define SAMPNN_CHECK_EQ(a, b) SAMPNN_CHECK((a) == (b))
#define SAMPNN_CHECK_NE(a, b) SAMPNN_CHECK((a) != (b))
#define SAMPNN_CHECK_LT(a, b) SAMPNN_CHECK((a) < (b))
#define SAMPNN_CHECK_LE(a, b) SAMPNN_CHECK((a) <= (b))
#define SAMPNN_CHECK_GT(a, b) SAMPNN_CHECK((a) > (b))
#define SAMPNN_CHECK_GE(a, b) SAMPNN_CHECK((a) >= (b))

/// Debug-only check (compiled out in NDEBUG builds); use on hot paths.
#ifdef NDEBUG
#define SAMPNN_DCHECK(cond) \
  do {                      \
  } while (false)
#else
#define SAMPNN_DCHECK(cond) SAMPNN_CHECK(cond)
#endif
