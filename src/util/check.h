// Internal invariant checking macros (analogue of ARROW_CHECK / DCHECK).
// These guard programmer errors, not user input; user input errors go
// through Status. A failed check aborts with file/line context.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace sampnn::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "[sampnn] check failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg && msg[0]) ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace sampnn::internal

/// Aborts if `cond` is false. Always on; use for cheap invariants.
#define SAMPNN_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::sampnn::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
  } while (false)

/// Aborts with a message if `cond` is false.
#define SAMPNN_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond))                                                        \
      ::sampnn::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
  } while (false)

#define SAMPNN_CHECK_EQ(a, b) SAMPNN_CHECK((a) == (b))
#define SAMPNN_CHECK_NE(a, b) SAMPNN_CHECK((a) != (b))
#define SAMPNN_CHECK_LT(a, b) SAMPNN_CHECK((a) < (b))
#define SAMPNN_CHECK_LE(a, b) SAMPNN_CHECK((a) <= (b))
#define SAMPNN_CHECK_GT(a, b) SAMPNN_CHECK((a) > (b))
#define SAMPNN_CHECK_GE(a, b) SAMPNN_CHECK((a) >= (b))

// Debug-only checks (compiled out in NDEBUG builds); use on hot paths —
// per-element accessors, inner-loop index math, per-sample invariants.
// Policy: SAMPNN_CHECK guards cold-path invariants (per-batch shapes, API
// preconditions) and is always on; SAMPNN_DCHECK guards invariants whose
// cost would be visible in the kernels the paper benchmarks. Sanitizer
// presets build without NDEBUG, so every DCHECK is live under ASan/UBSan
// and TSan.
//
// In NDEBUG builds the condition is not evaluated, but it stays inside a
// sizeof so the expression is still compiled (no bit-rot, no
// unused-variable warnings for check-only locals).
#ifdef NDEBUG
#define SAMPNN_DCHECK(cond)               \
  do {                                    \
    (void)sizeof((cond) ? 1 : 0);         \
  } while (false)
#define SAMPNN_DCHECK_MSG(cond, msg)      \
  do {                                    \
    (void)sizeof((cond) ? 1 : 0);         \
    (void)sizeof(msg);                    \
  } while (false)
#else
#define SAMPNN_DCHECK(cond) SAMPNN_CHECK(cond)
#define SAMPNN_DCHECK_MSG(cond, msg) SAMPNN_CHECK_MSG(cond, msg)
#endif

#define SAMPNN_DCHECK_EQ(a, b) SAMPNN_DCHECK((a) == (b))
#define SAMPNN_DCHECK_NE(a, b) SAMPNN_DCHECK((a) != (b))
#define SAMPNN_DCHECK_LT(a, b) SAMPNN_DCHECK((a) < (b))
#define SAMPNN_DCHECK_LE(a, b) SAMPNN_DCHECK((a) <= (b))
#define SAMPNN_DCHECK_GT(a, b) SAMPNN_DCHECK((a) > (b))
#define SAMPNN_DCHECK_GE(a, b) SAMPNN_DCHECK((a) >= (b))

/// Bounds DCHECK for index math: asserts 0 <= (i) < (n) for unsigned `i`.
#define SAMPNN_DCHECK_BOUNDS(i, n) SAMPNN_DCHECK((i) < (n))
