// Arrow/RocksDB-style Status and StatusOr for fallible public APIs.
// The library does not throw exceptions across public boundaries; any
// operation that can fail on bad input returns Status or StatusOr<T>.

#pragma once

#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace sampnn {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kIOError = 4,
  kAlreadyExists = 5,
  kFailedPrecondition = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kDeadlineExceeded = 9,    ///< a request ran out of time (serving layer)
  kResourceExhausted = 10,  ///< admission rejected / compute budget revoked
  kAborted = 11,   ///< operation lost a race (e.g. promotion vs. drain)
  kDataLoss = 12,  ///< payload failed integrity checks (CRC, framing)
};

/// Returns a short human-readable name for a status code ("Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Modeled on arrow::Status.
///
/// [[nodiscard]]: silently dropping a Status hides failures; callers must
/// propagate (SAMPNN_RETURN_NOT_OK), handle, or explicitly discard with
/// `(void)expr;  // status-ignored: <reason>` (scripts/check_nodiscard.sh
/// rejects discards without a reason).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor for success.
  Status(StatusCode code, std::string msg);

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with the given message.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns an OutOfRange status with the given message.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns a NotFound status with the given message.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns an IOError status with the given message.
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// Returns an AlreadyExists status with the given message.
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// Returns a FailedPrecondition status with the given message.
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// Returns an Internal status with the given message.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Returns a NotImplemented status with the given message.
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  /// Returns a DeadlineExceeded status with the given message.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Returns a ResourceExhausted status with the given message.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Returns an Aborted status with the given message.
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  /// Returns a DataLoss status with the given message.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return state_ == nullptr; }
  /// The status code (kOk when ok()).
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message (empty when ok()).
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsFailedPrecondition() const { return code() == StatusCode::kFailedPrecondition; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. For use in
  /// contexts (main(), tests) where an error is unrecoverable.
  void Abort() const;
  /// Like Abort() but prefixes `context` to the report.
  void Abort(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // nullptr <=> OK; keeps sizeof(Status) == sizeof(pointer) on the OK path.
  std::shared_ptr<State> state_;
};

/// \brief Either a value of type T or an error Status.
///
/// A light-weight analogue of arrow::Result. Access via ok()/value()/status().
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit for ergonomic returns).
  StatusOr(T value) : var_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Constructs from a non-OK status. Aborts if `status` is OK.
  StatusOr(Status status) : var_(std::move(status)) {  // NOLINT
    if (std::get<Status>(var_).ok()) {
      Status::Internal("StatusOr constructed with OK status").Abort();
    }
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(var_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  /// The held value. Aborts if !ok().
  const T& value() const& {
    if (!ok()) std::get<Status>(var_).Abort("StatusOr::value on error");
    return std::get<T>(var_);
  }
  /// Moves the held value out. Aborts if !ok().
  T&& value() && {
    if (!ok()) std::get<Status>(var_).Abort("StatusOr::value on error");
    return std::get<T>(std::move(var_));
  }
  /// Mutable access to the held value. Aborts if !ok().
  T& value() & {
    if (!ok()) std::get<Status>(var_).Abort("StatusOr::value on error");
    return std::get<T>(var_);
  }

  /// Moves the value out, aborting with `context` if !ok().
  T ValueOrDie(const std::string& context = "") && {
    if (!ok()) std::get<Status>(var_).Abort(context);
    return std::get<T>(std::move(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> var_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define SAMPNN_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::sampnn::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (false)

#define SAMPNN_CONCAT_IMPL(x, y) x##y
#define SAMPNN_CONCAT(x, y) SAMPNN_CONCAT_IMPL(x, y)

/// Evaluates a StatusOr expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define SAMPNN_ASSIGN_OR_RETURN(lhs, expr)                          \
  SAMPNN_ASSIGN_OR_RETURN_IMPL(SAMPNN_CONCAT(_statusor_, __LINE__), \
                               lhs, expr)

#define SAMPNN_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                 \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value();

}  // namespace sampnn
