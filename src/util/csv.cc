#include "src/util/csv.h"

#include <cstdio>

namespace sampnn {

StatusOr<CsvWriter> CsvWriter::Open(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return CsvWriter(std::move(out));
}

void CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  WriteRow(columns);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << Escape(cells[i]);
  }
  out_ << '\n';
}

Status CsvWriter::Close() {
  out_.flush();
  if (!out_) return Status::IOError("CSV stream error on close");
  out_.close();
  return Status::OK();
}

std::string CsvWriter::Escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace sampnn
