// Environment-variable helpers shared by benches (e.g. SAMPNN_SCALE to run
// the harness at paper scale instead of the fast default).

#pragma once

#include <string>

namespace sampnn {

/// Returns the value of `name`, or `def` if unset/empty.
std::string GetEnvOr(const std::string& name, const std::string& def);

/// Returns `name` parsed as a long long, or `def` if unset/unparseable.
long long GetEnvIntOr(const std::string& name, long long def);

/// Returns `name` parsed as a double, or `def` if unset/unparseable.
double GetEnvDoubleOr(const std::string& name, double def);

}  // namespace sampnn
