// Environment-variable helpers shared by benches (e.g. SAMPNN_SCALE to run
// the harness at paper scale instead of the fast default).

#pragma once

#include <string>

namespace sampnn {

/// Returns the value of `name`, or `def` if unset/empty.
std::string GetEnvOr(const std::string& name, const std::string& def);

/// Returns `name` parsed as a long long, or `def` if unset/unparseable.
long long GetEnvIntOr(const std::string& name, long long def);

/// Like GetEnvIntOr, but hardened for thread-count-style knobs
/// (SAMPNN_THREADS, SAMPNN_SERVE_QUEUE_CAP, ...): a parseable value outside
/// [min_value, max_value] — including values that overflow long long — is
/// clamped to the nearest bound, and garbage is replaced by `def`. Any
/// correction is reported to stderr once per variable name per process, so
/// a mistyped knob never falls through silently.
long long GetEnvIntInRangeOr(const std::string& name, long long def,
                             long long min_value, long long max_value);

/// Clears the warn-once ledger of GetEnvIntInRangeOr (tests only).
void ResetEnvWarningsForTest();

/// Returns `name` parsed as a double, or `def` if unset/unparseable.
double GetEnvDoubleOr(const std::string& name, double def);

}  // namespace sampnn
