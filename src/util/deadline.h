// Deadline and cancellation primitives for the serving layer (DESIGN.md
// §10): a request carries a Deadline (absolute expiry on an injectable
// Clock) and a CancellationToken (cooperative stop flag the watchdog or a
// shutdown path can trip). Long-running compute — the dense forward pass,
// the parallel GEMM dispatch, ALSH per-sample probing — polls a
// CancelContext between units of work so an expired or cancelled request
// stops consuming CPU mid-flight instead of running to completion.
//
// Tests inject a ManualClock so deadline behavior is step-exact: no
// wall-clock sleeps, no timing flakiness.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/util/status.h"

namespace sampnn {

/// \brief Millisecond clock abstraction. The process-wide real clock is
/// monotonic (steady_clock); tests substitute a ManualClock.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in milliseconds on this clock's timeline.
  virtual int64_t NowMillis() const = 0;
  /// Blocks for `ms` milliseconds of this clock's time. The real clock
  /// sleeps the thread; a ManualClock advances itself instead, so injected
  /// delays stay deterministic under test.
  virtual void SleepMillis(int64_t ms) const = 0;

  /// The monotonic wall clock (process-wide singleton, never destroyed).
  static const Clock* Real();
};

/// \brief Test clock that only moves when told to. Thread-safe: readers and
/// the advancing thread may race freely.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_ms = 0) : now_ms_(start_ms) {}

  int64_t NowMillis() const override {
    return now_ms_.load(std::memory_order_relaxed);
  }
  /// "Sleeping" on a manual clock drags the clock forward — injected
  /// delay faults remain deterministic in tests.
  void SleepMillis(int64_t ms) const override { AdvanceMillis(ms); }

  void AdvanceMillis(int64_t ms) const {
    now_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<int64_t> now_ms_;
};

/// \brief An absolute expiry instant on a Clock, or "never". Cheap value
/// type; copies share the clock pointer (which must outlive the deadline).
class Deadline {
 public:
  /// A deadline that never expires.
  Deadline() : clock_(Clock::Real()), expires_at_ms_(kNever) {}
  static Deadline Never() { return Deadline(); }

  /// Expires `ms` from now on `clock` (nullptr = the real clock).
  static Deadline FromNowMillis(int64_t ms, const Clock* clock = nullptr);
  /// Expires at absolute instant `at_ms` on `clock` (nullptr = real clock).
  static Deadline AtMillis(int64_t at_ms, const Clock* clock = nullptr);

  bool is_never() const { return expires_at_ms_ == kNever; }
  bool expired() const {
    return !is_never() && clock_->NowMillis() >= expires_at_ms_;
  }
  /// Milliseconds until expiry; 0 when expired, INT64_MAX when never.
  int64_t remaining_millis() const;
  int64_t expires_at_millis() const { return expires_at_ms_; }
  const Clock* clock() const { return clock_; }

 private:
  static constexpr int64_t kNever = INT64_MAX;
  Deadline(const Clock* clock, int64_t at_ms)
      : clock_(clock), expires_at_ms_(at_ms) {}

  const Clock* clock_;
  int64_t expires_at_ms_;
};

/// \brief Cooperative cancellation flag. Copies share state, so a token
/// handed to a worker can be cancelled from the watchdog or a shutdown
/// path. Default-constructed tokens are live (not cancelled).
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief What a cancellable computation polls: a token plus a deadline.
/// Passed by const reference down the compute path; all members are safe to
/// read concurrently from worker threads.
struct CancelContext {
  CancellationToken token;
  Deadline deadline = Deadline::Never();
  /// Request id of the work this context serves (0 = none). Pure
  /// observability: the GEMM dispatch tags its worker phase slots with it,
  /// so /statusz can attribute a busy core to a specific request.
  uint64_t trace_id = 0;

  bool ShouldStop() const { return token.cancelled() || deadline.expired(); }

  /// The status a stopped computation returns: kDeadlineExceeded when the
  /// deadline has passed, otherwise kResourceExhausted ("cancelled" — the
  /// watchdog or a shutdown path revoked the request's compute budget).
  Status StopStatus() const;
};

}  // namespace sampnn
