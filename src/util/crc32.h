// CRC-32 (IEEE 802.3 / zlib polynomial 0xEDB88320), table-driven. Used as
// the integrity footer of checkpoint files (src/resilience/checkpoint.*):
// a truncated or bit-flipped checkpoint fails the CRC and is rejected
// instead of silently restoring garbage training state.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sampnn {

/// One-shot CRC-32 of `size` bytes. Equals zlib's crc32(0, data, size).
uint32_t Crc32(const void* data, size_t size);

/// Convenience overload for string payloads.
inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

/// Incremental form: feed `crc` from a previous call (start with 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace sampnn
