#include "src/util/env.h"

#include <cstdlib>

namespace sampnn {

std::string GetEnvOr(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || v[0] == '\0') return def;
  return v;
}

long long GetEnvIntOr(const std::string& name, long long def) {
  const std::string v = GetEnvOr(name, "");
  if (v.empty()) return def;
  try {
    size_t pos = 0;
    long long out = std::stoll(v, &pos);
    return pos == v.size() ? out : def;
  } catch (const std::exception&) {
    return def;
  }
}

double GetEnvDoubleOr(const std::string& name, double def) {
  const std::string v = GetEnvOr(name, "");
  if (v.empty()) return def;
  try {
    size_t pos = 0;
    double out = std::stod(v, &pos);
    return pos == v.size() ? out : def;
  } catch (const std::exception&) {
    return def;
  }
}

}  // namespace sampnn
