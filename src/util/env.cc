#include "src/util/env.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "src/util/sync.h"

namespace sampnn {

namespace {

// Warn-once ledger: a misconfigured knob is reported a single time per
// variable, not once per query site.
Mutex g_warned_mu{"util.warn_once", lockrank::kWarnOnce};
std::set<std::string>& WarnedVars() {
  static std::set<std::string>* vars = new std::set<std::string>();
  return *vars;
}

void WarnOnce(const std::string& name, const std::string& value,
              const std::string& action) {
  {
    MutexLock lock(g_warned_mu);
    if (!WarnedVars().insert(name).second) return;
  }
  std::fprintf(stderr, "[sampnn] warning: %s=\"%s\" is invalid; %s\n",
               name.c_str(), value.c_str(), action.c_str());
}

}  // namespace

void ResetEnvWarningsForTest() {
  MutexLock lock(g_warned_mu);
  WarnedVars().clear();
}

std::string GetEnvOr(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || v[0] == '\0') return def;
  return v;
}

long long GetEnvIntOr(const std::string& name, long long def) {
  const std::string v = GetEnvOr(name, "");
  if (v.empty()) return def;
  try {
    size_t pos = 0;
    long long out = std::stoll(v, &pos);
    return pos == v.size() ? out : def;
  } catch (const std::exception&) {
    return def;
  }
}

long long GetEnvIntInRangeOr(const std::string& name, long long def,
                             long long min_value, long long max_value) {
  const std::string v = GetEnvOr(name, "");
  if (v.empty()) return def;
  long long out = 0;
  try {
    size_t pos = 0;
    out = std::stoll(v, &pos);
    if (pos != v.size()) {
      WarnOnce(name, v, "using default " + std::to_string(def));
      return def;
    }
  } catch (const std::out_of_range&) {
    // Overflows long long: clamp by sign so "huge" behaves like "too big".
    const bool negative = v.find('-') != std::string::npos;
    out = negative ? min_value : max_value;
    WarnOnce(name, v, "clamping to " + std::to_string(out));
    return out;
  } catch (const std::exception&) {
    WarnOnce(name, v, "using default " + std::to_string(def));
    return def;
  }
  if (out < min_value || out > max_value) {
    const long long clamped = out < min_value ? min_value : max_value;
    WarnOnce(name, v, "clamping to " + std::to_string(clamped));
    return clamped;
  }
  return out;
}

double GetEnvDoubleOr(const std::string& name, double def) {
  const std::string v = GetEnvOr(name, "");
  if (v.empty()) return def;
  try {
    size_t pos = 0;
    double out = std::stod(v, &pos);
    return pos == v.size() ? out : def;
  } catch (const std::exception&) {
    return def;
  }
}

}  // namespace sampnn
