// Bounded request-log ring feeding the continuous train-while-serve loop
// (DESIGN.md §14). The serving layer offers every validated request's
// feature row (tenant-tagged, sampled 1-in-N); clients attach delayed
// ground truth by sequence number once it is known; the lifecycle loop
// drains entries in order — labeled rows become fine-tuning data, and every
// row (labeled or not) feeds the drift detector.
//
// The ring is strictly bounded: when full, the oldest entry is evicted and
// counted (`lifecycle.log.dropped`) — logging must never backpressure the
// serving path. Offer() is called outside the serving queue lock, so the
// log's own mutex (rank lifecycle.request_log, above serve.queue) never
// nests inside admission.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"
#include "src/util/sync.h"

namespace sampnn {

/// One logged request. `label` is -1 until the client reports ground truth
/// via RequestLog::Label (delayed-feedback join on `seq`).
struct LoggedRequest {
  uint64_t seq = 0;  ///< 1-based, strictly increasing across the log
  std::string tenant;
  std::vector<float> features;
  int32_t label = -1;
};

/// Tuning for a RequestLog.
struct RequestLogOptions {
  size_t capacity = 4096;      ///< ring bound (SAMPNN_LIFECYCLE_LOG_CAP)
  uint64_t sample_every = 1;   ///< log 1 of every N offered requests
                               ///< (SAMPNN_LIFECYCLE_SAMPLE_EVERY)
  /// Gates lifecycle.log.* metric mirroring; nullptr = TelemetryEnabled().
  std::function<bool()> obs_enabled;

  /// Defaults with the SAMPNN_LIFECYCLE_* environment applied.
  static RequestLogOptions FromEnv();
};

/// Lifetime counters (always on; mirrored to lifecycle.log.* metrics when
/// observability is enabled).
struct RequestLogStats {
  uint64_t offered = 0;   ///< Offer() calls
  uint64_t sampled = 0;   ///< rows actually admitted to the ring
  uint64_t dropped = 0;   ///< evicted by ring pressure or a stream stall
  uint64_t labeled = 0;   ///< Label() joins that landed
  uint64_t drained = 0;   ///< rows handed to Drain() callers
  uint64_t stalls = 0;    ///< injected stream-stall events
  size_t buffered = 0;    ///< rows currently in the ring
};

/// \brief Thread-safe bounded request log. Producers (serving submitters)
/// call Offer, clients call Label, one consumer (the lifecycle loop) calls
/// Drain; all three may overlap freely.
class RequestLog {
 public:
  static std::shared_ptr<RequestLog> Create(const RequestLogOptions& options);

  /// Records one request's feature row. Returns the assigned sequence
  /// number, or 0 when the row was sampled out (1-in-N logging). Never
  /// blocks beyond the ring mutex; a full ring evicts its oldest entry.
  uint64_t Offer(std::string_view tenant, std::span<const float> features);

  /// Joins delayed ground truth onto a logged row. NotFound when the row
  /// was sampled out (seq 0), already drained, or evicted — delayed labels
  /// are best-effort by design.
  Status Label(uint64_t seq, int32_t label);

  /// Pops up to `max` rows, oldest first. Rows leave the ring permanently
  /// (a Label after Drain misses). Honors the injected stream-stall fault:
  /// the ring's contents are dropped and nothing is returned, exactly once
  /// per armed stream-stall spec.
  std::vector<LoggedRequest> Drain(size_t max);

  RequestLogStats stats() const;

 private:
  explicit RequestLog(const RequestLogOptions& options);

  bool ObsOn() const;
  void MirrorMetrics() const SAMPNN_REQUIRES(mu_);

  const RequestLogOptions options_;

  mutable Mutex mu_{"lifecycle.request_log", lockrank::kRequestLog};
  std::deque<LoggedRequest> ring_ SAMPNN_GUARDED_BY(mu_);  ///< seq ascending
  uint64_t next_seq_ SAMPNN_GUARDED_BY(mu_) = 1;
  RequestLogStats stats_ SAMPNN_GUARDED_BY(mu_);
};

}  // namespace sampnn
