#include "src/lifecycle/fine_tune_loop.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/resilience/fault_injector.h"
#include "src/telemetry/epoch_recorder.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/util/env.h"

namespace sampnn {

namespace {

constexpr const char* kMetricTicks = "lifecycle.ticks";
constexpr const char* kMetricRounds = "lifecycle.rounds";
constexpr const char* kMetricBatches = "lifecycle.batches";
constexpr const char* kMetricDiverged = "lifecycle.diverged";
constexpr const char* kMetricPromotions = "lifecycle.promotions";
constexpr const char* kMetricRejCanary = "lifecycle.rejected_canary";
constexpr const char* kMetricRejRegistry = "lifecycle.rejected_registry";
constexpr const char* kMetricRollbacks = "lifecycle.rollbacks";
constexpr const char* kMetricWindowsClean = "lifecycle.windows_clean";
constexpr const char* kMetricState = "lifecycle.state";
constexpr const char* kMetricPool = "lifecycle.pool";

}  // namespace

const char* LifecycleStateToString(LifecycleState state) {
  switch (state) {
    case LifecycleState::kIdle:
      return "idle";
    case LifecycleState::kFineTuning:
      return "fine-tuning";
    case LifecycleState::kPromoting:
      return "promoting";
    case LifecycleState::kWatching:
      return "watching";
  }
  return "unknown";
}

FineTuneLoopOptions FineTuneLoopOptions::FromEnv() {
  FineTuneLoopOptions options;
  options.poll_ms = GetEnvIntInRangeOr("SAMPNN_LIFECYCLE_POLL_MS",
                                       options.poll_ms, 1, 3'600'000);
  options.demotion_window_ms =
      GetEnvIntInRangeOr("SAMPNN_LIFECYCLE_DEMOTION_WINDOW_MS",
                         options.demotion_window_ms, 0, 86'400'000);
  options.fine_tune_batches = static_cast<size_t>(GetEnvIntInRangeOr(
      "SAMPNN_LIFECYCLE_FT_BATCHES",
      static_cast<long long>(options.fine_tune_batches), 1, 1 << 20));
  options.batch_size = static_cast<size_t>(GetEnvIntInRangeOr(
      "SAMPNN_LIFECYCLE_BATCH_SIZE",
      static_cast<long long>(options.batch_size), 1, 1 << 16));
  options.checkpoint_every = static_cast<size_t>(GetEnvIntInRangeOr(
      "SAMPNN_LIFECYCLE_CKPT_EVERY",
      static_cast<long long>(options.checkpoint_every), 0, 1 << 20));
  options.min_labeled = static_cast<size_t>(GetEnvIntInRangeOr(
      "SAMPNN_LIFECYCLE_MIN_LABELED",
      static_cast<long long>(options.min_labeled), 1, 1 << 22));
  options.canary_rows = static_cast<size_t>(GetEnvIntInRangeOr(
      "SAMPNN_LIFECYCLE_CANARY_ROWS",
      static_cast<long long>(options.canary_rows), 1, 1 << 16));
  options.max_p99_regression = GetEnvDoubleOr("SAMPNN_LIFECYCLE_P99_FACTOR",
                                              options.max_p99_regression);
  options.max_violation_delta = GetEnvDoubleOr(
      "SAMPNN_LIFECYCLE_VIOLATION_DELTA", options.max_violation_delta);
  options.drift = DriftDetectorOptions::FromEnv();
  return options;
}

StatusOr<std::unique_ptr<FineTuneLoop>> FineTuneLoop::Create(
    std::unique_ptr<Trainer> trainer, std::shared_ptr<RequestLog> log,
    std::shared_ptr<ModelRegistry> registry, const Matrix& drift_reference,
    const FineTuneLoopOptions& options) {
  if (trainer == nullptr || log == nullptr || registry == nullptr) {
    return Status::InvalidArgument(
        "FineTuneLoop: trainer, log, and registry are all required");
  }
  if (options.checkpoint_dir.empty()) {
    return Status::InvalidArgument("FineTuneLoop: checkpoint_dir is required");
  }
  if (options.batch_size == 0 || options.fine_tune_batches == 0) {
    return Status::InvalidArgument(
        "FineTuneLoop: batch_size and fine_tune_batches must be positive");
  }
  if (options.min_labeled <= options.canary_rows) {
    return Status::InvalidArgument(
        "FineTuneLoop: min_labeled must exceed canary_rows (the canary "
        "slice is held back from training)");
  }
  if (drift_reference.cols() != trainer->net().input_dim()) {
    return Status::InvalidArgument(
        "FineTuneLoop: drift reference width " +
        std::to_string(drift_reference.cols()) +
        " does not match the model input dim " +
        std::to_string(trainer->net().input_dim()));
  }
  FineTuneLoopOptions resolved = options;
  // The sentinel is the promotion gate's first line; the loop never runs
  // with it disarmed.
  resolved.sentinel.enabled = true;
  // One obs knob gates the whole loop: an unset detector gate inherits the
  // loop's, so drift.* and lifecycle.* families appear together.
  if (!resolved.drift.obs_enabled) {
    resolved.drift.obs_enabled = resolved.obs_enabled;
  }
  SAMPNN_ASSIGN_OR_RETURN(DriftDetector detector,
                          DriftDetector::Create(drift_reference,
                                                resolved.drift));
  CheckpointWriterOptions writer_options;
  writer_options.dir = resolved.checkpoint_dir;
  writer_options.retain = resolved.checkpoint_retain;
  SAMPNN_ASSIGN_OR_RETURN(CheckpointWriter writer,
                          CheckpointWriter::Create(writer_options));
  std::unique_ptr<FineTuneLoop> loop(new FineTuneLoop(
      std::move(trainer), std::move(log), std::move(registry),
      std::move(detector), std::move(writer), resolved));
  if (loop->ObsOn()) {
    // Pre-register the lifecycle.* family at zero so scrapes see the full
    // schema before the first tick.
    auto& metrics = MetricsRegistry::Get();
    for (const char* name :
         {kMetricTicks, kMetricRounds, kMetricBatches, kMetricDiverged,
          kMetricPromotions, kMetricRejCanary, kMetricRejRegistry,
          kMetricRollbacks, kMetricWindowsClean}) {
      metrics.GetCounter(name);
    }
    metrics.GetGauge(kMetricState).Set(0.0);
    metrics.GetGauge(kMetricPool).Set(0.0);
  }
  return loop;
}

FineTuneLoop::FineTuneLoop(std::unique_ptr<Trainer> trainer,
                           std::shared_ptr<RequestLog> log,
                           std::shared_ptr<ModelRegistry> registry,
                           DriftDetector detector, CheckpointWriter writer,
                           const FineTuneLoopOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::Real()),
      log_(std::move(log)),
      registry_(std::move(registry)),
      trainer_(std::move(trainer)),
      detector_(std::move(detector)),
      writer_(std::move(writer)) {}

FineTuneLoop::~FineTuneLoop() { Stop(); }

bool FineTuneLoop::ObsOn() const {
  return options_.obs_enabled ? options_.obs_enabled() : TelemetryEnabled();
}

void FineTuneLoop::Count(const char* metric, uint64_t delta) const {
  if (ObsOn()) MetricsRegistry::Get().GetCounter(metric).Add(delta);
}

void FineTuneLoop::SetState(LifecycleState state) {
  stats_.state = state;
  if (ObsOn()) {
    MetricsRegistry::Get().GetGauge(kMetricState)
        .Set(static_cast<double>(state));
  }
}

void FineTuneLoop::DrainIntoPool() {
  std::vector<LoggedRequest> rows = log_->Drain(options_.drain_max);
  const size_t dim = trainer_->net().input_dim();
  for (LoggedRequest& row : rows) {
    detector_.Observe(row.features);
    if (row.label >= 0 && row.features.size() == dim) {
      pool_.push_back(std::move(row));
    }
  }
  if (pool_.size() > options_.max_pool) {
    pool_.erase(pool_.begin(),
                pool_.begin() +
                    static_cast<ptrdiff_t>(pool_.size() - options_.max_pool));
  }
  stats_.pool_size = pool_.size();
  if (ObsOn()) {
    MetricsRegistry::Get().GetGauge(kMetricPool)
        .Set(static_cast<double>(pool_.size()));
  }
}

Status FineTuneLoop::WriteCheckpoint() {
  std::ostringstream out;
  SAMPNN_RETURN_NOT_OK(trainer_->SaveState(out));
  return writer_.Write(total_batches_, out.str());
}

CanaryBatch FineTuneLoop::BuildCanary() {
  const size_t dim = trainer_->net().input_dim();
  const size_t n = std::min(options_.canary_rows, pool_.size());
  CanaryBatch canary;
  canary.inputs = Matrix(n, dim);
  canary.labels.resize(n);
  const size_t first = pool_.size() - n;
  for (size_t i = 0; i < n; ++i) {
    const LoggedRequest& row = pool_[first + i];
    for (size_t j = 0; j < dim; ++j) canary.inputs(i, j) = row.features[j];
    canary.labels[i] = row.label;
  }
  return canary;
}

void FineTuneLoop::EmitRoundTelemetry() {
  EpochRecorder* recorder = GlobalEpochRecorder();
  if (recorder == nullptr) return;
  EpochTelemetry t;
  t.method = "lifecycle";
  t.architecture = trainer_->net().ArchitectureString();
  t.epoch = stats_.rounds;
  t.train_loss = stats_.last_loss;
  t.drift_score = detector_.score();
  t.drift_trips = detector_.stats().trips;
  t.lifecycle_promotions = stats_.promotions;
  t.lifecycle_rollbacks = stats_.rollbacks;
  t.lifecycle_diverged = stats_.diverged;
  trainer_->FillTelemetry(&t);
  recorder->Record(t);
}

Status FineTuneLoop::RunFineTuneRound() {
  SetState(LifecycleState::kFineTuning);
  ++stats_.rounds;
  Count(kMetricRounds);

  // Round-start snapshot: the restore point a diverged round rewinds to,
  // so poisoned weights never survive into the next episode.
  std::ostringstream snapshot;
  SAMPNN_RETURN_NOT_OK(trainer_->SaveState(snapshot));
  const std::string start_state = snapshot.str();

  DivergenceSentinel sentinel(options_.sentinel);
  trainer_->set_track_grad_norm(true);
  const size_t dim = trainer_->net().input_dim();
  const size_t train_rows = pool_.size() - options_.canary_rows;
  DivergenceSentinel::Verdict verdict = DivergenceSentinel::Verdict::kOk;

  for (size_t b = 0; b < options_.fine_tune_batches; ++b) {
    Matrix x(options_.batch_size, dim);
    std::vector<int32_t> y(options_.batch_size);
    for (size_t i = 0; i < options_.batch_size; ++i) {
      const LoggedRequest& row =
          pool_[(b * options_.batch_size + i) % train_rows];
      for (size_t j = 0; j < dim; ++j) x(i, j) = row.features[j];
      y[i] = row.label;
    }
    SAMPNN_ASSIGN_OR_RETURN(const double loss, trainer_->Step(x, y));
    stats_.last_loss = loss;
    ++stats_.batches;
    ++total_batches_;
    Count(kMetricBatches);
    verdict = sentinel.Observe(loss, trainer_->last_grad_norm2());
    if (verdict != DivergenceSentinel::Verdict::kOk) break;
    if (options_.checkpoint_every > 0 &&
        (b + 1) % options_.checkpoint_every == 0 &&
        b + 1 < options_.fine_tune_batches) {
      SAMPNN_RETURN_NOT_OK(WriteCheckpoint());
    }
  }

  if (verdict != DivergenceSentinel::Verdict::kOk) {
    // Diverged: the candidate is structurally unpromotable — restore the
    // round-start weights, back off the learning rate, and abandon the
    // drift episode (refreeze keeps a persistent shift from re-tripping
    // into the same divergence forever).
    ++stats_.diverged;
    Count(kMetricDiverged);
    last_error_ = std::string("fine-tune round diverged: ") +
                  SentinelVerdictToString(verdict);
    std::istringstream in(start_state);
    SAMPNN_RETURN_NOT_OK(trainer_->LoadState(in));
    trainer_->set_learning_rate(trainer_->learning_rate() *
                                options_.sentinel.lr_backoff);
    detector_.Refreeze();
    pool_.clear();
    stats_.pool_size = 0;
    EmitRoundTelemetry();
    SetState(LifecycleState::kIdle);
    return Status::OK();
  }

  // The final candidate checkpoint PromoteFromDir will pick up (newest
  // step in the shared dir).
  SAMPNN_RETURN_NOT_OK(WriteCheckpoint());
  SetState(LifecycleState::kPromoting);

  const CanaryBatch canary = BuildCanary();
  if (FaultArmed(FaultKind::kCanaryRegress)) {
    ++stats_.rejected_canary;
    Count(kMetricRejCanary);
    last_error_ = "canary eval regressed (injected canary-regress)";
    pool_.clear();
    stats_.pool_size = 0;
    EmitRoundTelemetry();
    SetState(LifecycleState::kIdle);
    return Status::OK();
  }

  const uint64_t displaced = registry_->live_version();
  StatusOr<uint64_t> version =
      registry_->PromoteFromDir(options_.checkpoint_dir, canary, "drift");
  if (!version.ok()) {
    // A typed registry rejection (corrupt/regressed/incompatible/raced) is
    // a recorded outcome, not a loop failure; the next episode retries.
    ++stats_.rejected_registry;
    Count(kMetricRejRegistry);
    last_error_ = version.status().message();
    pool_.clear();
    stats_.pool_size = 0;
    EmitRoundTelemetry();
    SetState(LifecycleState::kIdle);
    return Status::OK();
  }

  ++stats_.promotions;
  Count(kMetricPromotions);
  displaced_version_ = displaced;
  baseline_slo_ =
      options_.slo_source ? options_.slo_source() : SloSnapshot{};
  watch_until_ms_ = clock_->NowMillis() + options_.demotion_window_ms;
  pool_.clear();
  stats_.pool_size = 0;
  EmitRoundTelemetry();
  SetState(LifecycleState::kWatching);
  return Status::OK();
}

void FineTuneLoop::CheckDemotionWindow() {
  const int64_t now = clock_->NowMillis();
  bool regressed = false;
  std::string reason;
  if (options_.slo_source) {
    const SloSnapshot current = options_.slo_source();
    if (baseline_slo_.p99_ms > 0.0 &&
        current.p99_ms > options_.min_p99_ms &&
        current.p99_ms > baseline_slo_.p99_ms * options_.max_p99_regression) {
      regressed = true;
      reason = "p99 " + std::to_string(current.p99_ms) + "ms vs baseline " +
               std::to_string(baseline_slo_.p99_ms) + "ms";
    }
    if (current.window_count > 0 &&
        current.violation_rate >
            baseline_slo_.violation_rate + options_.max_violation_delta) {
      regressed = true;
      reason = "violation rate " + std::to_string(current.violation_rate) +
               " vs baseline " +
               std::to_string(baseline_slo_.violation_rate);
    }
  }
  if (regressed) {
    const Status status = registry_->Rollback(displaced_version_);
    if (status.ok()) {
      ++stats_.rollbacks;
      Count(kMetricRollbacks);
      last_error_ = "auto-rollback to v" +
                    std::to_string(displaced_version_) + ": " + reason;
    } else {
      // The displaced version fell out of the retained ring (or a manual
      // rollback raced us): record, give up on this window.
      last_error_ = "auto-rollback failed: " + status.message();
    }
    // Either way the fine-tuned candidate is no longer trusted for this
    // episode; adopt the shifted distribution so the loop does not thrash.
    detector_.Refreeze();
    SetState(LifecycleState::kIdle);
    return;
  }
  if (now >= watch_until_ms_) {
    ++stats_.windows_clean;
    Count(kMetricWindowsClean);
    // The promotion held: the fine-tuned model owns the shifted
    // distribution from here on.
    detector_.Refreeze();
    SetState(LifecycleState::kIdle);
  }
}

Status FineTuneLoop::TickOnce() {
  MutexLock lock(mu_);
  ++stats_.ticks;
  Count(kMetricTicks);
  DrainIntoPool();
  if (stats_.state == LifecycleState::kWatching) {
    CheckDemotionWindow();
  }
  if (stats_.state == LifecycleState::kIdle && detector_.Tripped() &&
      pool_.size() >= options_.min_labeled) {
    return RunFineTuneRound();
  }
  return Status::OK();
}

Status FineTuneLoop::Start() {
  if (thread_.joinable()) {
    return Status::FailedPrecondition("FineTuneLoop already started");
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      const Status status = TickOnce();
      if (!status.ok()) {
        MutexLock lock(mu_);
        last_error_ = status.message();
      }
      if (stop_.load(std::memory_order_acquire)) break;
      clock_->SleepMillis(options_.poll_ms);
    }
  });
  return Status::OK();
}

void FineTuneLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

LifecycleStats FineTuneLoop::stats() const {
  MutexLock lock(mu_);
  LifecycleStats snapshot = stats_;
  snapshot.drift_score = detector_.score();
  snapshot.drift_trips = detector_.stats().trips;
  snapshot.drift_observed = detector_.stats().observed;
  snapshot.drift_refreezes = detector_.stats().refreezes;
  return snapshot;
}

std::string FineTuneLoop::RenderStatuszSection() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  out << "state: " << LifecycleStateToString(stats_.state)
      << " drift_score=" << detector_.score()
      << " tripped=" << (detector_.stats().tripped ? 1 : 0)
      << " trips=" << detector_.stats().trips
      << " observed=" << detector_.stats().observed << "\n";
  out << "rounds=" << stats_.rounds << " batches=" << stats_.batches
      << " diverged=" << stats_.diverged
      << " last_loss=" << stats_.last_loss << "\n";
  out << "promotions=" << stats_.promotions << " rejected{canary="
      << stats_.rejected_canary << ",registry=" << stats_.rejected_registry
      << "} rollbacks=" << stats_.rollbacks
      << " windows_clean=" << stats_.windows_clean << "\n";
  out << "pool=" << pool_.size() << " ticks=" << stats_.ticks;
  if (stats_.state == LifecycleState::kWatching) {
    out << " watch_until_ms=" << watch_until_ms_ << " displaced=v"
        << displaced_version_;
  }
  out << "\n";
  if (!last_error_.empty()) out << "last event: " << last_error_ << "\n";
  return out.str();
}

}  // namespace sampnn
