// Input-drift detection for the continuous lifecycle loop (DESIGN.md §14).
//
// At construction the detector freezes a per-feature reference (mean and
// standard deviation) from training-time input rows. Serving-time rows then
// update a per-feature EWMA of the live mean; the drift score is the mean
// absolute z of the live means against the frozen reference:
//
//   score = mean_i |ewma_i - mu_i| / (sigma_i + eps)
//
// The detector trips when the score crosses `z_threshold` after at least
// `min_observations` rows — a population-level test, so per-row noise
// cannot trip it, but a persistent shift (every row moved) must. After a
// successful promotion the loop calls Refreeze(), which adopts the current
// live EWMA as the new reference: the fine-tuned model owns the shifted
// distribution, and the same shift must not re-trip forever.
//
// Honors the injected drift-spike fault (drift-spike@N): Tripped() reports
// a forced trip exactly once per armed spec, regardless of statistics.
//
// Single-consumer by design: owned and driven by the FineTuneLoop under its
// own lock. Mirrors drift.* gauges/counters when observability is on.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/status.h"

namespace sampnn {

/// Tuning for a DriftDetector.
struct DriftDetectorOptions {
  double z_threshold = 4.0;       ///< trip when score >= this
                                  ///< (SAMPNN_LIFECYCLE_DRIFT_Z)
  double ewma_alpha = 0.05;       ///< live-mean smoothing factor
  uint64_t min_observations = 64; ///< rows before trips are allowed
  double eps = 1e-6;              ///< sigma floor for constant features
  /// Gates drift.* metric mirroring; nullptr = TelemetryEnabled().
  std::function<bool()> obs_enabled;

  /// Defaults with the SAMPNN_LIFECYCLE_* environment applied.
  static DriftDetectorOptions FromEnv();
};

/// Lifetime counters/state (mirrored to drift.* metrics when enabled).
struct DriftStats {
  uint64_t observed = 0;  ///< rows seen since construction
  uint64_t trips = 0;     ///< rising edges of the tripped condition
  uint64_t refreezes = 0; ///< reference re-freezes after promotion
  double score = 0.0;     ///< current aggregate z
  bool tripped = false;   ///< current trip state
};

/// \brief Frozen-reference z-score drift detector over input feature means.
class DriftDetector {
 public:
  /// Freezes the reference from `reference` (rows x features). At least one
  /// row and one column are required.
  static StatusOr<DriftDetector> Create(const Matrix& reference,
                                        const DriftDetectorOptions& options);

  /// Feeds one serving-time feature row (must match the reference width).
  void Observe(std::span<const float> row);

  /// Current trip state: score past the threshold with enough observations,
  /// or an injected drift-spike. Counts rising edges into stats().trips.
  bool Tripped();

  double score() const { return stats_.score; }

  /// Adopts the current live EWMA as the new frozen reference and clears
  /// the trip state (called after the loop promotes a fine-tuned model, or
  /// abandons a drift episode for good).
  void Refreeze();

  const DriftStats& stats() const { return stats_; }
  size_t num_features() const { return reference_mean_.size(); }

 private:
  DriftDetector(const Matrix& reference, const DriftDetectorOptions& options);

  void RecomputeScore();
  bool ObsOn() const;
  void MirrorMetrics() const;

  DriftDetectorOptions options_;
  std::vector<double> reference_mean_;
  std::vector<double> reference_sigma_;
  std::vector<double> live_mean_;  ///< EWMA, seeded from the reference
  DriftStats stats_;
  bool forced_trip_ = false;  ///< latched injected drift-spike
};

}  // namespace sampnn
