// The continuous train-while-serve loop (DESIGN.md §14): the subsystem
// that closes the paper's §2 deploy → fine-tune lifecycle. A background
// FineTuneLoop
//
//   1. drains the RequestLog the serving layer populates (every row feeds
//      the DriftDetector; labeled rows accumulate as fine-tuning data, the
//      newest `canary_rows` of them held back as the canary slice),
//   2. decides WHEN to fine-tune from the detector's frozen-reference
//      z-score (or an injected drift-spike),
//   3. fine-tunes through the Trainer seam with the divergence sentinel
//      armed and PR 3 checkpointing into a shared directory — a diverged
//      round restores the round-start state, backs off the learning rate,
//      and abandons the episode, so a diverged candidate is structurally
//      unpromotable,
//   4. promotes only through the hardened gate: the loop-side canary check
//      (injected canary-regress respected) and then
//      ModelRegistry::PromoteFromDir, which re-validates CRC, parses the
//      model, checks dims, and runs its own sentinel-guarded canary eval,
//   5. after a promotion, watches serve.slo.* deltas for a demotion
//      window; a p99 or violation-rate regression past the bound invokes
//      ModelRegistry::Rollback() on the displaced version automatically.
//
// State machine (rendered in /statusz, mirrored to lifecycle.state):
//
//     kIdle ──drift trip + enough labels──▶ kFineTuning
//       ▲                                      │ sentinel verdict != ok:
//       │◀──────── restore + backoff ──────────┤ (episode abandoned)
//       │                                      ▼
//       │◀──canary/registry gate rejects── kPromoting
//       │                                      │ promoted
//       │                                      ▼
//       └──window clean (refreeze) / SLO ── kWatching
//          regression (auto-rollback)
//
// Deterministic by construction: every decision runs inside TickOnce(),
// clocked by the injected Clock — unit tests drive a ManualClock tick by
// tick; Start() merely runs TickOnce on a poll cadence for production.
//
// Locking: one mutex ("lifecycle.loop", rank 15 — above obs.statusz so the
// /statusz section renders under it, below obs.slo / registry.swap /
// lifecycle.request_log so the tick may call SloTracker::Snapshot(),
// Promote/Rollback, and Drain while held).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/trainer.h"
#include "src/lifecycle/drift_detector.h"
#include "src/lifecycle/request_log.h"
#include "src/obs/slo_tracker.h"
#include "src/registry/model_registry.h"
#include "src/resilience/checkpoint.h"
#include "src/resilience/sentinel.h"
#include "src/util/deadline.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace sampnn {

/// Tuning for a FineTuneLoop (SAMPNN_LIFECYCLE_* environment knobs).
struct FineTuneLoopOptions {
  std::string checkpoint_dir;      ///< shared with any external promoter
  size_t checkpoint_retain = 3;    ///< retain-K in the shared dir
  int64_t poll_ms = 200;           ///< Start() tick cadence
  int64_t demotion_window_ms = 5000;  ///< post-promotion SLO watch
  size_t fine_tune_batches = 50;   ///< Step() calls per round
  size_t batch_size = 32;
  size_t checkpoint_every = 25;    ///< batches between mid-round checkpoints
  size_t min_labeled = 64;         ///< labeled rows needed to start a round
  size_t canary_rows = 32;         ///< held-back slice (never trained on)
  size_t max_pool = 4096;          ///< labeled-row pool bound (oldest evicted)
  size_t drain_max = 1024;         ///< rows drained from the log per tick
  /// Rollback when windowed p99 exceeds baseline * this (and min_p99_ms).
  double max_p99_regression = 2.0;
  double min_p99_ms = 1.0;         ///< absolute floor before p99 can demote
  /// Rollback when violation_rate exceeds baseline + this.
  double max_violation_delta = 0.2;

  SentinelOptions sentinel;        ///< armed per round (enabled forced on)
  DriftDetectorOptions drift;

  /// Windowed SLO source for the demotion watch (typically
  /// SloTracker::Snapshot through InferenceService::slo_tracker()).
  /// Nullptr = no demotion watch; the window always closes clean.
  std::function<SloSnapshot()> slo_source;

  /// Gates lifecycle.* metric mirroring; nullptr = TelemetryEnabled().
  std::function<bool()> obs_enabled;

  const Clock* clock = nullptr;  ///< nullptr = the real clock

  /// Defaults with the SAMPNN_LIFECYCLE_* environment applied.
  static FineTuneLoopOptions FromEnv();
};

/// Loop position, exported as lifecycle.state (gauge = enum value).
enum class LifecycleState {
  kIdle = 0,        ///< draining + watching for drift
  kFineTuning = 1,  ///< inside a fine-tune round
  kPromoting = 2,   ///< candidate written, gates running
  kWatching = 3,    ///< post-promotion demotion window open
};

const char* LifecycleStateToString(LifecycleState state);

/// Lifetime counters (mirrored to lifecycle.* metrics when enabled).
struct LifecycleStats {
  uint64_t ticks = 0;
  uint64_t rounds = 0;             ///< fine-tune rounds started
  uint64_t batches = 0;            ///< total Step() calls across rounds
  uint64_t diverged = 0;           ///< rounds abandoned by the sentinel
  uint64_t promotions = 0;         ///< registry flips this loop caused
  uint64_t rejected_canary = 0;    ///< loop-side canary gate rejections
  uint64_t rejected_registry = 0;  ///< registry pipeline rejections
  uint64_t rollbacks = 0;          ///< demotion-window auto-rollbacks
  uint64_t windows_clean = 0;      ///< demotion windows closed healthy
  double last_loss = 0.0;          ///< last fine-tune batch loss
  size_t pool_size = 0;            ///< labeled rows currently pooled
  LifecycleState state = LifecycleState::kIdle;
  // Drift detector view, copied into the snapshot by stats() so callers
  // (the example's JSON summary, the smoke checker) get one coherent read.
  double drift_score = 0.0;
  uint64_t drift_trips = 0;
  uint64_t drift_observed = 0;
  uint64_t drift_refreezes = 0;
};

/// \brief The background fine-tune / promote / watch loop. Thread-safe:
/// TickOnce (the loop thread), stats(), and RenderStatuszSection (the
/// statusz thread) serialize on the loop mutex.
class FineTuneLoop {
 public:
  /// `trainer` must already hold the weights the registry is serving (the
  /// fine-tune delta starts from the live model). `drift_reference` is the
  /// training-time input sample the detector freezes (rows x input_dim).
  static StatusOr<std::unique_ptr<FineTuneLoop>> Create(
      std::unique_ptr<Trainer> trainer, std::shared_ptr<RequestLog> log,
      std::shared_ptr<ModelRegistry> registry, const Matrix& drift_reference,
      const FineTuneLoopOptions& options);

  ~FineTuneLoop();

  /// One deterministic tick: drain → drift check → maybe fine-tune +
  /// promote → maybe watch/rollback. The unit-test entry point; Start()'s
  /// thread calls exactly this.
  Status TickOnce() SAMPNN_EXCLUDES(mu_);

  /// Spawns the background thread (TickOnce every poll_ms). kFailedPrecondition
  /// if already started.
  Status Start();
  /// Stops and joins the background thread (idempotent).
  void Stop();

  LifecycleStats stats() const SAMPNN_EXCLUDES(mu_);
  const FineTuneLoopOptions& options() const { return options_; }

  /// Plain-text /statusz "lifecycle" section.
  std::string RenderStatuszSection() const SAMPNN_EXCLUDES(mu_);

 private:
  FineTuneLoop(std::unique_ptr<Trainer> trainer,
               std::shared_ptr<RequestLog> log,
               std::shared_ptr<ModelRegistry> registry,
               DriftDetector detector, CheckpointWriter writer,
               const FineTuneLoopOptions& options);

  void DrainIntoPool() SAMPNN_REQUIRES(mu_);
  Status RunFineTuneRound() SAMPNN_REQUIRES(mu_);
  Status WriteCheckpoint() SAMPNN_REQUIRES(mu_);
  void CheckDemotionWindow() SAMPNN_REQUIRES(mu_);
  CanaryBatch BuildCanary() SAMPNN_REQUIRES(mu_);
  void SetState(LifecycleState state) SAMPNN_REQUIRES(mu_);
  void EmitRoundTelemetry() SAMPNN_REQUIRES(mu_);
  bool ObsOn() const;
  void Count(const char* metric, uint64_t delta = 1) const;

  const FineTuneLoopOptions options_;
  const Clock* const clock_;
  const std::shared_ptr<RequestLog> log_;
  const std::shared_ptr<ModelRegistry> registry_;

  mutable Mutex mu_{"lifecycle.loop", lockrank::kLifecycleLoop};
  std::unique_ptr<Trainer> trainer_ SAMPNN_GUARDED_BY(mu_);
  DriftDetector detector_ SAMPNN_GUARDED_BY(mu_);
  CheckpointWriter writer_ SAMPNN_GUARDED_BY(mu_);
  std::vector<LoggedRequest> pool_ SAMPNN_GUARDED_BY(mu_);  ///< labeled rows
  LifecycleStats stats_ SAMPNN_GUARDED_BY(mu_);
  uint64_t total_batches_ SAMPNN_GUARDED_BY(mu_) = 0;  ///< checkpoint step
  // Demotion-window state (valid while state == kWatching).
  SloSnapshot baseline_slo_ SAMPNN_GUARDED_BY(mu_);
  uint64_t displaced_version_ SAMPNN_GUARDED_BY(mu_) = 0;
  int64_t watch_until_ms_ SAMPNN_GUARDED_BY(mu_) = 0;
  std::string last_error_ SAMPNN_GUARDED_BY(mu_);  ///< last tick failure

  // Background thread plumbing (Start/Stop only).
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace sampnn
