#include "src/lifecycle/drift_detector.h"

#include <cmath>

#include "src/resilience/fault_injector.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/util/env.h"

namespace sampnn {

namespace {

constexpr const char* kMetricScore = "drift.score";
constexpr const char* kMetricTripped = "drift.tripped";
constexpr const char* kMetricTrips = "drift.trips";
constexpr const char* kMetricObserved = "drift.observed";
constexpr const char* kMetricRefreezes = "drift.refreezes";

}  // namespace

DriftDetectorOptions DriftDetectorOptions::FromEnv() {
  DriftDetectorOptions options;
  options.z_threshold =
      GetEnvDoubleOr("SAMPNN_LIFECYCLE_DRIFT_Z", options.z_threshold);
  options.ewma_alpha =
      GetEnvDoubleOr("SAMPNN_LIFECYCLE_DRIFT_ALPHA", options.ewma_alpha);
  options.min_observations = static_cast<uint64_t>(GetEnvIntInRangeOr(
      "SAMPNN_LIFECYCLE_DRIFT_MIN_OBS",
      static_cast<long long>(options.min_observations), 1, 1 << 24));
  return options;
}

StatusOr<DriftDetector> DriftDetector::Create(
    const Matrix& reference, const DriftDetectorOptions& options) {
  if (reference.rows() == 0 || reference.cols() == 0) {
    return Status::InvalidArgument(
        "DriftDetector: reference must have at least one row and column");
  }
  if (options.z_threshold <= 0.0 || options.ewma_alpha <= 0.0 ||
      options.ewma_alpha > 1.0) {
    return Status::InvalidArgument(
        "DriftDetector: z_threshold must be > 0 and ewma_alpha in (0, 1]");
  }
  return DriftDetector(reference, options);
}

DriftDetector::DriftDetector(const Matrix& reference,
                             const DriftDetectorOptions& options)
    : options_(options) {
  const size_t n = reference.cols();
  const size_t rows = reference.rows();
  reference_mean_.assign(n, 0.0);
  reference_sigma_.assign(n, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < n; ++j) reference_mean_[j] += reference(i, j);
  }
  for (size_t j = 0; j < n; ++j) {
    reference_mean_[j] /= static_cast<double>(rows);
  }
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double d = reference(i, j) - reference_mean_[j];
      reference_sigma_[j] += d * d;
    }
  }
  for (size_t j = 0; j < n; ++j) {
    reference_sigma_[j] =
        std::sqrt(reference_sigma_[j] / static_cast<double>(rows));
  }
  // Seed the live EWMA at the reference so the score starts at exactly 0
  // and early serving noise cannot trip the detector.
  live_mean_ = reference_mean_;
  MirrorMetrics();
  if (ObsOn()) {
    // Pre-register the event counters at zero so a /metricsz scrape shows
    // the full drift.* schema before the first row (or trip) arrives.
    auto& metrics = MetricsRegistry::Get();
    for (const char* name :
         {kMetricObserved, kMetricTrips, kMetricRefreezes}) {
      metrics.GetCounter(name);
    }
  }
}

bool DriftDetector::ObsOn() const {
  return options_.obs_enabled ? options_.obs_enabled() : TelemetryEnabled();
}

void DriftDetector::MirrorMetrics() const {
  if (!ObsOn()) return;
  auto& metrics = MetricsRegistry::Get();
  metrics.GetGauge(kMetricScore).Set(stats_.score);
  metrics.GetGauge(kMetricTripped).Set(stats_.tripped ? 1.0 : 0.0);
}

void DriftDetector::Observe(std::span<const float> row) {
  if (row.size() != live_mean_.size()) return;  // malformed row: ignore
  const double a = options_.ewma_alpha;
  for (size_t j = 0; j < live_mean_.size(); ++j) {
    live_mean_[j] = (1.0 - a) * live_mean_[j] + a * static_cast<double>(row[j]);
  }
  ++stats_.observed;
  if (ObsOn()) MetricsRegistry::Get().GetCounter(kMetricObserved).Increment();
  RecomputeScore();
}

void DriftDetector::RecomputeScore() {
  double sum = 0.0;
  for (size_t j = 0; j < live_mean_.size(); ++j) {
    sum += std::abs(live_mean_[j] - reference_mean_[j]) /
           (reference_sigma_[j] + options_.eps);
  }
  stats_.score = sum / static_cast<double>(live_mean_.size());
  if (ObsOn()) MetricsRegistry::Get().GetGauge(kMetricScore).Set(stats_.score);
}

bool DriftDetector::Tripped() {
  if (FaultArmed(FaultKind::kDriftSpike)) forced_trip_ = true;
  const bool now = forced_trip_ ||
                   (stats_.observed >= options_.min_observations &&
                    stats_.score >= options_.z_threshold);
  if (now && !stats_.tripped) {
    ++stats_.trips;
    if (ObsOn()) MetricsRegistry::Get().GetCounter(kMetricTrips).Increment();
  }
  stats_.tripped = now;
  if (ObsOn()) {
    MetricsRegistry::Get().GetGauge(kMetricTripped).Set(now ? 1.0 : 0.0);
  }
  return now;
}

void DriftDetector::Refreeze() {
  reference_mean_ = live_mean_;
  // Keep the frozen sigmas: the reference spread is a property of the
  // feature, and the EWMA of means carries no spread estimate to replace
  // it with.
  forced_trip_ = false;
  stats_.tripped = false;
  ++stats_.refreezes;
  RecomputeScore();
  if (ObsOn()) {
    auto& metrics = MetricsRegistry::Get();
    metrics.GetCounter(kMetricRefreezes).Increment();
    metrics.GetGauge(kMetricTripped).Set(0.0);
  }
}

}  // namespace sampnn
