#include "src/lifecycle/request_log.h"

#include <algorithm>

#include "src/resilience/fault_injector.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/util/env.h"

namespace sampnn {

namespace {

constexpr const char* kMetricOffered = "lifecycle.log.offered";
constexpr const char* kMetricSampled = "lifecycle.log.sampled";
constexpr const char* kMetricDropped = "lifecycle.log.dropped";
constexpr const char* kMetricLabeled = "lifecycle.log.labeled";
constexpr const char* kMetricStalls = "lifecycle.log.stalls";
constexpr const char* kMetricBuffered = "lifecycle.log.buffered";

}  // namespace

RequestLogOptions RequestLogOptions::FromEnv() {
  RequestLogOptions options;
  options.capacity = static_cast<size_t>(GetEnvIntInRangeOr(
      "SAMPNN_LIFECYCLE_LOG_CAP", static_cast<long long>(options.capacity), 1,
      1 << 22));
  options.sample_every = static_cast<uint64_t>(GetEnvIntInRangeOr(
      "SAMPNN_LIFECYCLE_SAMPLE_EVERY",
      static_cast<long long>(options.sample_every), 1, 1 << 20));
  return options;
}

RequestLog::RequestLog(const RequestLogOptions& options) : options_(options) {}

std::shared_ptr<RequestLog> RequestLog::Create(
    const RequestLogOptions& options) {
  std::shared_ptr<RequestLog> log(new RequestLog(options));
  if (log->ObsOn()) {
    // Pre-register the whole lifecycle.log.* family at zero so a /metricsz
    // scrape shows it before any traffic arrives.
    auto& metrics = MetricsRegistry::Get();
    for (const char* name : {kMetricOffered, kMetricSampled, kMetricDropped,
                             kMetricLabeled, kMetricStalls}) {
      metrics.GetCounter(name);
    }
    metrics.GetGauge(kMetricBuffered).Set(0.0);
  }
  return log;
}

bool RequestLog::ObsOn() const {
  return options_.obs_enabled ? options_.obs_enabled() : TelemetryEnabled();
}

void RequestLog::MirrorMetrics() const {
  if (!ObsOn()) return;
  MetricsRegistry::Get().GetGauge(kMetricBuffered)
      .Set(static_cast<double>(ring_.size()));
}

uint64_t RequestLog::Offer(std::string_view tenant,
                           std::span<const float> features) {
  const bool obs = ObsOn();
  MutexLock lock(mu_);
  ++stats_.offered;
  if (obs) MetricsRegistry::Get().GetCounter(kMetricOffered).Increment();
  if (options_.sample_every > 1 &&
      stats_.offered % options_.sample_every != 0) {
    return 0;
  }
  if (ring_.size() >= options_.capacity && !ring_.empty()) {
    ring_.pop_front();
    ++stats_.dropped;
    if (obs) MetricsRegistry::Get().GetCounter(kMetricDropped).Increment();
  }
  LoggedRequest row;
  row.seq = next_seq_++;
  row.tenant.assign(tenant.data(), tenant.size());
  row.features.assign(features.begin(), features.end());
  ring_.push_back(std::move(row));
  ++stats_.sampled;
  stats_.buffered = ring_.size();
  if (obs) MetricsRegistry::Get().GetCounter(kMetricSampled).Increment();
  MirrorMetrics();
  return next_seq_ - 1;
}

Status RequestLog::Label(uint64_t seq, int32_t label) {
  if (seq == 0) {
    return Status::NotFound("request was sampled out of the log");
  }
  MutexLock lock(mu_);
  // Ring entries are seq-ascending, so the join is a binary search.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), seq,
      [](const LoggedRequest& row, uint64_t s) { return row.seq < s; });
  if (it == ring_.end() || it->seq != seq) {
    return Status::NotFound("seq " + std::to_string(seq) +
                            " already drained or evicted");
  }
  it->label = label;
  ++stats_.labeled;
  if (ObsOn()) MetricsRegistry::Get().GetCounter(kMetricLabeled).Increment();
  return Status::OK();
}

std::vector<LoggedRequest> RequestLog::Drain(size_t max) {
  const bool obs = ObsOn();
  MutexLock lock(mu_);
  std::vector<LoggedRequest> out;
  if (FaultArmed(FaultKind::kStreamStall)) {
    // Injected stream starvation: the buffered rows are lost and the
    // consumer sees an empty drain, as if the producer side went quiet.
    stats_.dropped += ring_.size();
    if (obs && !ring_.empty()) {
      MetricsRegistry::Get().GetCounter(kMetricDropped).Add(ring_.size());
    }
    ring_.clear();
    ++stats_.stalls;
    stats_.buffered = 0;
    if (obs) MetricsRegistry::Get().GetCounter(kMetricStalls).Increment();
    MirrorMetrics();
    return out;
  }
  const size_t n = std::min(max, ring_.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(ring_.front()));
    ring_.pop_front();
  }
  stats_.drained += n;
  stats_.buffered = ring_.size();
  MirrorMetrics();
  return out;
}

RequestLogStats RequestLog::stats() const {
  MutexLock lock(mu_);
  RequestLogStats snapshot = stats_;
  snapshot.buffered = ring_.size();
  return snapshot;
}

}  // namespace sampnn
