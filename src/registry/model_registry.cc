#include "src/registry/model_registry.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "src/nn/loss.h"
#include "src/nn/serialize.h"
#include "src/resilience/checkpoint.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/util/crc32.h"
#include "src/util/env.h"

namespace sampnn {

namespace {

// Metric names mirrored by the registry (Prometheus exposition turns the
// dots into underscores under the "sampnn_" prefix).
constexpr const char* kMetricAttempted = "registry.promote.attempted";
constexpr const char* kMetricPromoted = "registry.promote.promoted";
constexpr const char* kMetricRejCorrupt = "registry.promote.rejected_corrupt";
constexpr const char* kMetricRejRegressed =
    "registry.promote.rejected_regressed";
constexpr const char* kMetricRejIncompatible =
    "registry.promote.rejected_incompatible";
constexpr const char* kMetricRejRaced = "registry.promote.rejected_raced";
constexpr const char* kMetricRollbacks = "registry.rollbacks";
constexpr const char* kMetricLiveVersion = "registry.live_version";
constexpr const char* kMetricRetained = "registry.retained";

}  // namespace

const char* PromotionOutcomeToString(PromotionOutcome outcome) {
  switch (outcome) {
    case PromotionOutcome::kNone:
      return "none";
    case PromotionOutcome::kPromoted:
      return "promoted";
    case PromotionOutcome::kRejectedCorrupt:
      return "rejected-corrupt";
    case PromotionOutcome::kRejectedRegressed:
      return "rejected-regressed";
    case PromotionOutcome::kRejectedIncompatible:
      return "rejected-incompatible";
    case PromotionOutcome::kRejectedRaced:
      return "rejected-raced";
    case PromotionOutcome::kRolledBack:
      return "rolled-back";
  }
  return "unknown";
}

RegistryOptions RegistryOptions::FromEnv() {
  RegistryOptions options;
  options.retain = static_cast<size_t>(
      GetEnvIntInRangeOr("SAMPNN_REGISTRY_RETAIN", 3, 0, 64));
  return options;
}

ModelRegistry::ModelRegistry(BackendFactory factory,
                             const RegistryOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::Real()),
      factory_(std::move(factory)) {}

StatusOr<std::unique_ptr<ModelRegistry>> ModelRegistry::Create(
    std::shared_ptr<ModelBackend> initial, BackendFactory factory,
    const RegistryOptions& options) {
  if (initial == nullptr) {
    return Status::InvalidArgument("ModelRegistry needs an initial backend");
  }
  std::unique_ptr<ModelRegistry> registry(
      new ModelRegistry(std::move(factory), options));
  if (!options.promote_fault_spec.empty()) {
    SAMPNN_ASSIGN_OR_RETURN(FaultInjector local,
                            FaultInjector::Parse(options.promote_fault_spec));
    registry->local_faults_ =
        std::make_unique<FaultInjector>(std::move(local));
  }
  auto boot = std::make_shared<ModelEntry>();
  boot->version = 1;
  boot->backend = std::move(initial);
  boot->promoted_at_ms = registry->NowMs();
  registry->live_.store(std::move(boot), std::memory_order_release);
  {
    MutexLock lock(registry->mu_);
    registry->MirrorRegistryMetrics();
  }
  if (registry->ObsOn()) {
    // Pre-register every outcome counter at zero: a /metricsz scrape shows
    // the full registry.* family (and rates compute correctly from the
    // first event) even before any promotion has been attempted.
    auto& metrics = MetricsRegistry::Get();
    for (const char* name :
         {kMetricAttempted, kMetricPromoted, kMetricRejCorrupt,
          kMetricRejRegressed, kMetricRejIncompatible, kMetricRejRaced,
          kMetricRollbacks}) {
      metrics.GetCounter(name);
    }
  }
  return registry;
}

bool ModelRegistry::ObsOn() const {
  return options_.obs_enabled ? options_.obs_enabled() : TelemetryEnabled();
}

bool ModelRegistry::PromotionFaultFires(FaultKind kind) {
  if (local_faults_ != nullptr) return local_faults_->ShouldFire(kind);
  return FaultArmed(kind);
}

StatusOr<double> ModelRegistry::CanaryLoss(ModelBackend& backend,
                                           const CanaryBatch& canary) {
  Matrix logits;
  // Full quality, no deadline: the gate wants the backend's native answer,
  // and a promotion is allowed to take the milliseconds the eval costs.
  SAMPNN_RETURN_NOT_OK(
      backend.Forward(canary.inputs, CancelContext{}, ServeQuality::kFull,
                      &logits));
  return SoftmaxCrossEntropy::Loss(logits, canary.labels);
}

void ModelRegistry::RecordOutcome(PromotionOutcome outcome, uint64_t version,
                                  const std::string& detail) {
  last_.outcome = outcome;
  last_.version = version;
  last_.at_ms = NowMs();
  last_.detail = detail;
  const char* counter = nullptr;
  switch (outcome) {
    case PromotionOutcome::kNone:
      break;
    case PromotionOutcome::kPromoted:
      ++stats_.promoted;
      counter = kMetricPromoted;
      break;
    case PromotionOutcome::kRejectedCorrupt:
      ++stats_.rejected_corrupt;
      counter = kMetricRejCorrupt;
      break;
    case PromotionOutcome::kRejectedRegressed:
      ++stats_.rejected_regressed;
      counter = kMetricRejRegressed;
      break;
    case PromotionOutcome::kRejectedIncompatible:
      ++stats_.rejected_incompatible;
      counter = kMetricRejIncompatible;
      break;
    case PromotionOutcome::kRejectedRaced:
      ++stats_.rejected_raced;
      counter = kMetricRejRaced;
      break;
    case PromotionOutcome::kRolledBack:
      ++stats_.rollbacks;
      counter = kMetricRollbacks;
      break;
  }
  if (counter != nullptr && ObsOn()) {
    MetricsRegistry::Get().GetCounter(counter).Increment();
  }
  MirrorRegistryMetrics();
}

void ModelRegistry::MirrorRegistryMetrics() {
  if (!ObsOn()) return;
  auto& registry = MetricsRegistry::Get();
  const auto live = live_.load(std::memory_order_acquire);
  registry.GetGauge(kMetricLiveVersion)
      .Set(live == nullptr ? 0.0 : static_cast<double>(live->version));
  registry.GetGauge(kMetricRetained)
      .Set(static_cast<double>(retained_.size()));
}

StatusOr<uint64_t> ModelRegistry::Promote(Mlp candidate,
                                          ModelProvenance provenance,
                                          const CanaryBatch& canary) {
  MutexLock lock(mu_);
  ++stats_.promotions_attempted;
  if (local_faults_ != nullptr) local_faults_->AdvanceStep();
  if (ObsOn()) MetricsRegistry::Get().GetCounter(kMetricAttempted).Increment();

  if (PromotionFaultFires(FaultKind::kPromoteCorrupt)) {
    const Status status = Status::DataLoss(
        "candidate checkpoint failed integrity validation (injected "
        "promote-corrupt)");
    RecordOutcome(PromotionOutcome::kRejectedCorrupt, 0, status.message());
    return status;
  }

  if (factory_ == nullptr) {
    const Status status = Status::FailedPrecondition(
        "registry has no backend factory; promotion is disabled");
    RecordOutcome(PromotionOutcome::kRejectedIncompatible, 0,
                  status.message());
    return status;
  }

  const std::shared_ptr<const ModelEntry> live =
      live_.load(std::memory_order_acquire);
  if (candidate.input_dim() != live->backend->input_dim() ||
      candidate.output_dim() != live->backend->output_dim()) {
    std::ostringstream msg;
    msg << "candidate dims " << candidate.input_dim() << "x"
        << candidate.output_dim() << " incompatible with live model "
        << live->backend->input_dim() << "x" << live->backend->output_dim();
    const Status status = Status::FailedPrecondition(msg.str());
    RecordOutcome(PromotionOutcome::kRejectedIncompatible, 0,
                  status.message());
    return status;
  }

  auto built = factory_(std::move(candidate));
  if (!built.ok()) {
    RecordOutcome(PromotionOutcome::kRejectedIncompatible, 0,
                  built.status().message());
    return built.status();
  }
  std::shared_ptr<ModelBackend> backend = std::move(built).value();

  // Canary gate: the sentinel's spike detector, seeded with the live
  // model's loss on the same batch so "regressed" means "worse than what is
  // serving right now", not "worse than some absolute floor". NaN/Inf in
  // the candidate's loss trips the non-finite scan regardless.
  if (canary.inputs.rows() > 0) {
    SAMPNN_ASSIGN_OR_RETURN(const double baseline,
                            CanaryLoss(*live->backend, canary));
    SAMPNN_ASSIGN_OR_RETURN(double candidate_loss,
                            CanaryLoss(*backend, canary));
    if (PromotionFaultFires(FaultKind::kPromoteRegressed)) {
      // Simulate a gate-worthy regression: a loss far past the spike factor.
      candidate_loss =
          (std::abs(baseline) + 1.0) * options_.sentinel.spike_factor * 4.0;
    }
    SentinelOptions gate = options_.sentinel;
    gate.enabled = true;  // the registry always gates; opting out is not
                          // a supported promotion mode
    DivergenceSentinel sentinel(gate);
    // Seeding past the warmup arms the spike detector on the very first
    // (and only) observation.
    sentinel.RestoreState(baseline, gate.warmup_batches + 1);
    const DivergenceSentinel::Verdict verdict =
        sentinel.Observe(candidate_loss, /*grad_norm2=*/-1.0);
    if (verdict != DivergenceSentinel::Verdict::kOk) {
      std::ostringstream msg;
      msg << "canary eval rejected candidate: "
          << SentinelVerdictToString(verdict) << " (candidate loss "
          << candidate_loss << " vs live baseline " << baseline << ")";
      const Status status = Status::FailedPrecondition(msg.str());
      RecordOutcome(PromotionOutcome::kRejectedRegressed, 0,
                    status.message());
      return status;
    }
  }

  if (PromotionFaultFires(FaultKind::kSwapRace)) {
    const Status status = Status::Aborted(
        "promotion raced with a drain (injected swap-race); candidate "
        "discarded, prior version stays live");
    RecordOutcome(PromotionOutcome::kRejectedRaced, 0, status.message());
    return status;
  }

  // All gates passed: publish. Readers that already hold the previous entry
  // keep serving it; new Current() calls see the candidate.
  auto entry = std::make_shared<ModelEntry>();
  entry->version = next_version_++;
  entry->backend = std::move(backend);
  entry->provenance = std::move(provenance);
  entry->promoted_at_ms = NowMs();
  retained_.insert(retained_.begin(), live);
  if (retained_.size() > options_.retain) retained_.resize(options_.retain);
  live_.store(entry, std::memory_order_release);
  RecordOutcome(PromotionOutcome::kPromoted, entry->version, "");
  return entry->version;
}

StatusOr<uint64_t> ModelRegistry::PromoteFromDir(const std::string& dir,
                                                 const CanaryBatch& canary,
                                                 const std::string& cause) {
  auto loaded = LatestValidCheckpoint(dir);
  if (!loaded.ok()) {
    // No valid frame (or no directory): record the rejection so /statusz
    // shows the failed attempt, then surface the loader's status.
    MutexLock lock(mu_);
    ++stats_.promotions_attempted;
    if (local_faults_ != nullptr) local_faults_->AdvanceStep();
    if (ObsOn()) {
      MetricsRegistry::Get().GetCounter(kMetricAttempted).Increment();
    }
    RecordOutcome(PromotionOutcome::kRejectedCorrupt, 0,
                  loaded.status().message());
    return loaded.status();
  }
  std::istringstream payload(loaded.value().payload);
  auto model = LoadMlp(payload);
  if (!model.ok()) {
    MutexLock lock(mu_);
    ++stats_.promotions_attempted;
    if (local_faults_ != nullptr) local_faults_->AdvanceStep();
    if (ObsOn()) {
      MetricsRegistry::Get().GetCounter(kMetricAttempted).Increment();
    }
    const Status status = Status::DataLoss(
        "checkpoint " + loaded.value().path +
        " passed frame validation but does not carry a parseable model: " +
        model.status().message());
    RecordOutcome(PromotionOutcome::kRejectedCorrupt, 0, status.message());
    return status;
  }
  ModelProvenance provenance;
  provenance.checkpoint_path = loaded.value().path;
  provenance.checkpoint_step = loaded.value().step;
  provenance.payload_crc32 = Crc32(loaded.value().payload);
  provenance.cause = cause;
  return Promote(std::move(model).value(), std::move(provenance), canary);
}

Status ModelRegistry::Rollback(uint64_t version) {
  MutexLock lock(mu_);
  const std::shared_ptr<const ModelEntry> live =
      live_.load(std::memory_order_acquire);
  if (live->version == version) {
    return Status::FailedPrecondition("version " + std::to_string(version) +
                                      " is already live");
  }
  auto it = std::find_if(retained_.begin(), retained_.end(),
                         [version](const auto& entry) {
                           return entry->version == version;
                         });
  if (it == retained_.end()) {
    return Status::NotFound("version " + std::to_string(version) +
                            " is not retained (retain=" +
                            std::to_string(options_.retain) + ")");
  }
  const std::shared_ptr<const ModelEntry> target = *it;
  retained_.erase(it);
  retained_.insert(retained_.begin(), live);
  if (retained_.size() > options_.retain) retained_.resize(options_.retain);
  live_.store(target, std::memory_order_release);
  RecordOutcome(PromotionOutcome::kRolledBack, version, "");
  return Status::OK();
}

std::vector<std::shared_ptr<const ModelEntry>>
ModelRegistry::RetainedEntries() const {
  MutexLock lock(mu_);
  std::vector<std::shared_ptr<const ModelEntry>> entries;
  entries.reserve(retained_.size() + 1);
  entries.push_back(live_.load(std::memory_order_acquire));
  entries.insert(entries.end(), retained_.begin(), retained_.end());
  return entries;
}

PromotionRecord ModelRegistry::LastPromotion() const {
  MutexLock lock(mu_);
  return last_;
}

RegistryStats ModelRegistry::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::string ModelRegistry::RenderStatuszSection() const {
  MutexLock lock(mu_);
  const std::shared_ptr<const ModelEntry> live =
      live_.load(std::memory_order_acquire);
  std::ostringstream out;
  out << "live: v" << live->version << " (" << live->backend->name()
      << ") promoted_at_ms=" << live->promoted_at_ms;
  if (!live->provenance.checkpoint_path.empty()) {
    out << " ckpt=" << live->provenance.checkpoint_path
        << " step=" << live->provenance.checkpoint_step << " crc=0x"
        << std::hex << live->provenance.payload_crc32 << std::dec
        << " cause=" << live->provenance.cause;
  }
  out << "\nretained:";
  if (retained_.empty()) {
    out << " (none)";
  } else {
    for (const auto& entry : retained_) out << " v" << entry->version;
  }
  out << "\nlast promotion: " << PromotionOutcomeToString(last_.outcome);
  if (last_.outcome != PromotionOutcome::kNone) {
    if (last_.version != 0) out << " v" << last_.version;
    out << " at_ms=" << last_.at_ms;
    if (!last_.detail.empty()) out << " -- " << last_.detail;
  }
  out << "\nattempted=" << stats_.promotions_attempted
      << " promoted=" << stats_.promoted << " rejected{corrupt="
      << stats_.rejected_corrupt << ",regressed=" << stats_.rejected_regressed
      << ",incompatible=" << stats_.rejected_incompatible
      << ",raced=" << stats_.rejected_raced << "} rollbacks="
      << stats_.rollbacks << "\n";
  return out.str();
}

}  // namespace sampnn
