// Zero-downtime model registry (DESIGN.md §13): versioned, immutable
// ModelEntry snapshots behind an RCU-style atomic std::shared_ptr flip.
//
// Readers (the serving workers) call Current() — one lock-free atomic
// acquire-load — and pin the entry they got for the lifetime of the batch,
// so an in-flight micro-batch always finishes on the model version it
// started with and a promotion never blocks or drops a request. Writers
// (the promotion pipeline) build the complete candidate entry off to the
// side and publish it with a single release-store; the previous entry stays
// alive (and servable by batches that already hold it) until the last
// shared_ptr drops.
//
// Promotion is a guarded pipeline, not a blind swap:
//
//   load checkpoint ──▶ parse model ──▶ dims match? ──▶ build backend
//        │ (CRC frame)       │ (SNN1)        │                 │
//        ▼                   ▼               ▼                 ▼
//     kDataLoss /      kDataLoss      kFailedPrecondition   canary eval
//     kNotFound                       (incompatible)            │
//                                                               ▼
//                                              divergence sentinel verdict
//                                              (non-finite / loss spike vs.
//                                               the live model's canary
//                                               loss) ──▶ kFailedPrecondition
//                                                               │ ok
//                                                               ▼
//                                                          RCU flip
//
// A rejected candidate leaves the previous version live and untouched;
// Rollback() re-pins any retained prior version. Every terminal outcome is
// recorded (LastPromotion()) and mirrored to registry.* metrics for the
// introspection plane.
//
// The promotion fault kinds of FaultInjector (promote-corrupt@N,
// promote-regressed@N, swap-race@N) are honored either from the process
// global injector or — so a serving workload's admitted-request step counter
// cannot skew promotion schedules — from a registry-local injector whose
// step counts promotion attempts (RegistryOptions::promote_fault_spec).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/mlp.h"
#include "src/resilience/fault_injector.h"
#include "src/resilience/sentinel.h"
#include "src/serve/model_backend.h"
#include "src/tensor/matrix.h"
#include "src/util/deadline.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace sampnn {

/// Where a servable model came from: checkpoint path + integrity footprint
/// for audit ("which bytes is version 7 serving?"). Empty path = registered
/// in-memory (the boot model).
struct ModelProvenance {
  std::string checkpoint_path;
  uint64_t checkpoint_step = 0;
  uint32_t payload_crc32 = 0;
  /// Why this promotion happened: "manual" (operator-driven, the default),
  /// "drift" (lifecycle loop reacting to input drift), etc. Audit trail for
  /// "who decided version 7 should serve?".
  std::string cause = "manual";
};

/// \brief One immutable registry snapshot. Everything in an entry is frozen
/// at promotion time; the backend is internally thread-safe (ModelBackend
/// contract), so concurrent batches may share one entry freely.
struct ModelEntry {
  uint64_t version = 0;  ///< monotonically increasing, never reused
  std::shared_ptr<ModelBackend> backend;
  ModelProvenance provenance;
  int64_t promoted_at_ms = 0;  ///< registry-clock instant of the flip
};

/// Terminal outcome of the most recent promotion or rollback attempt.
enum class PromotionOutcome {
  kNone,                 ///< no promotion attempted yet
  kPromoted,             ///< candidate passed every gate; flip happened
  kRejectedCorrupt,      ///< checkpoint failed CRC / framing / parse
  kRejectedRegressed,    ///< canary eval tripped the divergence sentinel
  kRejectedIncompatible, ///< candidate dims differ from the live model
  kRejectedRaced,        ///< promotion lost a race with a drain/stop
  kRolledBack,           ///< Rollback() re-pinned a retained version
};

const char* PromotionOutcomeToString(PromotionOutcome outcome);

/// What happened last, for /statusz and tests.
struct PromotionRecord {
  PromotionOutcome outcome = PromotionOutcome::kNone;
  uint64_t version = 0;  ///< version promoted / re-pinned; 0 on rejection
  int64_t at_ms = 0;     ///< registry-clock instant of the attempt
  std::string detail;    ///< status message on rejection, "" on success
};

/// Labeled eval batch the promotion gate scores candidates on. Typically a
/// held-out slice of the serving distribution; a few dozen rows suffice —
/// the gate catches corruption and gross regression, not a 0.1% accuracy
/// drift.
struct CanaryBatch {
  Matrix inputs;
  std::vector<int32_t> labels;
};

/// Monotonic counters over the registry's lifetime (always on; mirrored to
/// registry.* metrics only when observability is enabled).
struct RegistryStats {
  uint64_t promotions_attempted = 0;
  uint64_t promoted = 0;
  uint64_t rejected_corrupt = 0;
  uint64_t rejected_regressed = 0;
  uint64_t rejected_incompatible = 0;
  uint64_t rejected_raced = 0;
  uint64_t rollbacks = 0;
};

/// Tuning for a ModelRegistry.
struct RegistryOptions {
  /// Prior versions kept flippable after a promotion (SAMPNN_REGISTRY_RETAIN).
  /// The live version is always retained; 0 keeps only the live version
  /// (Rollback then has nothing to re-pin).
  size_t retain = 3;

  /// Canary gate: the sentinel's spike detector compares the candidate's
  /// canary loss against the live model's canary loss on the same batch.
  /// `warmup_batches` is ignored (the baseline seeds the EWMA directly);
  /// NaN/Inf scans are always armed.
  SentinelOptions sentinel;

  /// Promotion-fault schedule local to this registry ("promote-corrupt@2",
  /// steps count promotion attempts starting at 1). Empty = consult the
  /// process-global FaultInjector instead (steps then follow whatever that
  /// injector counts).
  std::string promote_fault_spec;

  /// Gates registry.* metric mirroring; nullptr = TelemetryEnabled().
  std::function<bool()> obs_enabled;

  const Clock* clock = nullptr;  ///< nullptr = the real monotonic clock

  /// Defaults with SAMPNN_REGISTRY_RETAIN applied (hardened parse).
  static RegistryOptions FromEnv();
};

/// \brief The versioned model registry. Thread-safe: any number of
/// concurrent Current() readers against one promotion/rollback writer at a
/// time (writers serialize on an internal mutex; readers never block).
class ModelRegistry {
 public:
  /// Builds a servable backend from loaded model parameters. Called by the
  /// promotion pipeline outside any lock; must be thread-compatible.
  using BackendFactory =
      std::function<StatusOr<std::shared_ptr<ModelBackend>>(Mlp model)>;

  /// Creates a registry with `initial` live as version 1. `factory` may be
  /// nullptr, in which case Promote/PromoteFromDir fail with
  /// kFailedPrecondition (a fixed single-model registry, the wrap the
  /// serving layer uses for backends handed to it directly).
  static StatusOr<std::unique_ptr<ModelRegistry>> Create(
      std::shared_ptr<ModelBackend> initial, BackendFactory factory,
      const RegistryOptions& options);

  /// The live entry: one lock-free acquire-load. Never null. Callers that
  /// run work against the entry keep the shared_ptr for the duration, which
  /// is what pins an in-flight batch to its version across a concurrent
  /// flip.
  std::shared_ptr<const ModelEntry> Current() const {
    return live_.load(std::memory_order_acquire);
  }

  uint64_t live_version() const { return Current()->version; }

  /// Full promotion pipeline over an in-memory candidate: compatibility
  /// gate, backend build, canary eval through the divergence sentinel, RCU
  /// flip. Returns the new live version, or the rejection:
  ///   kFailedPrecondition  no factory / incompatible dims / canary verdict
  ///   kDataLoss            injected promote-corrupt (checkpoint-path
  ///                        corruption surfaces from PromoteFromDir)
  ///   kAborted             promotion raced with a drain (swap-race)
  StatusOr<uint64_t> Promote(Mlp candidate, ModelProvenance provenance,
                             const CanaryBatch& canary);

  /// Loads the newest checkpoint in `dir` that passes the PR 3 frame
  /// validation (magic / declared size / CRC32), parses the SNN1 model
  /// image from its payload, and runs the Promote pipeline. kNotFound when
  /// the directory holds no valid checkpoint; kDataLoss when the newest
  /// valid frame does not carry a parseable model. `cause` is stamped into
  /// the promoted entry's provenance ("manual", "drift", ...).
  StatusOr<uint64_t> PromoteFromDir(const std::string& dir,
                                    const CanaryBatch& canary,
                                    const std::string& cause = "manual");

  /// Re-pins retained `version` as live (the emergency lever after a bad —
  /// but gate-passing — promotion). The displaced entry joins the retained
  /// set. kNotFound if `version` is not retained; kFailedPrecondition if it
  /// is already live.
  Status Rollback(uint64_t version);

  /// Every flippable entry: the live one first, then retained priors,
  /// newest first.
  std::vector<std::shared_ptr<const ModelEntry>> RetainedEntries() const;

  PromotionRecord LastPromotion() const;
  RegistryStats stats() const;
  const RegistryOptions& options() const { return options_; }

  /// Plain-text /statusz section: live version + provenance, retained
  /// versions, last promotion outcome + timestamp, lifetime counters.
  std::string RenderStatuszSection() const;

 private:
  ModelRegistry(BackendFactory factory, const RegistryOptions& options);

  /// Scores `backend` on the canary batch (full quality, no deadline).
  /// Returns the mean softmax cross-entropy loss.
  static StatusOr<double> CanaryLoss(ModelBackend& backend,
                                     const CanaryBatch& canary);

  /// True exactly once per armed fault: the registry-local injector when
  /// configured, else the process-global one.
  bool PromotionFaultFires(FaultKind kind);

  /// Records the outcome, bumps counters, mirrors metrics. `version` is the
  /// promoted/re-pinned version (0 for rejections).
  void RecordOutcome(PromotionOutcome outcome, uint64_t version,
                     const std::string& detail) SAMPNN_REQUIRES(mu_);

  void MirrorRegistryMetrics() SAMPNN_REQUIRES(mu_);
  bool ObsOn() const;
  int64_t NowMs() const { return clock_->NowMillis(); }

  const RegistryOptions options_;
  const Clock* const clock_;
  const BackendFactory factory_;

  // RCU publication point. Writers store under mu_; readers never lock.
  std::atomic<std::shared_ptr<const ModelEntry>> live_;

  // Serializes promotions, rollbacks, and retained-set maintenance. Held
  // across the canary eval on purpose: two concurrent promotions racing
  // their canary runs would make "which one wins" depend on eval timing.
  mutable Mutex mu_{"registry.swap", lockrank::kRegistrySwap};
  std::vector<std::shared_ptr<const ModelEntry>> retained_
      SAMPNN_GUARDED_BY(mu_);  ///< newest first, excludes live
  uint64_t next_version_ SAMPNN_GUARDED_BY(mu_) = 2;
  PromotionRecord last_ SAMPNN_GUARDED_BY(mu_);
  RegistryStats stats_ SAMPNN_GUARDED_BY(mu_);
  // Registry-local promotion-fault schedule (empty spec = unused).
  std::unique_ptr<FaultInjector> local_faults_;
};

}  // namespace sampnn
