// The §10.4 decision tree ("Optimal Choice of Training Method") as an API:
// given the training regime, recommend a method and explain why.

#pragma once

#include <cstddef>
#include <string>

#include "src/core/trainer.h"

namespace sampnn {

/// Inputs to the decision tree.
struct TrainingScenario {
  size_t batch_size = 20;         ///< 1 = stochastic setting
  size_t hidden_layers = 3;       ///< network depth
  bool parallel_hardware = false; ///< multiple cores available for HOGWILD
};

/// A recommendation plus the paper-grounded rationale.
struct MethodRecommendation {
  TrainerKind method = TrainerKind::kStandard;
  std::string rationale;  ///< cites the paper evidence behind the choice
};

/// Applies the paper's decision tree:
///   mini-batch SGD (batch > 1)            → MC-approx (§9.3, Tab. 4)
///   stochastic, shallow (<= 4), parallel  → ALSH-approx ([50], §10.4)
///   stochastic otherwise                  → Standard / Adaptive-Dropout
MethodRecommendation RecommendMethod(const TrainingScenario& scenario);

}  // namespace sampnn
