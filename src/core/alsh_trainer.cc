#include "src/core/alsh_trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/lsh/mips.h"
#include "src/nn/loss.h"
#include "src/resilience/fault_injector.h"
#include "src/telemetry/epoch_recorder.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"
#include "src/tensor/kernels.h"
#include "src/util/binary_io.h"

namespace sampnn {

namespace {

void WriteMatrixState(std::ostream& out, const Matrix& m) {
  WriteU64(out, m.rows());
  WriteU64(out, m.cols());
  WriteFloats(out, {m.data(), m.size()});
}

Status ReadMatrixStateInto(std::istream& in, Matrix* m) {
  SAMPNN_ASSIGN_OR_RETURN(uint64_t rows, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(uint64_t cols, ReadU64(in));
  if (rows != m->rows() || cols != m->cols()) {
    return Status::InvalidArgument(
        "checkpointed matrix is " + std::to_string(rows) + "x" +
        std::to_string(cols) + ", expected " + std::to_string(m->rows()) +
        "x" + std::to_string(m->cols()));
  }
  std::vector<float> buf;
  SAMPNN_RETURN_NOT_OK(ReadFloats(in, &buf));
  if (buf.size() != m->size()) {
    return Status::InvalidArgument("checkpointed matrix payload mismatch");
  }
  std::copy(buf.begin(), buf.end(), m->data());
  return Status::OK();
}

Status ReadFloatsExact(std::istream& in, std::vector<float>* out,
                       size_t expected) {
  SAMPNN_RETURN_NOT_OK(ReadFloats(in, out));
  if (out->size() != expected) {
    return Status::InvalidArgument("checkpointed vector length mismatch");
  }
  return Status::OK();
}

}  // namespace

StatusOr<SparseOptState> SparseOptState::Create(const Layer& layer,
                                                const std::string& mode_name) {
  SparseOptState state;
  if (mode_name == "sgd") {
    state.mode = Mode::kSgd;
  } else if (mode_name == "adagrad") {
    state.mode = Mode::kAdagrad;
  } else if (mode_name == "adam") {
    state.mode = Mode::kAdam;
  } else {
    return Status::InvalidArgument("SparseOptState: unknown mode " + mode_name);
  }
  if (state.mode != Mode::kSgd) {
    state.v_w = Matrix(layer.in_dim(), layer.out_dim());
    state.v_b.assign(layer.out_dim(), 0.0f);
    if (state.mode == Mode::kAdam) {
      state.m_w = Matrix(layer.in_dim(), layer.out_dim());
      state.m_b.assign(layer.out_dim(), 0.0f);
      state.col_step.assign(layer.out_dim(), 0);
    }
  }
  return state;
}

void SparseOptState::UpdateColumn(Matrix* w, std::span<float> bias, size_t j,
                                  std::span<const float> a_prev,
                                  std::span<const uint32_t> prev_support,
                                  float delta_j, float lr) {
  const size_t n = w->cols();
  float* wd = w->data();
  switch (mode) {
    case Mode::kSgd: {
      for (uint32_t i : prev_support) {
        const float g = delta_j * a_prev[i];
        if (g != 0.0f) wd[i * n + j] -= lr * g;
      }
      bias[j] -= lr * delta_j;
      return;
    }
    case Mode::kAdagrad: {
      float* vd = v_w.data();
      for (uint32_t i : prev_support) {
        const float g = delta_j * a_prev[i];
        if (g == 0.0f) continue;
        const size_t idx = i * n + j;
        vd[idx] += g * g;
        wd[idx] -= lr * g / (std::sqrt(vd[idx]) + 1e-10f);
      }
      const float gb = delta_j;
      v_b[j] += gb * gb;
      bias[j] -= lr * gb / (std::sqrt(v_b[j]) + 1e-10f);
      return;
    }
    case Mode::kAdam: {
      // Lazy Adam: untouched steps skip moment decay (standard for sparse
      // embedding-style updates); bias correction uses the per-column count.
      constexpr float kBeta1 = 0.9f, kBeta2 = 0.999f, kEps = 1e-8f;
      const uint32_t t = ++col_step[j];
      const float bc1 = 1.0f - std::pow(kBeta1, static_cast<float>(t));
      const float bc2 = 1.0f - std::pow(kBeta2, static_cast<float>(t));
      const float step_size = lr * std::sqrt(bc2) / bc1;
      float* vd = v_w.data();
      float* md = m_w.data();
      for (uint32_t i : prev_support) {
        const float g = delta_j * a_prev[i];
        if (g == 0.0f) continue;
        const size_t idx = i * n + j;
        md[idx] = kBeta1 * md[idx] + (1.0f - kBeta1) * g;
        vd[idx] = kBeta2 * vd[idx] + (1.0f - kBeta2) * g * g;
        wd[idx] -= step_size * md[idx] / (std::sqrt(vd[idx]) + kEps);
      }
      const float gb = delta_j;
      m_b[j] = kBeta1 * m_b[j] + (1.0f - kBeta1) * gb;
      v_b[j] = kBeta2 * v_b[j] + (1.0f - kBeta2) * gb * gb;
      bias[j] -= step_size * m_b[j] / (std::sqrt(v_b[j]) + kEps);
      return;
    }
  }
}

StatusOr<std::unique_ptr<AlshTrainer>> AlshTrainer::Create(
    Mlp net, const AlshOptions& options, float learning_rate, uint64_t seed) {
  if (learning_rate <= 0.0f) {
    return Status::InvalidArgument("AlshTrainer: learning rate must be > 0");
  }
  if (options.early_rebuild_every == 0 || options.late_rebuild_every == 0) {
    return Status::InvalidArgument(
        "AlshTrainer: rebuild periods must be >= 1");
  }
  std::unique_ptr<AlshTrainer> trainer(
      new AlshTrainer(std::move(net), options, learning_rate, seed));
  SAMPNN_RETURN_NOT_OK(trainer->Init());
  return trainer;
}

AlshTrainer::AlshTrainer(Mlp net, const AlshOptions& options,
                         float learning_rate, uint64_t seed)
    : Trainer(std::move(net)), options_(options), lr_(learning_rate),
      seed_(seed) {}

Status AlshTrainer::Init() {
  const size_t num_hidden = net_.num_hidden_layers();
  indexes_.reserve(num_hidden);
  for (size_t k = 0; k < num_hidden; ++k) {
    const Layer& layer = net_.layer(k);
    SAMPNN_ASSIGN_OR_RETURN(
        AlshIndex index,
        AlshIndex::Create(layer.in_dim(), options_.index, seed_ + 1000 * k));
    index.Build(layer.weights());
    indexes_.push_back(std::move(index));
  }
  opt_states_.reserve(net_.num_layers());
  for (size_t k = 0; k < net_.num_layers(); ++k) {
    SAMPNN_ASSIGN_OR_RETURN(
        SparseOptState state,
        SparseOptState::Create(net_.layer(k), options_.optimizer));
    opt_states_.push_back(std::move(state));
  }
  const size_t threads = std::max<size_t>(1, options_.threads);
  scratches_.resize(threads);
  Rng seeder(seed_ ^ 0xA15A1EADull);
  for (auto& s : scratches_) s.rng = seeder.Split();
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  initialized_ = true;
  return Status::OK();
}

void AlshTrainer::SelectActive(size_t hidden_layer,
                               std::span<const float> a_prev,
                               Scratch* scratch) {
  auto& active = scratch->active[hidden_layer];
  const size_t n = net_.layer(hidden_layer).out_dim();
  if (options_.selection == AlshSelection::kOracle) {
    // Exact MIPS: the Lemma 7.1 idealization. Dense cost, perfect selection.
    const size_t k = std::min(n, std::max<size_t>(1, options_.oracle_active));
    const auto top = ExactMips(net_.layer(hidden_layer).weights(), a_prev, k);
    active.clear();
    active.reserve(top.size());
    for (const MipsResult& r : top) active.push_back(r.id);
    scratch->active_fraction_sum +=
        static_cast<double>(active.size()) / static_cast<double>(n);
    ++scratch->active_fraction_count;
    return;
  }
  indexes_[hidden_layer].Query(a_prev, &active);
  if (active.empty() && options_.dense_fallback) {
    // Graceful degradation: an empty probe union means the index has no
    // signal for this query (degenerate tables, all-zero activations, a
    // just-poisoned layer). Run the layer dense for this sample rather
    // than training on the random-fill floor alone.
    active.resize(n);
    std::iota(active.begin(), active.end(), 0u);
    ++scratch->dense_fallbacks;
    if (TelemetryEnabled()) {
      static Counter& c = MetricsRegistry::Get().GetCounter(
          "resilience.alsh_dense_fallbacks");
      c.Increment();
    }
    scratch->active_fraction_sum += 1.0;
    ++scratch->active_fraction_count;
    return;
  }
  if (active.size() < options_.min_active && active.size() < n) {
    // Random fill keeps training alive when buckets come back (near) empty —
    // the floor is itself a uniform sample, like a tiny Dropout fallback.
    const size_t want = std::min(options_.min_active, n);
    while (active.size() < want) {
      const auto cand =
          static_cast<uint32_t>(scratch->rng.NextBounded(n));
      if (std::find(active.begin(), active.end(), cand) == active.end()) {
        active.push_back(cand);
      }
    }
  }
  scratch->active_fraction_sum +=
      static_cast<double>(active.size()) / static_cast<double>(n);
  ++scratch->active_fraction_count;
}

double AlshTrainer::TrainSample(std::span<const float> x, int32_t label,
                                Scratch* scratch) {
  const size_t num_layers = net_.num_layers();
  const size_t num_hidden = net_.num_hidden_layers();
  scratch->a.resize(num_layers);
  scratch->z.resize(num_layers);
  scratch->active.resize(num_hidden);

  // Nonzero input coordinates: the sparse update support of layer 0.
  scratch->input_support.clear();
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] != 0.0f) {
      scratch->input_support.push_back(static_cast<uint32_t>(i));
    }
  }

  // --- Feedforward over active nodes only ---
  {
    PhaseScope scope(&scratch->timer, kPhaseForward);
    std::span<const float> a_prev = x;
    for (size_t k = 0; k < num_hidden; ++k) {
      const Layer& layer = net_.layer(k);
      {
        // Hash-probe selection, charged as a sub-phase nested inside
        // forward (the paper folds it into feedforward time).
        PhaseScope sampling(&scratch->timer, kPhaseSampling);
        SelectActive(k, a_prev, scratch);
      }
      auto& z = scratch->z[k];
      auto& a = scratch->a[k];
      z.assign(layer.out_dim(), 0.0f);
      a.assign(layer.out_dim(), 0.0f);
      VecMatCols(a_prev, layer.weights(), layer.bias(), scratch->active[k], z);
      for (uint32_t j : scratch->active[k]) {
        a[j] = ActivationValue(layer.activation(), z[j]);
      }
      a_prev = a;
    }
    // Output layer: exact (VecMat skips the zeros of the sparse a_prev).
    const Layer& out_layer = net_.layer(num_layers - 1);
    auto& z_out = scratch->z[num_layers - 1];
    auto& a_out = scratch->a[num_layers - 1];
    z_out.assign(out_layer.out_dim(), 0.0f);
    out_layer.ForwardLinear(a_prev, z_out);
    a_out = z_out;  // linear output layer
  }

  // --- Loss gradient (softmax - onehot) ---
  auto& logits = scratch->a[num_layers - 1];
  const float mx = *std::max_element(logits.begin(), logits.end());
  double denom = 0.0;
  for (float v : logits) denom += std::exp(static_cast<double>(v - mx));
  auto& delta = scratch->delta;
  delta.resize(logits.size());
  for (size_t j = 0; j < logits.size(); ++j) {
    delta[j] = static_cast<float>(
        std::exp(static_cast<double>(logits[j] - mx)) / denom);
  }
  const double loss =
      std::log(denom) + mx - logits[static_cast<size_t>(label)];
  delta[static_cast<size_t>(label)] -= 1.0f;

  // --- Backpropagation through active nodes only ---
  {
    PhaseScope scope(&scratch->timer, kPhaseBackward);
    for (size_t k = num_layers; k-- > 0;) {
      Layer& layer = net_.layer(k);
      const bool is_output = (k == num_layers - 1);
      std::span<const float> a_prev =
          (k == 0) ? x : std::span<const float>(scratch->a[k - 1]);
      std::span<const uint32_t> prev_support;
      if (k == 0) {
        prev_support = scratch->input_support;
      } else {
        prev_support = scratch->active[k - 1];
      }

      // delta for the previous layer, needed before this layer's update
      // mutates the weights.
      if (k > 0) {
        const Layer& prev_layer = net_.layer(k - 1);
        auto& delta_prev = scratch->delta_prev;
        delta_prev.assign(prev_layer.out_dim(), 0.0f);
        const Matrix& w = layer.weights();
        const size_t n = w.cols();
        const float* wd = w.data();
        if (is_output) {
          // Dense over the (small) output dimension, sparse over rows.
          for (uint32_t i : prev_support) {
            const float* row = wd + static_cast<size_t>(i) * n;
            float acc = 0.0f;
            for (size_t j = 0; j < n; ++j) acc += delta[j] * row[j];
            delta_prev[i] = acc;
          }
        } else {
          for (uint32_t i : prev_support) {
            const float* row = wd + static_cast<size_t>(i) * n;
            float acc = 0.0f;
            for (uint32_t j : scratch->active[k]) acc += delta[j] * row[j];
            delta_prev[i] = acc;
          }
        }
        for (uint32_t i : prev_support) {
          delta_prev[i] *= ActivationGradValue(prev_layer.activation(),
                                               scratch->z[k - 1][i]);
        }
        // Sparse weight update of this layer, then move down.
        SparseOptState& opt = opt_states_[k];
        if (is_output) {
          for (size_t j = 0; j < layer.out_dim(); ++j) {
            opt.UpdateColumn(&layer.weights(), layer.bias(), j, a_prev,
                             prev_support, delta[j], lr_);
          }
        } else {
          for (uint32_t j : scratch->active[k]) {
            opt.UpdateColumn(&layer.weights(), layer.bias(), j, a_prev,
                             prev_support, delta[j], lr_);
          }
        }
        delta.swap(scratch->delta_prev);
      } else {
        SparseOptState& opt = opt_states_[0];
        if (num_layers == 1) {
          for (size_t j = 0; j < layer.out_dim(); ++j) {
            opt.UpdateColumn(&layer.weights(), layer.bias(), j, a_prev,
                             prev_support, delta[j], lr_);
          }
        } else {
          for (uint32_t j : scratch->active[0]) {
            opt.UpdateColumn(&layer.weights(), layer.bias(), j, a_prev,
                             prev_support, delta[j], lr_);
          }
        }
      }
    }
  }
  return loss;
}

void AlshTrainer::MaybeRebuild() {
  const size_t period = samples_seen_ <= options_.early_phase_samples
                            ? options_.early_rebuild_every
                            : options_.late_rebuild_every;
  if (samples_seen_ - samples_at_last_rebuild_ < period) return;
  samples_at_last_rebuild_ = samples_seen_;
  PhaseScope scope(&timer_, kPhaseHashRebuild);
  if (pool_ != nullptr && indexes_.size() > 1) {
    // Per-layer indexes are independent and the weights are read-only
    // during a rebuild, so the L-table reconstruction parallelizes cleanly
    // across layers (unlike the HOGWILD sample loop, this path is
    // race-free and runs under TSan in CI).
    pool_->ParallelFor(indexes_.size(), [this](size_t k) {
      indexes_[k].Build(net_.layer(k).weights());
    });
  } else {
    for (size_t k = 0; k < indexes_.size(); ++k) {
      indexes_[k].Build(net_.layer(k).weights());
    }
  }
}

StatusOr<double> AlshTrainer::Step(const Matrix& x,
                                   std::span<const int32_t> y) {
  SAMPNN_CHECK(initialized_);
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("AlshTrainer::Step: batch size mismatch");
  }
  if (x.cols() != net_.input_dim()) {
    return Status::InvalidArgument("AlshTrainer::Step: input dim mismatch");
  }
  double total_loss = 0.0;
  if (pool_ == nullptr) {
    for (size_t r = 0; r < x.rows(); ++r) {
      total_loss += TrainSample(x.Row(r), y[r], &scratches_[0]);
      ++samples_seen_;
      MaybeRebuild();
    }
  } else {
    // HOGWILD over the minibatch: each worker owns one scratch and a
    // contiguous slice of samples; weight races are tolerated by design.
    const size_t workers = scratches_.size();
    const size_t rows = x.rows();
    const size_t per_worker = (rows + workers - 1) / workers;
    std::vector<double> worker_loss(workers, 0.0);
    PhaseScope scope(&timer_, "parallel");
    for (size_t w = 0; w < workers; ++w) {
      const size_t begin = w * per_worker;
      const size_t end = std::min(rows, begin + per_worker);
      if (begin >= end) break;
      pool_->Submit([this, &x, &y, &worker_loss, w, begin, end] {
        double acc = 0.0;
        for (size_t r = begin; r < end; ++r) {
          acc += TrainSample(x.Row(r), y[r], &scratches_[w]);
        }
        worker_loss[w] = acc;
      });
    }
    pool_->Wait();
    for (double l : worker_loss) total_loss += l;
    samples_seen_ += rows;
    MaybeRebuild();
  }
  for (Scratch& s : scratches_) {
    timer_.Merge(s.timer);
    s.timer.Reset();
  }
  if (FaultArmed(FaultKind::kGradNan)) {
    // Sparse updates write straight into the weights, so a poisoned
    // gradient manifests as a poisoned parameter. Target the output layer:
    // nothing sits between the logits and the loss to mask the NaN.
    net_.layer(net_.num_layers() - 1).weights()(0, 0) =
        std::numeric_limits<float>::quiet_NaN();
  }
  return total_loss / static_cast<double>(x.rows());
}

uint64_t AlshTrainer::DenseFallbacks() const {
  uint64_t total = 0;
  for (const Scratch& s : scratches_) total += s.dense_fallbacks;
  return total;
}

Status AlshTrainer::SaveExtraState(std::ostream& out) const {
  WriteU64(out, samples_seen_);
  WriteU64(out, samples_at_last_rebuild_);
  WriteU64(out, indexes_.size());
  for (const AlshIndex& index : indexes_) {
    SAMPNN_RETURN_NOT_OK(index.SaveState(out));
  }
  WriteU64(out, opt_states_.size());
  for (const SparseOptState& opt : opt_states_) {
    WriteU64(out, static_cast<uint64_t>(opt.mode));
    WriteMatrixState(out, opt.v_w);
    WriteMatrixState(out, opt.m_w);
    WriteFloats(out, opt.v_b);
    WriteFloats(out, opt.m_b);
    WriteU32s(out, opt.col_step);
  }
  WriteU64(out, scratches_.size());
  for (const Scratch& s : scratches_) {
    WriteRngState(out, s.rng.GetState());
    WriteF64(out, s.active_fraction_sum);
    WriteU64(out, s.active_fraction_count);
    WriteU64(out, s.dense_fallbacks);
  }
  if (!out) return Status::IOError("ALSH trainer state write failure");
  return Status::OK();
}

Status AlshTrainer::LoadExtraState(std::istream& in) {
  SAMPNN_CHECK(initialized_);
  SAMPNN_ASSIGN_OR_RETURN(uint64_t samples_seen, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(uint64_t samples_at_last_rebuild, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(uint64_t num_indexes, ReadU64(in));
  if (num_indexes != indexes_.size()) {
    return Status::InvalidArgument(
        "ALSH state has " + std::to_string(num_indexes) +
        " indexes, trainer has " + std::to_string(indexes_.size()));
  }
  for (AlshIndex& index : indexes_) {
    SAMPNN_RETURN_NOT_OK(index.LoadState(in));
  }
  SAMPNN_ASSIGN_OR_RETURN(uint64_t num_opt, ReadU64(in));
  if (num_opt != opt_states_.size()) {
    return Status::InvalidArgument(
        "ALSH state has " + std::to_string(num_opt) +
        " optimizer states, trainer has " +
        std::to_string(opt_states_.size()));
  }
  for (SparseOptState& opt : opt_states_) {
    SAMPNN_ASSIGN_OR_RETURN(uint64_t mode, ReadU64(in));
    if (mode != static_cast<uint64_t>(opt.mode)) {
      return Status::InvalidArgument(
          "ALSH state sparse-optimizer mode mismatch");
    }
    SAMPNN_RETURN_NOT_OK(ReadMatrixStateInto(in, &opt.v_w));
    SAMPNN_RETURN_NOT_OK(ReadMatrixStateInto(in, &opt.m_w));
    SAMPNN_RETURN_NOT_OK(ReadFloatsExact(in, &opt.v_b, opt.v_b.size()));
    SAMPNN_RETURN_NOT_OK(ReadFloatsExact(in, &opt.m_b, opt.m_b.size()));
    std::vector<uint32_t> col_step;
    SAMPNN_RETURN_NOT_OK(ReadU32s(in, &col_step));
    if (col_step.size() != opt.col_step.size()) {
      return Status::InvalidArgument("ALSH state col_step length mismatch");
    }
    opt.col_step = std::move(col_step);
  }
  SAMPNN_ASSIGN_OR_RETURN(uint64_t num_scratches, ReadU64(in));
  if (num_scratches != scratches_.size()) {
    return Status::InvalidArgument(
        "ALSH state was saved with " + std::to_string(num_scratches) +
        " worker scratches, trainer has " +
        std::to_string(scratches_.size()) +
        " (threads must match to resume)");
  }
  for (Scratch& s : scratches_) {
    SAMPNN_ASSIGN_OR_RETURN(RngState rng_state, ReadRngState(in));
    SAMPNN_ASSIGN_OR_RETURN(s.active_fraction_sum, ReadF64(in));
    SAMPNN_ASSIGN_OR_RETURN(uint64_t count, ReadU64(in));
    SAMPNN_ASSIGN_OR_RETURN(s.dense_fallbacks, ReadU64(in));
    s.rng.SetState(rng_state);
    s.active_fraction_count = static_cast<size_t>(count);
  }
  samples_seen_ = static_cast<size_t>(samples_seen);
  samples_at_last_rebuild_ = static_cast<size_t>(samples_at_last_rebuild);
  return Status::OK();
}

std::vector<float> AlshTrainer::ForwardSampleSparse(std::span<const float> x) {
  SAMPNN_CHECK(initialized_);
  SAMPNN_CHECK_EQ(x.size(), net_.input_dim());
  Scratch& scratch = scratches_[0];
  const size_t num_layers = net_.num_layers();
  const size_t num_hidden = net_.num_hidden_layers();
  scratch.a.resize(num_layers);
  scratch.z.resize(num_layers);
  scratch.active.resize(num_hidden);
  std::span<const float> a_prev = x;
  for (size_t k = 0; k < num_hidden; ++k) {
    const Layer& layer = net_.layer(k);
    SelectActive(k, a_prev, &scratch);
    auto& z = scratch.z[k];
    auto& a = scratch.a[k];
    z.assign(layer.out_dim(), 0.0f);
    a.assign(layer.out_dim(), 0.0f);
    VecMatCols(a_prev, layer.weights(), layer.bias(), scratch.active[k], z);
    for (uint32_t j : scratch.active[k]) {
      a[j] = ActivationValue(layer.activation(), z[j]);
    }
    a_prev = a;
  }
  const Layer& out_layer = net_.layer(num_layers - 1);
  std::vector<float> logits(out_layer.out_dim(), 0.0f);
  out_layer.ForwardLinear(a_prev, logits);
  return logits;
}

std::vector<int32_t> AlshTrainer::PredictSparse(const Matrix& inputs) {
  std::vector<int32_t> out(inputs.rows());
  for (size_t r = 0; r < inputs.rows(); ++r) {
    const std::vector<float> logits = ForwardSampleSparse(inputs.Row(r));
    out[r] = static_cast<int32_t>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
  }
  return out;
}

Status AlshTrainer::PredictCancellable(const Matrix& x,
                                       const CancelContext& ctx,
                                       std::vector<int32_t>* preds) {
  SAMPNN_CHECK(preds != nullptr);
  if (x.cols() != net_.input_dim()) {
    return Status::InvalidArgument("PredictCancellable: input has " +
                                   std::to_string(x.cols()) +
                                   " features, network expects " +
                                   std::to_string(net_.input_dim()));
  }
  preds->assign(x.rows(), -1);
  for (size_t r = 0; r < x.rows(); ++r) {
    if (ctx.ShouldStop()) return ctx.StopStatus();
    const std::vector<float> logits = ForwardSampleSparse(x.Row(r));
    (*preds)[r] = static_cast<int32_t>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
  }
  return Status::OK();
}

double AlshTrainer::AverageActiveFraction() const {
  double sum = 0.0;
  size_t count = 0;
  for (const Scratch& s : scratches_) {
    sum += s.active_fraction_sum;
    count += s.active_fraction_count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

size_t AlshTrainer::TotalRebuilds() const {
  size_t total = 0;
  for (const auto& index : indexes_) total += index.build_count() - 1;
  return total;
}

void AlshTrainer::FillTelemetry(EpochTelemetry* record) const {
  record->active_node_fraction = AverageActiveFraction();
  record->hash_rebuilds = TotalRebuilds();
  double occupancy_sum = 0.0;
  uint64_t nonempty = 0;
  uint64_t max_occupancy = 0;
  for (const AlshIndex& index : indexes_) {
    const AlshIndexStats stats = index.ComputeStats();
    occupancy_sum +=
        stats.avg_nonempty_occupancy * static_cast<double>(stats.nonempty_buckets);
    nonempty += stats.nonempty_buckets;
    max_occupancy = std::max<uint64_t>(max_occupancy, stats.max_bucket_occupancy);
  }
  record->alsh_nonempty_buckets = nonempty;
  record->alsh_max_bucket_occupancy = max_occupancy;
  record->alsh_avg_bucket_occupancy =
      nonempty == 0 ? 0.0 : occupancy_sum / static_cast<double>(nonempty);
  record->alsh_dense_fallbacks = DenseFallbacks();
}

}  // namespace sampnn
