#include "src/core/trainer.h"

#include "src/core/alsh_trainer.h"
#include "src/core/dropout_trainer.h"
#include "src/core/mc_trainer.h"
#include "src/core/standard_trainer.h"
#include "src/nn/loss.h"
#include "src/nn/serialize.h"

namespace sampnn {

Status Trainer::PredictCancellable(const Matrix& x, const CancelContext& ctx,
                                   std::vector<int32_t>* preds) {
  SAMPNN_CHECK(preds != nullptr);
  MlpWorkspace ws;
  SAMPNN_RETURN_NOT_OK(net_.ForwardCancellable(x, ctx, &ws));
  *preds = SoftmaxCrossEntropy::Predict(ws.a.back());
  return Status::OK();
}

Status Trainer::SaveState(std::ostream& out) const {
  SAMPNN_RETURN_NOT_OK(SaveMlp(net_, out));
  return SaveExtraState(out);
}

Status Trainer::LoadState(std::istream& in) {
  SAMPNN_RETURN_NOT_OK(LoadMlpParamsInto(in, &net_));
  return LoadExtraState(in);
}

double GradSquaredNorm(const MlpGrads& grads) {
  double sum = 0.0;
  for (const LayerGrads& g : grads) {
    const float* wd = g.weights.data();
    for (size_t i = 0; i < g.weights.size(); ++i) {
      sum += static_cast<double>(wd[i]) * wd[i];
    }
    for (float b : g.bias) sum += static_cast<double>(b) * b;
  }
  return sum;
}

StatusOr<TrainerKind> TrainerKindFromString(const std::string& name) {
  if (name == "standard") return TrainerKind::kStandard;
  if (name == "dropout") return TrainerKind::kDropout;
  if (name == "adaptive-dropout") return TrainerKind::kAdaptiveDropout;
  if (name == "alsh") return TrainerKind::kAlsh;
  if (name == "mc") return TrainerKind::kMc;
  return Status::InvalidArgument("unknown trainer: " + name);
}

const char* TrainerKindToString(TrainerKind kind) {
  switch (kind) {
    case TrainerKind::kStandard:
      return "standard";
    case TrainerKind::kDropout:
      return "dropout";
    case TrainerKind::kAdaptiveDropout:
      return "adaptive-dropout";
    case TrainerKind::kAlsh:
      return "alsh";
    case TrainerKind::kMc:
      return "mc";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<Trainer>> MakeTrainer(const MlpConfig& net_config,
                                               const TrainerOptions& options) {
  SAMPNN_ASSIGN_OR_RETURN(Mlp net, Mlp::Create(net_config));
  switch (options.kind) {
    case TrainerKind::kStandard: {
      SAMPNN_ASSIGN_OR_RETURN(
          auto optimizer, MakeOptimizer(options.optimizer, options.learning_rate));
      return std::unique_ptr<Trainer>(
          new StandardTrainer(std::move(net), std::move(optimizer)));
    }
    case TrainerKind::kDropout: {
      SAMPNN_ASSIGN_OR_RETURN(
          auto optimizer, MakeOptimizer(options.optimizer, options.learning_rate));
      if (options.dropout.keep_prob <= 0.0f ||
          options.dropout.keep_prob > 1.0f) {
        return Status::InvalidArgument("dropout keep_prob must be in (0, 1]");
      }
      return std::unique_ptr<Trainer>(
          new DropoutTrainer(std::move(net), std::move(optimizer),
                             options.dropout, options.seed ^ 0xD70u));
    }
    case TrainerKind::kAdaptiveDropout: {
      SAMPNN_ASSIGN_OR_RETURN(
          auto optimizer, MakeOptimizer(options.optimizer, options.learning_rate));
      const auto& ad = options.adaptive_dropout;
      if (ad.target_prob <= 0.0f || ad.target_prob >= 1.0f) {
        return Status::InvalidArgument(
            "adaptive-dropout target_prob must be in (0, 1)");
      }
      return std::unique_ptr<Trainer>(
          new AdaptiveDropoutTrainer(std::move(net), std::move(optimizer), ad,
                                     options.seed ^ 0xADAu));
    }
    case TrainerKind::kAlsh: {
      SAMPNN_ASSIGN_OR_RETURN(
          auto trainer,
          AlshTrainer::Create(std::move(net), options.alsh,
                              options.learning_rate, options.seed ^ 0xA15Au));
      return std::unique_ptr<Trainer>(std::move(trainer));
    }
    case TrainerKind::kMc: {
      SAMPNN_ASSIGN_OR_RETURN(
          auto optimizer, MakeOptimizer(options.optimizer, options.learning_rate));
      SAMPNN_ASSIGN_OR_RETURN(
          auto trainer,
          McTrainer::Create(std::move(net), std::move(optimizer), options.mc,
                            options.seed ^ 0x3CAu));
      return std::unique_ptr<Trainer>(std::move(trainer));
    }
  }
  return Status::Internal("unreachable trainer kind");
}

}  // namespace sampnn
