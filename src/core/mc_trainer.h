// MC-approx (Adelman et al., paper §6.2): exact feedforward, Monte-Carlo
// approximated backpropagation. Both backward matrix products are replaced
// by the Bernoulli column-row estimator of Eq. 7:
//   grad_W = X^T * delta   — sampled over the minibatch dimension
//                            (k = grad_batch_samples; the paper's k = 10),
//   delta_prev = delta * W^T — sampled over the current layer's nodes
//                            (ratio = delta_sample_ratio; the paper's p≈0.1).
// Estimating the sampling probabilities requires a pass over the minibatch
// and W, which is the overhead that makes MC-approx^S (batch = 1) slower
// than exact training (§9.3).
//
// approx_forward additionally approximates the feedforward products — the
// configuration the paper reports as failing; kept as an ablation.

#pragma once

#include "src/core/trainer.h"
#include "src/util/rng.h"

namespace sampnn {

/// \brief The MC-approx trainer (MC^M for batch > 1, MC^S for batch = 1).
class McTrainer : public Trainer {
 public:
  static StatusOr<std::unique_ptr<McTrainer>> Create(
      Mlp net, std::unique_ptr<Optimizer> optimizer, const McOptions& options,
      uint64_t seed);

  StatusOr<double> Step(const Matrix& x, std::span<const int32_t> y) override;
  const char* name() const override { return "mc"; }

  /// Reports cumulative realized sample counts (batch-dim and node-dim).
  void FillTelemetry(EpochTelemetry* record) const override;

  const McOptions& options() const { return options_; }
  float learning_rate() const override { return optimizer_->learning_rate(); }
  void set_learning_rate(float lr) override {
    optimizer_->set_learning_rate(lr);
  }

 protected:
  Status SaveExtraState(std::ostream& out) const override;
  Status LoadExtraState(std::istream& in) override;

 private:
  McTrainer(Mlp net, std::unique_ptr<Optimizer> optimizer,
            const McOptions& options, uint64_t seed);

  /// Expected sample count for the delta*W^T product at inner dim `n`.
  size_t DeltaSamples(size_t n) const;

  McOptions options_;
  std::unique_ptr<Optimizer> optimizer_;
  // Realized Monte-Carlo sample counts across all Steps (telemetry).
  uint64_t batch_samples_total_ = 0;
  uint64_t delta_samples_total_ = 0;
  Rng rng_;
  MlpWorkspace ws_;
  MlpGrads grads_;
  Matrix grad_logits_;
  Matrix delta_, delta_prev_;
};

}  // namespace sampnn
