#include "src/core/standard_trainer.h"

#include <limits>

#include "src/nn/loss.h"
#include "src/resilience/fault_injector.h"
#include "src/telemetry/trace.h"

namespace sampnn {

StandardTrainer::StandardTrainer(Mlp net, std::unique_ptr<Optimizer> optimizer)
    : Trainer(std::move(net)), optimizer_(std::move(optimizer)) {
  SAMPNN_CHECK(optimizer_ != nullptr);
}

StatusOr<double> StandardTrainer::Step(const Matrix& x,
                                       std::span<const int32_t> y) {
  double loss = 0.0;
  {
    PhaseScope scope(&timer_, kPhaseForward);
    net_.Forward(x, &ws_);
  }
  {
    PhaseScope scope(&timer_, kPhaseBackward);
    SAMPNN_ASSIGN_OR_RETURN(
        loss, SoftmaxCrossEntropy::LossAndGrad(ws_.a.back(), y, &grad_logits_));
    net_.Backward(x, ws_, grad_logits_, &grads_);
    if (FaultArmed(FaultKind::kGradNan)) {
      // Poison the output layer: a NaN hidden-layer weight can be masked by
      // ReLU (NaN > 0 is false), but nothing sits between logits and loss.
      grads_.back().weights(0, 0) = std::numeric_limits<float>::quiet_NaN();
    }
    if (track_grad_norm_) last_grad_norm2_ = GradSquaredNorm(grads_);
    optimizer_->Step(&net_, grads_);
  }
  return loss;
}

Status StandardTrainer::SaveExtraState(std::ostream& out) const {
  return optimizer_->SaveState(out);
}

Status StandardTrainer::LoadExtraState(std::istream& in) {
  return optimizer_->LoadState(in, net_);
}

}  // namespace sampnn
