#include "src/core/standard_trainer.h"

#include "src/nn/loss.h"
#include "src/telemetry/trace.h"

namespace sampnn {

StandardTrainer::StandardTrainer(Mlp net, std::unique_ptr<Optimizer> optimizer)
    : Trainer(std::move(net)), optimizer_(std::move(optimizer)) {
  SAMPNN_CHECK(optimizer_ != nullptr);
}

StatusOr<double> StandardTrainer::Step(const Matrix& x,
                                       std::span<const int32_t> y) {
  double loss = 0.0;
  {
    PhaseScope scope(&timer_, kPhaseForward);
    net_.Forward(x, &ws_);
  }
  {
    PhaseScope scope(&timer_, kPhaseBackward);
    SAMPNN_ASSIGN_OR_RETURN(
        loss, SoftmaxCrossEntropy::LossAndGrad(ws_.a.back(), y, &grad_logits_));
    net_.Backward(x, ws_, grad_logits_, &grads_);
    optimizer_->Step(&net_, grads_);
  }
  return loss;
}

}  // namespace sampnn
