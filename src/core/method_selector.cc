#include "src/core/method_selector.h"

namespace sampnn {

MethodRecommendation RecommendMethod(const TrainingScenario& scenario) {
  MethodRecommendation rec;
  if (scenario.batch_size > 1) {
    rec.method = TrainerKind::kMc;
    rec.rationale =
        "Mini-batch SGD: MC-approx dominates on accuracy, speed, and memory "
        "when the batch is large enough for reliable probability estimation "
        "(paper §9.3, Tables 2 and 4).";
    return rec;
  }
  // Stochastic setting (batch = 1): MC-approx's probability estimates come
  // from a single sample and its overhead exceeds the savings (§9.3).
  if (scenario.hidden_layers <= 4 && scenario.parallel_hardware) {
    rec.method = TrainerKind::kAlsh;
    rec.rationale =
        "Stochastic SGD on a shallow network with parallel hardware: "
        "ALSH-approx scales well under HOGWILD parallelism up to ~4 hidden "
        "layers before feedforward error compounds (Theorem 7.2, §10.4).";
    return rec;
  }
  if (scenario.hidden_layers <= 4) {
    rec.method = TrainerKind::kAdaptiveDropout;
    rec.rationale =
        "Stochastic SGD, shallow network, single core: Adaptive-Dropout "
        "tracks standard-training accuracy (Table 2) without ALSH's hashing "
        "overhead, which only pays off with parallelism (Table 3).";
    return rec;
  }
  rec.method = TrainerKind::kStandard;
  rec.rationale =
      "Stochastic SGD on a deep network: every sampling-based method either "
      "diverges with depth (ALSH-approx, Theorem 7.2) or loses its sampling "
      "signal at batch size 1 (MC-approx, §9.3/Figure 12); exact training "
      "remains the safe choice — the paper's open research gap (§10.2).";
  return rec;
}

}  // namespace sampnn
