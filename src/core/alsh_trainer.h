// ALSH-approx (Spring & Shrivastava, paper §5.2): per-sample active-node
// selection via asymmetric LSH over the columns of each hidden layer's
// weight matrix. Only active nodes are computed in the feedforward step
// (inactive activations estimated as zero), the gradient backpropagates
// only through active nodes, and weight updates are sparse. Hash tables are
// reconstructed on the paper's schedule (§9.2): every `early_rebuild_every`
// samples for the first `early_phase_samples`, then every
// `late_rebuild_every`.
//
// With threads > 1 the per-sample work inside a minibatch runs
// HOGWILD-style (lock-free, racy reads tolerated) — the parallelization the
// paper cites as the method's strength (§9.2, §10.4). Accuracy is unchanged
// up to gradient-race noise.

#pragma once

#include <memory>

#include "src/core/trainer.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"

namespace sampnn {

/// \brief Sparse per-entry optimizer state for ALSH's column-wise updates
/// (plain SGD, Adagrad, or lazy Adam with per-column step counts).
struct SparseOptState {
  enum class Mode { kSgd, kAdagrad, kAdam };
  Mode mode = Mode::kSgd;
  Matrix v_w;                      ///< adagrad accumulator / adam 2nd moment
  Matrix m_w;                      ///< adam 1st moment
  std::vector<float> v_b, m_b;
  std::vector<uint32_t> col_step;  ///< adam per-column timestep (lazy)

  static StatusOr<SparseOptState> Create(const Layer& layer,
                                         const std::string& mode_name);

  /// Applies the full sparse update of column j: the gradient of W(i, j) is
  /// delta_j * a_prev[i] for i in `prev_support` (zero elsewhere), and the
  /// bias gradient is delta_j. Adam advances column j's lazy timestep once
  /// per call.
  void UpdateColumn(Matrix* w, std::span<float> bias, size_t j,
                    std::span<const float> a_prev,
                    std::span<const uint32_t> prev_support, float delta_j,
                    float lr);
};

/// \brief The ALSH-approx trainer.
class AlshTrainer : public Trainer {
 public:
  static StatusOr<std::unique_ptr<AlshTrainer>> Create(
      Mlp net, const AlshOptions& options, float learning_rate, uint64_t seed);

  StatusOr<double> Step(const Matrix& x, std::span<const int32_t> y) override;
  const char* name() const override { return "alsh"; }

  /// Sparse inference with the same active-node selection used in training
  /// (hash-probe each hidden layer, compute only active nodes). This is how
  /// the ALSH-approx system itself predicts; evaluating with the dense
  /// forward instead exposes the train/inference distribution gap.
  std::vector<float> ForwardSampleSparse(std::span<const float> x);

  /// Argmax predictions over `data` rows using ForwardSampleSparse.
  std::vector<int32_t> PredictSparse(const Matrix& inputs);

  /// Serving entry point: hash-probe sparse inference with a cancellation
  /// poll between samples — ALSH serves with the same active-node selection
  /// it trained with, and an expired request stops probing mid-batch.
  Status PredictCancellable(const Matrix& x, const CancelContext& ctx,
                            std::vector<int32_t>* preds) override;

  /// Average active-set fraction observed so far (diagnostic; the paper
  /// reports ~5% of nodes per layer).
  double AverageActiveFraction() const;

  /// Total hash-table reconstructions so far, summed over layers.
  size_t TotalRebuilds() const;

  /// Reports active-node fraction, rebuild count, and aggregated
  /// bucket-occupancy stats across the per-layer indexes.
  void FillTelemetry(EpochTelemetry* record) const override;

  const AlshOptions& options() const { return options_; }
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

  /// Times the hash probe came back empty and the layer ran dense instead
  /// (options().dense_fallback); summed across worker scratches.
  uint64_t DenseFallbacks() const;

 protected:
  Status SaveExtraState(std::ostream& out) const override;
  Status LoadExtraState(std::istream& in) override;

 private:
  AlshTrainer(Mlp net, const AlshOptions& options, float learning_rate,
              uint64_t seed);

  // Per-sample scratch (one per worker thread).
  struct Scratch {
    std::vector<std::vector<float>> a;          // activations per layer
    std::vector<std::vector<float>> z;          // pre-activations per layer
    std::vector<std::vector<uint32_t>> active;  // active set per hidden layer
    std::vector<uint32_t> input_support;        // nonzero input indices
    std::vector<float> delta, delta_prev;
    Rng rng{0};
    // Per-worker phase timing, merged into the trainer timer at the end of
    // each Step (SplitTimer itself is not thread-safe). In parallel mode the
    // merged forward/backward seconds are summed CPU time across workers;
    // the "parallel" phase holds the wall-clock time of the batch.
    SplitTimer timer;
    // Active-set accounting, aggregated by AverageActiveFraction().
    double active_fraction_sum = 0.0;
    size_t active_fraction_count = 0;
    // Empty-probe dense fallbacks taken by this worker (resilience).
    uint64_t dense_fallbacks = 0;
  };

  Status Init();
  double TrainSample(std::span<const float> x, int32_t label,
                     Scratch* scratch);
  void SelectActive(size_t hidden_layer, std::span<const float> a_prev,
                    Scratch* scratch);
  void MaybeRebuild();

  AlshOptions options_;
  float lr_;
  uint64_t seed_;
  bool initialized_ = false;
  std::vector<AlshIndex> indexes_;          // one per hidden layer
  std::vector<SparseOptState> opt_states_;  // one per layer (incl. output)
  std::unique_ptr<ThreadPool> pool_;
  std::vector<Scratch> scratches_;

  size_t samples_seen_ = 0;
  size_t samples_at_last_rebuild_ = 0;
};

}  // namespace sampnn
