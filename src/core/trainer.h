// Trainer interface: one object per training approach (paper §8.3's five
// methods). A trainer owns its network and optimizer state, consumes
// minibatches (batch size 1 = the paper's stochastic setting), and charges
// wall-clock time to SplitTimer phases so the harness can reproduce the
// paper's feedforward/backpropagation time splits (Tables 3–4).

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/lsh/hash_table.h"
#include "src/metrics/split_timer.h"
#include "src/nn/mlp.h"
#include "src/optim/optimizer.h"
#include "src/util/status.h"

namespace sampnn {

struct EpochTelemetry;  // src/telemetry/epoch_recorder.h

/// The five training approaches evaluated by the paper.
enum class TrainerKind {
  kStandard,         ///< exact training (STANDARD)
  kDropout,          ///< fixed-probability node sampling (§5.1)
  kAdaptiveDropout,  ///< data-dependent standout distribution (§5.1)
  kAlsh,             ///< ALSH-approx: hashing-based active nodes (§5.2)
  kMc,               ///< MC-approx: sampled backprop matmuls (§6.2)
};

/// Parses "standard" | "dropout" | "adaptive-dropout" | "alsh" | "mc".
StatusOr<TrainerKind> TrainerKindFromString(const std::string& name);
/// Canonical lowercase name.
const char* TrainerKindToString(TrainerKind kind);

/// Options for Dropout (paper §8.4: p = 0.05 to match ALSH active sets).
struct DropoutOptions {
  float keep_prob = 0.05f;  ///< probability of keeping each hidden node
};

/// Options for Adaptive-Dropout (standout). The keep probability of node j
/// is pi_j = sigmoid(alpha * z_j + beta), so nodes with strong
/// pre-activations survive more often; beta defaults to logit(target_prob).
struct AdaptiveDropoutOptions {
  float target_prob = 0.05f;  ///< baseline keep probability (sets beta)
  float alpha = 12.0f;        ///< standout sharpness: how strongly a unit's
                              ///< pre-activation tilts its keep probability.
                              ///< Must be large relative to the z scale (~1
                              ///< under He init) for the posterior
                              ///< approximation to separate important units;
                              ///< small alpha degenerates to plain Dropout.
  float min_prob = 0.01f;     ///< clamp to keep the inverted scaling bounded
};

/// How ALSH-approx picks each layer's active nodes.
enum class AlshSelection {
  kLsh,     ///< hash-table probing (the real algorithm)
  kOracle,  ///< exact top-k inner products — Lemma 7.1's "active nodes are
            ///< detected exactly" assumption; costs a dense pass per layer,
            ///< so it is an analysis/ablation mode, not a speedup
};

/// Options for ALSH-approx (§5.2; defaults are the paper's §8.4 values:
/// K=6, L=5, m=3, rebuild every 100 samples for the first 10000 then every
/// 1000).
struct AlshOptions {
  AlshIndexOptions index;        ///< K/L/m/U hyperparameters
  AlshSelection selection = AlshSelection::kLsh;
  size_t oracle_active = 64;     ///< active nodes per layer in kOracle mode
  size_t min_active = 32;        ///< random-fill floor when buckets are sparse
                                 ///< — keeps exploration alive on narrow
                                 ///< layers (≈3% of the paper's 1000 units)
  size_t early_rebuild_every = 100;
  size_t early_phase_samples = 10000;
  size_t late_rebuild_every = 1000;
  size_t threads = 1;            ///< >1 = HOGWILD-parallel batch processing
  std::string optimizer = "adam";  ///< sparse update rule: sgd|adagrad|adam
  bool dense_fallback = true;    ///< graceful degradation: when the hash
                                 ///< probe returns an *empty* active set,
                                 ///< run that layer dense for the sample
                                 ///< instead of training on noise (counted
                                 ///< in resilience telemetry)
};

/// Options for MC-approx (§6.2; paper §8.4: batch 20, k = 10).
struct McOptions {
  size_t grad_batch_samples = 10;    ///< k for the X^T*delta product (batch dim)
  double delta_sample_ratio = 0.1;   ///< sample ratio for delta*W^T (node dim,
                                     ///< the §9.2 "p ≈ 0.1")
  size_t delta_min_samples = 64;     ///< floor on delta samples; keeps the
                                     ///< estimator's absolute sample count at
                                     ///< paper-like levels when layers are
                                     ///< narrower than the paper's 1000 units
  bool approx_forward = false;       ///< ablation: also approximate feedforward
                                     ///< (the paper's known-bad configuration)
  size_t forward_samples = 0;        ///< k for forward approx (0 = ratio-based)
};

/// Full configuration for building a trainer.
struct TrainerOptions {
  TrainerKind kind = TrainerKind::kStandard;
  std::string optimizer = "adam";  ///< dense methods; ALSH uses AlshOptions
  float learning_rate = 1e-3f;
  uint64_t seed = 42;

  DropoutOptions dropout;
  AdaptiveDropoutOptions adaptive_dropout;
  AlshOptions alsh;
  McOptions mc;
};

/// \brief Base class for all training approaches.
class Trainer {
 public:
  virtual ~Trainer() = default;

  /// Processes one minibatch (forward + backward + update) and returns the
  /// minibatch training loss.
  virtual StatusOr<double> Step(const Matrix& x,
                                std::span<const int32_t> y) = 0;

  /// Canonical method name.
  virtual const char* name() const = 0;

  /// The trained network (evaluation uses the exact dense forward).
  Mlp& net() { return net_; }
  const Mlp& net() const { return net_; }

  /// Deadline-aware batch inference — the serving layer's entry point into
  /// a trained method. Fills `preds` with argmax class predictions for the
  /// rows of `x`, polling `ctx` so an expired request stops mid-flight
  /// (kDeadlineExceeded / kResourceExhausted; `preds` is then unspecified).
  /// Base: the exact dense cancellable forward. Sampling methods override
  /// with their own inference path (ALSH probes its hash tables, the same
  /// selection it trained with).
  virtual Status PredictCancellable(const Matrix& x, const CancelContext& ctx,
                                    std::vector<int32_t>* preds);

  /// Phase-split timing accumulated across Step() calls.
  SplitTimer& timer() { return timer_; }
  const SplitTimer& timer() const { return timer_; }

  /// Called by drivers at epoch boundaries (hook for schedules).
  virtual void OnEpochEnd() {}

  /// Fills method-specific fields of a per-epoch telemetry record
  /// (ALSH active fractions / bucket stats, MC sample counts, ...). The
  /// base implementation leaves the record untouched.
  virtual void FillTelemetry(EpochTelemetry* /*record*/) const {}

  /// Effective learning rate. The resilience layer's rollback applies
  /// backoff through set_learning_rate(); checkpoints restore it.
  virtual float learning_rate() const = 0;
  virtual void set_learning_rate(float lr) = 0;

  /// Serializes the complete mutable training state — network parameters
  /// (an "SNN1" section) followed by method-specific state (optimizer
  /// moments, RNG streams, hash tables, sample counters) — such that a
  /// trainer built from the identical configuration, after LoadState(),
  /// reproduces the uninterrupted run's batch stream bitwise.
  Status SaveState(std::ostream& out) const;
  /// Restores state written by SaveState(). The trainer must have been
  /// constructed with the same configuration (architecture, optimizer,
  /// seeds); mismatches return InvalidArgument.
  Status LoadState(std::istream& in);

  /// When enabled, trainers that materialize dense gradients record the
  /// squared L2 norm of each Step's gradient for the divergence sentinel.
  void set_track_grad_norm(bool enabled) { track_grad_norm_ = enabled; }
  /// Squared gradient norm of the last Step(); -1 when unavailable
  /// (tracking disabled, no step yet, or a sparse-update trainer).
  double last_grad_norm2() const { return last_grad_norm2_; }

 protected:
  explicit Trainer(Mlp net) : net_(std::move(net)) {}

  /// Method-specific state beyond the network parameters. Base: nothing.
  virtual Status SaveExtraState(std::ostream& /*out*/) const {
    return Status::OK();
  }
  virtual Status LoadExtraState(std::istream& /*in*/) { return Status::OK(); }

  Mlp net_;
  SplitTimer timer_;
  bool track_grad_norm_ = false;
  double last_grad_norm2_ = -1.0;
};

/// Squared L2 norm over all weight and bias gradients (sentinel support).
double GradSquaredNorm(const MlpGrads& grads);

/// Builds a trainer of `options.kind` around a freshly-created network.
/// The network is constructed from `net_config` (seeded by it, so all
/// methods start from identical weights when configs match).
StatusOr<std::unique_ptr<Trainer>> MakeTrainer(const MlpConfig& net_config,
                                               const TrainerOptions& options);

}  // namespace sampnn
