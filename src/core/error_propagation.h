// The paper's §7 negative result, as executable code:
//
//  - Theorem 7.2 closed form: under a linear activation and the assumption
//    that active nodes carry c times the weighted sum of inactive ones,
//    a^k = â^k ((c+1)/c)^k, i.e. error/estimate grows exponentially in k.
//  - An empirical measurement harness that runs a linear MLP forward twice —
//    exactly and with per-layer active-set truncation (oracle top-fraction
//    or LSH-selected) — and reports the per-layer error-to-estimate ratio.

#pragma once

#include <cstddef>
#include <vector>

#include "src/core/trainer.h"
#include "src/nn/mlp.h"
#include "src/util/status.h"

namespace sampnn {

/// Theorem 7.2: error-to-estimate ratio e^k/â^k = ((c+1)/c)^k - 1.
/// `c` is the active/inactive weighted-sum ratio, `k` the layer depth.
double TheoreticalErrorRatio(double c, size_t k);

/// The §7 in-text table: ratios for k = 1..max_k at the given c (paper uses
/// c = 5 → 0.2, 0.44, 0.72, 1.07, 1.48, 1.98).
std::vector<double> TheoreticalErrorTable(double c, size_t max_k);

/// How the active set is chosen during the approximate forward pass.
enum class ActiveSelection {
  kOracleTopFraction,  ///< exact top-|z| nodes (Lemma 7.1's "detected exactly")
  kAlsh,               ///< hash-based selection, as in ALSH-approx
};

/// Options for the empirical measurement.
struct ErrorPropagationOptions {
  ActiveSelection selection = ActiveSelection::kOracleTopFraction;
  double active_fraction = 0.05;  ///< fraction kept per layer (oracle mode)
  AlshIndexOptions alsh;          ///< used in kAlsh mode
  uint64_t seed = 42;
};

/// Per-layer aggregate of the empirical measurement.
struct LayerErrorStats {
  size_t layer = 0;              ///< 1-based hidden-layer depth k
  double mean_abs_error = 0.0;   ///< mean |a - â| over nodes and inputs
  double mean_abs_estimate = 0.0;  ///< mean |â|
  double error_ratio = 0.0;      ///< mean_abs_error / mean_abs_estimate
};

/// Runs `inputs` (rows) through `net` exactly and with truncated forward
/// passes, measuring the activation estimation error per hidden layer.
/// `net` should use linear activations to match the §7 setting (any
/// activation is accepted; ReLU measures the practical variant).
StatusOr<std::vector<LayerErrorStats>> MeasureErrorPropagation(
    const Mlp& net, const Matrix& inputs,
    const ErrorPropagationOptions& options);

}  // namespace sampnn
