#include "src/core/dropout_trainer.h"

#include <cmath>
#include <limits>

#include "src/nn/loss.h"
#include "src/resilience/fault_injector.h"
#include "src/telemetry/trace.h"
#include "src/tensor/kernels.h"
#include "src/util/binary_io.h"

namespace sampnn {

MaskedTrainer::MaskedTrainer(Mlp net, std::unique_ptr<Optimizer> optimizer,
                             uint64_t seed)
    : Trainer(std::move(net)), rng_(seed), optimizer_(std::move(optimizer)) {
  SAMPNN_CHECK(optimizer_ != nullptr);
}

StatusOr<double> MaskedTrainer::Step(const Matrix& x,
                                     std::span<const int32_t> y) {
  const size_t num_layers = net_.num_layers();
  const size_t num_hidden = net_.num_hidden_layers();
  ws_.z.resize(num_layers);
  ws_.a.resize(num_layers);
  masks_.resize(num_hidden);

  // Masked feedforward: a^k = f(z^k) ⊙ mask^k for hidden layers; the output
  // layer stays dense.
  {
    PhaseScope scope(&timer_, kPhaseForward);
    const Matrix* prev = &x;
    for (size_t k = 0; k < num_layers; ++k) {
      const Layer& layer = net_.layer(k);
      layer.ForwardLinear(*prev, &ws_.z[k]);
      layer.Activate(ws_.z[k], &ws_.a[k]);
      if (k < num_hidden) {
        FillMask(k, ws_.z[k], &masks_[k]);
        HadamardInPlace(&ws_.a[k], masks_[k]);
      }
      prev = &ws_.a[k];
    }
  }

  double loss = 0.0;
  {
    PhaseScope scope(&timer_, kPhaseBackward);
    SAMPNN_ASSIGN_OR_RETURN(
        loss, SoftmaxCrossEntropy::LossAndGrad(ws_.a.back(), y, &grad_logits_));
    if (grads_.size() != num_layers) grads_ = net_.ZeroGrads();

    Matrix delta = grad_logits_;
    Matrix delta_prev;
    for (size_t k = num_layers; k-- > 0;) {
      const Layer& layer = net_.layer(k);
      LayerGrads& g = grads_[k];
      const Matrix& a_prev = (k == 0) ? x : ws_.a[k - 1];
      GemmTransA(a_prev, delta, &g.weights);
      g.bias.resize(layer.out_dim());
      ColumnSums(delta, g.bias);
      if (k > 0) {
        if (delta_prev.rows() != delta.rows() ||
            delta_prev.cols() != layer.in_dim()) {
          delta_prev = Matrix(delta.rows(), layer.in_dim());
        }
        GemmTransB(delta, layer.weights(), &delta_prev);
        MultiplyActivationGrad(net_.layer(k - 1).activation(), ws_.z[k - 1],
                               &delta_prev);
        // Dropped nodes receive no gradient (and kept ones keep the
        // inverted-dropout scale).
        HadamardInPlace(&delta_prev, masks_[k - 1]);
        delta = std::move(delta_prev);
        delta_prev = Matrix();
      }
    }
    if (FaultArmed(FaultKind::kGradNan)) {
      // Output layer: ReLU would mask a NaN in the hidden layers.
      grads_.back().weights(0, 0) = std::numeric_limits<float>::quiet_NaN();
    }
    if (track_grad_norm_) last_grad_norm2_ = GradSquaredNorm(grads_);
    optimizer_->Step(&net_, grads_);
  }
  return loss;
}

Status MaskedTrainer::SaveExtraState(std::ostream& out) const {
  WriteRngState(out, rng_.GetState());
  return optimizer_->SaveState(out);
}

Status MaskedTrainer::LoadExtraState(std::istream& in) {
  SAMPNN_ASSIGN_OR_RETURN(RngState rng_state, ReadRngState(in));
  SAMPNN_RETURN_NOT_OK(optimizer_->LoadState(in, net_));
  rng_.SetState(rng_state);
  return Status::OK();
}

DropoutTrainer::DropoutTrainer(Mlp net, std::unique_ptr<Optimizer> optimizer,
                               const DropoutOptions& options, uint64_t seed)
    : MaskedTrainer(std::move(net), std::move(optimizer), seed),
      options_(options) {
  SAMPNN_CHECK(options.keep_prob > 0.0f && options.keep_prob <= 1.0f);
}

void DropoutTrainer::FillMask(size_t /*layer*/, const Matrix& z,
                              Matrix* mask) {
  if (mask->rows() != z.rows() || mask->cols() != z.cols()) {
    *mask = Matrix(z.rows(), z.cols());
  }
  const float inv_keep = 1.0f / options_.keep_prob;
  float* md = mask->data();
  for (size_t i = 0; i < mask->size(); ++i) {
    md[i] = rng_.NextBernoulli(options_.keep_prob) ? inv_keep : 0.0f;
  }
}

AdaptiveDropoutTrainer::AdaptiveDropoutTrainer(
    Mlp net, std::unique_ptr<Optimizer> optimizer,
    const AdaptiveDropoutOptions& options, uint64_t seed)
    : MaskedTrainer(std::move(net), std::move(optimizer), seed),
      options_(options) {
  SAMPNN_CHECK(options.target_prob > 0.0f && options.target_prob < 1.0f);
  SAMPNN_CHECK(options.min_prob > 0.0f && options.min_prob <= 1.0f);
  beta_ = std::log(options.target_prob / (1.0f - options.target_prob));
}

void AdaptiveDropoutTrainer::FillMask(size_t /*layer*/, const Matrix& z,
                                      Matrix* mask) {
  if (mask->rows() != z.rows() || mask->cols() != z.cols()) {
    *mask = Matrix(z.rows(), z.cols());
  }
  const float* zd = z.data();
  float* md = mask->data();
  for (size_t i = 0; i < mask->size(); ++i) {
    // Standout keep probability, tilted towards units with strong (positive)
    // pre-activations.
    float pi = 1.0f / (1.0f + std::exp(-(options_.alpha * zd[i] + beta_)));
    pi = std::max(pi, options_.min_prob);
    md[i] = rng_.NextBernoulli(pi) ? 1.0f / pi : 0.0f;
  }
}

}  // namespace sampnn
