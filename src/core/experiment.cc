#include "src/core/experiment.h"

#include <cmath>
#include <csignal>
#include <cstdio>
#include <optional>
#include <sstream>

#include "src/data/batcher.h"
#include "src/metrics/accuracy.h"
#include "src/metrics/memory_tracker.h"
#include "src/metrics/split_timer.h"
#include "src/resilience/checkpoint.h"
#include "src/resilience/fault_injector.h"
#include "src/telemetry/epoch_recorder.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"
#include "src/util/binary_io.h"

namespace sampnn {

namespace {

// Everything positional about a run that must survive a crash or a sentinel
// rollback: where we are, and the loss/recovery accounting so far.
struct RunCursor {
  uint64_t epoch = 1;           // 1-based, currently training
  uint64_t batch_in_epoch = 0;  // completed batches in this epoch
  uint64_t global_step = 0;     // completed batches across all epochs
  double loss_sum = 0.0;        // this epoch's summed minibatch loss
  uint64_t rollbacks = 0;       // sentinel rollbacks over the whole run
  uint64_t nan_batches = 0;     // batches rejected for non-finite loss/grads
  uint64_t retries = 0;         // rollbacks since the last good snapshot
};

constexpr uint32_t kPayloadVersion = 1;

// Serializes the complete run state — cursor, learning rate, sentinel EWMA,
// finished epoch records, batch stream, and the trainer blob (weights,
// optimizer moments, RNG streams, ALSH buckets) — into one opaque payload
// for CheckpointWriter. The same bytes double as the in-memory rollback
// snapshot for the divergence sentinel.
StatusOr<std::string> BuildPayload(const Trainer& trainer,
                                   const Batcher& batcher,
                                   const RunCursor& cur,
                                   const DivergenceSentinel& sentinel,
                                   const std::vector<EpochRecord>& completed) {
  std::ostringstream out(std::ios::binary);
  WriteU32(out, kPayloadVersion);
  WriteU64(out, cur.epoch);
  WriteU64(out, cur.batch_in_epoch);
  WriteU64(out, cur.global_step);
  WriteF64(out, cur.loss_sum);
  WriteU64(out, cur.rollbacks);
  WriteU64(out, cur.nan_batches);
  WriteU64(out, cur.retries);
  WriteF32(out, trainer.learning_rate());
  WriteF64(out, sentinel.ewma());
  WriteU64(out, sentinel.observed());
  WriteU64(out, completed.size());
  for (const EpochRecord& r : completed) {
    WriteU64(out, r.epoch);
    WriteF64(out, r.train_loss);
    WriteF64(out, r.test_accuracy);
    WriteF64(out, r.validation_accuracy);
    WriteF64(out, r.seconds);
  }
  SAMPNN_RETURN_NOT_OK(batcher.SaveState(out));
  SAMPNN_RETURN_NOT_OK(trainer.SaveState(out));
  if (!out) return Status::IOError("run-state serialization failed");
  return std::move(out).str();
}

// Inverse of BuildPayload. Only commits into the out-parameters after every
// read validated, so a failed restore leaves the caller's state untouched
// apart from the trainer (whose LoadState already validates shapes before
// mutating anything).
Status RestorePayload(const std::string& payload, Trainer* trainer,
                      Batcher* batcher, RunCursor* cur,
                      DivergenceSentinel* sentinel,
                      std::vector<EpochRecord>* completed) {
  std::istringstream in(payload, std::ios::binary);
  SAMPNN_ASSIGN_OR_RETURN(const uint32_t version, ReadU32(in));
  if (version != kPayloadVersion) {
    return Status::InvalidArgument("unsupported checkpoint payload version " +
                                   std::to_string(version));
  }
  RunCursor c;
  SAMPNN_ASSIGN_OR_RETURN(c.epoch, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(c.batch_in_epoch, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(c.global_step, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(c.loss_sum, ReadF64(in));
  SAMPNN_ASSIGN_OR_RETURN(c.rollbacks, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(c.nan_batches, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(c.retries, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(const float lr, ReadF32(in));
  SAMPNN_ASSIGN_OR_RETURN(const double ewma, ReadF64(in));
  SAMPNN_ASSIGN_OR_RETURN(const uint64_t observed, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(const uint64_t num_records, ReadU64(in));
  if (!FitsRemaining(in, num_records, 5 * sizeof(uint64_t))) {
    return Status::InvalidArgument("checkpoint epoch-record count " +
                                   std::to_string(num_records) +
                                   " exceeds payload size");
  }
  std::vector<EpochRecord> records;
  records.reserve(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    EpochRecord r;
    SAMPNN_ASSIGN_OR_RETURN(const uint64_t epoch, ReadU64(in));
    r.epoch = static_cast<size_t>(epoch);
    SAMPNN_ASSIGN_OR_RETURN(r.train_loss, ReadF64(in));
    SAMPNN_ASSIGN_OR_RETURN(r.test_accuracy, ReadF64(in));
    SAMPNN_ASSIGN_OR_RETURN(r.validation_accuracy, ReadF64(in));
    SAMPNN_ASSIGN_OR_RETURN(r.seconds, ReadF64(in));
    records.push_back(r);
  }
  SAMPNN_RETURN_NOT_OK(batcher->LoadState(in));
  SAMPNN_RETURN_NOT_OK(trainer->LoadState(in));
  trainer->set_learning_rate(lr);
  sentinel->RestoreState(ewma, observed);
  *cur = c;
  *completed = std::move(records);
  return Status::OK();
}

}  // namespace

StatusOr<ExperimentResult> RunExperiment(const MlpConfig& net_config,
                                         const ExperimentConfig& config,
                                         const DatasetSplits& data) {
  if (config.epochs == 0) {
    return Status::InvalidArgument("ExperimentConfig.epochs must be >= 1");
  }
  if (config.batch_size == 0) {
    return Status::InvalidArgument("ExperimentConfig.batch_size must be >= 1");
  }
  if (data.train.size() == 0) {
    return Status::InvalidArgument("empty training split");
  }
  const ResilienceOptions& res = config.resilience;
  if (res.resume && res.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "ResilienceOptions.resume requires checkpoint_dir");
  }
  SAMPNN_ASSIGN_OR_RETURN(std::unique_ptr<Trainer> trainer,
                          MakeTrainer(net_config, config.trainer));
  // The sentinel wants the squared gradient norm when the trainer computes
  // dense grads; trainers without one report -1 (norm scan skipped).
  if (res.sentinel.enabled) trainer->set_track_grad_norm(true);

  ExperimentResult result;
  result.method = trainer->name();
  result.architecture = trainer->net().ArchitectureString();

  MemoryTracker memory;
  Batcher batcher(data.train, config.batch_size, config.data_seed,
                  config.drop_remainder);
  Matrix x;
  std::vector<int32_t> y;

  DivergenceSentinel sentinel(res.sentinel);
  std::optional<CheckpointWriter> writer;
  if (!res.checkpoint_dir.empty()) {
    CheckpointWriterOptions writer_options;
    writer_options.dir = res.checkpoint_dir;
    writer_options.retain = res.retain;
    SAMPNN_ASSIGN_OR_RETURN(CheckpointWriter w,
                            CheckpointWriter::Create(writer_options));
    writer.emplace(std::move(w));
  }

  RunCursor cur;
  if (res.resume) {
    auto latest = LatestValidCheckpoint(res.checkpoint_dir);
    if (latest.ok()) {
      SAMPNN_RETURN_NOT_OK(RestorePayload(latest.value().payload,
                                          trainer.get(), &batcher, &cur,
                                          &sentinel, &result.epochs));
      // Wall-clock of the finished epochs carries over; this process's
      // phase timers restart at zero, so the telemetry deltas stay correct.
      for (const EpochRecord& r : result.epochs) {
        result.train_seconds += r.seconds;
      }
      if (config.verbose) {
        std::fprintf(stderr, "  [%s] resumed from %s (epoch %llu, step %llu)\n",
                     result.method.c_str(), latest.value().path.c_str(),
                     static_cast<unsigned long long>(cur.epoch),
                     static_cast<unsigned long long>(cur.global_step));
      }
    } else if (!latest.status().IsNotFound()) {
      return latest.status();
    }
    // NotFound = no usable checkpoint yet: start fresh.
  }

  // In-memory rollback target. Refreshed at every checkpoint write and at
  // epoch boundaries, so a sentinel trip rewinds at most one cadence.
  std::string snapshot;
  if (res.sentinel.enabled) {
    SAMPNN_ASSIGN_OR_RETURN(
        snapshot, BuildPayload(*trainer, batcher, cur, sentinel,
                               result.epochs));
  }

  EpochRecorder* recorder =
      config.telemetry != nullptr ? config.telemetry : GlobalEpochRecorder();
  // Cumulative baselines: the trainer SplitTimer and the registry FLOP
  // counters only grow, so per-epoch values are deltas against these.
  struct PhaseBaseline {
    double forward = 0.0, backward = 0.0, sampling = 0.0;
    double rebuild = 0.0, parallel = 0.0;
    uint64_t gemm_flops = 0, gemm_flops_realized = 0, sparse_flops = 0;
    uint64_t gemm_parallel = 0, gemm_serial = 0;
    uint64_t pack_b = 0, pack_a = 0, block_tasks = 0;
  } prev;
  if (recorder != nullptr && TelemetryEnabled()) {
    // The FLOP counters are process-global; start from their current values
    // so concurrent earlier runs do not leak into epoch 1's delta.
    MetricsRegistry& registry = MetricsRegistry::Get();
    prev.gemm_flops = registry.GetCounter("tensor.gemm.flops").Value();
    prev.gemm_flops_realized =
        registry.GetCounter("tensor.gemm.flops_realized").Value();
    prev.sparse_flops = registry.GetCounter("tensor.sparse.flops").Value();
    prev.gemm_parallel =
        registry.GetCounter("tensor.gemm.parallel_dispatches").Value();
    prev.gemm_serial =
        registry.GetCounter("tensor.gemm.serial_dispatches").Value();
    prev.pack_b = registry.GetCounter("tensor.gemm.pack_b_panels").Value();
    prev.pack_a = registry.GetCounter("tensor.gemm.pack_a_panels").Value();
    prev.block_tasks =
        registry.GetCounter("tensor.gemm.block_tasks").Value();
  }

  // The loop is flat — one iteration per batch, epoch boundaries detected
  // when the batcher wraps — so the cursor (and with it, checkpoints and
  // rollbacks) can live at any batch position, not just epoch edges.
  Stopwatch epoch_watch;
  while (cur.epoch <= config.epochs) {
    if (batcher.Next(&x, &y)) {
      // ---- one training batch ----
      if (FaultInjector* fi = FaultInjector::Global()) {
        // Keep "@step" aligned with the uninterrupted run's numbering even
        // after a resume or rollback rewinds the cursor.
        fi->set_step(cur.global_step);
        if (fi->ShouldFire(FaultKind::kKill)) {
          std::raise(SIGKILL);  // a real crash, mid-run
        }
        if (fi->ShouldFire(FaultKind::kHaltTraining)) {
          return Status::Internal(
              "fault injection: training halted at step " +
              std::to_string(cur.global_step));
        }
      }
      SAMPNN_ASSIGN_OR_RETURN(double loss, trainer->Step(x, y));
      cur.loss_sum += loss;
      ++cur.batch_in_epoch;
      ++cur.global_step;

      if (res.sentinel.enabled) {
        const DivergenceSentinel::Verdict verdict =
            sentinel.Observe(loss, trainer->last_grad_norm2());
        if (verdict != DivergenceSentinel::Verdict::kOk) {
          // Rollback: rewind to the last good snapshot, back off the
          // learning rate, and retry from there. The recovery accounting
          // must survive the rewind, so stash it across the restore.
          const bool nan_batch =
              verdict != DivergenceSentinel::Verdict::kLossSpike;
          const uint64_t rollbacks = cur.rollbacks + 1;
          const uint64_t nan_batches = cur.nan_batches + (nan_batch ? 1 : 0);
          const uint64_t retries = cur.retries + 1;
          if (TelemetryEnabled()) {
            static Counter& rollback_counter =
                MetricsRegistry::Get().GetCounter("resilience.rollbacks");
            rollback_counter.Increment();
            if (nan_batch) {
              static Counter& nan_counter =
                  MetricsRegistry::Get().GetCounter("resilience.nan_batches");
              nan_counter.Increment();
            }
          }
          if (retries > res.sentinel.max_retries) {
            return Status::Internal(
                std::string("training diverged (") +
                SentinelVerdictToString(verdict) + " at step " +
                std::to_string(cur.global_step - 1) + "): " +
                std::to_string(cur.retries) +
                " rollbacks from the last good snapshot did not recover");
          }
          SAMPNN_RETURN_NOT_OK(RestorePayload(snapshot, trainer.get(),
                                              &batcher, &cur, &sentinel,
                                              &result.epochs));
          cur.rollbacks = rollbacks;
          cur.nan_batches = nan_batches;
          cur.retries = retries;
          const float snapshot_lr = trainer->learning_rate();
          const float backed_off =
              snapshot_lr * std::pow(res.sentinel.lr_backoff,
                                     static_cast<float>(retries));
          trainer->set_learning_rate(backed_off);
          if (config.verbose) {
            std::fprintf(
                stderr,
                "  [%s] rollback %llu (%s): step -> %llu, lr %g -> %g\n",
                result.method.c_str(),
                static_cast<unsigned long long>(rollbacks),
                SentinelVerdictToString(verdict),
                static_cast<unsigned long long>(cur.global_step),
                snapshot_lr, backed_off);
          }
          continue;
        }
      }

      if (writer.has_value() && res.checkpoint_every > 0 &&
          cur.global_step % res.checkpoint_every == 0) {
        TraceSpan span("checkpoint");
        SAMPNN_ASSIGN_OR_RETURN(
            snapshot, BuildPayload(*trainer, batcher, cur, sentinel,
                                   result.epochs));
        cur.retries = 0;
        const Status status = writer->Write(cur.global_step, snapshot);
        if (!status.ok()) {
          // Training is still sound on a failed persist — log, count, and
          // carry on; the in-memory snapshot stays usable for rollbacks.
          std::fprintf(stderr, "  [%s] checkpoint write failed: %s\n",
                       result.method.c_str(), status.ToString().c_str());
          if (TelemetryEnabled()) {
            static Counter& failures = MetricsRegistry::Get().GetCounter(
                "resilience.checkpoint_failures");
            failures.Increment();
          }
        }
      }
      continue;
    }

    // ---- epoch boundary (the batcher wrapped and reshuffled) ----
    trainer->OnEpochEnd();

    EpochRecord record;
    record.epoch = cur.epoch;
    record.train_loss =
        cur.batch_in_epoch > 0 ? cur.loss_sum / cur.batch_in_epoch : 0.0;
    record.seconds = epoch_watch.Elapsed();
    result.train_seconds += record.seconds;
    if (config.eval_each_epoch || cur.epoch == config.epochs) {
      record.test_accuracy =
          EvaluateAccuracy(trainer->net(), data.test, config.eval_batch);
      if (data.validation.size() > 0) {
        record.validation_accuracy = EvaluateAccuracy(
            trainer->net(), data.validation, config.eval_batch);
      }
    }
    if (config.verbose) {
      std::fprintf(stderr,
                   "  [%s] epoch %zu/%zu loss=%.4f test_acc=%.2f%% (%.2fs)\n",
                   result.method.c_str(), static_cast<size_t>(cur.epoch),
                   config.epochs, record.train_loss,
                   100.0 * record.test_accuracy, record.seconds);
    }
    result.epochs.push_back(record);

    if (recorder != nullptr && TelemetryEnabled()) {
      TraceSpan span("telemetry_record");
      EpochTelemetry t;
      t.run = config.run_label;
      t.method = result.method;
      t.architecture = result.architecture;
      t.epoch = cur.epoch;
      t.rollbacks = cur.rollbacks;
      t.nan_batches = cur.nan_batches;
      t.train_loss = record.train_loss;
      t.test_accuracy = record.test_accuracy;
      t.validation_accuracy = record.validation_accuracy;
      t.epoch_seconds = record.seconds;
      const SplitTimer& phases = trainer->timer();
      const double forward = phases.Seconds(kPhaseForward);
      const double backward = phases.Seconds(kPhaseBackward);
      const double sampling = phases.Seconds(kPhaseSampling);
      const double rebuild = phases.Seconds(kPhaseHashRebuild);
      const double parallel = phases.Seconds("parallel");
      t.forward_seconds = forward - prev.forward;
      t.backward_seconds = backward - prev.backward;
      t.sampling_seconds = sampling - prev.sampling;
      t.rebuild_seconds = rebuild - prev.rebuild;
      t.parallel_seconds = parallel - prev.parallel;
      prev.forward = forward;
      prev.backward = backward;
      prev.sampling = sampling;
      prev.rebuild = rebuild;
      prev.parallel = parallel;
      MetricsRegistry& registry = MetricsRegistry::Get();
      const uint64_t gemm = registry.GetCounter("tensor.gemm.flops").Value();
      const uint64_t gemm_realized =
          registry.GetCounter("tensor.gemm.flops_realized").Value();
      const uint64_t sparse =
          registry.GetCounter("tensor.sparse.flops").Value();
      const uint64_t gemm_parallel =
          registry.GetCounter("tensor.gemm.parallel_dispatches").Value();
      const uint64_t gemm_serial =
          registry.GetCounter("tensor.gemm.serial_dispatches").Value();
      t.gemm_flops = gemm - prev.gemm_flops;
      t.gemm_flops_realized = gemm_realized - prev.gemm_flops_realized;
      t.sparse_flops = sparse - prev.sparse_flops;
      const uint64_t pack_b =
          registry.GetCounter("tensor.gemm.pack_b_panels").Value();
      const uint64_t pack_a =
          registry.GetCounter("tensor.gemm.pack_a_panels").Value();
      const uint64_t block_tasks =
          registry.GetCounter("tensor.gemm.block_tasks").Value();
      t.gemm_parallel_dispatches = gemm_parallel - prev.gemm_parallel;
      t.gemm_serial_dispatches = gemm_serial - prev.gemm_serial;
      t.gemm_pack_b_panels = pack_b - prev.pack_b;
      t.gemm_pack_a_panels = pack_a - prev.pack_a;
      t.gemm_block_tasks = block_tasks - prev.block_tasks;
      prev.gemm_flops = gemm;
      prev.gemm_flops_realized = gemm_realized;
      prev.sparse_flops = sparse;
      prev.gemm_parallel = gemm_parallel;
      prev.gemm_serial = gemm_serial;
      prev.pack_b = pack_b;
      prev.pack_a = pack_a;
      prev.block_tasks = block_tasks;
      trainer->FillTelemetry(&t);
      t.rss_bytes = memory.CurrentBytes();
      recorder->Record(t);
    }

    // Advance to the next epoch before snapshotting, so a resume or
    // rollback from this point starts cleanly at the new epoch.
    ++cur.epoch;
    cur.batch_in_epoch = 0;
    cur.loss_sum = 0.0;
    epoch_watch.Restart();

    const bool boundary_checkpoint = writer.has_value() &&
                                     res.checkpoint_every == 0 &&
                                     cur.epoch <= config.epochs;
    if (boundary_checkpoint || res.sentinel.enabled) {
      TraceSpan span("checkpoint");
      SAMPNN_ASSIGN_OR_RETURN(
          snapshot, BuildPayload(*trainer, batcher, cur, sentinel,
                                 result.epochs));
      cur.retries = 0;
      if (boundary_checkpoint) {
        const Status status = writer->Write(cur.global_step, snapshot);
        if (!status.ok()) {
          std::fprintf(stderr, "  [%s] checkpoint write failed: %s\n",
                       result.method.c_str(), status.ToString().c_str());
          if (TelemetryEnabled()) {
            static Counter& failures = MetricsRegistry::Get().GetCounter(
                "resilience.checkpoint_failures");
            failures.Increment();
          }
        }
      }
    }
  }

  const SplitTimer& timer = trainer->timer();
  result.forward_seconds = timer.Seconds(kPhaseForward);
  result.backward_seconds = timer.Seconds(kPhaseBackward);
  result.rebuild_seconds = timer.Seconds(kPhaseHashRebuild);
  result.parallel_seconds = timer.Seconds("parallel");
  result.final_test_accuracy = result.epochs.back().test_accuracy;
  result.final_validation_accuracy = result.epochs.back().validation_accuracy;
  result.rss_growth_bytes = memory.GrowthBytes();
  result.confusion = ComputeConfusion(trainer->net(), data.test,
                                      config.eval_batch);
  return result;
}

MlpConfig PaperMlpConfig(const Dataset& train, size_t depth, size_t width,
                         uint64_t seed) {
  MlpConfig cfg = MlpConfig::Uniform(train.dim(), train.num_classes(), depth,
                                     width);
  cfg.hidden_activation = Activation::kRelu;  // §8.4
  cfg.initializer = Initializer::kHe;
  cfg.seed = seed;
  return cfg;
}

TrainerOptions PaperTrainerOptions(TrainerKind kind, size_t batch_size,
                                   uint64_t seed) {
  TrainerOptions options;
  options.kind = kind;
  options.seed = seed;
  options.optimizer = "adam";  // §8.4: Adam performs best incl. for ALSH
  options.learning_rate = 1e-3f;
  switch (kind) {
    case TrainerKind::kStandard:
      break;
    case TrainerKind::kDropout:
      options.dropout.keep_prob = 0.05f;  // §8.4: p matched to ALSH
      break;
    case TrainerKind::kAdaptiveDropout:
      options.adaptive_dropout.target_prob = 0.05f;
      break;
    case TrainerKind::kAlsh:
      options.alsh.index.bits = 6;     // K = 6
      options.alsh.index.tables = 5;   // L = 5
      options.alsh.index.transform.m = 3;
      options.alsh.optimizer = "adam";
      break;
    case TrainerKind::kMc:
      options.mc.grad_batch_samples = 10;  // k = 10
      options.mc.delta_sample_ratio = 0.1;
      break;
  }
  // §8.4: "The learning rate is always either 1e-4 or 1e-3 depending on the
  // setting." Batch-1 Adam at 1e-3 is unstable (dead-ReLU collapse on the
  // noisier datasets; for MC^S, §9.3's overfitting), so every dense method
  // uses 1e-4 in the stochastic setting. ALSH keeps 1e-3: its per-column
  // update frequency is ~active-fraction of the step count, so the
  // effective rate is already far lower.
  if (batch_size <= 1 && kind != TrainerKind::kAlsh) {
    options.learning_rate = 1e-4f;
  }
  return options;
}

}  // namespace sampnn
