#include "src/core/experiment.h"

#include <cstdio>

#include "src/data/batcher.h"
#include "src/metrics/accuracy.h"
#include "src/metrics/memory_tracker.h"
#include "src/metrics/split_timer.h"
#include "src/telemetry/epoch_recorder.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"

namespace sampnn {

StatusOr<ExperimentResult> RunExperiment(const MlpConfig& net_config,
                                         const ExperimentConfig& config,
                                         const DatasetSplits& data) {
  if (config.epochs == 0) {
    return Status::InvalidArgument("ExperimentConfig.epochs must be >= 1");
  }
  if (config.batch_size == 0) {
    return Status::InvalidArgument("ExperimentConfig.batch_size must be >= 1");
  }
  if (data.train.size() == 0) {
    return Status::InvalidArgument("empty training split");
  }
  SAMPNN_ASSIGN_OR_RETURN(std::unique_ptr<Trainer> trainer,
                          MakeTrainer(net_config, config.trainer));

  ExperimentResult result;
  result.method = trainer->name();
  result.architecture = trainer->net().ArchitectureString();

  MemoryTracker memory;
  Batcher batcher(data.train, config.batch_size, config.data_seed,
                  config.drop_remainder);
  Matrix x;
  std::vector<int32_t> y;

  EpochRecorder* recorder =
      config.telemetry != nullptr ? config.telemetry : GlobalEpochRecorder();
  // Cumulative baselines: the trainer SplitTimer and the registry FLOP
  // counters only grow, so per-epoch values are deltas against these.
  struct PhaseBaseline {
    double forward = 0.0, backward = 0.0, sampling = 0.0;
    double rebuild = 0.0, parallel = 0.0;
    uint64_t gemm_flops = 0, sparse_flops = 0;
  } prev;
  if (recorder != nullptr && TelemetryEnabled()) {
    // The FLOP counters are process-global; start from their current values
    // so concurrent earlier runs do not leak into epoch 1's delta.
    prev.gemm_flops =
        MetricsRegistry::Get().GetCounter("tensor.gemm.flops").Value();
    prev.sparse_flops =
        MetricsRegistry::Get().GetCounter("tensor.sparse.flops").Value();
  }

  for (size_t epoch = 1; epoch <= config.epochs; ++epoch) {
    Stopwatch epoch_watch;
    double loss_sum = 0.0;
    size_t batches = 0;
    while (batcher.Next(&x, &y)) {
      SAMPNN_ASSIGN_OR_RETURN(double loss, trainer->Step(x, y));
      loss_sum += loss;
      ++batches;
    }
    trainer->OnEpochEnd();

    EpochRecord record;
    record.epoch = epoch;
    record.train_loss = batches > 0 ? loss_sum / batches : 0.0;
    record.seconds = epoch_watch.Elapsed();
    result.train_seconds += record.seconds;
    if (config.eval_each_epoch || epoch == config.epochs) {
      record.test_accuracy =
          EvaluateAccuracy(trainer->net(), data.test, config.eval_batch);
      if (data.validation.size() > 0) {
        record.validation_accuracy = EvaluateAccuracy(
            trainer->net(), data.validation, config.eval_batch);
      }
    }
    if (config.verbose) {
      std::fprintf(stderr,
                   "  [%s] epoch %zu/%zu loss=%.4f test_acc=%.2f%% (%.2fs)\n",
                   result.method.c_str(), epoch, config.epochs,
                   record.train_loss, 100.0 * record.test_accuracy,
                   record.seconds);
    }
    result.epochs.push_back(record);

    if (recorder != nullptr && TelemetryEnabled()) {
      TraceSpan span("telemetry_record");
      EpochTelemetry t;
      t.run = config.run_label;
      t.method = result.method;
      t.architecture = result.architecture;
      t.epoch = epoch;
      t.train_loss = record.train_loss;
      t.test_accuracy = record.test_accuracy;
      t.validation_accuracy = record.validation_accuracy;
      t.epoch_seconds = record.seconds;
      const SplitTimer& phases = trainer->timer();
      const double forward = phases.Seconds(kPhaseForward);
      const double backward = phases.Seconds(kPhaseBackward);
      const double sampling = phases.Seconds(kPhaseSampling);
      const double rebuild = phases.Seconds(kPhaseHashRebuild);
      const double parallel = phases.Seconds("parallel");
      t.forward_seconds = forward - prev.forward;
      t.backward_seconds = backward - prev.backward;
      t.sampling_seconds = sampling - prev.sampling;
      t.rebuild_seconds = rebuild - prev.rebuild;
      t.parallel_seconds = parallel - prev.parallel;
      prev.forward = forward;
      prev.backward = backward;
      prev.sampling = sampling;
      prev.rebuild = rebuild;
      prev.parallel = parallel;
      MetricsRegistry& registry = MetricsRegistry::Get();
      const uint64_t gemm = registry.GetCounter("tensor.gemm.flops").Value();
      const uint64_t sparse =
          registry.GetCounter("tensor.sparse.flops").Value();
      t.gemm_flops = gemm - prev.gemm_flops;
      t.sparse_flops = sparse - prev.sparse_flops;
      prev.gemm_flops = gemm;
      prev.sparse_flops = sparse;
      trainer->FillTelemetry(&t);
      t.rss_bytes = memory.CurrentBytes();
      recorder->Record(t);
    }
  }

  const SplitTimer& timer = trainer->timer();
  result.forward_seconds = timer.Seconds(kPhaseForward);
  result.backward_seconds = timer.Seconds(kPhaseBackward);
  result.rebuild_seconds = timer.Seconds(kPhaseHashRebuild);
  result.parallel_seconds = timer.Seconds("parallel");
  result.final_test_accuracy = result.epochs.back().test_accuracy;
  result.final_validation_accuracy = result.epochs.back().validation_accuracy;
  result.rss_growth_bytes = memory.GrowthBytes();
  result.confusion = ComputeConfusion(trainer->net(), data.test,
                                      config.eval_batch);
  return result;
}

MlpConfig PaperMlpConfig(const Dataset& train, size_t depth, size_t width,
                         uint64_t seed) {
  MlpConfig cfg = MlpConfig::Uniform(train.dim(), train.num_classes(), depth,
                                     width);
  cfg.hidden_activation = Activation::kRelu;  // §8.4
  cfg.initializer = Initializer::kHe;
  cfg.seed = seed;
  return cfg;
}

TrainerOptions PaperTrainerOptions(TrainerKind kind, size_t batch_size,
                                   uint64_t seed) {
  TrainerOptions options;
  options.kind = kind;
  options.seed = seed;
  options.optimizer = "adam";  // §8.4: Adam performs best incl. for ALSH
  options.learning_rate = 1e-3f;
  switch (kind) {
    case TrainerKind::kStandard:
      break;
    case TrainerKind::kDropout:
      options.dropout.keep_prob = 0.05f;  // §8.4: p matched to ALSH
      break;
    case TrainerKind::kAdaptiveDropout:
      options.adaptive_dropout.target_prob = 0.05f;
      break;
    case TrainerKind::kAlsh:
      options.alsh.index.bits = 6;     // K = 6
      options.alsh.index.tables = 5;   // L = 5
      options.alsh.index.transform.m = 3;
      options.alsh.optimizer = "adam";
      break;
    case TrainerKind::kMc:
      options.mc.grad_batch_samples = 10;  // k = 10
      options.mc.delta_sample_ratio = 0.1;
      break;
  }
  // §8.4: "The learning rate is always either 1e-4 or 1e-3 depending on the
  // setting." Batch-1 Adam at 1e-3 is unstable (dead-ReLU collapse on the
  // noisier datasets; for MC^S, §9.3's overfitting), so every dense method
  // uses 1e-4 in the stochastic setting. ALSH keeps 1e-3: its per-column
  // update frequency is ~active-fraction of the step count, so the
  // effective rate is already far lower.
  if (batch_size <= 1 && kind != TrainerKind::kAlsh) {
    options.learning_rate = 1e-4f;
  }
  return options;
}

}  // namespace sampnn
