// Dropout-family trainers (paper §5.1): sample a mask over each hidden
// layer's nodes every step; dropped nodes output zero and receive no
// gradient. Masks use inverted scaling (kept activations multiplied by
// 1/keep_prob) so evaluation runs the plain dense forward.
//
// As in the paper's PyTorch implementations, the mask is *applied to* dense
// products rather than skipping them, so the dropout pair pays mask
// construction/multiplication overhead on top of dense cost — the effect
// the paper measures in Table 4 and attributes to cache misses in §9.4.

#pragma once

#include "src/core/trainer.h"
#include "src/util/rng.h"

namespace sampnn {

/// \brief Shared machinery for masked (dropout-style) training.
///
/// Subclasses define the per-step mask distribution via FillMask().
class MaskedTrainer : public Trainer {
 public:
  StatusOr<double> Step(const Matrix& x, std::span<const int32_t> y) override;
  float learning_rate() const override { return optimizer_->learning_rate(); }
  void set_learning_rate(float lr) override {
    optimizer_->set_learning_rate(lr);
  }

 protected:
  MaskedTrainer(Mlp net, std::unique_ptr<Optimizer> optimizer, uint64_t seed);

  Status SaveExtraState(std::ostream& out) const override;
  Status LoadExtraState(std::istream& in) override;

  /// Fills `mask` (same shape as `z`) with 0 for dropped units and the
  /// inverse keep probability for kept units. `layer` indexes hidden layers.
  virtual void FillMask(size_t layer, const Matrix& z, Matrix* mask) = 0;

  Rng rng_;

 private:
  std::unique_ptr<Optimizer> optimizer_;
  MlpWorkspace ws_;
  std::vector<Matrix> masks_;
  MlpGrads grads_;
  Matrix grad_logits_;
};

/// \brief DROPOUT (Srivastava et al.): keep each node i.i.d. with fixed
/// probability `keep_prob` (paper: p = 0.05 to match ALSH active sets).
class DropoutTrainer : public MaskedTrainer {
 public:
  DropoutTrainer(Mlp net, std::unique_ptr<Optimizer> optimizer,
                 const DropoutOptions& options, uint64_t seed);

  const char* name() const override { return "dropout"; }

 protected:
  void FillMask(size_t layer, const Matrix& z, Matrix* mask) override;

 private:
  DropoutOptions options_;
};

/// \brief ADAPTIVE-DROPOUT (Ba & Frey standout): keep node j with
/// data-dependent probability pi_j = sigmoid(alpha * z_j + beta), an
/// approximation of the Bayesian posterior over architectures. beta is set
/// to logit(target_prob) so the expected keep rate matches the paper's p.
class AdaptiveDropoutTrainer : public MaskedTrainer {
 public:
  AdaptiveDropoutTrainer(Mlp net, std::unique_ptr<Optimizer> optimizer,
                         const AdaptiveDropoutOptions& options, uint64_t seed);

  const char* name() const override { return "adaptive-dropout"; }

 protected:
  void FillMask(size_t layer, const Matrix& z, Matrix* mask) override;

 private:
  AdaptiveDropoutOptions options_;
  float beta_;
};

}  // namespace sampnn
