// Shared train/evaluate driver used by all bench binaries and examples:
// builds a trainer, runs epochs over the training split, records per-epoch
// accuracy and the phase-split timing, and produces the final confusion
// matrix — everything the paper's tables and figures are made of.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/metrics/confusion_matrix.h"
#include "src/resilience/sentinel.h"
#include "src/util/status.h"

namespace sampnn {

class EpochRecorder;  // src/telemetry/epoch_recorder.h

/// Crash-safety and divergence-recovery knobs for RunExperiment.
struct ResilienceOptions {
  std::string checkpoint_dir;   ///< empty = checkpointing disabled
  size_t checkpoint_every = 0;  ///< batches between checkpoints; 0 = write
                                ///< at epoch boundaries (when dir is set)
  size_t retain = 3;            ///< keep the newest K checkpoints; 0 = all
  bool resume = false;          ///< continue from the latest valid
                                ///< checkpoint in checkpoint_dir (a fresh
                                ///< start when none exists)
  SentinelOptions sentinel;     ///< divergence detection + rollback
};

/// Knobs for one experiment run.
struct ExperimentConfig {
  TrainerOptions trainer;
  size_t epochs = 10;
  size_t batch_size = 20;      ///< 1 = the paper's stochastic setting
  bool drop_remainder = false;
  bool eval_each_epoch = true; ///< test accuracy after every epoch
  size_t eval_batch = 256;
  uint64_t data_seed = 7;      ///< minibatch shuffling seed
  bool verbose = false;        ///< per-epoch progress on stderr
  /// Destination for per-epoch EpochTelemetry records; nullptr falls back to
  /// the process-global recorder (if installed). Either way nothing is
  /// written unless telemetry is enabled (src/telemetry/telemetry.h).
  EpochRecorder* telemetry = nullptr;
  std::string run_label;       ///< stamps the "run" field of telemetry records
  ResilienceOptions resilience;
};

/// One epoch's record.
struct EpochRecord {
  size_t epoch = 0;          ///< 1-based
  double train_loss = 0.0;   ///< mean minibatch loss
  double test_accuracy = 0.0;      ///< 0..1 (NaN-free; 0 when not evaluated)
  double validation_accuracy = 0.0;
  double seconds = 0.0;      ///< wall-clock training time of this epoch
};

/// Everything a bench needs to print a paper row.
struct ExperimentResult {
  std::string method;
  std::string architecture;
  std::vector<EpochRecord> epochs;
  double final_test_accuracy = 0.0;
  double final_validation_accuracy = 0.0;
  double train_seconds = 0.0;     ///< total wall-clock training time
  double forward_seconds = 0.0;   ///< feedforward phase (Tables 3–4 split)
  double backward_seconds = 0.0;  ///< backpropagation phase
  double rebuild_seconds = 0.0;   ///< ALSH hash reconstruction
  double parallel_seconds = 0.0;  ///< wall time of HOGWILD batches (ALSH)
  size_t rss_growth_bytes = 0;    ///< §9.4-style memory growth during training
  std::optional<ConfusionMatrix> confusion;  ///< on the test split
};

/// Runs one experiment end to end. The trainer is built fresh from
/// `net_config` + `config.trainer`, so runs with equal seeds start from
/// identical weights across methods.
StatusOr<ExperimentResult> RunExperiment(const MlpConfig& net_config,
                                         const ExperimentConfig& config,
                                         const DatasetSplits& data);

/// Convenience used throughout the bench harness: the paper's default
/// architecture (hidden `depth` x `width`, ReLU) for a dataset's shape.
MlpConfig PaperMlpConfig(const Dataset& train, size_t depth, size_t width,
                         uint64_t seed);

/// Paper §8.4 defaults for a method: learning rate 1e-3 (1e-4 for MC^S),
/// Adam everywhere except pure-SGD ablations; p = 0.05 for the dropout pair;
/// K=6, L=5, m=3 for ALSH; batch 20 and k=10 for MC^M.
TrainerOptions PaperTrainerOptions(TrainerKind kind, size_t batch_size,
                                   uint64_t seed);

}  // namespace sampnn
