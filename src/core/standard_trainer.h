// STANDARD: exact dense training — the paper's baseline (§8.3, footnote 11:
// "Training the neural network without sampling").

#pragma once

#include "src/core/trainer.h"

namespace sampnn {

/// \brief Exact minibatch/stochastic gradient descent.
class StandardTrainer : public Trainer {
 public:
  StandardTrainer(Mlp net, std::unique_ptr<Optimizer> optimizer);

  StatusOr<double> Step(const Matrix& x, std::span<const int32_t> y) override;
  const char* name() const override { return "standard"; }

 private:
  std::unique_ptr<Optimizer> optimizer_;
  MlpWorkspace ws_;
  MlpGrads grads_;
  Matrix grad_logits_;
};

}  // namespace sampnn
