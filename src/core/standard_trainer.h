// STANDARD: exact dense training — the paper's baseline (§8.3, footnote 11:
// "Training the neural network without sampling").

#pragma once

#include "src/core/trainer.h"

namespace sampnn {

/// \brief Exact minibatch/stochastic gradient descent.
class StandardTrainer : public Trainer {
 public:
  StandardTrainer(Mlp net, std::unique_ptr<Optimizer> optimizer);

  StatusOr<double> Step(const Matrix& x, std::span<const int32_t> y) override;
  const char* name() const override { return "standard"; }
  float learning_rate() const override { return optimizer_->learning_rate(); }
  void set_learning_rate(float lr) override {
    optimizer_->set_learning_rate(lr);
  }

 protected:
  Status SaveExtraState(std::ostream& out) const override;
  Status LoadExtraState(std::istream& in) override;

 private:
  std::unique_ptr<Optimizer> optimizer_;
  MlpWorkspace ws_;
  MlpGrads grads_;
  Matrix grad_logits_;
};

}  // namespace sampnn
