#include "src/core/mc_trainer.h"

#include <algorithm>
#include <cmath>

#include <limits>

#include "src/approx/adelman.h"
#include "src/nn/loss.h"
#include "src/resilience/fault_injector.h"
#include "src/telemetry/epoch_recorder.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/trace.h"
#include "src/tensor/kernels.h"
#include "src/util/binary_io.h"

namespace sampnn {

StatusOr<std::unique_ptr<McTrainer>> McTrainer::Create(
    Mlp net, std::unique_ptr<Optimizer> optimizer, const McOptions& options,
    uint64_t seed) {
  if (optimizer == nullptr) {
    return Status::InvalidArgument("McTrainer: optimizer required");
  }
  if (options.grad_batch_samples == 0) {
    return Status::InvalidArgument("McTrainer: grad_batch_samples must be >= 1");
  }
  if (options.delta_sample_ratio <= 0.0 || options.delta_sample_ratio > 1.0) {
    return Status::InvalidArgument(
        "McTrainer: delta_sample_ratio must be in (0, 1]");
  }
  return std::unique_ptr<McTrainer>(new McTrainer(
      std::move(net), std::move(optimizer), options, seed));
}

McTrainer::McTrainer(Mlp net, std::unique_ptr<Optimizer> optimizer,
                     const McOptions& options, uint64_t seed)
    : Trainer(std::move(net)),
      options_(options),
      optimizer_(std::move(optimizer)),
      rng_(seed) {}

size_t McTrainer::DeltaSamples(size_t n) const {
  const auto by_ratio = static_cast<size_t>(std::llround(
      options_.delta_sample_ratio * static_cast<double>(n)));
  return std::min(n, std::max({size_t{1}, options_.delta_min_samples,
                               by_ratio}));
}

StatusOr<double> McTrainer::Step(const Matrix& x,
                                 std::span<const int32_t> y) {
  const size_t num_layers = net_.num_layers();

  // --- Feedforward (exact by default; sampled only in the ablation) ---
  {
    PhaseScope scope(&timer_, kPhaseForward);
    if (!options_.approx_forward) {
      net_.Forward(x, &ws_);
    } else {
      ws_.z.resize(num_layers);
      ws_.a.resize(num_layers);
      const Matrix* prev = &x;
      for (size_t k = 0; k < num_layers; ++k) {
        const Layer& layer = net_.layer(k);
        const size_t inner = layer.in_dim();
        const size_t samples = options_.forward_samples > 0
                                   ? options_.forward_samples
                                   : DeltaSamples(inner);
        SAMPNN_RETURN_NOT_OK(AdelmanApproxMatmul(*prev, layer.weights(),
                                                 samples, rng_, &ws_.z[k]));
        AddRowVector(&ws_.z[k], layer.bias());
        layer.Activate(ws_.z[k], &ws_.a[k]);
        prev = &ws_.a[k];
      }
    }
  }

  double loss = 0.0;
  {
    PhaseScope scope(&timer_, kPhaseBackward);
    SAMPNN_ASSIGN_OR_RETURN(
        loss, SoftmaxCrossEntropy::LossAndGrad(ws_.a.back(), y, &grad_logits_));
    if (grads_.size() != num_layers) grads_ = net_.ZeroGrads();

    delta_ = grad_logits_;
    for (size_t k = num_layers; k-- > 0;) {
      const Layer& layer = net_.layer(k);
      LayerGrads& g = grads_[k];
      const Matrix& a_prev = (k == 0) ? x : ws_.a[k - 1];
      // grad_W ≈ sampled a_prev^T * delta over the batch dimension. When the
      // batch is <= k the estimator degrades to the exact product, which is
      // why MC^S pays the probability-estimation overhead for nothing.
      {
        // `sampling` is charged as a sub-phase nested inside backward.
        PhaseScope span(&timer_, kPhaseSampling);
        SAMPNN_RETURN_NOT_OK(AdelmanApproxGemmTransA(
            a_prev, delta_, options_.grad_batch_samples, rng_, &g.weights));
      }
      g.bias.resize(layer.out_dim());
      ColumnSums(delta_, g.bias);
      const size_t batch_samples =
          std::min(a_prev.rows(), options_.grad_batch_samples);
      if (k > 0) {
        // delta_prev ≈ sampled delta * W^T over this layer's nodes.
        const size_t delta_samples = DeltaSamples(layer.out_dim());
        {
          PhaseScope span(&timer_, kPhaseSampling);
          SAMPNN_RETURN_NOT_OK(AdelmanApproxGemmTransB(
              delta_, layer.weights(), delta_samples, rng_, &delta_prev_));
        }
        MultiplyActivationGrad(net_.layer(k - 1).activation(), ws_.z[k - 1],
                               &delta_prev_);
        std::swap(delta_, delta_prev_);
        delta_samples_total_ += delta_samples;
        if (TelemetryEnabled()) {
          static Histogram& h = MetricsRegistry::Get().GetHistogram(
              "approx.mc.delta_samples");
          h.Observe(delta_samples);
        }
      }
      batch_samples_total_ += batch_samples;
      if (TelemetryEnabled()) {
        static Histogram& h =
            MetricsRegistry::Get().GetHistogram("approx.mc.batch_samples");
        h.Observe(batch_samples);
      }
    }
    if (FaultArmed(FaultKind::kGradNan)) {
      // Output layer: ReLU would mask a NaN in the hidden layers.
      grads_.back().weights(0, 0) = std::numeric_limits<float>::quiet_NaN();
    }
    if (track_grad_norm_) last_grad_norm2_ = GradSquaredNorm(grads_);
    optimizer_->Step(&net_, grads_);
  }
  return loss;
}

void McTrainer::FillTelemetry(EpochTelemetry* record) const {
  record->mc_batch_samples = batch_samples_total_;
  record->mc_delta_samples = delta_samples_total_;
}

Status McTrainer::SaveExtraState(std::ostream& out) const {
  WriteRngState(out, rng_.GetState());
  WriteU64(out, batch_samples_total_);
  WriteU64(out, delta_samples_total_);
  return optimizer_->SaveState(out);
}

Status McTrainer::LoadExtraState(std::istream& in) {
  SAMPNN_ASSIGN_OR_RETURN(RngState rng_state, ReadRngState(in));
  SAMPNN_ASSIGN_OR_RETURN(uint64_t batch_total, ReadU64(in));
  SAMPNN_ASSIGN_OR_RETURN(uint64_t delta_total, ReadU64(in));
  SAMPNN_RETURN_NOT_OK(optimizer_->LoadState(in, net_));
  rng_.SetState(rng_state);
  batch_samples_total_ = batch_total;
  delta_samples_total_ = delta_total;
  return Status::OK();
}

}  // namespace sampnn
