#include "src/core/error_propagation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/tensor/kernels.h"
#include "src/util/check.h"

namespace sampnn {

double TheoreticalErrorRatio(double c, size_t k) {
  SAMPNN_CHECK_GT(c, 0.0);
  return std::pow((c + 1.0) / c, static_cast<double>(k)) - 1.0;
}

std::vector<double> TheoreticalErrorTable(double c, size_t max_k) {
  std::vector<double> out;
  out.reserve(max_k);
  for (size_t k = 1; k <= max_k; ++k) out.push_back(TheoreticalErrorRatio(c, k));
  return out;
}

StatusOr<std::vector<LayerErrorStats>> MeasureErrorPropagation(
    const Mlp& net, const Matrix& inputs,
    const ErrorPropagationOptions& options) {
  if (inputs.rows() == 0) {
    return Status::InvalidArgument("MeasureErrorPropagation: no inputs");
  }
  if (inputs.cols() != net.input_dim()) {
    return Status::InvalidArgument("MeasureErrorPropagation: dim mismatch");
  }
  if (options.selection == ActiveSelection::kOracleTopFraction &&
      (options.active_fraction <= 0.0 || options.active_fraction > 1.0)) {
    return Status::InvalidArgument(
        "MeasureErrorPropagation: active_fraction in (0, 1]");
  }
  const size_t num_hidden = net.num_hidden_layers();
  if (num_hidden == 0) {
    return Status::InvalidArgument(
        "MeasureErrorPropagation: network has no hidden layers");
  }

  // Optional LSH indexes per hidden layer.
  std::vector<AlshIndex> indexes;
  if (options.selection == ActiveSelection::kAlsh) {
    indexes.reserve(num_hidden);
    for (size_t k = 0; k < num_hidden; ++k) {
      SAMPNN_ASSIGN_OR_RETURN(
          AlshIndex index, AlshIndex::Create(net.layer(k).in_dim(),
                                             options.alsh,
                                             options.seed + 31 * k));
      index.Build(net.layer(k).weights());
      indexes.push_back(std::move(index));
    }
  }

  std::vector<LayerErrorStats> stats(num_hidden);
  for (size_t k = 0; k < num_hidden; ++k) stats[k].layer = k + 1;
  std::vector<double> err_sum(num_hidden, 0.0), est_sum(num_hidden, 0.0);
  std::vector<size_t> counts(num_hidden, 0);

  std::vector<float> exact_prev, exact_cur;
  std::vector<float> approx_prev, approx_cur;
  std::vector<uint32_t> active;
  std::vector<size_t> order;
  for (size_t r = 0; r < inputs.rows(); ++r) {
    auto x = inputs.Row(r);
    exact_prev.assign(x.begin(), x.end());
    approx_prev.assign(x.begin(), x.end());
    for (size_t k = 0; k < num_hidden; ++k) {
      const Layer& layer = net.layer(k);
      const size_t n = layer.out_dim();
      // Exact chain.
      exact_cur.assign(n, 0.0f);
      layer.ForwardLinear(exact_prev, exact_cur);
      layer.Activate(exact_cur, exact_cur);
      // Approximate chain: full linear pass from the *approximate*
      // predecessor, then truncate to the active set (Lemma 7.1's model:
      // errors come both from truncation and from the propagated
      // predecessor error).
      approx_cur.assign(n, 0.0f);
      layer.ForwardLinear(approx_prev, approx_cur);
      layer.Activate(approx_cur, approx_cur);
      if (options.selection == ActiveSelection::kOracleTopFraction) {
        const size_t keep = std::max<size_t>(
            1, static_cast<size_t>(std::llround(options.active_fraction *
                                                static_cast<double>(n))));
        order.resize(n);
        std::iota(order.begin(), order.end(), 0);
        std::nth_element(order.begin(), order.begin() + keep - 1, order.end(),
                         [&](size_t i, size_t j) {
                           return std::fabs(approx_cur[i]) >
                                  std::fabs(approx_cur[j]);
                         });
        const float threshold = std::fabs(approx_cur[order[keep - 1]]);
        size_t kept = 0;
        for (size_t j = 0; j < n; ++j) {
          const bool keep_node =
              std::fabs(approx_cur[j]) > threshold ||
              (std::fabs(approx_cur[j]) == threshold && kept < keep);
          if (keep_node) {
            ++kept;
          } else {
            approx_cur[j] = 0.0f;
          }
        }
      } else {
        indexes[k].Query(approx_prev, &active);
        std::vector<float> truncated(n, 0.0f);
        for (uint32_t j : active) truncated[j] = approx_cur[j];
        approx_cur.swap(truncated);
      }
      // Accumulate |a - â| and |â|.
      for (size_t j = 0; j < n; ++j) {
        err_sum[k] += std::fabs(static_cast<double>(exact_cur[j]) -
                                approx_cur[j]);
        est_sum[k] += std::fabs(static_cast<double>(approx_cur[j]));
        ++counts[k];
      }
      exact_prev.swap(exact_cur);
      approx_prev.swap(approx_cur);
    }
  }
  for (size_t k = 0; k < num_hidden; ++k) {
    stats[k].mean_abs_error = err_sum[k] / static_cast<double>(counts[k]);
    stats[k].mean_abs_estimate = est_sum[k] / static_cast<double>(counts[k]);
    stats[k].error_ratio =
        stats[k].mean_abs_estimate > 0.0
            ? stats[k].mean_abs_error / stats[k].mean_abs_estimate
            : INFINITY;
  }
  return stats;
}

}  // namespace sampnn
